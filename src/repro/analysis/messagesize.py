"""Message-size study (TAB-MSG): when does locality matter?

The paper cites the CM-5 measurements of Ponnusamy, Choudhary & Fox
[13]: "in order to achieve high performance on a (skinny) fat-tree
architecture, communication should be kept local (**especially for
large messages**) and contention should be avoided as far as possible."

This experiment sweeps the column length ``m`` (the message size of a
column transfer) and reports the per-sweep communication time of the
localised fat-tree ordering against the global-every-step round-robin
ordering on the CM-5 model.  For small messages the per-phase startup
``alpha`` dominates and the orderings tie; as messages grow, the
contention rounds on the skinny channels multiply the bandwidth term
and locality wins — the [13] observation, reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.costmodel import CostModel
from ..machine.simulator import TreeMachine
from ..machine.topology import make_topology
from ..orderings.registry import make_ordering
from ..util.formatting import render_table

__all__ = ["MessageSizeRow", "message_size_table", "render_message_size_table"]


@dataclass(frozen=True)
class MessageSizeRow:
    m: int
    words_per_message: int
    comm_time: dict[str, float]
    advantage: float  # round_robin comm time / fat_tree comm time


def message_size_table(
    n: int = 64,
    sizes: list[int] | None = None,
    topology: str = "cm5",
    cost_model: CostModel | None = None,
    seed: int = 0,
) -> list[MessageSizeRow]:
    """TAB-MSG: communication time vs message (column) size."""
    sizes = sizes or [8, 32, 128, 512]
    cm = cost_model or CostModel()
    rng = np.random.default_rng(seed)
    topo = make_topology(topology, n // 2)
    rows: list[MessageSizeRow] = []
    for m in sizes:
        a = rng.standard_normal((m, n))
        times: dict[str, float] = {}
        for name in ("round_robin", "fat_tree", "ring_new"):
            machine = TreeMachine(topo, cm)
            machine.load(a, compute_v=False)
            stats, _, _ = machine.run_sweep(make_ordering(name, n).sweep(0))
            times[name] = stats.comm_time
        rows.append(
            MessageSizeRow(
                m=m,
                words_per_message=m,
                comm_time=times,
                advantage=times["round_robin"] / times["fat_tree"],
            )
        )
    return rows


def render_message_size_table(rows: list[MessageSizeRow]) -> str:
    """Text table for TAB-MSG rows."""
    headers = ["column length", "round_robin", "fat_tree", "ring_new", "RR/fat ratio"]
    data = [
        [
            r.m,
            f"{r.comm_time['round_robin']:.0f}",
            f"{r.comm_time['fat_tree']:.0f}",
            f"{r.comm_time['ring_new']:.0f}",
            f"{r.advantage:.2f}",
        ]
        for r in rows
    ]
    return render_table(headers, data, title="TAB-MSG (comm time per sweep, CM-5)")
