"""Fast-path/event-path equivalence suite.

The simulator's vectorised fast path must be *bit-identical* to the
event-driven reference: same X, V, labels and block indirections, same
worst off-diagonal, same rotation counters, and the same StepRecord
stream (closed-form costs == accumulated per-event costs).  The golden
suite sweeps kernels × orderings × sizes; a Hypothesis property checks
the dispatch rule (any armed injector or sanitizer pins the event
path); a planted overflow exercises the breakdown fallback, which must
delegate to the event solver and stay bitwise on the final state.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultPlan
from repro.faults.injector import FaultInjector
from repro.machine.simulator import TreeMachine
from repro.machine.topology import PerfectFatTree
from repro.orderings.registry import make_ordering, ordering_names
from repro.verify.sanitize import RuntimeSanitizer

ORDERINGS = tuple(ordering_names())

#: (kernel, block_size) configurations under parity test
CONFIGS = (
    ("reference", None),
    ("batched", None),
    ("gram", 2),
    ("gram", 4),
    ("reference", 2),
    ("batched", 4),
)


def _run(n, m, kernel, block_size, ordering, *, force_event, sweeps=2,
         sort="desc", seed=11, compute_v=True):
    b = block_size or 1
    n_slots = n // b
    machine = TreeMachine(PerfectFatTree(n_slots // 2))
    rng = np.random.default_rng(seed)
    machine.load(rng.standard_normal((m, n)), compute_v=compute_v,
                 kernel=kernel, block_size=block_size)
    machine.force_event = force_event
    ordg = make_ordering(ordering, n_slots)
    results = []
    for s in range(sweeps):
        results.append(machine.run_sweep(ordg.sweep(s), sort=sort,
                                         sweep_index=s))
    return machine, results


def _assert_parity(n, m, kernel, block_size, ordering, **kw):
    ev, ev_out = _run(n, m, kernel, block_size, ordering,
                      force_event=True, **kw)
    fa, fa_out = _run(n, m, kernel, block_size, ordering,
                      force_event=False, **kw)
    assert ev.last_sweep_path == "event"
    assert fa.last_sweep_path == "fast"
    np.testing.assert_array_equal(ev.X, fa.X)
    if ev.V is not None:
        np.testing.assert_array_equal(ev.V, fa.V)
    np.testing.assert_array_equal(ev.labels, fa.labels)
    if block_size is not None:
        np.testing.assert_array_equal(ev.block_cols, fa.block_cols)
    for (es, er, ew), (fs, fr, fw) in zip(ev_out, fa_out):
        assert ew == fw
        assert (er.applied, er.skipped, er.exchanged) == \
            (fr.applied, fr.skipped, fr.exchanged)
        assert es.steps == fs.steps  # full StepRecords, costs included


@pytest.mark.parametrize("ordering", ORDERINGS)
@pytest.mark.parametrize("kernel,block_size", CONFIGS)
def test_parity_small(ordering, kernel, block_size):
    # every ordering needs >= 8 slots; keep 8 slots at any block size
    n = 8 * (block_size or 1)
    _assert_parity(n, n + 4, kernel, block_size, ordering)


@pytest.mark.parametrize("ordering", ORDERINGS)
@pytest.mark.parametrize("kernel,block_size", CONFIGS)
def test_parity_medium(ordering, kernel, block_size):
    _assert_parity(64, 72, kernel, block_size, ordering, sweeps=1)


@pytest.mark.parametrize("ordering", ("ring_new", "fat_tree"))
@pytest.mark.parametrize("kernel,block_size",
                         (("batched", None), ("gram", 8)))
def test_parity_large(ordering, kernel, block_size):
    _assert_parity(256, 272, kernel, block_size, ordering, sweeps=1)


@pytest.mark.parametrize("sort", ("asc", None))
def test_parity_sort_conventions(sort):
    _assert_parity(32, 40, "gram", 4, "ring_new", sort=sort)
    _assert_parity(32, 40, "batched", None, "odd_even", sort=sort)


def test_parity_without_v():
    _assert_parity(32, 40, "gram", 2, "fat_tree", compute_v=False)
    _assert_parity(32, 40, "reference", None, "ring_modified",
                   compute_v=False)


def test_parity_converged_sweeps():
    """Late sweeps (sort-only steps, carried stacks never dirtied) stay
    bitwise too — the relabel-only path is exercised once the matrix is
    orthogonal."""
    _assert_parity(16, 20, "gram", 2, "ring_new", sweeps=6)
    _assert_parity(16, 20, "batched", None, "ring_new", sweeps=6)


def test_breakdown_fallback_is_bitwise():
    """A planted overflow makes the stacked Gram form non-finite; the
    fast path must materialise, delegate the step to the event solver
    (same per-pair fallback chain) and still match bit for bit."""
    n, m = 16, 20
    rng = np.random.default_rng(3)
    a = rng.standard_normal((m, n))
    a[:, 5] *= 1e200  # Gram entry overflows to inf
    out = {}
    for force in (True, False):
        machine = TreeMachine(PerfectFatTree(4))
        machine.load(a, kernel="gram", block_size=2)
        machine.force_event = force
        ordg = make_ordering("ring_new", 8)
        with np.errstate(over="ignore", invalid="ignore"):
            for s in range(2):
                machine.run_sweep(ordg.sweep(s), sweep_index=s)
        out[force] = machine
    np.testing.assert_array_equal(out[True].X, out[False].X)
    np.testing.assert_array_equal(out[True].V, out[False].V)
    np.testing.assert_array_equal(out[True].block_cols,
                                  out[False].block_cols)


def test_force_event_knob():
    machine, _ = _run(8, 12, "reference", None, "ring_new",
                      force_event=False)
    assert machine.last_sweep_path == "fast"
    machine, _ = _run(8, 12, "reference", None, "ring_new",
                      force_event=True)
    assert machine.last_sweep_path == "event"


@given(
    ordering=st.sampled_from(ORDERINGS),
    kernel_block=st.sampled_from(CONFIGS),
    guard=st.sampled_from(("injector", "sanitizer")),
)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_any_guard_forces_event_path(ordering, kernel_block, guard):
    """Fault injection and runtime sanitizing are event-path semantics:
    arming either must disable the fast path, whatever the config."""
    kernel, block_size = kernel_block
    b = block_size or 1
    n, m = 8 * b, 8 * b + 4
    n_slots = n // b
    machine = TreeMachine(PerfectFatTree(n_slots // 2))
    rng = np.random.default_rng(5)
    sanitizer = RuntimeSanitizer() if guard == "sanitizer" else None
    machine.load(rng.standard_normal((m, n)), kernel=kernel,
                 block_size=block_size, sanitizer=sanitizer)
    if guard == "injector":
        machine.install_faults(FaultInjector(FaultPlan(), n_slots // 2))
    ordg = make_ordering(ordering, n_slots)
    machine.run_sweep(ordg.sweep(0), sweep_index=0)
    assert machine.last_sweep_path == "event"
