"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_matrix(rng: np.random.Generator) -> np.ndarray:
    return rng.standard_normal((12, 8))


@pytest.fixture
def medium_matrix(rng: np.random.Generator) -> np.ndarray:
    return rng.standard_normal((24, 16))
