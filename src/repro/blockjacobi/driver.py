"""One-sided *block* Jacobi SVD: blocks of columns per leaf.

The paper's hybrid ordering already treats blocks of columns as the unit
of scheduling (Schreiber's partitioning [14]); this module generalises
the whole driver to that regime, in the spirit of Bischof's block Jacobi
[1]: the matrix is partitioned into ``2P`` column blocks of width ``b``
(leaf processor ``i`` holds blocks ``2i`` and ``2i+1``), any parallel
ordering from :mod:`repro.orderings` is run at *block* granularity, and
a "rotation" of a block pair orthogonalises all ``2b`` columns of the
two blocks against each other (a local sub-problem solved by cyclic
one-sided Jacobi sweeps).

Why it matters: with ``b`` columns per message the per-step traffic
volume grows but the number of outer steps shrinks to ``2P - 1``, so
block size trades startup cost (alpha) against bandwidth (beta) — the
same dial the hybrid ordering turns to avoid contention on the CM-5.
Convergence follows from the same threshold argument as the scalar
method: every column pair is covered once per outer sweep (within-block
and met-block pairs by the local solver, the rest by the ordering).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..core.result import SVDResult, SweepRecord
from ..orderings.base import Ordering
from ..orderings.plan import compile_schedule
from ..orderings.registry import make_ordering
from ..svd.convergence import off_norm
from ..util.errors import ConvergenceWarning
from ..util.validation import require
from .kernel import BLOCK_KERNELS, solve_block_step, solve_block_step_batch

__all__ = ["BlockJacobiOptions", "block_jacobi_svd", "block_jacobi_svd_batch"]


@dataclass(frozen=True)
class BlockJacobiOptions:
    """Tuning knobs of the block Jacobi iteration.

    ``block_size``
        Columns per block (b >= 1; b = 1 degenerates to the scalar
        method with one column per slot).
    ``tol``
        Relative orthogonality threshold, as in the scalar driver.
    ``inner_sweeps``
        Cyclic Jacobi sweeps applied to each met block pair (2 is enough
        near convergence; the outer iteration absorbs the slack).
    ``max_sweeps``
        Outer sweep bound.
    ``sort``
        Norm ordering inside the local solver (sorted output emerges at
        block granularity).
    ``kernel``
        Local block-pair solver: ``"gram"`` (BLAS-3 Gram-space fast
        path, the default), ``"batched"`` (fused gathered 2x2
        transforms) or ``"reference"`` (per-step masked rotations, the
        numerics the others are tested against) — see
        :mod:`repro.blockjacobi.kernel`.
    ``executor``
        Step-execution backend: ``"serial"``, ``"threads"`` (worker
        threads share the column buffer; each solves a disjoint subset
        of a step's independent pair subproblems — bit-identical to
        serial for any worker count) or ``"processes"`` (a persistent
        worker-process pool operating on ``multiprocessing.shared_memory``
        views of the column buffer; chunks are dispatched by bounds, not
        by pickling matrices, and the same per-chunk BLAS path keeps the
        bit-parity guarantee).  ``None`` resolves from
        ``$REPRO_EXECUTOR`` (default serial).  See
        :mod:`repro.parallel.executor`.
    ``workers``
        Workers of the ``threads``/``processes`` backends; ``None``
        resolves from ``$REPRO_WORKERS`` (default: CPU count).
    ``compute_backend``
        Batched-GEMM backend the block kernels dispatch through:
        ``"numpy"`` (default), ``"einsum"`` (bit-identical), or the
        optional ``"numba"``/``"cupy"`` (tolerance-equal, registered
        only when importable — unavailable ones fall back to numpy with
        a :class:`~repro.kernels.ComputeBackendWarning`).  ``None``
        resolves from ``$REPRO_COMPUTE_BACKEND``.  See
        :mod:`repro.kernels`.
    ``sanitize``
        Arm the runtime sanitizer (:mod:`repro.verify.sanitize`):
        per-step write-set records cross-checked against the static
        chunking, plus sweep-boundary numeric canaries.  ``None``
        resolves from ``$REPRO_SANITIZE`` (default off); a violation
        raises :class:`~repro.verify.sanitize.SanitizerError`.
    """

    block_size: int = 4
    tol: float = 1e-12
    inner_sweeps: int = 2
    max_sweeps: int = 60
    sort: str | None = "desc"
    kernel: str = "gram"
    executor: str | None = None
    workers: int | None = None
    sanitize: bool | None = None
    compute_backend: str | None = None

    def __post_init__(self) -> None:
        from ..kernels import COMPUTE_BACKENDS
        from ..parallel.executor import EXECUTORS, unknown_executor_message

        # inner_sweeps = 0 would make every local solve a no-op that
        # reports worst = 0.0, so the driver would declare convergence
        # after one sweep with a wrong result; fail loudly instead
        require(self.block_size >= 1, "block_size must be positive")
        require(self.inner_sweeps >= 1,
                f"inner_sweeps must be >= 1, got {self.inner_sweeps!r}")
        require(self.max_sweeps >= 1,
                f"max_sweeps must be >= 1, got {self.max_sweeps!r}")
        require(self.kernel in BLOCK_KERNELS,
                f"unknown block kernel {self.kernel!r}; "
                f"available: {', '.join(BLOCK_KERNELS)}")
        require(self.executor is None or self.executor in EXECUTORS,
                unknown_executor_message(self.executor))
        require(self.workers is None or self.workers >= 1,
                f"workers must be >= 1, got {self.workers!r}")
        require(self.compute_backend is None
                or self.compute_backend in COMPUTE_BACKENDS,
                f"unknown compute backend {self.compute_backend!r}; "
                f"registered: {', '.join(COMPUTE_BACKENDS)}")

    def make_executor(self):
        """Build the run's :class:`~repro.parallel.executor.StepExecutor`
        (the caller owns and closes it)."""
        from ..parallel.executor import resolve_executor

        return resolve_executor(self.executor, self.workers)

    def make_compute_backend(self):
        """Resolve the run's :class:`~repro.kernels.ComputeBackend`
        (falls back to numpy with a warning when unavailable)."""
        from ..kernels import resolve_compute_backend

        return resolve_compute_backend(self.compute_backend)

    def make_sanitizer(self):
        """Build the run's :class:`~repro.verify.sanitize.RuntimeSanitizer`,
        or ``None`` when sanitizing is off (option, else env)."""
        from ..verify.sanitize import RuntimeSanitizer, sanitize_enabled

        return RuntimeSanitizer() if sanitize_enabled(self.sanitize) else None


def block_jacobi_svd(
    a: np.ndarray,
    ordering: str | Ordering = "ring_new",
    options: BlockJacobiOptions | None = None,
    compute_uv: bool = True,
    **ordering_kwargs: object,
) -> SVDResult:
    """One-sided block Jacobi SVD of ``a`` under a block-level ordering.

    The column count must be ``2 P b`` for an integer number of leaves
    ``P`` admissible to the chosen ordering (the ordering runs on the
    ``2P`` blocks).
    """
    a = np.asarray(a, dtype=np.float64)
    require(a.ndim == 2, "matrix expected")
    m, n = a.shape
    opts = options or BlockJacobiOptions()
    b = opts.block_size
    require(b >= 1, "block_size must be positive")
    require(n % (2 * b) == 0, f"n={n} must be a multiple of 2*block_size={2 * b}")
    n_blocks = n // b
    if isinstance(ordering, Ordering):
        require(ordering.n == n_blocks, "ordering must cover the block count")
        ord_obj = ordering
    else:
        ord_obj = make_ordering(ordering, n_blocks, **ordering_kwargs)

    executor = opts.make_executor()
    backend = opts.make_compute_backend()
    # adopt the run-lifetime arrays into the executor's arena: for the
    # processes backend these become shared-memory views the workers
    # attach by name, so steps ship bounds instead of matrices
    X = executor.adopt("X", a.copy())
    V = executor.adopt("V", np.eye(n)) if compute_uv else None
    # block_cols[s] = the matrix columns currently stored in block slot s
    block_cols = np.arange(n, dtype=np.intp).reshape(n_blocks, b)

    history: list[SweepRecord] = []
    converged = False
    sweeps = 0
    sanitizer = opts.make_sanitizer()
    if sanitizer is not None:
        executor.sanitizer = sanitizer
        sanitizer.arm_reference(X)
    try:
        for sweep in range(opts.max_sweeps):
            plan = compile_schedule(ord_obj.sweep(sweep))
            worst = 0.0
            rotations = 0
            for cs in plan.steps:
                if cs.n_pairs:
                    pair_cols = block_cols[cs.pairs].reshape(cs.n_pairs, 2 * b)
                    st, mx = solve_block_step(X, V, pair_cols, opts.tol,
                                              opts.sort, opts.inner_sweeps,
                                              opts.kernel, executor=executor,
                                              sanitizer=sanitizer,
                                              compute_backend=backend)
                    worst = max(worst, mx)
                    rotations += st.applied
                if cs.has_moves:
                    # fancy assignment materialises the gather first, so
                    # the move phase keeps its snapshot semantics
                    block_cols[cs.dst] = block_cols[cs.src]
            sweeps = sweep + 1
            if sanitizer is not None:
                sanitizer.check_sweep(X, V, sweep=sweeps)
            history.append(
                SweepRecord(
                    sweep=sweeps,
                    off_norm=off_norm(X),
                    max_rel_gamma=worst,
                    rotations=rotations,
                    skipped=0,
                )
            )
            if worst <= opts.tol:
                converged = True
                break
    finally:
        # copy shared-memory views back out before the arena is freed
        X = executor.reclaim(X)
        if V is not None:
            V = executor.reclaim(V)
        executor.close()

    watchdog_msg = None
    if not converged:
        # same refusal-to-be-silent contract as the scalar driver: diagnose
        # the off-norm series and warn (see repro.svd.hestenes)
        watchdog_msg = _watchdog_message(history, opts.max_sweeps)
        warnings.warn(
            f"block Jacobi SVD did not converge: {watchdog_msg}; the result "
            "is a partial decomposition (check result.converged)",
            ConvergenceWarning, stacklevel=2)

    return _finalize_block_result(X, V, m, n, compute_uv, history,
                                  converged, sweeps, watchdog_msg)


def _watchdog_message(history: list[SweepRecord], max_sweeps: int) -> str:
    """Diagnose a non-converged run's off-norm series (see repro.faults)."""
    from ..faults.watchdog import ConvergenceWatchdog

    dog = ConvergenceWatchdog()
    for h in history:
        dog.observe(h.sweep, h.off_norm)
    return dog.escalate(max_sweeps)


def _finalize_block_result(
    X: np.ndarray,
    V: np.ndarray | None,
    m: int,
    n: int,
    compute_uv: bool,
    history: list[SweepRecord],
    converged: bool,
    sweeps: int,
    watchdog_msg: str | None,
) -> SVDResult:
    """Extract the decomposition from a finished column buffer.

    Shared by the solo and batch drivers so a batch item's result is
    produced by literally the same arithmetic as a standalone run.
    """
    norms = np.linalg.norm(X, axis=0)
    sigma_by_slot = norms.copy()
    scale = max(1.0, float(norms.max(initial=0.0)))
    diffs = np.diff(norms)
    if np.all(diffs <= 1e-9 * scale):
        emerged = "desc"
    elif np.all(diffs >= -1e-9 * scale):
        emerged = "asc"
    else:
        emerged = None
    order = np.argsort(-norms, kind="stable")
    sigma = norms[order]
    rank = int(np.count_nonzero(sigma > 1e-12 * max(scale, 1e-300)))
    if compute_uv:
        u = np.zeros((m, n))
        nz = sigma > 0
        cols = X[:, order]
        u[:, nz] = cols[:, nz] / sigma[nz]
        v = V[:, order]
    else:
        u = np.zeros((m, 0))
        v = np.zeros((n, 0))
    return SVDResult(
        u=u, sigma=sigma, v=v, rank=rank, converged=converged,
        sweeps=sweeps, rotations=sum(h.rotations for h in history),
        sigma_by_slot=sigma_by_slot, emerged_sorted=emerged, history=history,
        watchdog=watchdog_msg,
    )


def block_jacobi_svd_batch(
    stack: np.ndarray,
    ordering: str | Ordering = "ring_new",
    options: BlockJacobiOptions | None = None,
    compute_uv: bool = True,
    **ordering_kwargs: object,
) -> list[SVDResult]:
    """Block Jacobi SVD of a ``(B, m, n)`` stack of independent problems.

    Every problem runs the same ordering, so the schedule is compiled
    once per sweep (the plan-cache hit is shared by all ``B`` items) and
    each step's local solves fuse the batch into one problem-axis
    super-batch (:func:`~repro.blockjacobi.kernel.solve_block_step_batch`).
    Per-item convergence masks drop finished matrices out of later
    sweeps.  Results are **bit-identical** to calling
    :func:`block_jacobi_svd` on each slice with the same options.

    The executor (when ``workers > 1``) chunks the *batch axis*: items,
    not GEMM rows, are the unit of parallel work.  With the sanitizer
    armed, each item gets its own sweep-boundary canaries (SAN002/003);
    the per-step write-set protocol (SAN001) covers the solo path and is
    not armed here — the batch path is instead pinned to the solo path
    bit-for-bit by the conformance suite.
    """
    stack = np.asarray(stack, dtype=np.float64)
    require(stack.ndim == 3, "stack of matrices expected")
    nitems, m, n = stack.shape
    require(nitems >= 1, "batch must contain at least one matrix")
    opts = options or BlockJacobiOptions()
    b = opts.block_size
    require(n % (2 * b) == 0, f"n={n} must be a multiple of 2*block_size={2 * b}")
    n_blocks = n // b
    if isinstance(ordering, Ordering):
        require(ordering.n == n_blocks, "ordering must cover the block count")
        ord_obj = ordering
    else:
        ord_obj = make_ordering(ordering, n_blocks, **ordering_kwargs)

    executor = opts.make_executor()
    backend = opts.make_compute_backend()
    Xs = executor.adopt("Xs", stack.copy())
    Vs = executor.adopt(
        "Vs", np.broadcast_to(np.eye(n), (nitems, n, n)).copy()
    ) if compute_uv else None
    # the block trajectory is data-independent, hence shared by all items
    block_cols = np.arange(n, dtype=np.intp).reshape(n_blocks, b)

    histories: list[list[SweepRecord]] = [[] for _ in range(nitems)]
    converged = np.zeros(nitems, dtype=bool)
    sweeps_used = np.zeros(nitems, dtype=np.intp)
    active = np.arange(nitems, dtype=np.intp)
    sanitizers = None
    if opts.make_sanitizer() is not None:
        from ..verify.sanitize import RuntimeSanitizer

        sanitizers = [RuntimeSanitizer() for _ in range(nitems)]
        for i in range(nitems):
            sanitizers[i].arm_reference(Xs[i])
    try:
        for sweep in range(opts.max_sweeps):
            if active.size == 0:
                break
            plan = compile_schedule(ord_obj.sweep(sweep))
            worst = np.zeros(active.size)
            rotations = np.zeros(active.size, dtype=np.intp)
            for cs in plan.steps:
                if cs.n_pairs:
                    pair_cols = block_cols[cs.pairs].reshape(cs.n_pairs, 2 * b)
                    ap, wo = solve_block_step_batch(
                        Xs, Vs, active, pair_cols, opts.tol, opts.sort,
                        opts.inner_sweeps, opts.kernel, executor=executor,
                        compute_backend=backend)
                    worst = np.maximum(worst, wo)
                    rotations += ap
                if cs.has_moves:
                    block_cols[cs.dst] = block_cols[cs.src]
            for j, i in enumerate(active):
                sweeps_used[i] = sweep + 1
                if sanitizers is not None:
                    sanitizers[i].check_sweep(
                        Xs[i], None if Vs is None else Vs[i], sweep=sweep + 1)
                histories[i].append(
                    SweepRecord(
                        sweep=sweep + 1,
                        off_norm=off_norm(Xs[i]),
                        max_rel_gamma=float(worst[j]),
                        rotations=int(rotations[j]),
                        skipped=0,
                    )
                )
            done = worst <= opts.tol
            converged[active[done]] = True
            active = active[~done]
    finally:
        Xs = executor.reclaim(Xs)
        if Vs is not None:
            Vs = executor.reclaim(Vs)
        executor.close()

    watchdogs: list[str | None] = [None] * nitems
    stuck = np.flatnonzero(~converged)
    if stuck.size:
        for i in stuck:
            watchdogs[i] = _watchdog_message(histories[i], opts.max_sweeps)
        warnings.warn(
            f"block Jacobi SVD batch: {stuck.size} of {nitems} matrices did "
            f"not converge (first: item {int(stuck[0])}: {watchdogs[stuck[0]]}); "
            "partial decompositions returned (check result.converged per item)",
            ConvergenceWarning, stacklevel=2)

    return [
        _finalize_block_result(
            Xs[i], None if Vs is None else Vs[i], m, n, compute_uv,
            histories[i], bool(converged[i]), int(sweeps_used[i]),
            watchdogs[i])
        for i in range(nitems)
    ]
