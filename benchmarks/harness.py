"""Standalone experiment harness: regenerate every figure and table.

Run:  python benchmarks/harness.py            (all experiments)
      python benchmarks/harness.py FIG7 TAB-CONT   (a selection)

The output of this script is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys

from repro.analysis import (
    audit_all,
    crossover_level,
    crossover_table,
    render_crossover_table,
    contention_table,
    convergence_table,
    message_size_table,
    render_message_size_table,
    render_scaling_table,
    scaling_table,
    fig1_ring_style,
    fig1_round_robin,
    fig2_basic_two_block,
    fig3_two_block_size4,
    fig4_basic_modules,
    fig5_merge_scheme,
    fig6_four_block_eight,
    fig7_ring_ordering,
    fig8_modified_ring,
    fig9_hybrid_sixteen,
    per_level_contention,
    render_comm_table,
    render_contention_table,
    render_convergence_table,
    render_timing_table,
    step_table,
    tab_comm,
    tab_time,
)
from repro.machine import make_topology
from repro.orderings import FatTreeOrdering, LLBOrdering, make_ordering, meeting_gap_profile
from repro.util.formatting import render_step_table


def show(schedule, title):
    print(render_step_table(step_table(schedule), title=title))
    print(f"      layout after sweep: {schedule.final_layout()}\n")


def run_fig1():
    show(fig1_round_robin(8), "FIG1(b): round-robin ordering, n=8")
    show(fig1_ring_style(8), "FIG1(a): odd-even (ring-style) ordering, n=8")


def run_fig2():
    show(fig2_basic_two_block(), "FIG2: two-block basic module")


def run_fig3():
    show(fig3_two_block_size4(), "FIG3: two-block ordering of size 4")


def run_fig4():
    a, b = fig4_basic_modules()
    show(a, "FIG4(a): four-index module (order preserving)")
    show(b, "FIG4(b): four-index module (3,4 reversed)")


def run_fig5():
    print("FIG5: merge procedure scheme, n=16")
    for s, stage in enumerate(fig5_merge_scheme(16), start=1):
        print(f"   stage {s}: {stage}")
    print()


def run_fig6():
    show(fig6_four_block_eight(), "FIG6: four-block ordering, 8 indices")


def run_fig7():
    sched, eq = fig7_ring_ordering(8)
    show(sched, "FIG7(a): new ring ordering, n=8")
    print(f"      equivalence to round-robin verified: {eq.verified}")
    print(f"      relabelling: {eq.relabelling}\n")


def run_fig8():
    sched, eq = fig8_modified_ring(8)
    show(sched, "FIG8(a): modified ring ordering, n=8")
    print(f"      equivalence verified: {eq.verified}\n")


def run_fig9():
    sched = fig9_hybrid_sixteen()
    show(sched, "FIG9: hybrid ordering, 16 indices, 4 groups")
    print(f"      global phases after steps: {sched.notes['superstep_boundaries']}\n")


def run_tab_comm():
    for n, g in ((32, 4), (128, 16)):
        print(render_comm_table(tab_comm(n, **{"hybrid": {"n_groups": g}})))
        print()


def run_tab_cont():
    print(render_contention_table(contention_table(64, **{"hybrid": {"n_groups": 8}})))
    print()
    print("hybrid block-size ablation on CM-5 (n=64):")
    topo = make_topology("cm5", 32)
    for g in (2, 4, 8, 16):
        K = 64 // (2 * g)
        prof = per_level_contention(make_ordering("hybrid", 64, n_groups=g).sweep(0), topo)
        print(f"   block={K:2d} columns: worst contention {max(prof.values()):.2f}")
    print()


def run_tab_time():
    print(render_timing_table(tab_time(64, **{"hybrid": {"n_groups": 8}})))
    print()


def run_tab_conv():
    for kind in ("gaussian", "graded"):
        rows = convergence_table(n=32, runs=3, kind=kind, **{"hybrid": {"n_groups": 4}})
        print(render_convergence_table(rows).replace("TAB-CONV", f"TAB-CONV [{kind}]"))
        print()


def run_tab_llb():
    fat = meeting_gap_profile(FatTreeOrdering(32), n_sweeps=4)
    llb = meeting_gap_profile(LLBOrdering(32), n_sweeps=4)
    print("TAB-SWEEP: rotation-gap profiles (steps between re-rotations of a pair)")
    print(f"   fat_tree: {fat}")
    print(f"   llb     : {llb}")
    print()


def run_tab_scale():
    rows = scaling_table(sizes=[16, 32, 64, 128], m=96)
    print(render_scaling_table(rows))
    print()


def run_tab_msg():
    rows = message_size_table(64, sizes=[8, 32, 128, 512])
    print(render_message_size_table(rows))
    print()


def run_tab_cross():
    rows = crossover_table(64, 96)
    print(render_crossover_table(rows))
    lvl = crossover_level(rows)
    print(f"   fat-tree first matches hybrid at skinny-above level: "
          f"{lvl if lvl is not None else 'parity only at the perfect tree'}")
    print()


def run_tab_opt():
    print("TAB-OPT: step-count optimality audit (n=32)")
    for a in audit_all(32, hybrid={"n_groups": 4}):
        mark = "optimal" if a.is_optimal else f"+{a.steps - a.lower_bound} step(s)"
        print(f"   {a.ordering:13s} steps={a.steps:3d} bound={a.lower_bound:3d} "
              f"idle slots={a.idle_pair_slots:3d}  {mark}")
    print()


def run_tab_batch():
    import time

    import numpy as np

    from repro import svd, svd_batch

    print("TAB-BATCH: many-matrix throughput, svd_batch vs looped svd() "
          "(n=16, b=4, gram, ring_new)")
    kw = dict(ordering="ring_new", kernel="gram", block_size=4)
    rng = np.random.default_rng(2024)
    svd_batch(rng.standard_normal((4, 24, 16)), **kw)  # warm caches
    print(f"   {'batch':>6s} {'loop s':>9s} {'batch s':>9s} "
          f"{'loop m/s':>9s} {'batch m/s':>10s} {'speedup':>8s}")
    for size in (10, 100, 1000):
        stack = rng.standard_normal((size, 24, 16))
        t0 = time.perf_counter()
        for i in range(size):
            svd(stack[i], **kw)
        loop_s = time.perf_counter() - t0
        br = svd_batch(stack, **kw)
        assert br.converged
        print(f"   {size:6d} {loop_s:9.3f} {br.elapsed_s:9.3f} "
              f"{size / loop_s:9.1f} {br.matrices_per_sec:10.1f} "
              f"{loop_s / br.elapsed_s:7.1f}x")
    print()


EXPERIMENTS = {
    "FIG1": run_fig1,
    "FIG2": run_fig2,
    "FIG3": run_fig3,
    "FIG4": run_fig4,
    "FIG5": run_fig5,
    "FIG6": run_fig6,
    "FIG7": run_fig7,
    "FIG8": run_fig8,
    "FIG9": run_fig9,
    "TAB-COMM": run_tab_comm,
    "TAB-CONT": run_tab_cont,
    "TAB-TIME": run_tab_time,
    "TAB-CONV": run_tab_conv,
    "TAB-SWEEP": run_tab_llb,
    "TAB-SCALE": run_tab_scale,
    "TAB-MSG": run_tab_msg,
    "TAB-OPT": run_tab_opt,
    "TAB-CROSS": run_tab_cross,
    "TAB-BATCH": run_tab_batch,
}


def main(argv: list[str]) -> int:
    wanted = argv or list(EXPERIMENTS)
    for key in wanted:
        if key not in EXPERIMENTS:
            print(f"unknown experiment {key!r}; available: {', '.join(EXPERIMENTS)}")
            return 2
        print("=" * 72)
        print(f"== {key}")
        print("=" * 72)
        EXPERIMENTS[key]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
