"""Autotuner tests: deterministic pruning, profiles, API fill, CLI.

The runner is exercised exclusively through injected fake timers, so
every assertion about elimination order is exact (no wall-clock in the
loop); the one end-to-end CLI run uses a tiny quick-space shape.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.tune import (Candidate, DEFAULT_CANDIDATE, SCHEMA,
                        backend_catalogue, candidate_space, load_profile,
                        lookup_entry, profile_options, profile_path,
                        save_profile, tune, validate_profile)


def _fake_timer(costs):
    """Timer charging fixed per-label seconds, scaled down per repeat
    count so re-timed rounds stay distinguishable in the trial log."""
    calls = []

    def timer(candidate, m, n, batch, repeats):
        calls.append((candidate.label(), repeats))
        return costs[candidate.label()]

    timer.calls = calls
    return timer


_ALL_OK = {"executors": {"serial": None, "threads": None, "processes": None},
           "compute_backends": {"numpy": None, "einsum": None,
                                "numba": None, "cupy": None}}


class TestSpace:
    def test_default_is_first(self):
        space = candidate_space(72, 64, catalogue=_ALL_OK)
        assert space[0] == DEFAULT_CANDIDATE
        assert len(space) == len(set(space))

    def test_availability_filter_skips_unavailable(self):
        crippled = {"executors": {"serial": None,
                                  "threads": "ImportError: no threads",
                                  "processes": "ImportError: no shm"},
                    "compute_backends": {"numpy": None,
                                         "einsum": "broken",
                                         "numba": "missing",
                                         "cupy": "missing"}}
        space = candidate_space(72, 64, catalogue=crippled)
        assert all(c.executor is None for c in space)
        assert all(c.compute_backend is None for c in space)
        rich = candidate_space(72, 64, catalogue=_ALL_OK)
        assert any(c.executor == "processes" for c in rich)
        assert any(c.compute_backend == "cupy" for c in rich)

    def test_block_sizes_keep_eight_slots(self):
        for c in candidate_space(600, 512, catalogue=_ALL_OK):
            if c.block_size is not None:
                assert 512 % c.block_size == 0
                assert 512 // c.block_size >= 8

    def test_quick_space_is_small(self):
        space = candidate_space(72, 64, quick=True, catalogue=_ALL_OK)
        assert DEFAULT_CANDIDATE in space
        assert len(space) <= 5

    def test_scalar_candidate_rejects_block_knobs(self):
        with pytest.raises(ValueError, match="scalar candidates"):
            Candidate(kernel="batched", executor="threads")

    def test_catalogue_shape(self):
        cat = backend_catalogue()
        assert set(cat) == {"executors", "compute_backends"}
        assert cat["executors"]["serial"] is None
        json.dumps(cat)  # must be JSON-able for the backends subcommand


class TestRunner:
    def test_pruning_order_is_deterministic(self):
        cands = (DEFAULT_CANDIDATE,
                 Candidate(kernel="batched", ordering="ring_new"),
                 Candidate(kernel="gram", block_size=8, ordering="ring_new"),
                 Candidate(kernel="gram", block_size=4, ordering="ring_new"))
        timer = _fake_timer({"reference/fat_tree": 4.0,
                             "batched/ring_new": 2.0,
                             "gram-b8/ring_new": 1.0,
                             "gram-b4/ring_new": 3.0})
        result = tune(72, 64, candidates=cands, timer=timer,
                      repeats_schedule=(1, 3, 5))
        assert result.winner.label() == "gram-b8/ring_new"
        # round 0: all 4 timed at 1 repeat, slowest half pruned
        r0 = [t for t in result.trials if t.round_index == 0]
        assert [(t.candidate.label(), t.repeats, t.kept) for t in r0] == [
            ("reference/fat_tree", 1, False),
            ("batched/ring_new", 1, True),
            ("gram-b8/ring_new", 1, True),
            ("gram-b4/ring_new", 1, False),
        ]
        # round 1: the two survivors at 3 repeats; round 2: winner at 5
        r1 = [t for t in result.trials if t.round_index == 1]
        assert sorted(t.candidate.label() for t in r1) == \
            ["batched/ring_new", "gram-b8/ring_new"]
        assert all(t.repeats == 3 for t in r1)
        assert result.repeats_final == 5

    def test_default_retimed_at_final_quality_when_pruned(self):
        cands = (DEFAULT_CANDIDATE,
                 Candidate(kernel="batched", ordering="ring_new"))
        timer = _fake_timer({"reference/fat_tree": 9.0,
                             "batched/ring_new": 1.0})
        result = tune(72, 64, candidates=cands, timer=timer,
                      repeats_schedule=(1, 5))
        assert result.default_median_s == 9.0
        assert result.speedup == pytest.approx(9.0)
        # the re-time happened at the final repeat count
        assert ("reference/fat_tree", 5) in timer.calls

    def test_ties_resolve_by_candidate_order(self):
        cands = (DEFAULT_CANDIDATE,
                 Candidate(kernel="batched", ordering="fat_tree"),
                 Candidate(kernel="batched", ordering="ring_new"))
        timer = _fake_timer({"reference/fat_tree": 1.0,
                             "batched/fat_tree": 1.0,
                             "batched/ring_new": 1.0})
        result = tune(72, 64, candidates=cands, timer=timer,
                      repeats_schedule=(1,))
        assert result.winner == DEFAULT_CANDIDATE
        assert result.speedup == 1.0

    def test_rejects_empty_schedule(self):
        with pytest.raises(ValueError, match="repeats_schedule"):
            tune(72, 64, candidates=(DEFAULT_CANDIDATE,),
                 timer=_fake_timer({"reference/fat_tree": 1.0}),
                 repeats_schedule=())


class TestProfile:
    def _result(self, **kw):
        timer = _fake_timer({"reference/fat_tree": 4.0,
                             "gram-b8/ring_new": 1.0})
        return tune(kw.pop("m", 72), kw.pop("n", 64), kw.pop("batch", None),
                    candidates=(DEFAULT_CANDIDATE,
                                Candidate(kernel="gram", block_size=8,
                                          ordering="ring_new")),
                    timer=timer, repeats_schedule=(1, 3), **kw)

    def test_round_trip(self, tmp_path):
        path = profile_path(tmp_path, "testhost")
        assert path.name == "PROFILE_testhost.json"
        data = save_profile(self._result(), path)
        assert data["schema"] == SCHEMA
        loaded = load_profile(path)
        entry = lookup_entry(loaded, 72, 64)
        assert entry["options"]["kernel"] == "gram"
        assert entry["options"]["block_size"] == 8
        assert entry["speedup"] == pytest.approx(4.0)
        opts = profile_options(path, 72, 64)
        assert opts == {"ordering": "ring_new", "kernel": "gram",
                        "block_size": 8, "executor": None, "workers": None,
                        "compute_backend": None}

    def test_merge_keeps_other_shapes(self, tmp_path):
        path = profile_path(tmp_path, "h")
        save_profile(self._result(), path)
        save_profile(self._result(m=40, n=32), path)
        save_profile(self._result(), path)  # same shape again: replaced
        data = load_profile(path)
        assert [(e["m"], e["n"]) for e in data["entries"]] == \
            [(40, 32), (72, 64)]

    def test_nearest_shape_lookup(self, tmp_path):
        path = profile_path(tmp_path, "h")
        save_profile(self._result(), path)            # 72x64
        save_profile(self._result(m=40, n=32), path)  # 40x32
        assert lookup_entry(path, 70, 60)["n"] == 64
        assert lookup_entry(path, 36, 30)["n"] == 32
        # batch distance participates
        save_profile(self._result(m=40, n=32, batch=100), path)
        assert lookup_entry(path, 40, 32, batch=80)["batch"] == 100
        assert lookup_entry(path, 40, 32)["batch"] is None

    def test_stale_schema_rejected(self, tmp_path):
        path = tmp_path / "PROFILE_old.json"
        path.write_text(json.dumps({"schema": "repro.tune/0", "entries": []}))
        with pytest.raises(ValueError, match="repro.tune/0"):
            load_profile(path)
        # refusing to clobber a stale file keeps its consumers honest
        with pytest.raises(ValueError, match="repro.tune/0"):
            save_profile(self._result(), path)

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_profile(["not", "a", "profile"])
        with pytest.raises(ValueError, match="entries"):
            validate_profile({"schema": SCHEMA})
        with pytest.raises(ValueError, match="unknown knobs"):
            validate_profile({"schema": SCHEMA, "entries": [
                {"m": 8, "n": 8, "batch": None,
                 "options": {"kernel": "gram", "warp_drive": 11}}]})

    def test_inconsistent_scalar_entry_rejected(self):
        data = {"schema": SCHEMA, "entries": [
            {"m": 8, "n": 8, "batch": None,
             "options": {"ordering": "ring_new", "kernel": "batched",
                         "block_size": None, "executor": "threads",
                         "workers": 2, "compute_backend": None}}]}
        validate_profile(data)  # structurally fine ...
        with pytest.raises(ValueError, match="scalar candidates"):
            profile_options(data, 8, 8)  # ... semantically caught on use


class TestApiFill:
    PROFILE = {"schema": SCHEMA, "entries": [
        {"m": 40, "n": 32, "batch": None,
         "options": {"ordering": "ring_new", "kernel": "gram",
                     "block_size": 4, "executor": None, "workers": None,
                     "compute_backend": None}}]}

    def test_profile_fills_unset_options(self):
        from repro import svd

        a = np.random.default_rng(7).standard_normal((40, 32))
        tuned = svd(a, profile=self.PROFILE)
        plain = svd(a, ordering="ring_new", kernel="gram", block_size=4)
        np.testing.assert_array_equal(tuned.sigma, plain.sigma)

    def test_explicit_arguments_beat_profile(self):
        from repro import svd

        a = np.random.default_rng(7).standard_normal((40, 32))
        r = svd(a, ordering="odd_even", kernel="reference",
                profile=self.PROFILE)
        plain = svd(a, ordering="odd_even", kernel="reference")
        np.testing.assert_array_equal(r.sigma, plain.sigma)

    def test_env_profile(self, tmp_path, monkeypatch):
        from repro import svd

        path = tmp_path / "PROFILE_env.json"
        path.write_text(json.dumps(self.PROFILE))
        monkeypatch.setenv("REPRO_PROFILE", str(path))
        a = np.random.default_rng(7).standard_normal((40, 32))
        tuned = svd(a)
        plain = svd(a, ordering="ring_new", kernel="gram", block_size=4)
        np.testing.assert_array_equal(tuned.sigma, plain.sigma)

    def test_batch_fill_matches_loop(self):
        from repro import svd, svd_batch

        stack = np.random.default_rng(9).standard_normal((3, 40, 32))
        br = svd_batch(stack, profile=self.PROFILE)
        for i in range(3):
            ref = svd(stack[i], ordering="ring_new", kernel="gram",
                      block_size=4)
            np.testing.assert_array_equal(br[i].sigma, ref.sigma)


class TestCli:
    def test_dry_run_json(self, capsys):
        assert main(["tune", "--m", "72", "--n", "64", "--dry-run",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["candidates"][0]["kernel"] == "reference"
        assert "catalogue" in doc

    def test_backends_json(self, capsys):
        assert main(["backends", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["executors"]["serial"] is None

    def test_quick_tune_writes_profile(self, tmp_path, capsys):
        code = main(["tune", "--m", "16", "--n", "8", "--quick",
                     "--out", str(tmp_path), "--host", "ci", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        data = load_profile(tmp_path / "PROFILE_ci.json")
        assert data["entries"][0]["options"] == doc["winner"]

    def test_usage_errors(self, capsys):
        assert main(["tune", "--m", "4", "--n", "8"]) == 2
        assert main(["tune", "--m", "16", "--n", "8", "--batch", "0"]) == 2
        assert main(["tune", "--m", "16", "--n", "8", "--slack", "0"]) == 2
