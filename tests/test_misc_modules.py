"""Unit tests for formatting, convergence measures and distribution helpers."""

import numpy as np
import pytest

from repro.parallel.distribution import (
    leaf_layout,
    next_admissible_width,
    pad_columns,
)
from repro.svd.convergence import off_norm, quadratic_rate_ok, relative_off
from repro.util.formatting import render_pairs, render_step_table, render_table


class TestFormatting:
    def test_render_pairs(self):
        assert render_pairs([(1, 2), (3, 4)]) == "(1 2)(3 4)"

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len({len(line) for line in lines}) == 1  # equal width

    def test_render_table_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_render_step_table_levels(self):
        out = render_step_table([(1, [(1, 2)], "level 1"), (2, [(1, 3)], "")])
        assert "level 1" in out
        assert "(1 3)" in out


class TestConvergenceMeasures:
    def test_off_norm_zero_for_orthogonal(self):
        assert off_norm(np.eye(4)) == 0.0

    def test_off_norm_positive(self, rng):
        assert off_norm(rng.standard_normal((6, 4))) > 0.0

    def test_relative_off_scale_invariant(self, rng):
        X = rng.standard_normal((8, 4))
        assert relative_off(X) == pytest.approx(relative_off(10.0 * X))

    def test_relative_off_handles_zero_columns(self):
        X = np.zeros((4, 3))
        X[0, 0] = 1.0
        assert relative_off(X) == 0.0

    def test_quadratic_rate_detects_quadratic(self):
        seq = [1.0, 0.5, 1e-3, 1e-6, 1e-12]
        assert quadratic_rate_ok(seq)

    def test_quadratic_rate_trivial_sequences(self):
        assert quadratic_rate_ok([])
        assert quadratic_rate_ok([1e-15])


class TestDistribution:
    def test_next_admissible_power_of_two(self):
        assert next_admissible_width(5) == 8
        assert next_admissible_width(8) == 8
        assert next_admissible_width(3) == 4
        assert next_admissible_width(2) == 4  # tree orderings need >= 4

    def test_next_admissible_even(self):
        assert next_admissible_width(5, power_of_two=False) == 6
        assert next_admissible_width(6, power_of_two=False) == 6

    def test_pad_preserves_content(self, rng):
        a = rng.standard_normal((6, 5))
        padded, orig = pad_columns(a)
        assert orig == 5
        assert np.array_equal(padded[:, :5], a)

    def test_pad_copy_semantics(self, rng):
        a = rng.standard_normal((6, 8))
        padded, _ = pad_columns(a)
        padded[0, 0] = 999.0
        assert a[0, 0] != 999.0

    def test_leaf_layout(self):
        assert leaf_layout(6) == [(0, 0), (0, 1), (1, 2), (1, 3), (2, 4), (2, 5)]
