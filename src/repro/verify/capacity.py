"""Static link-capacity (contention) analysis of a schedule on a topology.

For every communication phase the analyzer routes each inter-leaf move
with :func:`repro.machine.routing.route_phase` — the same router the
machine simulator charges — and flags any channel whose load exceeds
its capacity (rule CAP003).  This is the static counterpart of
Section 5's measurement: the fat-tree ordering oversubscribes the
skinny channels of a CM-5-like tree, the hybrid ordering never
oversubscribes any channel, and the ring orderings are contention-free
even on an ordinary binary tree.

Because the dynamic analysis in :mod:`repro.analysis.contention`
computes the same quantity independently (its own path walk and load
aggregation), :func:`crosscheck_dynamic` compares the two per-level
profiles and raises CAP001 on any disagreement — a self-check that
keeps the static gate honest against drift in either implementation.
"""

from __future__ import annotations

from collections import defaultdict

from ..machine.topology import TreeTopology
from ..orderings.plan import CompiledStep, compile_schedule
from ..orderings.schedule import Schedule
from .diagnostics import Diagnostic

__all__ = ["check_capacity", "static_level_contention", "crosscheck_dynamic"]


def _oob_leaves(cs: CompiledStep, n_leaves: int) -> list[int]:
    """Move endpoints of a compiled step outside the topology's leaves.

    The plan lowers any *well-formed* schedule (slots validated against
    ``schedule.n``), but the verifier may pair it with a smaller
    topology — those endpoints must be flagged, not routed.
    """
    leaves = cs.move_leaves
    mask = (leaves < 0) | (leaves >= n_leaves)
    return sorted({int(leaf) for leaf in leaves[mask.any(axis=1)].ravel()
                   if not 0 <= leaf < n_leaves})


def check_capacity(schedule: Schedule, topology: TreeTopology) -> list[Diagnostic]:
    """CAP002/CAP003 diagnostics for every phase of a sweep.

    Consumes the compiled plan (:mod:`repro.orderings.plan`): the
    schedule is lowered once and the per-step routing outcome is
    memoised on the plan, shared with the simulator's healthy path.
    """
    plan = compile_schedule(schedule)
    out: list[Diagnostic] = []
    for step_no, cs in enumerate(plan.steps, start=1):
        if not cs.has_moves:
            continue
        oob = _oob_leaves(cs, topology.n_leaves)
        if oob:
            out.append(Diagnostic(
                rule="CAP002", step=step_no,
                message=f"leaf endpoint(s) {oob} outside the "
                        f"{topology.n_leaves}-leaf topology {topology.name}",
                details=(("leaves", tuple(oob)),),
            ))
            continue
        phase = plan.route_phase(topology, step_no - 1)
        for ch, load in sorted(
            phase.channel_loads.items(),
            key=lambda kv: (kv[0].level, kv[0].index, kv[0].up),
        ):
            cap = topology.capacity(ch.level)
            if load > cap:
                out.append(Diagnostic(
                    rule="CAP003", step=step_no,
                    message=f"channel level {ch.level} subtree {ch.index} "
                            f"({'up' if ch.up else 'down'}) carries {load} "
                            f"messages, capacity {cap} "
                            f"(contention {load / cap:.2f})",
                    details=(("level", ch.level), ("index", ch.index),
                             ("up", ch.up), ("load", load), ("capacity", cap)),
                ))
    return out


def static_level_contention(
    schedule: Schedule, topology: TreeTopology
) -> dict[int, float]:
    """Worst per-level ``load/capacity`` over all phases, routed statically."""
    plan = compile_schedule(schedule)
    worst: dict[int, float] = defaultdict(float)
    for i, cs in enumerate(plan.steps):
        if not cs.has_moves:
            continue
        if _oob_leaves(cs, topology.n_leaves):
            continue
        phase = plan.route_phase(topology, i)
        for ch, load in phase.channel_loads.items():
            f = load / topology.capacity(ch.level)
            worst[ch.level] = max(worst[ch.level], f)
    return dict(sorted(worst.items()))


def crosscheck_dynamic(
    schedule: Schedule, topology: TreeTopology
) -> list[Diagnostic]:
    """CAP001: static per-level contention must equal the dynamic analysis.

    Imports :mod:`repro.analysis.contention` lazily so that the verify
    package stays importable without pulling the full experiment
    harness in.
    """
    from ..analysis.contention import per_level_contention

    static = static_level_contention(schedule, topology)
    dynamic = per_level_contention(schedule, topology)
    out: list[Diagnostic] = []
    for level in sorted(set(static) | set(dynamic)):
        s, d = static.get(level, 0.0), dynamic.get(level, 0.0)
        if s != d:
            out.append(Diagnostic(
                rule="CAP001",
                message=f"level {level}: static contention {s:.4f} != "
                        f"dynamic contention {d:.4f}",
                details=(("level", level), ("static", s), ("dynamic", d)),
            ))
    return out
