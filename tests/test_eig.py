"""Tests of the two-sided Jacobi symmetric eigensolver."""

import numpy as np
import pytest

from repro.eig import (
    EigOptions,
    gram_eigh,
    gram_eigh_batched,
    jacobi_eigh,
    symmetric_off_norm,
)

ORDERINGS = ["fat_tree", "round_robin", "ring_new", "odd_even", "hybrid"]


def random_symmetric(n, rng):
    a = rng.standard_normal((n, n))
    return (a + a.T) / 2.0


def kwargs_for(name):
    return {"n_groups": 4} if name == "hybrid" else {}


class TestCorrectness:
    @pytest.mark.parametrize("name", ORDERINGS)
    def test_matches_numpy_eigh(self, rng, name):
        a = random_symmetric(16, rng)
        r = jacobi_eigh(a, ordering=name, **kwargs_for(name))
        assert r.converged
        ref = np.linalg.eigvalsh(a)[::-1]
        assert np.max(np.abs(r.w - ref)) < 1e-11

    def test_eigenvectors_orthogonal(self, rng):
        a = random_symmetric(16, rng)
        r = jacobi_eigh(a)
        assert np.linalg.norm(r.v.T @ r.v - np.eye(16)) < 1e-11

    def test_reconstruction(self, rng):
        a = random_symmetric(16, rng)
        r = jacobi_eigh(a)
        assert np.linalg.norm(r.reconstruct() - a) < 1e-10

    def test_eigen_equation(self, rng):
        a = random_symmetric(8, rng)
        r = jacobi_eigh(a)
        for k in range(8):
            assert np.linalg.norm(a @ r.v[:, k] - r.w[k] * r.v[:, k]) < 1e-10

    def test_negative_eigenvalues_kept(self, rng):
        # indefinite matrix: w contains both signs, still sorted descending
        a = random_symmetric(16, rng)
        r = jacobi_eigh(a)
        assert (r.w > 0).any() and (r.w < 0).any()
        assert np.all(np.diff(r.w) <= 1e-12)

    def test_diagonal_matrix_immediate(self):
        a = np.diag([5.0, 3.0, 2.0, 1.0])
        r = jacobi_eigh(a)
        assert r.sweeps == 1 and r.rotations == 0
        assert np.allclose(r.w, [5.0, 3.0, 2.0, 1.0])

    def test_sort_asc(self, rng):
        a = random_symmetric(8, rng)
        r = jacobi_eigh(a, options=EigOptions(sort="asc"))
        assert np.all(np.diff(r.w) >= -1e-12)

    def test_repeated_eigenvalues(self):
        # multiplicity: I + rank-1 bump
        n = 8
        u = np.ones((n, 1)) / np.sqrt(n)
        a = np.eye(n) + 3.0 * (u @ u.T)
        r = jacobi_eigh(a)
        assert abs(r.w[0] - 4.0) < 1e-12
        assert np.allclose(r.w[1:], 1.0, atol=1e-12)


class TestValidationAndBehaviour:
    def test_rejects_nonsymmetric(self, rng):
        with pytest.raises(ValueError):
            jacobi_eigh(rng.standard_normal((8, 8)))

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ValueError):
            jacobi_eigh(rng.standard_normal((8, 6)))

    def test_off_norm_decreases(self, rng):
        a = random_symmetric(16, rng)
        r = jacobi_eigh(a)
        offs = r.off_history
        assert offs[-1] < 1e-8 * max(offs)
        assert all(b <= a_ + 1e-9 for a_, b in zip(offs, offs[1:]))

    def test_sweep_budget(self, rng):
        a = random_symmetric(16, rng)
        r = jacobi_eigh(a, options=EigOptions(max_sweeps=1))
        assert r.sweeps == 1 and not r.converged

    def test_compute_v_false(self, rng):
        a = random_symmetric(8, rng)
        r = jacobi_eigh(a, compute_v=False)
        assert r.v.shape == (8, 0)
        ref = np.linalg.eigvalsh(a)[::-1]
        assert np.max(np.abs(r.w - ref)) < 1e-11

    def test_symmetric_off_norm(self):
        assert symmetric_off_norm(np.eye(3)) == 0.0
        a = np.array([[1.0, 2.0], [2.0, 1.0]])
        assert symmetric_off_norm(a) == pytest.approx(np.sqrt(8.0))

    def test_ordering_object_accepted(self, rng):
        from repro.orderings import FatTreeOrdering

        a = random_symmetric(16, rng)
        r = jacobi_eigh(a, ordering=FatTreeOrdering(16))
        assert r.converged

    def test_equivalent_orderings_converge_alike(self, rng):
        a = random_symmetric(16, rng)
        s_ring = jacobi_eigh(a, ordering="ring_new").sweeps
        s_rr = jacobi_eigh(a, ordering="round_robin").sweeps
        assert abs(s_ring - s_rr) <= 2


def random_gram(k, rng):
    y = rng.standard_normal((k + 4, k))
    return y.T @ y


class TestGramEigh:
    """The in-place cyclic solver behind the gram block kernel."""

    def test_diagonalizes_and_matches_eigh(self, rng):
        g = random_gram(8, rng)
        ref = np.sort(np.linalg.eigvalsh(g))[::-1]
        W, rotations, sweeps, converged = gram_eigh(g)
        assert converged and rotations > 0 and sweeps >= 1
        # g was overwritten with W^T g W, which must now be diagonal
        off = g - np.diag(np.diag(g))
        assert np.max(np.abs(off)) <= 1e-11 * ref[0]
        assert np.max(np.abs(np.sort(np.diag(g))[::-1] - ref)) <= 1e-11 * ref[0]

    def test_w_is_orthogonal(self, rng):
        g = random_gram(8, rng)
        W, *_ = gram_eigh(g)
        assert np.max(np.abs(W.T @ W - np.eye(8))) <= 1e-13

    def test_diagonal_input_converges_without_rotations(self):
        g = np.diag([4.0, 3.0, 2.0, 1.0])
        W, rotations, sweeps, converged = gram_eigh(g)
        assert converged and rotations == 0 and sweeps == 1
        assert np.array_equal(W, np.eye(4))

    def test_batched_matches_scalar_per_matrix(self, rng):
        gs = np.stack([random_gram(6, rng) for _ in range(5)])
        singles = [g.copy() for g in gs]
        Ws, rotations, sweeps, converged = gram_eigh_batched(gs)
        assert converged
        total = 0
        for i, g in enumerate(singles):
            Wi, ri, *_ = gram_eigh(g)
            total += ri
            assert np.array_equal(Ws[i], Wi)
            assert np.array_equal(gs[i], g)
        # the batch charges exactly the union of the per-matrix rotations
        assert rotations == total

    def test_floor_relaxes_the_convergence_measure(self, rng):
        # the floor enters only the convergence measure, never the
        # (purely relative) rotation threshold: a dominant floor makes
        # the solver settle after a single sweep while still rotating
        g = random_gram(12, rng)
        base_sweeps = gram_eigh(g.copy())[2]
        assert base_sweeps > 1
        _, rotations, sweeps, converged = gram_eigh(g, floor=1e6)
        assert converged and sweeps == 1 and rotations > 0

    def test_batched_floor_broadcasts_per_matrix(self, rng):
        # a per-matrix floor array must broadcast over the stack; slots
        # with floor 0 keep the strict measure and fully diagonalize
        gs = np.stack([random_gram(4, rng) for _ in range(3)])
        floor = np.array([0.0, 1e6, 0.0])
        _, _, _, converged = gram_eigh_batched(gs, floor=floor)
        assert converged
        for i in (0, 2):
            off = gs[i] - np.diag(np.diag(gs[i]))
            assert np.max(np.abs(off)) <= 1e-10 * np.max(np.diag(gs[i]))

    def test_sweep_budget_reports_not_converged(self, rng):
        g = random_gram(12, rng)
        _, _, sweeps, converged = gram_eigh(g, max_sweeps=1)
        assert sweeps == 1 and not converged
