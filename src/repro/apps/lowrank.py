"""Low-rank approximation and PCA on the tree-ordered Jacobi SVD."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.api import svd, svd_batch
from ..svd.hestenes import JacobiOptions
from ..util.validation import require

__all__ = ["LowRankApproximation", "truncated_svd", "PCAResult", "pca",
           "pca_batch"]


@dataclass
class LowRankApproximation:
    """Rank-k factors ``a ~ u @ diag(s) @ vt`` with error bookkeeping."""

    u: np.ndarray
    s: np.ndarray
    vt: np.ndarray
    error: float          # Frobenius truncation error (exact, from the tail)
    energy: float         # fraction of squared Frobenius mass captured

    def reconstruct(self) -> np.ndarray:
        return (self.u * self.s) @ self.vt


def truncated_svd(
    a: np.ndarray,
    k: int,
    ordering: str = "fat_tree",
    options: JacobiOptions | None = None,
) -> LowRankApproximation:
    """Best rank-``k`` approximation (Eckart-Young) via the Jacobi SVD."""
    a = np.asarray(a, dtype=np.float64)
    require(a.ndim == 2, "matrix expected")
    require(1 <= k <= min(a.shape), f"k must be in [1, {min(a.shape)}]")
    wide = a.shape[0] < a.shape[1]
    work = a.T if wide else a
    r = svd(work, ordering=ordering, options=options)
    u, s, v = r.u[:, :k], r.sigma[:k], r.v[:, :k]
    tail = r.sigma[k:]
    total = float(np.sum(r.sigma**2))
    err = float(np.sqrt(np.sum(tail**2)))
    energy = float(np.sum(s**2) / total) if total > 0 else 1.0
    if wide:
        return LowRankApproximation(u=v, s=s, vt=u.T, error=err, energy=energy)
    return LowRankApproximation(u=u, s=s, vt=v.T, error=err, energy=energy)


@dataclass
class PCAResult:
    """Principal component analysis of a samples-by-features matrix."""

    components: np.ndarray        # (k, n_features), rows orthonormal
    explained_variance: np.ndarray
    explained_variance_ratio: np.ndarray
    mean: np.ndarray
    scores: np.ndarray            # (n_samples, k) projections


def pca(
    x: np.ndarray,
    k: int | None = None,
    ordering: str = "fat_tree",
) -> PCAResult:
    """PCA via the tree-ordered Jacobi SVD of the centred data matrix.

    Singular values emerge sorted from the orderings' storage
    discipline, so components come out in explained-variance order with
    no extra sort pass — the practical payoff of the paper's
    sorted-output property.
    """
    x = np.asarray(x, dtype=np.float64)
    require(x.ndim == 2, "data matrix expected")
    n_samples, n_features = x.shape
    require(n_samples >= 2, "need at least two samples")
    k = k if k is not None else min(n_samples - 1, n_features)
    require(1 <= k <= min(n_samples, n_features), "bad component count")
    mean = x.mean(axis=0)
    xc = x - mean
    wide = xc.shape[0] < xc.shape[1]
    r = svd(xc.T if wide else xc, ordering=ordering)
    return _assemble_pca(r, k, n_samples, wide, mean)


def _assemble_pca(r, k: int, n_samples: int, wide: bool,
                  mean: np.ndarray) -> PCAResult:
    """Turn one SVD result of a centred data matrix into a PCAResult."""
    if wide:
        components = r.u[:, :k].T
        scores = r.v[:, :k] * r.sigma[:k]
    else:
        components = r.v[:, :k].T
        scores = r.u[:, :k] * r.sigma[:k]
    var = (r.sigma[:k] ** 2) / (n_samples - 1)
    total_var = float(np.sum(r.sigma**2) / (n_samples - 1))
    ratio = var / total_var if total_var > 0 else np.zeros_like(var)
    return PCAResult(
        components=components,
        explained_variance=var,
        explained_variance_ratio=ratio,
        mean=mean,
        scores=scores,
    )


def pca_batch(
    xs: np.ndarray,
    k: int | None = None,
    ordering: str = "fat_tree",
    **svd_kwargs: object,
) -> list[PCAResult]:
    """PCA of many same-shape data matrices through one :func:`repro.svd_batch`.

    ``xs`` is a ``(B, n_samples, n_features)`` stack — the ROADMAP's
    per-user workload: one small data matrix per user, all the same
    shape.  Each item is centred by its own mean (the centring loop
    matches :func:`pca` arithmetic exactly) and the whole batch goes
    through a single :func:`repro.svd_batch` call, so the schedule
    compiles once and the Jacobi work runs as stacked GEMMs.  With the
    default knobs, ``pca_batch(xs)[i]`` is bit-identical to
    ``pca(xs[i])``; extra ``svd_kwargs`` (``kernel=``, ``block_size=``,
    ``executor=``, ``workers=``) are forwarded to :func:`repro.svd_batch`.
    """
    xs = np.asarray(xs, dtype=np.float64)
    require(xs.ndim == 3, "stack of data matrices expected")
    nitems, n_samples, n_features = xs.shape
    require(nitems >= 1, "need at least one data matrix")
    require(n_samples >= 2, "need at least two samples")
    k = k if k is not None else min(n_samples - 1, n_features)
    require(1 <= k <= min(n_samples, n_features), "bad component count")
    means = np.empty((nitems, n_features))
    xc = np.empty_like(xs)
    for i in range(nitems):
        # per-item centring, looped so each mean/subtraction runs the
        # exact reduction pca() runs on that matrix alone
        means[i] = xs[i].mean(axis=0)
        xc[i] = xs[i] - means[i]
    wide = n_samples < n_features
    work = xc.transpose(0, 2, 1) if wide else xc
    batch = svd_batch(work, ordering=ordering, **svd_kwargs)
    return [
        _assemble_pca(batch[i], k, n_samples, wide, means[i])
        for i in range(nitems)
    ]
