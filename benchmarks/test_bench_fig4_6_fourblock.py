"""FIG4/FIG6 — the basic four-index modules and the 8-index four-block ordering."""

from repro.analysis import fig4_basic_modules, fig6_four_block_eight, step_table
from repro.orderings import check_all_pairs_once
from repro.util.formatting import render_step_table


def test_fig4_modules(benchmark):
    mod_a, mod_b = benchmark(fig4_basic_modules)
    assert mod_a.final_layout() == [1, 2, 3, 4]       # order maintained
    assert mod_b.final_layout() == [1, 2, 4, 3]       # 3 and 4 reversed
    print("\n" + render_step_table(step_table(mod_a), title="Fig 4(a)"))
    print("\n" + render_step_table(step_table(mod_b), title="Fig 4(b)"))
    # Fig 4(a): left index always smaller than the right one
    for pairs in mod_a.index_pairs():
        assert all(a < b for a, b in pairs)


def test_fig6_eight_indices(benchmark):
    sched = benchmark(fig6_four_block_eight)
    assert sched.n_rotation_steps == 7
    assert check_all_pairs_once(sched).is_valid
    assert sched.final_layout() == list(range(1, 9))
    print("\n" + render_step_table(step_table(sched),
                                   title="Fig 6: four-block ordering, 8 indices"))
