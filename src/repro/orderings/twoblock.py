"""The two-block ordering (Section 3.1 of the paper, Figs 2-3).

Two blocks of ``K`` indices each are stored *interleaved* across ``K``
consecutive leaves: block one occupies the top slot of every leaf, block
two the bottom slot (or vice versa).  The ordering makes every index of
one block meet every index of the other exactly once, in ``K`` steps.

Divide and conquer (the paper's derivation): split the leaf range in
half; the two half-size problems of super-step 1 run in parallel; the
rotating block's two halves are interchanged (one level-``log2(2K)``
communication, i.e. across the root of the leaf range); the two
half-size problems of super-step 2 run in parallel.  The basic module is
the ``K = 2`` case of this recursion (Fig 2).

The *rotating block* (the paper always rotates the sub-blocks that came
from the original second block) ends the sweep with its two halves
exchanged but every half internally in original order; running the
ordering twice restores it — the property the merge procedure of the
fat-tree ordering relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.validation import require, require_power_of_two
from .schedule import Move, Schedule, Step, compose_moves

__all__ = ["StepFragment", "two_block_fragments", "two_block_schedule", "merge_parallel"]


@dataclass(frozen=True)
class StepFragment:
    """Pairs and moves of one step restricted to a leaf range.

    Fragments from disjoint leaf ranges running in parallel are merged
    into full :class:`~repro.orderings.schedule.Step` objects with
    :func:`merge_parallel`.
    """

    pairs: tuple[tuple[int, int], ...]
    moves: tuple[Move, ...]

    def with_extra_moves(self, extra: tuple[Move, ...]) -> "StepFragment":
        """Fuse a subsequent move phase into this fragment's moves."""
        return StepFragment(self.pairs, compose_moves(self.moves, extra))


def _top(leaf: int) -> int:
    return 2 * leaf


def _bottom(leaf: int) -> int:
    return 2 * leaf + 1


def merge_parallel(*fragment_lists: list[StepFragment]) -> list[StepFragment]:
    """Zip equally long fragment lists from disjoint leaf ranges."""
    lengths = {len(f) for f in fragment_lists}
    require(len(lengths) == 1, f"parallel fragment lists differ in length: {lengths}")
    merged = []
    for frags in zip(*fragment_lists):
        pairs = tuple(p for f in frags for p in f.pairs)
        moves = tuple(m for f in frags for m in f.moves)
        merged.append(StepFragment(pairs=pairs, moves=moves))
    return merged


def two_block_fragments(leaves: list[int], rotate: str = "bottom") -> list[StepFragment]:
    """Step fragments of a two-block ordering over ``leaves``.

    ``rotate`` selects which of the interleaved blocks is the rotating
    block: ``"bottom"`` rotates the block stored in the bottom slots,
    ``"top"`` the one in the top slots.  ``len(leaves)`` (= the block
    size ``K``) must be a power of two; the sweep has exactly ``K``
    fragments.
    """
    require(rotate in ("top", "bottom"), f"rotate must be top/bottom, got {rotate!r}")
    K = len(leaves)
    require_power_of_two(K, "number of leaves")
    if K == 1:
        leaf = leaves[0]
        return [StepFragment(pairs=((_top(leaf), _bottom(leaf)),), moves=())]
    half = K // 2
    left, right = leaves[:half], leaves[half:]
    slot = _bottom if rotate == "bottom" else _top
    super1 = merge_parallel(
        two_block_fragments(left, rotate), two_block_fragments(right, rotate)
    )
    interchange = tuple(
        m
        for l, r in zip(left, right)
        for m in (Move(slot(l), slot(r)), Move(slot(r), slot(l)))
    )
    super1[-1] = super1[-1].with_extra_moves(interchange)
    super2 = merge_parallel(
        two_block_fragments(left, rotate), two_block_fragments(right, rotate)
    )
    return super1 + super2


def two_block_schedule(K: int, rotate: str = "bottom", first_leaf: int = 0) -> Schedule:
    """Standalone two-block ordering as a full schedule (2K columns).

    Used directly by the Fig 2/3 experiments; inside the fat-tree and
    hybrid orderings the fragment form is composed with other groups.
    """
    require_power_of_two(K, "block size K")
    leaves = list(range(first_leaf, first_leaf + K))
    frags = two_block_fragments(leaves, rotate)
    steps = [Step(pairs=f.pairs, moves=f.moves) for f in frags]
    return Schedule(n=2 * K, steps=steps, name=f"two_block(K={K}, rotate={rotate})")
