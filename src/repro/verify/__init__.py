"""Static verification of parallel Jacobi schedules (no execution needed).

The paper states its correctness claims as prose invariants: every
column pair meets exactly once per sweep, index order is restored
after each sweep (or two), ring messages travel in only one direction,
and no channel of the tree carries more load than its capacity.  The
test-suite checks these *dynamically* by running sweeps; this package
proves them *statically*, directly from the
:class:`~repro.orderings.schedule.Schedule` object, the way a race
detector or sanitizer gates a parallel runtime:

* :mod:`repro.verify.races` — per-step write-write races, unmatched
  exchanges, placement-bijection violations (``RACE001``-``RACE005``);
* :mod:`repro.verify.direction` — channel-dependency deadlock analysis
  and ring one-directionality (``DIR001``-``DIR003``);
* :mod:`repro.verify.capacity` — static per-channel link loads routed
  with the machine's own router, plus a cross-check against the
  dynamic contention analysis (``CAP001``-``CAP003``);
* :mod:`repro.verify.sweepcheck` — all-pairs coverage and index-order
  restoration (``SWEEP001``-``SWEEP003``);
* :mod:`repro.verify.linter` — orchestration over schedules, orderings
  and the whole registry (the ``repro-harness lint`` gate);
* :mod:`repro.verify.corrupt` — corruption operators for negative
  tests, each engineered to trip one rule family.

Quick use::

    from repro import make_ordering
    from repro.verify import lint_ordering

    report = lint_ordering(make_ordering("ring_new", 16))
    assert report.ok, report.render()
"""

from .capacity import check_capacity, crosscheck_dynamic, static_level_contention
from .corrupt import (
    drop_exchange,
    duplicate_pair,
    overload_link,
    reverse_ring_step,
    unchecked_schedule,
    unchecked_step,
)
from .diagnostics import RULES, Diagnostic, Report, rule_description
from .direction import (
    channel_dependency_cycle,
    check_deadlock_free,
    ring_direction_violations,
)
from .linter import DEFAULT_SIZES, lint_ordering, lint_registry, lint_schedule
from .races import check_placement_bijection, check_step_races, find_races
from .sweepcheck import (
    check_ordering_restoration,
    check_pair_coverage,
    check_restoration,
    permutation_order,
)

__all__ = [
    "DEFAULT_SIZES",
    "Diagnostic",
    "RULES",
    "Report",
    "channel_dependency_cycle",
    "check_capacity",
    "check_deadlock_free",
    "check_ordering_restoration",
    "check_pair_coverage",
    "check_placement_bijection",
    "check_restoration",
    "check_step_races",
    "crosscheck_dynamic",
    "drop_exchange",
    "duplicate_pair",
    "find_races",
    "lint_ordering",
    "lint_registry",
    "lint_schedule",
    "overload_link",
    "permutation_order",
    "reverse_ring_step",
    "ring_direction_violations",
    "rule_description",
    "static_level_contention",
    "unchecked_schedule",
    "unchecked_step",
]
