"""One-sided *block* Jacobi SVD: blocks of columns per leaf.

The paper's hybrid ordering already treats blocks of columns as the unit
of scheduling (Schreiber's partitioning [14]); this module generalises
the whole driver to that regime, in the spirit of Bischof's block Jacobi
[1]: the matrix is partitioned into ``2P`` column blocks of width ``b``
(leaf processor ``i`` holds blocks ``2i`` and ``2i+1``), any parallel
ordering from :mod:`repro.orderings` is run at *block* granularity, and
a "rotation" of a block pair orthogonalises all ``2b`` columns of the
two blocks against each other (a local sub-problem solved by cyclic
one-sided Jacobi sweeps).

Why it matters: with ``b`` columns per message the per-step traffic
volume grows but the number of outer steps shrinks to ``2P - 1``, so
block size trades startup cost (alpha) against bandwidth (beta) — the
same dial the hybrid ordering turns to avoid contention on the CM-5.
Convergence follows from the same threshold argument as the scalar
method: every column pair is covered once per outer sweep (within-block
and met-block pairs by the local solver, the rest by the ordering).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..core.result import SVDResult, SweepRecord
from ..orderings.base import Ordering
from ..orderings.plan import compile_schedule
from ..orderings.registry import make_ordering
from ..svd.convergence import off_norm
from ..util.errors import ConvergenceWarning
from ..util.validation import require
from .kernel import BLOCK_KERNELS, solve_block_step

__all__ = ["BlockJacobiOptions", "block_jacobi_svd"]


@dataclass(frozen=True)
class BlockJacobiOptions:
    """Tuning knobs of the block Jacobi iteration.

    ``block_size``
        Columns per block (b >= 1; b = 1 degenerates to the scalar
        method with one column per slot).
    ``tol``
        Relative orthogonality threshold, as in the scalar driver.
    ``inner_sweeps``
        Cyclic Jacobi sweeps applied to each met block pair (2 is enough
        near convergence; the outer iteration absorbs the slack).
    ``max_sweeps``
        Outer sweep bound.
    ``sort``
        Norm ordering inside the local solver (sorted output emerges at
        block granularity).
    ``kernel``
        Local block-pair solver: ``"gram"`` (BLAS-3 Gram-space fast
        path, the default), ``"batched"`` (fused gathered 2x2
        transforms) or ``"reference"`` (per-step masked rotations, the
        numerics the others are tested against) — see
        :mod:`repro.blockjacobi.kernel`.
    ``executor``
        Step-execution backend: ``"serial"`` or ``"threads"`` (worker
        threads share the column buffer; each solves a disjoint subset
        of a step's independent pair subproblems — bit-identical to
        serial for any worker count).  ``None`` resolves from
        ``$REPRO_EXECUTOR`` (default serial).  See
        :mod:`repro.parallel.executor`.
    ``workers``
        Worker threads of the ``threads`` backend; ``None`` resolves
        from ``$REPRO_WORKERS`` (default: CPU count).
    ``sanitize``
        Arm the runtime sanitizer (:mod:`repro.verify.sanitize`):
        per-step write-set records cross-checked against the static
        chunking, plus sweep-boundary numeric canaries.  ``None``
        resolves from ``$REPRO_SANITIZE`` (default off); a violation
        raises :class:`~repro.verify.sanitize.SanitizerError`.
    """

    block_size: int = 4
    tol: float = 1e-12
    inner_sweeps: int = 2
    max_sweeps: int = 60
    sort: str | None = "desc"
    kernel: str = "gram"
    executor: str | None = None
    workers: int | None = None
    sanitize: bool | None = None

    def __post_init__(self) -> None:
        from ..parallel.executor import EXECUTORS

        # inner_sweeps = 0 would make every local solve a no-op that
        # reports worst = 0.0, so the driver would declare convergence
        # after one sweep with a wrong result; fail loudly instead
        require(self.block_size >= 1, "block_size must be positive")
        require(self.inner_sweeps >= 1,
                f"inner_sweeps must be >= 1, got {self.inner_sweeps!r}")
        require(self.max_sweeps >= 1,
                f"max_sweeps must be >= 1, got {self.max_sweeps!r}")
        require(self.kernel in BLOCK_KERNELS,
                f"unknown block kernel {self.kernel!r}; "
                f"available: {', '.join(BLOCK_KERNELS)}")
        require(self.executor is None or self.executor in EXECUTORS,
                f"unknown executor {self.executor!r}; "
                f"available: {', '.join(EXECUTORS)}")
        require(self.workers is None or self.workers >= 1,
                f"workers must be >= 1, got {self.workers!r}")

    def make_executor(self):
        """Build the run's :class:`~repro.parallel.executor.StepExecutor`
        (the caller owns and closes it)."""
        from ..parallel.executor import resolve_executor

        return resolve_executor(self.executor, self.workers)

    def make_sanitizer(self):
        """Build the run's :class:`~repro.verify.sanitize.RuntimeSanitizer`,
        or ``None`` when sanitizing is off (option, else env)."""
        from ..verify.sanitize import RuntimeSanitizer, sanitize_enabled

        return RuntimeSanitizer() if sanitize_enabled(self.sanitize) else None


def block_jacobi_svd(
    a: np.ndarray,
    ordering: str | Ordering = "ring_new",
    options: BlockJacobiOptions | None = None,
    compute_uv: bool = True,
    **ordering_kwargs: object,
) -> SVDResult:
    """One-sided block Jacobi SVD of ``a`` under a block-level ordering.

    The column count must be ``2 P b`` for an integer number of leaves
    ``P`` admissible to the chosen ordering (the ordering runs on the
    ``2P`` blocks).
    """
    a = np.asarray(a, dtype=np.float64)
    require(a.ndim == 2, "matrix expected")
    m, n = a.shape
    opts = options or BlockJacobiOptions()
    b = opts.block_size
    require(b >= 1, "block_size must be positive")
    require(n % (2 * b) == 0, f"n={n} must be a multiple of 2*block_size={2 * b}")
    n_blocks = n // b
    if isinstance(ordering, Ordering):
        require(ordering.n == n_blocks, "ordering must cover the block count")
        ord_obj = ordering
    else:
        ord_obj = make_ordering(ordering, n_blocks, **ordering_kwargs)

    X = a.copy()
    V = np.eye(n) if compute_uv else None
    # block_cols[s] = the matrix columns currently stored in block slot s
    block_cols = np.arange(n, dtype=np.intp).reshape(n_blocks, b)

    history: list[SweepRecord] = []
    converged = False
    sweeps = 0
    executor = opts.make_executor()
    sanitizer = opts.make_sanitizer()
    if sanitizer is not None:
        executor.sanitizer = sanitizer
        sanitizer.arm_reference(X)
    try:
        for sweep in range(opts.max_sweeps):
            plan = compile_schedule(ord_obj.sweep(sweep))
            worst = 0.0
            rotations = 0
            for cs in plan.steps:
                if cs.n_pairs:
                    pair_cols = block_cols[cs.pairs].reshape(cs.n_pairs, 2 * b)
                    st, mx = solve_block_step(X, V, pair_cols, opts.tol,
                                              opts.sort, opts.inner_sweeps,
                                              opts.kernel, executor=executor,
                                              sanitizer=sanitizer)
                    worst = max(worst, mx)
                    rotations += st.applied
                if cs.has_moves:
                    # fancy assignment materialises the gather first, so
                    # the move phase keeps its snapshot semantics
                    block_cols[cs.dst] = block_cols[cs.src]
            sweeps = sweep + 1
            if sanitizer is not None:
                sanitizer.check_sweep(X, V, sweep=sweeps)
            history.append(
                SweepRecord(
                    sweep=sweeps,
                    off_norm=off_norm(X),
                    max_rel_gamma=worst,
                    rotations=rotations,
                    skipped=0,
                )
            )
            if worst <= opts.tol:
                converged = True
                break
    finally:
        executor.close()

    watchdog_msg = None
    if not converged:
        # same refusal-to-be-silent contract as the scalar driver: diagnose
        # the off-norm series and warn (see repro.svd.hestenes)
        from ..faults.watchdog import ConvergenceWatchdog

        dog = ConvergenceWatchdog()
        for h in history:
            dog.observe(h.sweep, h.off_norm)
        watchdog_msg = dog.escalate(opts.max_sweeps)
        warnings.warn(
            f"block Jacobi SVD did not converge: {watchdog_msg}; the result "
            "is a partial decomposition (check result.converged)",
            ConvergenceWarning, stacklevel=2)

    norms = np.linalg.norm(X, axis=0)
    sigma_by_slot = norms.copy()
    scale = max(1.0, float(norms.max(initial=0.0)))
    diffs = np.diff(norms)
    if np.all(diffs <= 1e-9 * scale):
        emerged = "desc"
    elif np.all(diffs >= -1e-9 * scale):
        emerged = "asc"
    else:
        emerged = None
    order = np.argsort(-norms, kind="stable")
    sigma = norms[order]
    rank = int(np.count_nonzero(sigma > 1e-12 * max(scale, 1e-300)))
    if compute_uv:
        u = np.zeros((m, n))
        nz = sigma > 0
        cols = X[:, order]
        u[:, nz] = cols[:, nz] / sigma[nz]
        v = V[:, order]
    else:
        u = np.zeros((m, 0))
        v = np.zeros((n, 0))
    return SVDResult(
        u=u, sigma=sigma, v=v, rank=rank, converged=converged,
        sweeps=sweeps, rotations=sum(h.rotations for h in history),
        sigma_by_slot=sigma_by_slot, emerged_sorted=emerged, history=history,
        watchdog=watchdog_msg,
    )
