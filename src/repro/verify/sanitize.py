"""Opt-in runtime sanitizer: dynamic cross-checks of the static claims.

The static layers prove their invariants from the plan alone; this
module verifies them while a run executes, the way TSAN/ASAN shadow a
compiled binary.  Two families of checks:

write-set records (``SAN001``)
    :func:`~repro.blockjacobi.kernel.solve_block_step` opens a record
    per schedule step; solvers report the column sets they actually
    scatter into (``record_touch``) and executors report the chunk
    bounds they actually dispatch (``note_dispatch``).  When the step
    closes, the record must agree with the statically derived per-pair
    write-sets: every touched column inside its claimed range's sets,
    disjoint ranges touching disjoint columns, dispatched bounds equal
    to :meth:`~repro.parallel.executor.StepExecutor.chunk_bounds`.

sweep-boundary numeric canaries (``SAN002``/``SAN003``)
    The same invariant detectors the fault-recovery driver uses
    (:mod:`repro.faults`), armed on healthy runs: factors must stay
    finite, ``||X||_F`` must stay put (one sweep only right-multiplies
    by orthogonal rotations), and ``V`` must stay orthogonal.

Enabling
--------
Set ``REPRO_SANITIZE=1`` in the environment (the whole test-suite can
run sanitized without code changes), or pass ``sanitize=True`` through
:class:`~repro.blockjacobi.BlockJacobiOptions` / the ``repro-harness
svd --sanitize`` flag.  A violation raises :class:`SanitizerError`
carrying the rule-tagged :class:`~repro.verify.diagnostics.Diagnostic`
— fail-fast, because past the first violation the run's output is
already suspect.

Fault-injected runs do *not* arm the sanitizer: injected damage is
meant to reach the recovery machinery (rollback, remap), not to abort
the process, and the fault driver runs the same detectors itself.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Sequence

import numpy as np

from .diagnostics import Diagnostic

__all__ = [
    "RuntimeSanitizer",
    "SanitizerError",
    "check_numeric_canaries",
    "check_write_record",
    "sanitize_enabled",
]

_TRUTHY = ("1", "true", "yes", "on")

#: relative tolerance of the Frobenius-invariant canary (matches the
#: fault driver's silent-corruption detector)
FROBENIUS_RTOL = 1e-9

#: absolute tolerance on ``max|V^T V - I|`` — orders of magnitude above
#: honest rotation round-off, far below any real orthogonality loss
ORTHOGONALITY_TOL = 1e-8


def sanitize_enabled(explicit: bool | None = None) -> bool:
    """Resolve the sanitizer switch: explicit option, else ``$REPRO_SANITIZE``."""
    if explicit is not None:
        return bool(explicit)
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


class SanitizerError(RuntimeError):
    """A runtime sanitizer check failed; ``diagnostic`` names the rule."""

    def __init__(self, diagnostic: Diagnostic) -> None:
        super().__init__(diagnostic.render())
        self.diagnostic = diagnostic


def check_write_record(
    n_items: int,
    expected_items: Sequence[frozenset[int]],
    dispatched: Sequence[tuple[int, tuple[tuple[int, int], ...]]],
    touched: Sequence[tuple[int, int, tuple[int, ...]]],
    *,
    workers: int = 1,
    step: int | None = None,
) -> list[Diagnostic]:
    """Cross-check one step's runtime write record (rule ``SAN001``).

    ``expected_items[i]`` is the static column write-set of work item
    ``i``; ``dispatched`` holds ``(n_items, bounds)`` per executor
    dispatch; ``touched`` holds ``(lo, hi, columns)`` claims from the
    solvers.  Pure function — the negative tests feed it corrupted
    records directly.
    """
    from ..parallel.executor import StepExecutor

    out: list[Diagnostic] = []
    want = tuple(StepExecutor.chunk_bounds(n_items, workers))
    for nd, bounds in dispatched:
        if nd != n_items or tuple(bounds) != want:
            out.append(Diagnostic(
                rule="SAN001", step=step,
                message=f"executor dispatched bounds {list(bounds)} over "
                        f"{nd} item(s); the static chunking of {n_items} "
                        f"item(s) across {workers} worker(s) is {list(want)}",
                details=(("dispatched", tuple(bounds)), ("expected", want)),
            ))
    claims: list[tuple[int, int, frozenset[int]]] = []
    for lo, hi, cols in touched:
        colset = frozenset(int(c) for c in cols)
        if not 0 <= lo <= hi <= n_items:
            out.append(Diagnostic(
                rule="SAN001", step=step,
                message=f"touch record claims items [{lo}, {hi}) outside "
                        f"the step's {n_items} work item(s)",
                details=(("lo", lo), ("hi", hi), ("n_items", n_items)),
            ))
            continue
        allowed: set[int] = set()
        for s in expected_items[lo:hi]:
            allowed |= s
        stray = sorted(colset - allowed)
        if stray:
            out.append(Diagnostic(
                rule="SAN001", step=step,
                message=f"worker for items [{lo}, {hi}) touched column(s) "
                        f"{stray} outside its static write-set",
                details=(("stray", tuple(stray)),),
            ))
        claims.append((lo, hi, colset))
    for i, (lo1, hi1, c1) in enumerate(claims):
        for lo2, hi2, c2 in claims[i + 1:]:
            if hi1 <= lo2 or hi2 <= lo1:  # disjoint item ranges
                shared = sorted(c1 & c2)
                if shared:
                    out.append(Diagnostic(
                        rule="SAN001", step=step,
                        message=f"disjoint chunks [{lo1}, {hi1}) and "
                                f"[{lo2}, {hi2}) both touched column(s) "
                                f"{shared} (write-write overlap)",
                        details=(("shared", tuple(shared)),),
                    ))
    return out


def check_numeric_canaries(
    X: np.ndarray,
    V: np.ndarray | None,
    ref_norm: float | None,
    *,
    frobenius_rtol: float = FROBENIUS_RTOL,
    orthogonality_tol: float = ORTHOGONALITY_TOL,
    sweep: int | None = None,
) -> list[Diagnostic]:
    """Sweep-boundary numeric canaries (rules ``SAN002``/``SAN003``).

    ``ref_norm`` is ``||X||_F`` measured before the first sweep; pass
    ``None`` (or a non-finite value — deliberately-extreme overflow
    inputs have no meaningful invariant) to skip the Frobenius check.
    """
    out: list[Diagnostic] = []
    for label, mat in (("X", X), ("V", V)):
        if mat is None:
            continue
        finite = np.isfinite(mat)
        if not finite.all():
            idx = tuple(int(i) for i in np.argwhere(~finite)[0])
            out.append(Diagnostic(
                rule="SAN002", step=sweep,
                message=f"non-finite entry in {label} at {idx} "
                        "at the sweep boundary",
                details=(("factor", label), ("index", idx)),
            ))
    if out:
        return out  # drift is meaningless on non-finite data
    if ref_norm is not None and np.isfinite(ref_norm):
        # sweeps only right-multiply X by orthogonal rotations, so the
        # Frobenius norm is an invariant of the whole run
        drift = abs(float(np.linalg.norm(X)) - ref_norm)
        if drift > frobenius_rtol * max(ref_norm, 1.0):
            out.append(Diagnostic(
                rule="SAN003", step=sweep,
                message=f"||X||_F drifted by {drift:.3e} from its initial "
                        f"value {ref_norm:.6e} (orthogonal invariant broken)",
                details=(("drift", drift), ("ref_norm", ref_norm)),
            ))
    if V is not None and V.size:
        G = V.T @ V
        err = float(np.max(np.abs(G - np.eye(G.shape[0]))))
        if not np.isfinite(err) or err > orthogonality_tol:
            out.append(Diagnostic(
                rule="SAN003", step=sweep,
                message=f"V lost orthogonality: max|V^T V - I| = {err:.3e} "
                        f"(tolerance {orthogonality_tol:g})",
                details=(("error", err),),
            ))
    return out


class RuntimeSanitizer:
    """Run-scoped sanitizer state: one write record per step, numeric
    canaries per sweep.

    Thread-safe: ``record_touch``/``note_dispatch`` are called from
    executor worker threads.  ``diagnostics`` accumulates every finding;
    with ``raise_on_violation`` (the default) the first finding also
    raises :class:`SanitizerError` so a poisoned run cannot keep going.
    """

    def __init__(
        self,
        *,
        frobenius_rtol: float = FROBENIUS_RTOL,
        orthogonality_tol: float = ORTHOGONALITY_TOL,
        raise_on_violation: bool = True,
    ) -> None:
        self.frobenius_rtol = frobenius_rtol
        self.orthogonality_tol = orthogonality_tol
        self.raise_on_violation = raise_on_violation
        self.diagnostics: list[Diagnostic] = []
        self.steps_checked = 0
        self.sweeps_checked = 0
        self._lock = threading.Lock()
        self._active = False
        self._n_items = 0
        self._workers = 1
        self._expected: list[frozenset[int]] = []
        self._dispatched: list[tuple[int, tuple[tuple[int, int], ...]]] = []
        self._touched: list[tuple[int, int, tuple[int, ...]]] = []
        self._ref_norm: float | None = None

    # -- step write-set protocol ----------------------------------------

    def begin_step(self, n_items: int,
                   expected_items: Sequence[frozenset[int]],
                   workers: int = 1) -> None:
        """Open the write record of one schedule step."""
        with self._lock:
            self._active = True
            self._n_items = int(n_items)
            self._workers = int(workers)
            self._expected = list(expected_items)
            self._dispatched = []
            self._touched = []

    def note_dispatch(self, n_items: int,
                      bounds: Sequence[tuple[int, int]]) -> None:
        """Record the chunk bounds an executor actually dispatched."""
        with self._lock:
            if self._active:
                self._dispatched.append(
                    (int(n_items),
                     tuple((int(lo), int(hi)) for lo, hi in bounds)))

    def record_touch(self, lo: int, hi: int,
                     cols: "Sequence[int] | np.ndarray") -> None:
        """Record columns a worker touched while owning items [lo, hi)."""
        flat = tuple(int(c) for c in np.asarray(cols).reshape(-1))
        with self._lock:
            if self._active:
                self._touched.append((int(lo), int(hi), flat))

    def abort_step(self) -> None:
        """Discard the open record (the step raised; nothing to check)."""
        with self._lock:
            self._active = False

    def end_step(self, step: int | None = None) -> None:
        """Close the record and cross-check it against the static sets."""
        with self._lock:
            if not self._active:
                return
            self._active = False
            diags = check_write_record(
                self._n_items, self._expected, self._dispatched,
                self._touched, workers=self._workers, step=step)
            self.steps_checked += 1
        self._report(diags)

    # -- sweep-boundary canaries ----------------------------------------

    def arm_reference(self, X: np.ndarray) -> None:
        """Capture ``||X||_F`` before the first sweep (SAN003 baseline)."""
        self._ref_norm = float(np.linalg.norm(X))

    def check_sweep(self, X: np.ndarray, V: np.ndarray | None = None,
                    sweep: int | None = None) -> None:
        """Run the numeric canaries at a sweep boundary."""
        diags = check_numeric_canaries(
            X, V, self._ref_norm,
            frobenius_rtol=self.frobenius_rtol,
            orthogonality_tol=self.orthogonality_tol, sweep=sweep)
        self.sweeps_checked += 1
        self._report(diags)

    # -- reporting -------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def _report(self, diags: list[Diagnostic]) -> None:
        if not diags:
            return
        with self._lock:
            self.diagnostics.extend(diags)
        if self.raise_on_violation:
            raise SanitizerError(diags[0])
