"""Tests for the ordering property validators themselves."""

import pytest

from repro.orderings.oddeven import odd_even_sweep
from repro.orderings.properties import (
    check_all_pairs_once,
    check_local_pairs,
    check_one_directional,
    find_relabelling,
    relabelling_equivalent,
    sweep_message_counts,
)
from repro.orderings.roundrobin import round_robin_sweep
from repro.orderings.schedule import Move, Schedule, Step


def broken_schedule(n: int = 4) -> Schedule:
    """A deliberately invalid 'sweep': repeats a pair, misses others."""
    steps = [Step(pairs=((0, 1), (2, 3))), Step(pairs=((0, 1), (2, 3)))]
    return Schedule(n=n, steps=steps)


class TestValidity:
    def test_detects_duplicates_and_missing(self):
        rep = check_all_pairs_once(broken_schedule())
        assert not rep.is_valid
        assert frozenset((1, 2)) in rep.duplicates
        assert frozenset((1, 3)) in rep.missing

    def test_counts(self):
        rep = check_all_pairs_once(round_robin_sweep(8))
        assert rep.n_pairs_expected == 28
        assert rep.n_pairs_seen == 28

    def test_custom_layout_universe(self):
        rep = check_all_pairs_once(round_robin_sweep(4), layout=[10, 20, 30, 40])
        assert rep.is_valid

    def test_bool_protocol(self):
        assert bool(check_all_pairs_once(round_robin_sweep(4)))
        assert not bool(check_all_pairs_once(broken_schedule()))


class TestLocality:
    def test_local_schedule(self):
        assert check_local_pairs(round_robin_sweep(8))

    def test_remote_pair_detected(self):
        s = Schedule(n=4, steps=[Step(pairs=((1, 2),))])
        assert not check_local_pairs(s)


class TestOneDirectional:
    def test_static_schedule_trivially_one_directional(self):
        s = Schedule(n=4, steps=[Step(pairs=((0, 1), (2, 3)))])
        assert check_one_directional(s)

    def test_mixed_directions_rejected(self):
        s = Schedule(
            n=8,
            steps=[
                Step(pairs=(), moves=(Move(1, 2), Move(2, 1))),  # 0->1 and 1->0
            ],
        )
        assert not check_one_directional(s)

    def test_long_jump_rejected(self):
        s = Schedule(
            n=8,
            steps=[Step(pairs=(), moves=(Move(0, 4), Move(4, 0)))],  # leaf 0 <-> 2
        )
        assert not check_one_directional(s)

    def test_consistent_backward_direction_accepted(self):
        # all moves leaf i -> i-1 (mod P) is also one-directional
        s = Schedule(
            n=8,
            steps=[
                Step(pairs=(), moves=(Move(2, 0), Move(0, 6), Move(6, 4), Move(4, 2))),
            ],
        )
        assert check_one_directional(s)


class TestMessageCounts:
    def test_counts_exclude_local_moves(self):
        s = Schedule(
            n=4,
            steps=[Step(pairs=(), moves=(Move(0, 1), Move(1, 0), Move(2, 3), Move(3, 2)))],
        )
        assert sweep_message_counts(s) == {1: 0}

    def test_per_step_keys(self):
        counts = sweep_message_counts(round_robin_sweep(8))
        assert sorted(counts) == list(range(1, 8))


class TestEquivalence:
    def test_identity_relabelling(self):
        s = round_robin_sweep(8)
        ident = {i: i for i in range(1, 9)}
        assert relabelling_equivalent(s, s, ident)

    def test_wrong_mapping_rejected(self):
        s = round_robin_sweep(8)
        swapped = {i: i for i in range(1, 9)}
        swapped[1], swapped[2] = 2, 1
        # swapping 1 and 2 keeps step sets identical only if they always
        # appear as a pair together — they do not after step 1
        assert not relabelling_equivalent(s, s, swapped)

    def test_non_equivalent_orderings(self):
        # odd-even has n steps, round-robin n-1: cannot be equivalent
        assert find_relabelling(odd_even_sweep(8), round_robin_sweep(8)) is None

    def test_find_relabelling_on_self(self):
        s = round_robin_sweep(8)
        mapping = find_relabelling(s, s)
        assert mapping is not None
        assert relabelling_equivalent(s, s, mapping)
