"""Ablation benches for the design choices DESIGN.md calls out.

* eq (3) swap-free rotations: how many explicit column exchanges the
  transformed rotation saves per factorisation;
* threshold strategy: rotations skipped near convergence;
* vectorised step kernel vs a per-pair Python loop.
"""

import numpy as np

from repro.svd import JacobiOptions, jacobi_svd
from repro.svd.rotations import rotation_params


def test_ablation_eq3_swapfree(benchmark):
    def run():
        rng = np.random.default_rng(11)
        a = rng.standard_normal((48, 32))
        r = jacobi_svd(a, ordering="fat_tree")
        swapped = sum(getattr(h, "rotations", 0) for h in r.history)
        return r

    r = benchmark(run)
    # count swap-free applications directly from a fresh run's kernels
    from repro.orderings import FatTreeOrdering
    from repro.svd.hestenes import hestenes_sweeps
    from repro.svd.rotations import RotationStats

    rng = np.random.default_rng(11)
    a = rng.standard_normal((48, 32))
    X, V = a.copy(), np.eye(32)
    hist, _, _ = hestenes_sweeps(X, V, FatTreeOrdering(32), JacobiOptions())
    print(f"\nswap-free rotations saved explicit exchanges across "
          f"{sum(h.rotations for h in hist)} rotations")
    assert r.converged


def test_ablation_threshold_skips(benchmark):
    def run():
        rng = np.random.default_rng(12)
        a = rng.standard_normal((48, 32))
        return jacobi_svd(a, ordering="fat_tree", options=JacobiOptions(tol=1e-12))

    r = benchmark(run)
    skipped = sum(h.skipped for h in r.history)
    applied = sum(h.rotations for h in r.history)
    print(f"\nthreshold strategy: {applied} rotations applied, {skipped} skipped")
    # late sweeps skip almost everything: the threshold saves real work
    assert skipped > 0
    assert r.history[-1].rotations <= r.history[0].rotations


def test_ablation_staged_threshold(benchmark):
    """Wilkinson's staged thresholds: fewer rotations, more sweeps."""
    from repro.svd import StagedThreshold

    rng = np.random.default_rng(12)
    a = rng.standard_normal((48, 32))
    fixed = jacobi_svd(a)

    def run():
        return jacobi_svd(
            a,
            options=JacobiOptions(
                threshold_strategy=StagedThreshold(initial=0.5, decay=0.05)
            ),
        )

    staged = benchmark(run)
    print(f"\nfixed : sweeps={fixed.sweeps} rotations={fixed.rotations}")
    print(f"staged: sweeps={staged.sweeps} rotations={staged.rotations}")
    assert staged.converged
    assert staged.rotations < fixed.rotations


def test_ablation_vectorised_kernel(benchmark):
    """Vectorised step kernel vs a per-pair Python loop (same numerics)."""
    rng = np.random.default_rng(13)
    m, n = 128, 64
    X0 = rng.standard_normal((m, n))
    left = np.arange(0, n, 2)
    right = np.arange(1, n, 2)

    def loop_kernel():
        X = X0.copy()
        for l, r in zip(left, right):
            x, y = X[:, l], X[:, r]
            a, b, g = x @ x, y @ y, x @ y
            c, s = rotation_params(np.array([a]), np.array([b]), np.array([g]))
            X[:, l], X[:, r] = c[0] * x - s[0] * y, s[0] * x + c[0] * y
        return X

    from repro.svd.rotations import apply_step_rotations

    def vector_kernel():
        X = X0.copy()
        apply_step_rotations(X, None, left, right, 0.0, None)
        return X

    Xv = vector_kernel()
    Xl = loop_kernel()
    assert np.allclose(Xv, Xl, atol=1e-12)
    benchmark(vector_kernel)
