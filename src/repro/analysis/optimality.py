"""Step-count optimality of parallel Jacobi orderings.

A sweep must perform ``n(n-1)/2`` rotations with at most ``n/2``
disjoint rotations per step, so ``n - 1`` steps is a hard lower bound
for even ``n``.  The paper's fat-tree, hybrid and ring orderings all
achieve it.  This module provides the bound, per-ordering audits, and an
exhaustive search constructing an optimal ordering for small ``n`` —
independent evidence that the bound is attainable (1-factorisations of
the complete graph exist for every even ``n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..orderings.base import Ordering
from ..orderings.registry import make_ordering
from ..util.validation import require_even

__all__ = ["lower_bound_steps", "OptimalityAudit", "audit_ordering",
           "search_optimal_ordering"]


def lower_bound_steps(n: int) -> int:
    """Minimum parallel steps of any Jacobi sweep on ``n`` columns."""
    require_even(n)
    return n - 1


@dataclass(frozen=True)
class OptimalityAudit:
    ordering: str
    n: int
    steps: int
    lower_bound: int
    is_optimal: bool
    idle_pair_slots: int  # how many rotation slots a sweep wastes


def audit_ordering(ordering: Ordering) -> OptimalityAudit:
    """Compare an ordering's sweep against the lower bound."""
    sched = ordering.sweep(0)
    steps = sched.n_rotation_steps
    bound = lower_bound_steps(ordering.n)
    capacity = steps * (ordering.n // 2)
    used = sum(len(s.pairs) for s in sched.steps)
    return OptimalityAudit(
        ordering=ordering.name,
        n=ordering.n,
        steps=steps,
        lower_bound=bound,
        is_optimal=steps == bound,
        idle_pair_slots=capacity - used,
    )


def search_optimal_ordering(n: int) -> list[list[tuple[int, int]]] | None:
    """Exhaustively construct an (n-1)-step all-pairs ordering.

    Backtracking over perfect matchings of the remaining pair set — a
    1-factorisation of K_n.  Practical for n <= 10; used by the tests as
    independent confirmation that the paper's step counts are optimal
    and attainable.
    """
    require_even(n)
    all_pairs = set(frozenset(p) for p in combinations(range(1, n + 1), 2))
    steps: list[list[tuple[int, int]]] = []

    def matchings(avail: set[frozenset[int]], free: set[int]):
        if not free:
            yield []
            return
        a = min(free)
        for b in sorted(free - {a}):
            pr = frozenset((a, b))
            if pr in avail:
                for rest in matchings(avail - {pr}, free - {a, b}):
                    yield [(a, b)] + rest

    def bt(avail: set[frozenset[int]]) -> bool:
        if not avail:
            return True
        for match in matchings(avail, set(range(1, n + 1))):
            chosen = {frozenset(p) for p in match}
            steps.append(match)
            if bt(avail - chosen):
                return True
            steps.pop()
        return False

    if bt(all_pairs):
        return steps
    return None  # pragma: no cover - K_n always 1-factorises for even n


def audit_all(n: int, **kwargs_by_name: dict) -> list[OptimalityAudit]:
    """Audit every registered ordering at size n."""
    from ..orderings.registry import ordering_names

    out = []
    for name in ordering_names():
        kw = kwargs_by_name.get(name, {})
        try:
            out.append(audit_ordering(make_ordering(name, n, **kw)))
        except ValueError:
            continue  # size not admissible for this ordering
    return out
