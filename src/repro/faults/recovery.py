"""Degraded-mode validation: is the remapped machine still sound?

After a crash the dead leaf's columns are rehosted on its sibling.  The
*schedule* is unchanged — slots are logical — but its guarantees were
proven for the healthy leaf map, so before retrying the sweep the
driver re-validates:

* the schedule itself still passes the structural rules of
  :func:`repro.verify.lint_schedule` (it must — remapping cannot change
  it — but running the gate keeps the invariant machine-checked);
* the *remapped* routing is re-measured: messages to or from the dead
  leaf now terminate at the sibling, which changes channel loads.  The
  degraded contention is reported (and may legitimately exceed 1.0 —
  degradation trades the contention-freeness guarantee for liveness).

``repro.verify`` is imported lazily so the machine layer can import
``repro.faults`` without dragging the verifier in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..machine.routing import remap_leaves, route_phase
from ..util.bits import leaf_of_slot

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.simulator import TreeMachine
    from ..orderings.schedule import Schedule

__all__ = ["DegradedReport", "validate_degraded"]


@dataclass
class DegradedReport:
    """Outcome of re-validating a schedule on a degraded machine."""

    ok: bool
    max_contention: float
    dead_leaves: tuple[int, ...]
    notes: list[str] = field(default_factory=list)

    def describe(self) -> str:
        state = "sound" if self.ok else "UNSOUND"
        return (f"degraded schedule {state}: dead leaves "
                f"{sorted(self.dead_leaves)}, remapped contention "
                f"{self.max_contention:.2f}"
                + ("; " + "; ".join(self.notes) if self.notes else ""))


def validate_degraded(machine: "TreeMachine",
                      schedule: "Schedule") -> DegradedReport:
    """Re-validate ``schedule`` for the machine's current host map."""
    from ..verify import lint_schedule  # lazy: keep machine -> verify cut

    report = lint_schedule(schedule, machine.topology)
    notes = [f"{d.rule}: {d.message}" for d in report.errors]
    # RACE002/CAP* style findings were proven on the healthy map; what
    # degradation actually changes is the physical routing below.
    worst = 0.0
    for step in schedule.steps:
        if not step.moves:
            continue
        pairs = remap_leaves(
            ((leaf_of_slot(mv.src), leaf_of_slot(mv.dst))
             for mv in step.moves),
            machine.host_of_leaf,
        )
        phase = route_phase(machine.topology, pairs)
        worst = max(worst, phase.contention)
    dead = tuple(sorted(machine.dead_leaves))
    if worst > 1.0:
        notes.append(
            f"remapped routing oversubscribes a channel ({worst:.2f}x); "
            "accepted in degraded mode (liveness over contention-freeness)")
    return DegradedReport(ok=report.ok, max_contention=worst,
                          dead_leaves=dead, notes=notes)
