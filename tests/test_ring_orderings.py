"""Tests of the round-robin, odd-even and new ring orderings (Figs 1, 7, 8).

Every prose invariant of Sections 1 and 4 of the paper is asserted here:
validity, step counts, order restoration, one-directional balanced
messages and the Definition-1 equivalence with round-robin.
"""

import pytest

from repro.orderings.oddeven import OddEvenOrdering, odd_even_sweep
from repro.orderings.properties import (
    check_all_pairs_once,
    check_local_pairs,
    check_one_directional,
    find_relabelling,
    relabelling_equivalent,
    sweep_message_counts,
)
from repro.orderings.ringnew import (
    RingOrdering,
    folded_layout,
    ring_pair_schedule,
    ring_sweep,
    round_robin_relabelling,
)
from repro.orderings.roundrobin import RoundRobinOrdering, round_robin_sweep

SIZES = [4, 8, 16, 32]


class TestRoundRobin:
    @pytest.mark.parametrize("n", SIZES)
    def test_valid_sweep(self, n):
        assert check_all_pairs_once(round_robin_sweep(n)).is_valid

    @pytest.mark.parametrize("n", SIZES)
    def test_n_minus_one_steps(self, n):
        assert round_robin_sweep(n).n_rotation_steps == n - 1

    @pytest.mark.parametrize("n", SIZES)
    def test_layout_restored_every_sweep(self, n):
        assert RoundRobinOrdering(n).restoration_period() == 1

    def test_rejects_odd_n(self):
        with pytest.raises(ValueError):
            RoundRobinOrdering(7)

    @pytest.mark.parametrize("n", SIZES)
    def test_pairs_local(self, n):
        assert check_local_pairs(round_robin_sweep(n))

    def test_n2_trivial(self):
        s = round_robin_sweep(2)
        assert s.n_steps == 1
        assert check_all_pairs_once(s).is_valid

    def test_known_n8_schedule(self):
        # the classical circle-method table
        pairs = round_robin_sweep(8).index_pairs()
        assert pairs[0] == [(1, 2), (3, 4), (5, 6), (7, 8)]
        flat = {frozenset(p) for st in pairs for p in st}
        assert len(flat) == 28

    @pytest.mark.parametrize("n", SIZES)
    def test_two_sends_per_leaf_per_step(self, n):
        # round-robin communication is two-way: interior leaves both send
        # and receive on each side
        s = round_robin_sweep(n)
        m = n // 2
        if m > 1:
            counts = sweep_message_counts(s)
            # total messages per step: the moving cycle has 2m-1 slots, of
            # which 2 moves are intra-leaf-free... measured instead:
            assert all(c >= m - 1 for c in counts.values())


class TestOddEven:
    @pytest.mark.parametrize("n", SIZES)
    def test_valid_sweep(self, n):
        assert check_all_pairs_once(odd_even_sweep(n)).is_valid

    @pytest.mark.parametrize("n", SIZES)
    def test_n_steps(self, n):
        assert odd_even_sweep(n).n_rotation_steps == n

    @pytest.mark.parametrize("n", SIZES)
    def test_reverses_layout(self, n):
        assert odd_even_sweep(n).final_layout() == list(range(n, 0, -1))

    @pytest.mark.parametrize("n", SIZES)
    def test_period_two(self, n):
        assert OddEvenOrdering(n).restoration_period() == 2

    def test_nearest_neighbour_only(self):
        s = odd_even_sweep(16)
        for _, mv in s.all_moves():
            assert mv.level <= 1 or (mv.src // 2) + 1 == (mv.dst // 2) or (mv.dst // 2) + 1 == (mv.src // 2)


class TestFoldConstruction:
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("modified", [False, True])
    def test_fold_is_permutation(self, n, modified):
        flat = [x for p in folded_layout(n, modified) for x in p]
        assert sorted(flat) == list(range(1, n + 1))

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("modified", [False, True])
    def test_pair_schedule_valid(self, n, modified):
        sched = ring_pair_schedule(n, modified)
        assert len(sched) == n - 1
        seen = [p for st in sched for p in st]
        assert len(set(seen)) == n * (n - 1) // 2

    def test_leftmost_pair_not_swapped(self):
        lay = folded_layout(8, True)
        assert (1, 2) in lay  # the exception in the fold recipe


class TestRingOrdering:
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("modified", [False, True])
    def test_valid_sweep(self, n, modified):
        assert check_all_pairs_once(ring_sweep(n, modified)).is_valid

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("modified", [False, True])
    def test_n_minus_one_steps(self, n, modified):
        assert ring_sweep(n, modified).n_rotation_steps == n - 1

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("modified", [False, True])
    def test_one_directional(self, n, modified):
        assert check_one_directional(ring_sweep(n, modified))

    @pytest.mark.parametrize("n", [8, 16, 32])
    @pytest.mark.parametrize("modified", [False, True])
    def test_one_message_per_processor_per_step(self, n, modified):
        counts = sweep_message_counts(ring_sweep(n, modified))
        m = n // 2
        # every rotation step is followed by exactly m messages (one per
        # leaf) — the evenly distributed traffic of Section 4
        values = list(counts.values())
        assert all(v == m for v in values[:-1])

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("modified", [False, True])
    def test_restored_after_two_sweeps(self, n, modified):
        assert RingOrdering(n, modified).restoration_period() in (1, 2)
        if n > 4 or modified:
            assert RingOrdering(n, modified).restoration_period() == 2

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_plain_pins_pair_one_two(self, n):
        final = ring_sweep(n, False).final_layout()
        assert final[0] == 1 and final[1] == 2

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_plain_reverses_remaining_pairs(self, n):
        final = ring_sweep(n, False).final_layout()
        pairs = [tuple(final[i:i + 2]) for i in range(0, n, 2)]
        expected = [(1, 2)] + [(2 * j + 1, 2 * j + 2) for j in range(n // 2 - 1, 0, -1)]
        assert pairs == expected

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_modified_reverses_all_pairs(self, n):
        final = ring_sweep(n, True).final_layout()
        pairs = [tuple(final[i:i + 2]) for i in range(0, n, 2)]
        expected = [(2 * j + 1, 2 * j + 2) for j in range(n // 2 - 1, -1, -1)]
        assert pairs == expected

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("modified", [False, True])
    def test_pairs_local(self, n, modified):
        assert check_local_pairs(ring_sweep(n, modified))

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("modified", [False, True])
    def test_equivalent_to_round_robin(self, n, modified):
        ring = ring_sweep(n, modified)
        rr = round_robin_sweep(n)
        mapping = round_robin_relabelling(n, modified)
        assert relabelling_equivalent(ring, rr, mapping)

    def test_relabelling_is_bijection(self):
        for modified in (False, True):
            mapping = round_robin_relabelling(16, modified)
            assert sorted(mapping) == list(range(1, 17))
            assert sorted(mapping.values()) == list(range(1, 17))

    def test_search_finds_equivalence_small(self):
        # independent confirmation: the generic searcher also proves it
        ring = ring_sweep(8, False)
        rr = round_robin_sweep(8)
        assert find_relabelling(ring, rr) is not None

    def test_larger_instance_solves(self):
        s = ring_sweep(64, False)
        assert check_all_pairs_once(s).is_valid
        assert check_one_directional(s)
