"""Reference decomposition and accuracy metrics.

``numpy.linalg.svd`` (LAPACK's Golub-Kahan/QR-based driver) serves as
the ground truth the Jacobi drivers are validated against; the metrics
here are the standard backward-error style measures.
"""

from __future__ import annotations

import numpy as np

from ..core.result import SVDResult

__all__ = ["reference_singular_values", "accuracy_report"]


def reference_singular_values(a: np.ndarray) -> np.ndarray:
    """Nonincreasing singular values from the LAPACK reference."""
    return np.linalg.svd(np.asarray(a, dtype=np.float64), compute_uv=False)


def accuracy_report(a: np.ndarray, result: SVDResult) -> dict[str, float]:
    """Standard error measures of a computed SVD against ``a``.

    * ``sigma_err``     — max relative singular-value error vs LAPACK
    * ``recon_err``     — relative Frobenius reconstruction error
    * ``u_ortho_err``   — || U_r^T U_r - I ||
    * ``v_ortho_err``   — || V^T V - I ||
    """
    a = np.asarray(a, dtype=np.float64)
    ref = reference_singular_values(a)
    scale = ref[0] if ref.size and ref[0] > 0 else 1.0
    k = min(len(ref), len(result.sigma))
    sigma_err = float(np.max(np.abs(result.sigma[:k] - ref[:k])) / scale) if k else 0.0
    r = result.rank
    u_r = result.u[:, :r]
    u_ortho = float(np.linalg.norm(u_r.T @ u_r - np.eye(r))) if r else 0.0
    v_ortho = float(np.linalg.norm(result.v.T @ result.v - np.eye(result.v.shape[1])))
    return {
        "sigma_err": sigma_err,
        "recon_err": result.reconstruction_error(a),
        "u_ortho_err": u_ortho,
        "v_ortho_err": v_ortho,
    }
