"""Compute-backend registry: probing, fallback and einsum bit-identity.

The registry (:mod:`repro.kernels`) dispatches the block kernels'
batched GEMMs.  ``numpy`` is the always-available reference; ``einsum``
is a documented **bit-identical** alternative (same pairwise-summation
kernels underneath, with the one non-identical einsum form routed back
through ``np.matmul``); ``numba``/``cupy`` are optional accelerators
gated on importability — absent on this host, which is exactly the
configuration the probe/fallback machinery exists for.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.kernels import (
    COMPUTE_BACKENDS,
    ComputeBackend,
    ComputeBackendWarning,
    available_compute_backends,
    clear_backend_cache,
    compute_backend_status,
    default_compute_backend_name,
    numpy_backend,
    resolve_compute_backend,
)
from repro.kernels import _PROBES as PROBES


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_backend_cache()
    yield
    clear_backend_cache()


class TestRegistry:
    def test_registry_is_stable(self):
        assert COMPUTE_BACKENDS == ("numpy", "einsum", "numba", "cupy")

    def test_numpy_and_einsum_always_available(self):
        status = compute_backend_status()
        assert status["numpy"] is None
        assert status["einsum"] is None
        assert set(status) == set(COMPUTE_BACKENDS)
        assert set(available_compute_backends()) >= {"numpy", "einsum"}

    def test_optional_backends_report_their_probe_failure(self):
        status = compute_backend_status()
        for name in ("numba", "cupy"):
            try:
                __import__(name)
            except ImportError:
                assert status[name] is not None
                assert "Error" in status[name]

    def test_instance_passes_through(self):
        bk = numpy_backend()
        assert resolve_compute_backend(bk) is bk

    def test_unknown_name_lists_the_catalogue(self):
        with pytest.raises(ValueError, match="available: numpy, einsum"):
            resolve_compute_backend("tensorcore")

    def test_unavailable_backend_falls_back_with_a_warning(self, monkeypatch):
        def boom():
            raise ImportError("llvmlite missing")

        monkeypatch.setitem(PROBES, "numba", boom)
        clear_backend_cache()
        with pytest.warns(ComputeBackendWarning, match="llvmlite missing"):
            bk = resolve_compute_backend("numba")
        assert bk.name == "numpy"

    def test_unavailable_backend_strict_mode_raises(self, monkeypatch):
        def boom():
            raise ImportError("llvmlite missing")

        monkeypatch.setitem(PROBES, "numba", boom)
        clear_backend_cache()
        with pytest.raises(ValueError, match="llvmlite missing"):
            resolve_compute_backend("numba", fallback=False)

    def test_env_default_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPUTE_BACKEND", raising=False)
        assert default_compute_backend_name() == "numpy"
        monkeypatch.setenv("REPRO_COMPUTE_BACKEND", "einsum")
        assert default_compute_backend_name() == "einsum"
        assert resolve_compute_backend().name == "einsum"
        monkeypatch.setenv("REPRO_COMPUTE_BACKEND", "warp")
        with pytest.raises(ValueError):
            default_compute_backend_name()

    def test_backend_functions_pickle_by_reference(self):
        # the process executor ships the backend inside task payloads
        import pickle

        bk = resolve_compute_backend("einsum")
        clone = pickle.loads(pickle.dumps(bk))
        assert isinstance(clone, ComputeBackend)
        assert clone.name == bk.name
        assert clone.gram is bk.gram


class TestEinsumBitIdentity:
    """einsum == numpy, bit for bit, on every dispatch path."""

    def test_primitive_parity_including_single_item_batches(self):
        rng = np.random.default_rng(0)
        es = resolve_compute_backend("einsum")
        npb = numpy_backend()
        for batch in (1, 2, 5):  # B == 1 exercises the matmul reroute
            y = rng.standard_normal((batch, 4, 6))
            w = rng.standard_normal((batch, 4, 4))
            assert np.array_equal(es.gram(y), npb.gram(y))
            assert np.array_equal(es.apply_wt(w, y), npb.apply_wt(w, y))
            assert np.array_equal(es.matmul(w, y), npb.matmul(w, y))

    @pytest.mark.parametrize("kernel", ["batched", "gram"])
    def test_block_svd_parity(self, kernel):
        from repro import svd

        rng = np.random.default_rng(21)
        a = rng.standard_normal((24, 16))
        ref = svd(a, ordering="ring_new", block_size=4, kernel=kernel)
        r = svd(a, ordering="ring_new", block_size=4, kernel=kernel,
                compute_backend="einsum")
        assert np.array_equal(ref.sigma, r.sigma)
        assert np.array_equal(ref.u, r.u)
        assert np.array_equal(ref.v, r.v)
        assert ref.sweeps == r.sweeps

    def test_batch_api_parity(self):
        from repro import svd_batch

        rng = np.random.default_rng(13)
        stack = rng.standard_normal((4, 12, 8))
        ref = svd_batch(stack, ordering="ring_new", kernel="gram",
                        block_size=2)
        r = svd_batch(stack, ordering="ring_new", kernel="gram",
                      block_size=2, compute_backend="einsum")
        for item_ref, item in zip(ref, r):
            assert np.array_equal(item_ref.sigma, item.sigma)
            assert np.array_equal(item_ref.u, item.u)
            assert np.array_equal(item_ref.v, item.v)

    def test_gram_eigh_batched_parity(self):
        from repro.eig.jacobi import gram_eigh_batched

        rng = np.random.default_rng(5)
        y = rng.standard_normal((3, 4, 4))
        g = np.matmul(y, y.transpose(0, 2, 1))
        g0, g1 = g.copy(), g.copy()
        w0, rot0, sw0, ok0 = gram_eigh_batched(g0)
        w1, rot1, sw1, ok1 = gram_eigh_batched(
            g1, backend=resolve_compute_backend("einsum"))
        assert np.array_equal(w0, w1)
        assert np.array_equal(g0, g1)  # in-place result identical too
        assert (rot0, sw0, ok0) == (rot1, sw1, ok1)

    def test_parity_composes_with_executors(self):
        from repro import svd

        rng = np.random.default_rng(8)
        a = rng.standard_normal((24, 16))
        ref = svd(a, ordering="ring_new", block_size=4, kernel="gram")
        for executor in ("threads", "processes"):
            r = svd(a, ordering="ring_new", block_size=4, kernel="gram",
                    compute_backend="einsum", executor=executor, workers=2)
            assert np.array_equal(ref.sigma, r.sigma), executor
            assert np.array_equal(ref.u, r.u)
            assert np.array_equal(ref.v, r.v)


class TestOptionValidation:
    def test_block_options_reject_unknown_backend(self):
        from repro.blockjacobi import BlockJacobiOptions

        with pytest.raises(ValueError, match="compute backend"):
            BlockJacobiOptions(block_size=2, compute_backend="warp")

    def test_jacobi_options_reject_unknown_backend(self):
        from repro.svd.hestenes import JacobiOptions

        with pytest.raises(ValueError, match="compute backend"):
            JacobiOptions(compute_backend="warp")

    def test_scalar_mode_rejects_compute_backend(self):
        from repro import svd

        a = np.eye(8)
        with pytest.raises(ValueError, match="block mode only"):
            svd(a, compute_backend="einsum")

    def test_cli_requires_block_size(self, capsys):
        rc = main(["svd", "--m", "16", "--n", "8", "--serial",
                   "--ordering", "ring_new", "--compute-backend", "einsum"])
        assert rc == 2
        assert "--block-size" in capsys.readouterr().out

    def test_cli_block_run_with_einsum(self, capsys):
        rc = main(["svd", "--m", "24", "--n", "16", "--serial",
                   "--ordering", "ring_new", "--block-size", "4",
                   "--kernel", "gram", "--compute-backend", "einsum"])
        assert rc == 0
        assert "converged=True" in capsys.readouterr().out
