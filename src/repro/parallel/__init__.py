"""Distributed SVD driver over the simulated tree machine."""

from .distribution import (
    leaf_layout,
    next_admissible_width,
    pad_columns,
    strip_padding,
)
from .driver import ParallelJacobiSVD, ParallelRunReport

__all__ = [
    "ParallelJacobiSVD",
    "ParallelRunReport",
    "leaf_layout",
    "next_admissible_width",
    "pad_columns",
    "strip_padding",
]
