"""Shared utilities: bit tricks, validation, text table rendering."""

from .bits import comm_level, ilog2, is_power_of_two, leaf_of_slot, msb
from .formatting import render_pairs, render_step_table, render_table
from .validation import require, require_even, require_power_of_two, require_range

__all__ = [
    "comm_level",
    "ilog2",
    "is_power_of_two",
    "leaf_of_slot",
    "msb",
    "render_pairs",
    "render_step_table",
    "render_table",
    "require",
    "require_even",
    "require_power_of_two",
    "require_range",
]
