"""Shared fixtures for the test-suite.

The suite honours the step-executor environment knobs: running it with
``REPRO_EXECUTOR=threads REPRO_WORKERS=2`` makes every block-mode driver
default to the threaded step backend (results are bit-identical to
serial, so the whole suite must pass unchanged — CI runs it both ways).
"""

from __future__ import annotations

import os

import numpy as np
import pytest


def pytest_report_header(config) -> list[str]:
    """Surface the executor the suite runs under (env-driven default)."""
    from repro.parallel.executor import default_executor_name, default_workers

    name = default_executor_name()
    line = f"repro step executor: {name}"
    if name != "serial":
        line += f" (workers={default_workers()})"
    if "REPRO_EXECUTOR" in os.environ or "REPRO_WORKERS" in os.environ:
        line += "  [from environment]"
    return [line]


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_matrix(rng: np.random.Generator) -> np.ndarray:
    return rng.standard_normal((12, 8))


@pytest.fixture
def medium_matrix(rng: np.random.Generator) -> np.ndarray:
    return rng.standard_normal((24, 16))


@pytest.fixture
def verifier():
    """The static schedule verifier (:func:`repro.verify.lint_schedule`).

    Exposed as a fixture so property-based tests can cross-check the
    static analysis against the dynamic predicates on generated inputs
    without each module importing the verify package directly.
    """
    from repro.verify import lint_schedule

    return lint_schedule


@pytest.fixture
def ordering_verifier():
    """Ordering-level static verifier (:func:`repro.verify.lint_ordering`)."""
    from repro.verify import lint_ordering

    return lint_ordering
