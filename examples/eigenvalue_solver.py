"""Symmetric eigenproblems under the same parallel orderings.

The paper descends from Brent & Luk's work on "singular-value and
symmetric eigenvalue problems on multiprocessor arrays" [2]: the very
same parallel orderings drive the two-sided Jacobi eigenvalue method.
This example diagonalises a symmetric matrix under several orderings
and cross-checks the spectrum against LAPACK.

Run:  python examples/eigenvalue_solver.py
"""

import numpy as np

from repro import jacobi_eigh

rng = np.random.default_rng(4)
n = 32
a = rng.standard_normal((n, n))
a = (a + a.T) / 2.0

ref = np.linalg.eigvalsh(a)[::-1]
print(f"symmetric {n}x{n} matrix; reference spectrum head: {np.round(ref[:4], 4)}\n")

for name in ("fat_tree", "ring_new", "round_robin", "hybrid"):
    kwargs = {"n_groups": 4} if name == "hybrid" else {}
    r = jacobi_eigh(a, ordering=name, **kwargs)
    err = float(np.max(np.abs(r.w - ref)))
    resid = float(np.linalg.norm(a @ r.v - r.v * r.w))
    print(f"{name:12s}: sweeps={r.sweeps:2d} rotations={r.rotations:5d} "
          f"max|lambda err|={err:.2e} ||Av - v diag(w)||={resid:.2e}")

print("\nEquivalent orderings (ring vs round-robin) converge in nearly the")
print("same number of sweeps - Definition 1 at work on the eigenproblem too.")

# off-diagonal decay: the same quadratic tail as the SVD iteration
r = jacobi_eigh(a, ordering="fat_tree")
print("\noff-diagonal norm per sweep (fat-tree ordering):")
for k, off in enumerate(r.off_history, start=1):
    print(f"   sweep {k}: {off:.3e}")
