"""Synchronous alpha-beta cost model for simulated sweeps.

Each schedule step is a compute phase followed by a communication phase:

* compute: the slowest leaf performs its rotations back-to-back; one
  rotation on columns of length ``m`` costs ``rotation_flops(m)`` =
  ``~10 m`` flops (three fused dot products + two column updates);
* communication: all messages of the phase start together; a channel
  with ``load`` messages and ``capacity`` wires serialises them in
  ``ceil(load / capacity)`` rounds, so the phase's transfer time is
  ``beta * words * max_round_count`` plus a per-phase startup ``alpha``
  charged once (wormhole-style synchronous phase, the regime the CM-5
  measurements of [13] motivate: contention, not distance, dominates).

The constants default to a CM-5-flavoured balance (fast channels,
expensive startup relative to flops) but are plain dataclass fields —
the TAB-TIME experiment sweeps them to find the fat-tree/hybrid
crossover the paper's conclusion anticipates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .routing import MessagePhase

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Time constants, in arbitrary consistent units (say, microseconds).

    ``alpha``      — per-phase message startup overhead
    ``beta``       — per-word transfer time on one channel wire
    ``flop_time``  — time per floating point operation
    ``hop_time``   — per-level pipelining latency of a message

    Fault-recovery constants (used only when a fault plan is active):

    ``retry_timeout`` — sender-side retransmission timeout of the
    ack/seq transport; ``backoff_cap`` caps its exponential growth.
    """

    alpha: float = 50.0
    beta: float = 0.25
    flop_time: float = 0.01
    hop_time: float = 2.0
    retry_timeout: float = 200.0
    backoff_cap: float = 1600.0

    def rotation_flops(self, m: int) -> int:
        """Flops of one plane rotation on two length-``m`` columns:
        3 dot products (6m) plus the 2-column update (4m)."""
        return 10 * m

    def compute_time(self, max_rotations_per_leaf: int, m: int) -> float:
        """Compute phase: the busiest leaf's rotations, serialised."""
        return max_rotations_per_leaf * self.rotation_flops(m) * self.flop_time

    def block_compute_time(
        self, max_pairs_per_leaf: int, m: int, b: int, inner_sweeps: int
    ) -> float:
        """Compute phase of a *block* step: each met block pair solves a
        ``2b``-column local subproblem — ``inner_sweeps`` cyclic sweeps
        over its ``b (2b - 1)`` column pairs — so the busiest leaf is
        charged that many plane rotations (``b = 1`` degenerates to
        ``inner_sweeps`` scalar rotations per met pair)."""
        rotations = inner_sweeps * b * (2 * b - 1)
        return max_pairs_per_leaf * rotations * self.rotation_flops(m) * self.flop_time

    def comm_time(self, phase: MessagePhase, words_per_message: int) -> float:
        """Communication phase under channel serialisation."""
        if phase.n_messages == 0:
            return 0.0
        rounds = max(1, math.ceil(phase.contention - 1e-12))
        return (
            self.alpha
            + self.hop_time * 2 * phase.max_level
            + self.beta * words_per_message * rounds
        )

    # -- fault-recovery charges (ack/seq transport and checkpointing) ----

    def backoff_time(self, attempt: int) -> float:
        """Sender wait before retransmission ``attempt`` (0-based):
        capped exponential backoff on the base timeout."""
        return min(self.retry_timeout * (2.0 ** attempt), self.backoff_cap)

    def retransmit_time(self, words: int, level: int) -> float:
        """One retransmission of a ``words``-word message over an
        uncontended path of the given level (startup + hops + transfer)."""
        return self.alpha + self.hop_time * 2 * level + self.beta * words

    def ack_time(self, n_messages: int) -> float:
        """Per-phase acknowledgement traffic: one tiny (1-word) reverse
        message per delivery, pipelined — charged once per phase."""
        if n_messages == 0:
            return 0.0
        return self.alpha + self.beta * n_messages

    def duplicate_time(self, words: int) -> float:
        """Receiver-side cost of catching a duplicated delivery: the
        redundant transfer occupies the wire, the dedup check is free."""
        return self.beta * words

    def checkpoint_time(self, words: int) -> float:
        """Sweep-boundary checkpoint: every leaf copies its resident
        columns (``words`` in total) to local stable storage, in
        parallel — memory-speed, so beta-priced without startup."""
        return self.beta * words

    def rollback_time(self, words: int) -> float:
        """Restoring a checkpoint costs the same copy plus one
        synchronisation startup to re-align the leaves."""
        return self.alpha + self.beta * words

    def remap_time(self, words: int, level: int = 1) -> float:
        """Re-hosting a dead leaf's columns on its sibling: one bulk
        transfer of ``words`` words over a level-``level`` path (the
        sibling shares the lowest switch) plus coordination startup."""
        return 2 * self.alpha + self.hop_time * 2 * level + self.beta * words

    def outage_wait(self, steps_remaining: int) -> float:
        """Waiting out a link-outage window after backoff is exhausted:
        the sender idles for the remaining window, priced at one capped
        backoff per step still covered."""
        return max(1, steps_remaining) * self.backoff_cap
