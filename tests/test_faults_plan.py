"""Unit tests of the fault-injection layer: plan DSL, injector
bookkeeping, ack/seq transport arithmetic, and corruption operators."""

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    LeafFailure,
    UnrecoverableFault,
)
from repro.faults.corruptions import (
    PAYLOAD_MODES,
    corrupt_payload,
    first_remote_move,
    remote_moves,
)
from repro.faults.plan import FAULT_KINDS, Fault
from repro.faults.transport import AckTransport
from repro.machine.costmodel import CostModel
from repro.orderings import make_ordering


class TestFaultPlanDSL:
    def test_builders_cover_every_kind(self):
        plan = (FaultPlan()
                .drop(sweep=0, step=1, src=0, dst=1)
                .duplicate(sweep=0, step=1, src=0, dst=1)
                .delay(sweep=0, step=1, src=0, dst=1, duration=50.0)
                .corrupt(sweep=0, step=1, src=0, dst=1, mode="nan")
                .corrupt(sweep=0, step=1, src=0, dst=1, mode="nan", silent=True)
                .stall(leaf=0, sweep=0, step=1, duration=100.0)
                .crash(leaf=1, sweep=0, step=2)
                .outage(level=1, sweep=0, step=1, until_step=2))
        assert sorted({f.kind for f in plan.faults}) == sorted(FAULT_KINDS)

    def test_plan_is_immutable_and_fluent(self):
        base = FaultPlan()
        extended = base.drop(sweep=0, step=1, src=0, dst=1)
        assert base.faults == ()
        assert len(extended.faults) == 1

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("gremlin", sweep=0, step=1)

    def test_bad_payload_mode_rejected(self):
        with pytest.raises(ValueError):
            Fault("corrupt", sweep=0, step=1, mode="sparkle")

    def test_message_matching_honours_wildcards(self):
        f = Fault("drop", sweep=0, step=None, src=None, dst=3)
        assert f.matches_message(0, 5, 1, 3)
        assert not f.matches_message(1, 5, 1, 3)  # wrong sweep
        assert not f.matches_message(0, 5, 1, 2)  # wrong dst

    def test_outage_covers_higher_levels_and_window(self):
        f = Fault("outage", sweep=0, step=2, until_step=4, level=2)
        assert f.outage_covers(0, 3, 2)
        assert f.outage_covers(0, 3, 3)  # higher level uses the same spine
        assert not f.outage_covers(0, 3, 1)
        assert not f.outage_covers(0, 5, 2)  # past the window
        assert not f.outage_covers(1, 3, 2)  # wrong sweep


class TestFaultInjector:
    def test_leaf_range_validated(self):
        plan = FaultPlan().crash(leaf=9, sweep=0, step=1)
        with pytest.raises(ValueError):
            FaultInjector(plan, n_leaves=4)

    def test_crash_fires_once_and_persists(self):
        plan = FaultPlan().crash(leaf=1, sweep=0, step=2)
        inj = FaultInjector(plan, n_leaves=4)
        assert inj.advance(0, 1) == []
        assert inj.advance(0, 2) == [1]
        assert inj.advance(0, 2) == []  # fires spent
        assert inj.dead == {1}

    def test_message_fault_consumes_per_attempt(self):
        plan = FaultPlan().drop(sweep=0, step=1, src=0, dst=1, fires=2)
        inj = FaultInjector(plan, n_leaves=4)
        assert inj.message_fault(0, 1, 0, 1) is not None
        assert inj.message_fault(0, 1, 0, 1) is not None
        assert inj.message_fault(0, 1, 0, 1) is None
        assert inj.pending() == 0

    def test_outage_not_consumed_until_cleared(self):
        plan = FaultPlan().outage(level=1, sweep=0, step=1, until_step=3)
        inj = FaultInjector(plan, n_leaves=4)
        f = inj.outage_fault(0, 1, 1)
        assert f is not None
        assert inj.outage_fault(0, 2, 2) is f  # still armed
        inj.clear(f)
        assert inj.outage_fault(0, 2, 1) is None

    def test_stalls_consumed(self):
        plan = FaultPlan().stall(leaf=2, sweep=0, step=1, duration=75.0)
        inj = FaultInjector(plan, n_leaves=4)
        assert inj.stalls(0, 1) == [(2, 75.0)]
        assert inj.stalls(0, 1) == []

    def test_seed_reproducible_rng(self):
        plan = FaultPlan(seed=42).drop(sweep=0, step=1, src=0, dst=1)
        a = FaultInjector(plan, 4).rng.integers(1 << 30)
        b = FaultInjector(plan, 4).rng.integers(1 << 30)
        assert a == b


class TestAckTransport:
    def _transport(self, plan):
        cost = CostModel()
        inj = FaultInjector(plan, n_leaves=4)
        return AckTransport(cost, inj), inj, cost

    def test_clean_phase_charges_only_ack(self):
        t, inj, cost = self._transport(FaultPlan())
        out = t.deliver_phase(0, 1, [(0, 1, 1), (2, 3, 1)], words=8)
        assert out.retries == 0
        assert out.events == []
        assert out.extra_time == pytest.approx(cost.ack_time(2))

    def test_drop_retransmits_with_exponential_backoff(self):
        plan = FaultPlan().drop(sweep=0, step=1, src=0, dst=1, fires=2)
        t, inj, cost = self._transport(plan)
        out = t.deliver_phase(0, 1, [(0, 1, 1)], words=8)
        assert out.retries == 2
        expected = (cost.backoff_time(0) + cost.backoff_time(1)
                    + 2 * cost.retransmit_time(8, 1) + cost.ack_time(1))
        assert out.extra_time == pytest.approx(expected)

    def test_backoff_is_capped(self):
        cost = CostModel()
        assert cost.backoff_time(50) == cost.backoff_cap

    def test_drop_exhausting_retries_is_unrecoverable(self):
        plan = FaultPlan(max_retries=2).drop(
            sweep=0, step=1, src=0, dst=1, fires=10)
        t, inj, _ = self._transport(plan)
        with pytest.raises(UnrecoverableFault):
            t.deliver_phase(0, 1, [(0, 1, 1)], words=8)

    def test_duplicate_discarded_by_sequence_number(self):
        plan = FaultPlan().duplicate(sweep=0, step=1, src=0, dst=1)
        t, inj, cost = self._transport(plan)
        out = t.deliver_phase(0, 1, [(0, 1, 1)], words=8)
        actions = [e.action for e in out.events]
        assert "dedup" in actions
        assert t._delivered[(0, 1)] == {0}

    def test_sequence_numbers_advance_per_directed_link(self):
        t, inj, _ = self._transport(FaultPlan())
        t.deliver_phase(0, 1, [(0, 1, 1)], words=8)
        t.deliver_phase(0, 2, [(0, 1, 1), (1, 0, 1)], words=8)
        assert t._next_seq[(0, 1)] == 2
        assert t._next_seq[(1, 0)] == 1

    def test_dead_peer_burns_budget_then_reports_leaf(self):
        plan = FaultPlan().crash(leaf=1, sweep=0, step=1)
        t, inj, _ = self._transport(plan)
        inj.advance(0, 1)
        with pytest.raises(LeafFailure) as exc:
            t.deliver_phase(0, 1, [(0, 1, 1)], words=8)
        assert exc.value.leaf == 1
        assert inj.log  # retries + crash report recorded

    def test_outage_waited_out_and_cleared(self):
        plan = FaultPlan().outage(level=1, sweep=0, step=1, until_step=2)
        t, inj, _ = self._transport(plan)
        out = t.deliver_phase(0, 1, [(0, 1, 1)], words=8)
        assert any(e.action == "outage-wait" for e in out.events)
        assert inj.pending() == 0  # cleared after the wait

    def test_silent_corruption_delivered_and_flagged(self):
        plan = FaultPlan().corrupt(sweep=0, step=1, src=0, dst=1,
                                   mode="nan", silent=True)
        t, inj, _ = self._transport(plan)
        out = t.deliver_phase(0, 1, [(0, 1, 1)], words=8)
        assert out.silent == [(0, 1, "nan")]
        assert any(e.action == "corrupted" for e in out.events)


class TestCorruptions:
    def test_remote_moves_are_one_based(self):
        sched = make_ordering("fat_tree", 8).sweep(0)
        moves = remote_moves(sched)
        assert moves
        assert all(k >= 1 for k, _ in moves)
        k, mv = first_remote_move(sched)
        assert (k, mv.src, mv.dst) == (moves[0][0], moves[0][1].src,
                                       moves[0][1].dst)

    @pytest.mark.parametrize("mode", PAYLOAD_MODES)
    def test_corrupt_payload_changes_data(self, mode):
        rng = np.random.default_rng(0)
        data = np.arange(1.0, 9.0)
        before = data.copy()
        corrupt_payload(data, mode, rng)
        assert not np.array_equal(data, before, equal_nan=True)

    def test_corrupt_payload_works_on_strided_views(self):
        # a column of a C-ordered matrix is a strided view; corruption
        # must land in the backing matrix, not a temporary copy
        rng = np.random.default_rng(0)
        X = np.ones((6, 4))
        corrupt_payload(X[:, 2], "nan", rng)
        assert np.isnan(X[:, 2]).sum() == 1
        assert np.isfinite(X[:, [0, 1, 3]]).all()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            corrupt_payload(np.ones(4), "sparkle", np.random.default_rng(0))
