"""Convergence watchdog: off-norm stall detection and escalation.

Jacobi's off-norm should fall quadratically once sweeps start landing;
a fault that silently degrades the iteration (or a degraded machine
that keeps re-rotating the same columns) shows up as a *stall* — the
off-norm stops shrinking long before ``max_sweeps`` runs out.  The
watchdog watches the per-sweep off-norm series and raises a flag the
first time a ``window``-sweep span fails to shrink it by at least the
``factor``; the driver surfaces the flag on the result (and the event
log) instead of letting the loop spin silently to exhaustion.
"""

from __future__ import annotations

from ..util.validation import require

__all__ = ["ConvergenceWatchdog"]


class ConvergenceWatchdog:
    """Stateful stall detector over the sweep-by-sweep off-norm series."""

    def __init__(self, window: int = 4, factor: float = 0.9):
        require(window >= 1, f"window must be >= 1, got {window!r}")
        require(0.0 < factor < 1.0,
                f"factor must be in (0, 1), got {factor!r}")
        self.window = window
        self.factor = factor
        self._series: list[float] = []
        #: first stall diagnosis, or None while healthy
        self.message: str | None = None

    @property
    def stalled(self) -> bool:
        return self.message is not None

    def observe(self, sweep: int, off_norm: float) -> str | None:
        """Feed one sweep's off-norm; returns a diagnosis the first time
        a stall is detected, else None."""
        self._series.append(off_norm)
        if self.message is not None or len(self._series) <= self.window:
            return None
        past = self._series[-1 - self.window]
        if past > 0.0 and off_norm > self.factor * past:
            self.message = (
                f"off-norm stalled at sweep {sweep}: "
                f"{past:.3e} -> {off_norm:.3e} over {self.window} sweeps "
                f"(needed factor {self.factor})"
            )
            return self.message
        return None

    def escalate(self, max_sweeps: int) -> str:
        """Final diagnosis when the sweep budget is exhausted."""
        last = self._series[-1] if self._series else float("nan")
        base = (f"not converged after {max_sweeps} sweeps "
                f"(final off-norm {last:.3e})")
        if self.message is not None:
            base += f"; {self.message}"
        self.message = base
        return base
