"""TAB-CONT — channel contention per ordering x topology (Section 5).

Also carries the hybrid block-size ablation: the contention-free window
on the CM-5 model is exactly the block sizes whose column count fits the
lowest skinny channel, as the paper prescribes.
"""

from repro.analysis import contention_table, per_level_contention, render_contention_table
from repro.machine import make_topology
from repro.orderings import make_ordering


def test_tab_contention_n64(benchmark):
    rows = benchmark(
        contention_table, 64, **{"hybrid": {"n_groups": 8}}
    )
    print("\n" + render_contention_table(rows))
    by = {(r.topology, r.ordering): r for r in rows}
    assert by[("perfect_fat_tree", "fat_tree")].contention_free
    assert not by[("cm5", "fat_tree")].contention_free
    assert by[("cm5", "hybrid")].contention_free
    assert by[("binary_tree", "ring_new")].contention_free


def test_hybrid_block_size_ablation(benchmark):
    def sweep_block_sizes():
        out = {}
        n = 64
        topo = make_topology("cm5", n // 2)
        for g in (2, 4, 8, 16):
            K = n // (2 * g)
            prof = per_level_contention(
                make_ordering("hybrid", n, n_groups=g).sweep(0), topo
            )
            out[K] = max(prof.values())
        return out

    worst_by_block = benchmark(sweep_block_sizes)
    print("\nhybrid on CM-5, worst contention by block size:", worst_by_block)
    # blocks of <= 4 columns fit the skinny channels; larger blocks contend
    assert worst_by_block[2] <= 1.0
    assert worst_by_block[4] <= 1.0
    assert worst_by_block[16] > 1.0


def test_fat_tree_contention_growth(benchmark):
    def growth():
        out = []
        for n in (16, 64, 256):
            prof = per_level_contention(
                make_ordering("fat_tree", n).sweep(0), make_topology("cm5", n // 2)
            )
            out.append(max(prof.values()))
        return out

    worst = benchmark(growth)
    print("\nfat-tree ordering on CM-5, worst contention vs n:", worst)
    assert worst[-1] > worst[0]
