"""Tests of the analysis/experiment harness."""

import numpy as np
import pytest

from repro.analysis import (
    comm_cost_table,
    contention_table,
    convergence_table,
    fig1_round_robin,
    fig2_basic_two_block,
    fig3_two_block_size4,
    fig4_basic_modules,
    fig5_merge_scheme,
    fig6_four_block_eight,
    fig7_ring_ordering,
    fig8_modified_ring,
    fig9_hybrid_sixteen,
    per_level_contention,
    render_comm_table,
    render_contention_table,
    render_convergence_table,
    render_timing_table,
    ring_round_robin_equivalence,
    step_table,
    tab_time,
    workload_matrix,
)
from repro.machine import make_topology


class TestFigureGenerators:
    def test_fig1(self):
        s = fig1_round_robin(8)
        assert s.n_rotation_steps == 7

    def test_fig2(self):
        rows = step_table(fig2_basic_two_block())
        assert len(rows) == 2
        assert rows[0][1] == [(1, 2), (3, 4)]
        assert rows[1][1] == [(1, 4), (3, 2)]

    def test_fig3_levels(self):
        rows = step_table(fig3_two_block_size4())
        # the size-4 two-block ordering: 4 steps, level sequence 1,2,1
        assert len(rows) == 4
        anns = [r[2] for r in rows[:-1]]
        assert anns == ["level 1", "level 2", "level 1"]

    def test_fig4(self):
        a, b = fig4_basic_modules()
        assert a.final_layout() == [1, 2, 3, 4]
        assert b.final_layout() == [1, 2, 4, 3]

    def test_fig5(self):
        plan = fig5_merge_scheme(16)
        assert len(plan) == 3

    def test_fig6(self):
        rows = step_table(fig6_four_block_eight())
        assert len(rows) == 7
        assert rows[0][1] == [(1, 2), (3, 4), (5, 6), (7, 8)]
        # every pair has left < right (Fig 4(a) discipline)
        for _, pairs, _ in rows:
            assert all(a < b for a, b in pairs)

    def test_fig7_equivalence(self):
        _, eq = fig7_ring_ordering(8)
        assert eq.verified

    def test_fig8_equivalence(self):
        _, eq = fig8_modified_ring(8)
        assert eq.verified

    def test_fig9_structure(self):
        s = fig9_hybrid_sixteen()
        assert s.n_rotation_steps == 15
        assert s.notes["n_groups"] == 4

    @pytest.mark.parametrize("n", [8, 16, 32])
    @pytest.mark.parametrize("modified", [False, True])
    def test_equivalence_scales(self, n, modified):
        assert ring_round_robin_equivalence(n, modified).verified


class TestTables:
    def test_comm_cost_rows(self):
        rows = comm_cost_table(16)
        names = [r.ordering for r in rows]
        assert "fat_tree" in names and "round_robin" in names
        ft = next(r for r in rows if r.ordering == "fat_tree")
        rr = next(r for r in rows if r.ordering == "round_robin")
        # the fat-tree ordering sends fewer messages overall than
        # round-robin (locality pays)
        assert ft.total_messages < rr.total_messages

    def test_comm_render(self):
        text = render_comm_table(comm_cost_table(16))
        assert "TAB-COMM" in text and "fat_tree" in text

    def test_contention_rows(self):
        rows = contention_table(32, kwargs_by_name={"hybrid": {"n_groups": 8}})
        cm5 = {r.ordering: r for r in rows if r.topology == "cm5"}
        assert cm5["hybrid"].contention_free
        assert not cm5["fat_tree"].contention_free
        perfect = {r.ordering: r for r in rows if r.topology == "perfect_fat_tree"}
        assert perfect["fat_tree"].contention_free

    def test_contention_render(self):
        text = render_contention_table(contention_table(16))
        assert "TAB-CONT" in text

    def test_convergence_rows(self):
        rows = convergence_table(n=16, runs=2, names=["fat_tree", "ring_new"])
        for r in rows:
            assert r.converged_runs == r.runs
            assert r.max_sigma_err < 1e-11

    def test_convergence_render(self):
        rows = convergence_table(n=16, runs=1, names=["fat_tree"])
        assert "TAB-CONV" in render_convergence_table(rows)

    def test_timing_rows(self):
        rows = tab_time(n=16, topologies=["cm5"], names=["fat_tree", "hybrid"],
                        **{"hybrid": {"n_groups": 2}})
        assert len(rows) == 2
        assert all(r.total_time > 0 for r in rows)

    def test_timing_render(self):
        rows = tab_time(n=16, topologies=["cm5"], names=["fat_tree"])
        assert "TAB-TIME" in render_timing_table(rows)


class TestWorkloadGenerator:
    def test_kinds(self, rng):
        for kind in ("gaussian", "graded", "clustered"):
            a = workload_matrix(12, 8, rng, kind)
            assert a.shape == (12, 8)

    def test_graded_spectrum(self, rng):
        a = workload_matrix(16, 8, rng, "graded")
        s = np.linalg.svd(a, compute_uv=False)
        assert s[0] / s[-1] > 1e3

    def test_unknown_kind(self, rng):
        with pytest.raises(ValueError):
            workload_matrix(8, 4, rng, "spooky")


class TestPerLevelContention:
    def test_ring_free_everywhere_on_binary(self):
        from repro.orderings import make_ordering

        topo = make_topology("binary", 16)
        prof = per_level_contention(make_ordering("ring_new", 32).sweep(0), topo)
        assert all(v <= 1.0 for v in prof.values())

    def test_fat_tree_saturates_perfect_exactly(self):
        from repro.orderings import make_ordering

        topo = make_topology("perfect", 16)
        prof = per_level_contention(make_ordering("fat_tree", 32).sweep(0), topo)
        assert max(prof.values()) == 1.0
