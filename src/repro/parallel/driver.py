"""Distributed one-sided Jacobi SVD on the simulated tree machine.

``ParallelJacobiSVD`` is the parallel counterpart of
:func:`repro.svd.jacobi_svd`: the same sweep loop, but every phase runs
on a :class:`~repro.machine.TreeMachine`, producing a full execution
timeline alongside the decomposition.  Convergence detection models the
tree reduction a real machine would perform (an all-reduce over the
leaves costs one up-and-down traversal, charged per sweep).

Passing a :class:`~repro.blockjacobi.BlockJacobiOptions` (or
``block_size`` through :func:`repro.parallel_svd`) switches the driver
to *block* mode: the schedule runs on the ``n / b`` column blocks, each
message carries ``b`` columns, and the machine solves the local
``2b``-column subproblems with the chosen block kernel — the parallel
counterpart of :func:`repro.blockjacobi.block_jacobi_svd`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from ..blockjacobi.driver import BlockJacobiOptions
from ..core.result import SVDResult, SweepRecord
from ..machine.costmodel import CostModel
from ..machine.simulator import TreeMachine
from ..machine.stats import SweepStats
from ..machine.topology import TreeTopology, make_topology
from ..orderings.base import Ordering
from ..orderings.registry import make_ordering
from ..svd.convergence import off_norm
from ..svd.hestenes import JacobiOptions
from ..util.errors import ConvergenceWarning
from ..util.validation import require

__all__ = ["ParallelJacobiSVD", "ParallelRunReport"]


@dataclass
class ParallelRunReport:
    """Execution telemetry of a parallel run.

    ``recovery_time`` aggregates everything fault handling cost on top
    of the fault-free timeline: checkpoints, rollbacks and remaps (the
    transport's per-message retries/backoffs are already inside the
    step records' comm time).
    """

    sweep_stats: list[SweepStats] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return (sum(s.total_time for s in self.sweep_stats)
                + self.reduction_time + self.recovery_time)

    @property
    def compute_time(self) -> float:
        return sum(s.compute_time for s in self.sweep_stats)

    @property
    def comm_time(self) -> float:
        return sum(s.comm_time for s in self.sweep_stats)

    @property
    def max_contention(self) -> float:
        return max((s.max_contention for s in self.sweep_stats), default=0.0)

    @property
    def contention_free(self) -> bool:
        return all(s.contention_free for s in self.sweep_stats)

    @property
    def total_retries(self) -> int:
        """Transport retransmission attempts across the whole run."""
        return sum(s.total_retries for s in self.sweep_stats)

    # one allreduce (up + down the tree) per sweep for the convergence flag
    reduction_time: float = 0.0
    # checkpoint/rollback/remap overhead of fault recovery
    recovery_time: float = 0.0
    # sweeps that were rolled back and retried
    rollbacks: int = 0


class ParallelJacobiSVD:
    """One-sided Jacobi SVD driver over a simulated tree machine."""

    def __init__(
        self,
        topology: TreeTopology | str = "cm5",
        ordering: Ordering | str = "hybrid",
        cost_model: CostModel | None = None,
        options: JacobiOptions | BlockJacobiOptions | None = None,
        **ordering_kwargs: object,
    ):
        self._topology_spec = topology
        self._ordering_spec = ordering
        self._ordering_kwargs = ordering_kwargs
        self.cost_model = cost_model or CostModel()
        self.options = options or JacobiOptions()

    @property
    def block_size(self) -> int | None:
        """Columns per schedule unit, or ``None`` in scalar mode."""
        if isinstance(self.options, BlockJacobiOptions):
            return self.options.block_size
        return None

    def _build(self, n: int) -> tuple[TreeMachine, Ordering]:
        b = self.block_size or 1
        require(n % (2 * b) == 0,
                f"n={n} must be a multiple of 2*block_size={2 * b} "
                "(two blocks per leaf)")
        n_units = n // b
        n_leaves = n_units // 2
        topo = (
            self._topology_spec
            if isinstance(self._topology_spec, TreeTopology)
            else make_topology(self._topology_spec, n_leaves)
        )
        require(topo.n_leaves == n_leaves,
                f"topology has {topo.n_leaves} leaves, matrix needs {n_leaves}")
        ordering = (
            self._ordering_spec
            if isinstance(self._ordering_spec, Ordering)
            else make_ordering(self._ordering_spec, n_units, **self._ordering_kwargs)
        )
        require(ordering.n == n_units, "ordering size mismatch")
        return TreeMachine(topo, self.cost_model), ordering

    def compute(
        self, a: np.ndarray, compute_uv: bool = True,
        fault_plan=None,
    ) -> tuple[SVDResult, ParallelRunReport]:
        """Run the distributed SVD; returns (decomposition, telemetry).

        With a :class:`~repro.faults.FaultPlan` the run executes under
        fault injection: a checkpoint is taken at every sweep boundary,
        the ack/seq transport recovers message faults, detected damage
        (non-finite sentinels, crashed leaves) rolls the sweep back —
        remapping dead leaves onto their siblings — and an exhausted
        recovery budget yields an *explicit* failed result
        (``converged=False`` plus an ``unrecoverable`` fault event),
        never silently wrong output.
        """
        a = np.asarray(a, dtype=np.float64)
        m, n = a.shape
        # n > m is allowed for zero-padded inputs (at most m nonzero sigma)
        machine, ordering = self._build(n)
        opts = self.options
        block = isinstance(opts, BlockJacobiOptions)
        executor = None
        # fault-injected runs never arm the sanitizer: injected damage is
        # *meant* to reach the recovery machinery (rollback, remap), not
        # to abort the process, and the fault loop runs the same
        # invariant detectors itself
        sanitizer = None
        if fault_plan is None:
            if block:
                sanitizer = opts.make_sanitizer()
            else:
                from ..verify.sanitize import RuntimeSanitizer, sanitize_enabled

                if sanitize_enabled():
                    sanitizer = RuntimeSanitizer()
        if block:
            executor = opts.make_executor()
            machine.load(a, compute_v=compute_uv, kernel=opts.kernel,
                         block_size=opts.block_size,
                         inner_sweeps=opts.inner_sweeps,
                         executor=executor, sanitizer=sanitizer,
                         compute_backend=opts.make_compute_backend())
        else:
            machine.load(a, compute_v=compute_uv, kernel=opts.kernel)
        if sanitizer is not None:
            sanitizer.arm_reference(machine.X)
        try:
            return self._compute_loaded(
                a, machine, ordering, opts, block, compute_uv, fault_plan,
                sanitizer)
        finally:
            if executor is not None:
                # shared-memory views die with the arena; copy the
                # machine's state out so callers can keep reading it
                machine.X = executor.reclaim(machine.X)
                if machine.V is not None:
                    machine.V = executor.reclaim(machine.V)
                executor.close()

    def _compute_loaded(
        self, a, machine, ordering, opts, block, compute_uv, fault_plan,
        sanitizer=None,
    ) -> tuple[SVDResult, ParallelRunReport]:
        m, n = a.shape
        injector = None
        watchdog = None
        if fault_plan is not None:
            from ..faults import ConvergenceWatchdog, FaultInjector

            injector = FaultInjector(fault_plan, machine.topology.n_leaves)
            machine.install_faults(injector)
            watchdog = ConvergenceWatchdog()
        report = ParallelRunReport()
        history: list[SweepRecord] = []
        converged = False
        failed = False
        sweeps = 0
        allreduce = (
            self.cost_model.alpha
            + 2 * self.cost_model.hop_time * max(1, machine.topology.n_levels)
        )
        for sweep in range(opts.max_sweeps):
            sched = ordering.sweep(sweep)
            if injector is None:
                sweep_stats, rstats, worst = machine.run_sweep(
                    sched, tol=opts.tol, sort=opts.sort, sweep_index=sweep
                )
            else:
                outcome = self._run_sweep_recovered(
                    machine, sched, sweep, opts, injector, report)
                if outcome is None:
                    # recovery budget exhausted; machine state is the
                    # last checkpoint — fail explicitly below
                    failed = True
                    sweeps = sweep + 1
                    break
                sweep_stats, rstats, worst = outcome
            report.sweep_stats.append(sweep_stats)
            report.reduction_time += allreduce
            sweeps = sweep + 1
            if sanitizer is not None:
                sanitizer.check_sweep(machine.X, machine.V, sweep=sweeps)
            sweep_off = off_norm(machine.X)
            history.append(
                SweepRecord(
                    sweep=sweeps,
                    off_norm=sweep_off,
                    max_rel_gamma=worst,
                    rotations=rstats.applied,
                    skipped=rstats.skipped,
                )
            )
            if watchdog is not None:
                stall = watchdog.observe(sweeps, sweep_off)
                if stall is not None:
                    from ..faults import FaultEvent

                    injector.record(FaultEvent(
                        "recovery", "watchdog", sweep, 0, detail=stall))
            # block mode matches the serial block driver: the local
            # solver leaves every met pair sorted, so no exchange check
            if worst <= opts.tol and (block or rstats.exchanged == 0):
                converged = True
                break
        if not converged and watchdog is not None:
            watchdog.escalate(opts.max_sweeps)
        if not converged:
            reason = ("fault recovery exhausted" if failed
                      else f"sweep budget ({opts.max_sweeps}) exhausted")
            warnings.warn(
                f"parallel Jacobi SVD did not converge: {reason}; "
                "the result is a partial decomposition "
                "(check result.converged)",
                ConvergenceWarning, stacklevel=2)

        X = machine.X
        V = machine.V
        norms = np.linalg.norm(X, axis=0)
        sigma_by_slot = norms.copy()
        scale = max(1.0, float(norms.max(initial=0.0)))
        diffs = np.diff(norms)
        if np.all(diffs <= 1e-9 * scale):
            emerged = "desc"
        elif np.all(diffs >= -1e-9 * scale):
            emerged = "asc"
        else:
            emerged = None
        order = np.argsort(-norms, kind="stable")
        sigma = norms[order]
        rank_tol = getattr(opts, "rank_tol", 1e-12)
        rank = int(np.count_nonzero(sigma > rank_tol * max(scale, 1e-300)))
        if compute_uv:
            u = np.zeros((m, n))
            nz = sigma > 0
            cols = X[:, order]
            u[:, nz] = cols[:, nz] / sigma[nz]
            v = V[:, order]
        else:
            u = np.zeros((m, 0))
            v = np.zeros((n, 0))
        result = SVDResult(
            u=u,
            sigma=sigma,
            v=v,
            rank=rank,
            converged=converged,
            sweeps=sweeps,
            rotations=sum(h.rotations for h in history),
            sigma_by_slot=sigma_by_slot,
            emerged_sorted=emerged,
            history=history,
            fault_events=list(injector.log) if injector is not None else [],
            watchdog=watchdog.message if watchdog is not None else None,
        )
        return result, report

    def _run_sweep_recovered(
        self,
        machine: TreeMachine,
        sched,
        sweep: int,
        opts,
        injector,
        report: ParallelRunReport,
    ):
        """One sweep under fault injection: checkpoint, run, recover.

        The sweep is retried from its boundary checkpoint up to
        ``plan.max_sweep_attempts`` times.  Detected damage — a kernel's
        non-finite sentinel, the sweep-end finiteness heartbeat, or a
        transport-reported dead leaf — triggers rollback; leaves the
        injector killed are then remapped onto their siblings (graceful
        degradation) and the degraded schedule re-validated.  Returns
        ``(stats, rstats, worst)``, or ``None`` when recovery is
        exhausted (machine state is left at the checkpoint).
        """
        from ..faults import (
            FaultEvent,
            LeafFailure,
            UnrecoverableFault,
            restore_checkpoint,
            take_checkpoint,
        )
        from ..util.errors import NumericalBreakdown

        cost = machine.cost
        cp = take_checkpoint(machine)
        report.recovery_time += cost.checkpoint_time(cp.words)
        # the sweep only right-multiplies X by orthogonal rotations, so
        # ||X||_F is an invariant; measurable drift means a finite payload
        # corruption (scale/zero) slipped past the finiteness sentinels
        ref_norm = float(np.linalg.norm(cp.X))
        last_error: Exception | None = None
        for attempt in range(injector.max_sweep_attempts):
            try:
                stats, rstats, worst = machine.run_sweep(
                    sched, tol=opts.tol, sort=opts.sort, sweep_index=sweep)
                # sweep-end heartbeat: catches silent corruption (and
                # crashes) that no kernel sentinel met mid-sweep
                machine.require_finite()
                drift = abs(float(np.linalg.norm(machine.X)) - ref_norm)
                if drift > 1e-9 * max(ref_norm, 1.0):
                    raise NumericalBreakdown(
                        f"||X||_F drifted by {drift:.3e} over sweep {sweep} "
                        "(orthogonal invariant violated: silent payload "
                        "corruption)")
                return stats, rstats, worst
            except (NumericalBreakdown, LeafFailure) as exc:
                last_error = exc
                restore_checkpoint(machine, cp)
                rb = cost.rollback_time(cp.words)
                report.recovery_time += rb
                report.rollbacks += 1
                injector.record(FaultEvent(
                    "recovery", "rollback", sweep, 0, attempt=attempt,
                    time_charged=rb, detail=str(exc)))
                try:
                    self._degrade_dead_leaves(
                        machine, sched, sweep, injector, report)
                except UnrecoverableFault as exc2:
                    injector.record(FaultEvent(
                        "recovery", "unrecoverable", sweep, 0,
                        attempt=attempt, detail=str(exc2)))
                    return None
            except UnrecoverableFault as exc:
                restore_checkpoint(machine, cp)
                report.recovery_time += cost.rollback_time(cp.words)
                injector.record(FaultEvent(
                    "recovery", "unrecoverable", sweep, 0, detail=str(exc)))
                return None
        injector.record(FaultEvent(
            "recovery", "unrecoverable", sweep, 0,
            attempt=injector.max_sweep_attempts,
            detail=f"sweep still failing after "
                   f"{injector.max_sweep_attempts} attempts: {last_error}"))
        return None

    def _degrade_dead_leaves(
        self, machine: TreeMachine, sched, sweep: int, injector, report,
    ) -> None:
        """Remap every injector-dead leaf not yet degraded onto its
        sibling, charging and logging each remap, then re-validate the
        schedule for the degraded host map."""
        from ..faults import FaultEvent, validate_degraded

        pending = sorted(injector.dead - machine.dead_leaves)
        if not pending:
            return
        m = machine.X.shape[0]
        ncols = machine.X.shape[1]
        b = machine.block_size or 1
        # a leaf hosts two slots of b columns each (plus their V rows)
        words = 2 * b * (m + (ncols if machine.V is not None else 0))
        for leaf in pending:
            host, moved = machine.degrade_leaf(leaf)
            rt = machine.cost.remap_time(words)
            report.recovery_time += rt
            injector.record(FaultEvent(
                "crash", "remap", sweep, 0, leaf=leaf, time_charged=rt,
                detail=f"leaf {leaf} rehosted on leaf {host} "
                       f"(logical leaves {moved})"))
        degraded = validate_degraded(machine, sched)
        injector.record(FaultEvent(
            "recovery", "remap", sweep, 0,
            detail=degraded.describe()))
