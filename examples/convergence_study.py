"""Convergence study: sweeps, sortedness and the LLB comparison.

Reproduces the paper's convergence-level claims on synthetic workloads:
equivalent orderings (ring vs round-robin) converge alike, singular
values emerge sorted, the off-diagonal mass decays quadratically once
the iteration is close, and the Lee-Luk-Boley forward/backward scheme
pays its parity penalty.

Run:  python examples/convergence_study.py
"""

import numpy as np

from repro.analysis import convergence_table, render_convergence_table, workload_matrix
from repro.svd import jacobi_svd

print("TAB-CONV on three workloads (n=32, 3 runs each)\n")
for kind in ("gaussian", "graded", "clustered"):
    rows = convergence_table(
        n=32, runs=3, kind=kind, **{"hybrid": {"n_groups": 4}}
    )
    print(render_convergence_table(rows).replace("TAB-CONV", f"TAB-CONV [{kind}]"))
    print()

print("off-norm decay of one fat-tree run (graded spectrum):")
rng = np.random.default_rng(3)
a = workload_matrix(48, 32, rng, "graded")
r = jacobi_svd(a, ordering="fat_tree")
for h in r.history:
    print(f"   sweep {h.sweep}: off = {h.off_norm:.3e}   rotations = {h.rotations}")
print("\nNote the super-linear tail - the 'ultimately quadratic' rate of")
print("Section 1.  The LLB row above needs the same sweeps to converge but")
print("leaves the singular vectors in the wrong processors after an odd")
print("sweep (the paper's criticism); the fat-tree ordering never does.")
