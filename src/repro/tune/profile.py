"""Persisted tuned profiles (``PROFILE_<host>.json``).

A profile is the durable output of :func:`repro.tune.tune`: per target
shape, the winning configuration plus the measurements that justify it.
Files are schema-versioned (:data:`SCHEMA`) and validated on load — a
profile written by an incompatible harness is rejected with the reason,
never silently half-applied, because a stale profile that *parses* but
means something different is exactly how a tuner quietly pessimises a
run.

Shape lookup is nearest-match, not exact-match: a profile tuned at
``n=512`` should still help an ``n=480`` call.  The distance is
log-scale over ``(m, n, batch)`` — configuration choice tracks orders
of magnitude, not absolute element counts — and exact hits win
outright.  ``svd()`` / ``svd_batch()`` / ``parallel_svd()`` consume
profiles through ``profile=`` or ``$REPRO_PROFILE`` and fill only the
knobs the caller left unset (:mod:`repro.core.api`).
"""

from __future__ import annotations

import json
import math
import platform
import re
from pathlib import Path
from typing import Mapping

from ..util.validation import require
from .runner import TuneResult
from .space import Candidate

__all__ = [
    "SCHEMA",
    "default_host",
    "load_profile",
    "lookup_entry",
    "profile_entry",
    "profile_options",
    "profile_path",
    "save_profile",
    "validate_profile",
]

#: profile schema tag; bump on any change of meaning, not just of shape
SCHEMA = "repro.tune/1"

#: the six knobs a profile entry may fill (the knobs of ``svd()``)
_OPTION_KEYS = ("ordering", "kernel", "block_size", "executor", "workers",
                "compute_backend")


def default_host() -> str:
    """Host tag for the profile filename: the node name sanitised to
    filename-safe characters, ``local`` when the platform reports none."""
    node = re.sub(r"[^A-Za-z0-9._-]", "-", platform.node()).strip("-.")
    return node or "local"


def profile_path(directory: "str | Path" = ".",
                 host: str | None = None) -> Path:
    """``<directory>/PROFILE_<host>.json`` (the conventional location)."""
    tag = default_host() if host is None else host
    require(re.fullmatch(r"[A-Za-z0-9._-]+", tag) is not None,
            f"host tag must be filename-safe, got {tag!r}")
    return Path(directory) / f"PROFILE_{tag}.json"


def profile_entry(result: TuneResult) -> dict:
    """One profile entry (JSON-able) from a tune result."""
    return {
        "m": result.m,
        "n": result.n,
        "batch": result.batch,
        "options": result.winner.options_dict(),
        "median_s": result.winner_median_s,
        "default_median_s": result.default_median_s,
        "speedup": result.speedup,
        "repeats": result.repeats_final,
        "quick": result.quick,
    }


def validate_profile(data: object) -> dict:
    """Reject anything that is not a current-schema profile.

    Returns the (unmodified) mapping on success; raises ``ValueError``
    naming what is wrong — in particular a stale or foreign ``schema``
    tag, so an old profile surfaces as an explicit re-tune request.
    """
    require(isinstance(data, Mapping),
            f"profile must be a JSON object, got {type(data).__name__}")
    schema = data.get("schema")
    require(schema == SCHEMA,
            f"profile schema {schema!r} is not {SCHEMA!r}; re-run "
            "`repro-harness tune` to regenerate the profile")
    entries = data.get("entries")
    require(isinstance(entries, list),
            "profile has no 'entries' list")
    for i, entry in enumerate(entries):
        require(isinstance(entry, Mapping), f"entries[{i}] is not an object")
        for key in ("m", "n"):
            require(isinstance(entry.get(key), int) and entry[key] >= 2,
                    f"entries[{i}].{key} must be an int >= 2")
        batch = entry.get("batch")
        require(batch is None or (isinstance(batch, int) and batch >= 1),
                f"entries[{i}].batch must be null or an int >= 1")
        options = entry.get("options")
        require(isinstance(options, Mapping),
                f"entries[{i}].options is not an object")
        unknown = set(options) - set(_OPTION_KEYS)
        require(not unknown,
                f"entries[{i}].options has unknown knobs {sorted(unknown)}")
    return dict(data)


def load_profile(source: "str | Path | Mapping") -> dict:
    """Load and validate a profile from a path (or pass a mapping
    through validation)."""
    if isinstance(source, Mapping):
        return validate_profile(source)
    path = Path(source)
    require(path.is_file(), f"profile file not found: {path}")
    with path.open("r", encoding="utf-8") as fh:
        return validate_profile(json.load(fh))


def save_profile(result: TuneResult, path: "str | Path",
                 host: str | None = None) -> dict:
    """Write (or merge into) the profile at ``path``; returns the data.

    An existing profile at ``path`` is loaded and validated first — its
    entries for *other* shapes are kept, the entry for this shape is
    replaced — so one file accumulates the host's tuned shapes.  A
    stale-schema file on disk is an error, not an overwrite target:
    refusing to clobber it keeps whatever workflow still reads it
    honest.
    """
    path = Path(path)
    if path.exists():
        data = load_profile(path)
    else:
        data = {"schema": SCHEMA,
                "host": default_host() if host is None else host,
                "entries": []}
    key = (result.m, result.n, result.batch)
    entries = [e for e in data["entries"]
               if (e["m"], e["n"], e.get("batch")) != key]
    entries.append(profile_entry(result))
    entries.sort(key=lambda e: (e["n"], e["m"], e.get("batch") or 0))
    data["entries"] = entries
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return data


def _distance(entry: Mapping, m: int, n: int, batch: int | None) -> float:
    """Log-scale shape distance (0.0 iff exact)."""
    d = abs(math.log(entry["n"] / n)) + abs(math.log(entry["m"] / m))
    eb = entry.get("batch") or 1
    qb = batch or 1
    d += abs(math.log(eb / qb))
    return d


def lookup_entry(profile: "Mapping | str | Path", m: int, n: int,
                 batch: int | None = None) -> dict | None:
    """Nearest profile entry for a shape (``None`` on an empty profile).

    Exact shape matches win; otherwise the entry with the smallest
    log-scale distance over ``(m, n, batch)``, ties resolved by entry
    order (the file is kept sorted, so smaller shapes win ties).
    """
    data = load_profile(profile)
    entries = data["entries"]
    if not entries:
        return None
    best = min(range(len(entries)),
               key=lambda i: (_distance(entries[i], m, n, batch), i))
    return dict(entries[best])


def profile_options(profile: "Mapping | str | Path", m: int, n: int,
                    batch: int | None = None) -> dict:
    """The six option knobs of the nearest entry (empty dict if none).

    The result always carries every key of ``svd()``'s knob set with
    explicit ``None`` for unset ones — callers fill, they never guess.
    """
    entry = lookup_entry(profile, m, n, batch)
    if entry is None:
        return {}
    options = {key: entry["options"].get(key) for key in _OPTION_KEYS}
    # round-trip guard: a hand-edited profile with an inconsistent
    # scalar entry (executor without block size) fails Candidate's
    # invariant here, at load time, instead of deep in the driver
    Candidate(kernel=options["kernel"] or "reference",
              block_size=options["block_size"],
              ordering=options["ordering"] or "fat_tree",
              executor=options["executor"], workers=options["workers"],
              compute_backend=options["compute_backend"])
    return options
