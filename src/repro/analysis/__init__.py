"""Experiment harness regenerating every figure and claim of the paper.

Besides the figure/table generators, this package re-exports the
machine-checkable ordering predicates of
:mod:`repro.orderings.properties`, so analysis code has one import
surface for both the dynamic measurements and the invariants they
rest on.  The *static* counterparts (rule-tagged diagnostics over the
same invariants) live in :mod:`repro.verify`.
"""

from ..orderings.properties import (
    ValidityReport,
    check_all_pairs_once,
    check_local_pairs,
    check_one_directional,
    find_relabelling,
    meeting_gap_profile,
    relabelling_equivalent,
    sweep_message_counts,
)
from .commcost import CommCostRow, comm_cost_row, comm_cost_table
from .contention import (
    ContentionRow,
    contention_row,
    contention_table,
    per_level_contention,
)
from .convergence_study import ConvergenceRow, convergence_table, workload_matrix
from .crossover import (
    CrossoverRow,
    crossover_level,
    crossover_table,
    render_crossover_table,
)
from .equivalence import EquivalenceReport, ring_round_robin_equivalence
from .messagesize import (
    MessageSizeRow,
    message_size_table,
    render_message_size_table,
)
from .optimality import (
    OptimalityAudit,
    audit_all,
    audit_ordering,
    lower_bound_steps,
    search_optimal_ordering,
)
from .scaling import ScalingRow, render_scaling_table, scaling_table
from .tables import (
    TimingRow,
    fig1_ring_style,
    fig1_round_robin,
    fig2_basic_two_block,
    fig3_two_block_size4,
    fig4_basic_modules,
    fig5_merge_scheme,
    fig6_four_block_eight,
    fig7_ring_ordering,
    fig8_modified_ring,
    fig9_hybrid_sixteen,
    render_comm_table,
    render_contention_table,
    render_convergence_table,
    render_timing_table,
    step_table,
    tab_comm,
    tab_contention,
    tab_convergence,
    tab_time,
)

__all__ = [
    "CommCostRow",
    "ContentionRow",
    "ValidityReport",
    "check_all_pairs_once",
    "check_local_pairs",
    "check_one_directional",
    "find_relabelling",
    "meeting_gap_profile",
    "relabelling_equivalent",
    "sweep_message_counts",
    "ConvergenceRow",
    "CrossoverRow",
    "crossover_level",
    "crossover_table",
    "render_crossover_table",
    "EquivalenceReport",
    "TimingRow",
    "comm_cost_row",
    "comm_cost_table",
    "contention_row",
    "contention_table",
    "convergence_table",
    "fig1_ring_style",
    "fig1_round_robin",
    "fig2_basic_two_block",
    "fig3_two_block_size4",
    "fig4_basic_modules",
    "fig5_merge_scheme",
    "fig6_four_block_eight",
    "fig7_ring_ordering",
    "fig8_modified_ring",
    "fig9_hybrid_sixteen",
    "per_level_contention",
    "render_comm_table",
    "render_contention_table",
    "render_convergence_table",
    "render_timing_table",
    "MessageSizeRow",
    "OptimalityAudit",
    "ScalingRow",
    "audit_all",
    "audit_ordering",
    "lower_bound_steps",
    "message_size_table",
    "render_message_size_table",
    "search_optimal_ordering",
    "render_scaling_table",
    "ring_round_robin_equivalence",
    "scaling_table",
    "step_table",
    "tab_comm",
    "tab_contention",
    "tab_convergence",
    "tab_time",
    "workload_matrix",
]
