"""Tests of the application layer (lstsq, pinv, truncated SVD, PCA)."""

import numpy as np
import pytest

from repro.apps import lstsq, pca, pinv, truncated_svd


class TestLstsq:
    def test_overdetermined_matches_numpy(self, rng):
        a = rng.standard_normal((30, 8))
        b = rng.standard_normal(30)
        ours = lstsq(a, b)
        ref, _, rank, _ = np.linalg.lstsq(a, b, rcond=None)
        assert ours.rank == rank
        assert np.allclose(ours.x, ref, atol=1e-10)

    def test_exact_system(self, rng):
        a = rng.standard_normal((8, 8))
        x_true = rng.standard_normal(8)
        res = lstsq(a, a @ x_true)
        assert np.allclose(res.x, x_true, atol=1e-9)
        assert res.residual_norm < 1e-9

    def test_rank_deficient_minimum_norm(self, rng):
        a = rng.standard_normal((20, 6))
        a[:, 5] = a[:, 0]  # rank 5
        b = rng.standard_normal(20)
        ours = lstsq(a, b)
        ref, _, rank, _ = np.linalg.lstsq(a, b, rcond=None)
        assert ours.rank == 5 == rank
        assert np.allclose(ours.x, ref, atol=1e-9)
        # minimum-norm: matches the pseudoinverse solution
        assert np.linalg.norm(ours.x) <= np.linalg.norm(ref) + 1e-9

    def test_multiple_rhs(self, rng):
        a = rng.standard_normal((20, 6))
        b = rng.standard_normal((20, 3))
        ours = lstsq(a, b)
        ref, *_ = np.linalg.lstsq(a, b, rcond=None)
        assert ours.x.shape == (6, 3)
        assert np.allclose(ours.x, ref, atol=1e-9)

    def test_residual_orthogonal_to_range(self, rng):
        a = rng.standard_normal((20, 6))
        b = rng.standard_normal(20)
        res = lstsq(a, b)
        assert np.linalg.norm(a.T @ (b - a @ res.x)) < 1e-9

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            lstsq(rng.standard_normal((10, 4)), rng.standard_normal(9))


class TestPinv:
    def test_matches_numpy_tall(self, rng):
        a = rng.standard_normal((12, 6))
        assert np.allclose(pinv(a), np.linalg.pinv(a), atol=1e-10)

    def test_matches_numpy_wide(self, rng):
        a = rng.standard_normal((6, 12))
        assert np.allclose(pinv(a), np.linalg.pinv(a), atol=1e-10)

    def test_penrose_conditions(self, rng):
        a = rng.standard_normal((10, 5))
        a[:, 4] = a[:, 0]  # rank deficient
        p = pinv(a)
        assert np.allclose(a @ p @ a, a, atol=1e-9)
        assert np.allclose(p @ a @ p, p, atol=1e-9)
        assert np.allclose((a @ p).T, a @ p, atol=1e-9)
        assert np.allclose((p @ a).T, p @ a, atol=1e-9)


class TestTruncatedSvd:
    def test_eckart_young_error(self, rng):
        a = rng.standard_normal((16, 10))
        k = 4
        approx = truncated_svd(a, k)
        ref = np.linalg.svd(a, compute_uv=False)
        assert approx.error == pytest.approx(np.sqrt(np.sum(ref[k:] ** 2)), rel=1e-10)
        assert np.linalg.norm(a - approx.reconstruct()) == pytest.approx(approx.error, rel=1e-8)

    def test_full_rank_exact(self, rng):
        a = rng.standard_normal((12, 6))
        approx = truncated_svd(a, 6)
        assert approx.error < 1e-10
        assert approx.energy == pytest.approx(1.0)

    def test_wide_matrix(self, rng):
        a = rng.standard_normal((6, 12))
        approx = truncated_svd(a, 3)
        assert approx.reconstruct().shape == a.shape
        ref = np.linalg.svd(a, compute_uv=False)
        assert approx.error == pytest.approx(np.sqrt(np.sum(ref[3:] ** 2)), rel=1e-9)

    def test_k_bounds(self, rng):
        a = rng.standard_normal((8, 4))
        with pytest.raises(ValueError):
            truncated_svd(a, 0)
        with pytest.raises(ValueError):
            truncated_svd(a, 5)


class TestPca:
    def test_components_orthonormal(self, rng):
        x = rng.standard_normal((50, 8))
        r = pca(x, k=4)
        assert np.allclose(r.components @ r.components.T, np.eye(4), atol=1e-10)

    def test_matches_eigendecomposition_of_covariance(self, rng):
        x = rng.standard_normal((60, 6))
        r = pca(x)
        cov = np.cov(x, rowvar=False)
        ref = np.sort(np.linalg.eigvalsh(cov))[::-1]
        assert np.allclose(r.explained_variance, ref[: len(r.explained_variance)], atol=1e-9)

    def test_explained_variance_sorted_and_normalised(self, rng):
        x = rng.standard_normal((40, 10))
        r = pca(x)
        assert np.all(np.diff(r.explained_variance) <= 1e-12)
        assert np.sum(pca(x, k=10).explained_variance_ratio) == pytest.approx(1.0)

    def test_scores_reproduce_centred_data(self, rng):
        x = rng.standard_normal((30, 5))
        r = pca(x, k=5)
        assert np.allclose(r.scores @ r.components + r.mean, x, atol=1e-9)

    def test_dominant_direction_found(self, rng):
        # data concentrated along one axis
        t = rng.standard_normal(100)
        x = np.outer(t, [3.0, 0.1, 0.0, 0.0]) + 0.01 * rng.standard_normal((100, 4))
        r = pca(x, k=1)
        direction = r.components[0] / np.linalg.norm(r.components[0])
        assert abs(direction[0]) > 0.99
        assert r.explained_variance_ratio[0] > 0.99

    def test_wide_data(self, rng):
        x = rng.standard_normal((6, 20))
        r = pca(x, k=3)
        assert r.components.shape == (3, 20)
        assert r.scores.shape == (6, 3)
