"""Tests of the Wilkinson threshold strategies."""

import numpy as np
import pytest

from repro.svd import (
    FixedThreshold,
    JacobiOptions,
    StagedThreshold,
    jacobi_svd,
)


class TestStrategyObjects:
    def test_fixed_constant(self):
        s = FixedThreshold(final_tol=1e-10)
        assert s.threshold(0) == s.threshold(7) == 1e-10

    def test_staged_decays_geometrically(self):
        s = StagedThreshold(initial=1e-2, decay=1e-1, final_tol=1e-12)
        assert s.threshold(0) == 1e-2
        assert s.threshold(1) == pytest.approx(1e-3)
        assert s.threshold(3) == pytest.approx(1e-5)

    def test_staged_floors_at_final(self):
        s = StagedThreshold(initial=1e-2, decay=1e-1, final_tol=1e-6)
        assert s.threshold(50) == 1e-6

    def test_staged_validates_decay(self):
        with pytest.raises(ValueError):
            StagedThreshold(decay=1.5)
        with pytest.raises(ValueError):
            StagedThreshold(decay=0.0)

    def test_staged_validates_order(self):
        with pytest.raises(ValueError):
            StagedThreshold(initial=1e-14, final_tol=1e-12)


class TestDriverIntegration:
    def test_staged_converges_to_full_accuracy(self, rng):
        a = rng.standard_normal((32, 16))
        r = jacobi_svd(
            a,
            options=JacobiOptions(
                threshold_strategy=StagedThreshold(initial=0.5, decay=0.05)
            ),
        )
        assert r.converged
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(r.sigma - ref)) < 1e-11 * ref[0]

    def test_staged_skips_rotations_early(self, rng):
        a = rng.standard_normal((48, 32))
        fixed = jacobi_svd(a)
        staged = jacobi_svd(
            a,
            options=JacobiOptions(
                threshold_strategy=StagedThreshold(initial=0.5, decay=0.05)
            ),
        )
        # the staged first sweep rotates strictly fewer pairs
        assert staged.history[0].rotations < fixed.history[0].rotations

    def test_termination_still_uses_final_tol(self, rng):
        # a coarse schedule must not let the iteration stop early
        a = rng.standard_normal((24, 16))
        r = jacobi_svd(
            a,
            options=JacobiOptions(
                tol=1e-12,
                threshold_strategy=StagedThreshold(initial=1e-1, decay=0.5),
            ),
        )
        assert r.converged
        assert r.history[-1].max_rel_gamma <= 1e-12

    def test_fixed_strategy_equals_default(self, rng):
        a = rng.standard_normal((24, 16))
        default = jacobi_svd(a)
        explicit = jacobi_svd(
            a, options=JacobiOptions(threshold_strategy=FixedThreshold(final_tol=1e-12))
        )
        assert default.sweeps == explicit.sweeps
        assert np.array_equal(default.sigma, explicit.sigma)
