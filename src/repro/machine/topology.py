"""Tree interconnect topologies (Section 2 of the paper).

A fat-tree is a complete binary tree with processors at the leaves and a
pair of directed channels per edge.  Levels are numbered from the leaves
up starting at 1; in a *perfect* binary fat-tree the channel capacity
doubles per level (``cap(k) = 2^(k-1)``), keeping the aggregate
bandwidth of every level constant.  A *skinny* fat-tree grows capacity
more slowly above some level:

* the ordinary binary tree is "skinny all over" (capacity 1 everywhere);
* the ``SkinnyFatTree`` stops doubling above a cut level;
* the CM-5 data network is a 4-way tree whose bottom level matches the
  bottom two levels of a perfect binary fat-tree, with capacity doubling
  per 4-way level (i.e. ~sqrt(2) per binary level) above that.  In
  binary-equivalent terms: ``cap(1) = 1``, ``cap(k) = 2^ceil(k/2)`` for
  ``k >= 2`` — skinny relative to perfect from level 3 upward.

Channels are identified by ``(level, subtree_index, direction)``; a
message between two leaves climbs to their lowest common ancestor and
descends, using one channel per level in each direction.
"""

from __future__ import annotations

from typing import NamedTuple

from ..util.bits import comm_level, ilog2
from ..util.validation import require, require_power_of_two

__all__ = [
    "Channel",
    "TreeTopology",
    "PerfectFatTree",
    "BinaryTree",
    "SkinnyFatTree",
    "CM5Tree",
    "TOPOLOGIES",
    "make_topology",
]


class Channel(NamedTuple):
    """One directed channel: ``level`` >= 1, subtree index, up/down flag.

    A named *tuple* rather than a dataclass: the router materialises one
    ``Channel`` per distinct channel of every communication phase (the
    hot path of the simulator), and tuple construction/hashing is
    several times cheaper.  As a tuple it also sorts exactly in the
    ``(level, index, up)`` tie-break order the router documents.
    """

    level: int
    index: int
    up: bool


class TreeTopology:
    """Base class: a complete binary tree over ``n_leaves`` processors."""

    name = "tree"

    def __init__(self, n_leaves: int):
        require_power_of_two(n_leaves, "n_leaves")
        self.n_leaves = n_leaves
        self.n_levels = ilog2(n_leaves) if n_leaves > 1 else 0

    def capacity(self, level: int) -> int:
        """Channel capacity (wire count) at a tree level."""
        raise NotImplementedError

    def comm_level(self, leaf_a: int, leaf_b: int) -> int:
        """Levels a message between two leaves must climb (0 if same leaf)."""
        self._check_leaf(leaf_a)
        self._check_leaf(leaf_b)
        return comm_level(leaf_a, leaf_b)

    def path(self, src: int, dst: int) -> list[Channel]:
        """Channels crossed by a message from ``src`` to ``dst``."""
        self._check_leaf(src)
        self._check_leaf(dst)
        if src == dst:
            return []
        r = comm_level(src, dst)
        chans = [Channel(level=k, index=src >> (k - 1), up=True) for k in range(1, r + 1)]
        chans += [Channel(level=k, index=dst >> (k - 1), up=False) for k in range(r, 0, -1)]
        return chans

    def total_capacity(self, level: int) -> int:
        """Aggregate capacity of a level (capacity x number of channels)."""
        require(1 <= level <= self.n_levels, f"level {level} out of range")
        return self.capacity(level) * (self.n_leaves >> (level - 1))

    def _check_leaf(self, leaf: int) -> None:
        require(0 <= leaf < self.n_leaves,
                f"leaf {leaf} out of range for {self.n_leaves}-leaf tree")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_leaves={self.n_leaves})"


class PerfectFatTree(TreeTopology):
    """Capacity doubles each level: constant aggregate bandwidth per level."""

    name = "perfect_fat_tree"

    def capacity(self, level: int) -> int:
        return 1 << (level - 1)


class BinaryTree(TreeTopology):
    """Ordinary binary tree — "skinny all over": capacity 1 everywhere."""

    name = "binary_tree"

    def capacity(self, level: int) -> int:
        return 1


class SkinnyFatTree(TreeTopology):
    """Perfect up to ``skinny_above``, constant capacity beyond it."""

    name = "skinny_fat_tree"

    def __init__(self, n_leaves: int, skinny_above: int = 2):
        super().__init__(n_leaves)
        require(skinny_above >= 1, "skinny_above must be >= 1")
        self.skinny_above = skinny_above

    def capacity(self, level: int) -> int:
        return 1 << (min(level, self.skinny_above) - 1)


class CM5Tree(TreeTopology):
    """Binary-equivalent model of the CM-5 data network.

    The bottom 4-way level equals the bottom two binary levels of a
    perfect fat-tree; above that, capacity doubles per 4-way level
    (x sqrt(2) per binary level): ``1, 2, 4, 4, 8, 8, 16, ...``.
    """

    name = "cm5"

    def capacity(self, level: int) -> int:
        if level <= 1:
            return 1
        return 1 << ((level + 1) // 2)  # 2^ceil(level/2)


TOPOLOGIES = {
    "perfect": PerfectFatTree,
    "binary": BinaryTree,
    "skinny": SkinnyFatTree,
    "cm5": CM5Tree,
}


def make_topology(name: str, n_leaves: int, **kwargs: object) -> TreeTopology:
    """Instantiate a topology by short name."""
    try:
        cls = TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; available: {', '.join(sorted(TOPOLOGIES))}"
        ) from None
    return cls(n_leaves, **kwargs)
