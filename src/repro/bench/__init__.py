"""Timing harness, named scenarios and perf-regression reports.

The first rung of the BENCH trajectory: ``repro-harness bench`` runs the
scenario list through the median-of-k timing harness, writes a
schema-versioned ``BENCH_<tag>.json``, and ``--compare`` turns any prior
report into a regression gate.
"""

from .report import (
    SCHEMA,
    build_report,
    compare_reports,
    load_report,
    render_report,
    validate_report,
    write_report,
)
from .phases import PHASES, phase_breakdown, phase_probe
from .scenarios import Scenario, default_scenarios, run_scenario, scenario_names
from .timing import Timing, median, pin_blas_threads, time_callable

__all__ = [
    "PHASES",
    "SCHEMA",
    "Scenario",
    "Timing",
    "phase_breakdown",
    "phase_probe",
    "build_report",
    "compare_reports",
    "default_scenarios",
    "load_report",
    "median",
    "pin_blas_threads",
    "render_report",
    "run_scenario",
    "scenario_names",
    "time_callable",
    "validate_report",
    "write_report",
]
