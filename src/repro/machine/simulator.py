"""A simulated tree multiprocessor executing Jacobi schedules.

``TreeMachine`` holds the distributed matrix (two column slots per leaf,
as in the paper), executes a schedule's rotation and communication
phases with real numerics, and charges every phase to the cost model
while the router measures channel loads on the chosen topology.

The numerics are identical to the serial driver — same kernels, same
label-oriented sorting — so the parallel path is bit-compatible with
:func:`repro.svd.jacobi_svd` (asserted in the integration tests); what
the machine adds is the *timeline*: per-step compute/communication
times, message counts and contention factors.

With ``block_size=b`` the machine runs at *block* granularity instead:
each slot holds a ``b``-column block, a met pair solves a local
``2b``-column subproblem through a :mod:`repro.blockjacobi.kernel`
solver (bit-compatible with :func:`repro.blockjacobi.block_jacobi_svd`),
every message carries ``b`` columns, and the step records charge the
block work to the cost model.

With a :class:`~repro.faults.injector.FaultInjector` installed (via
:meth:`TreeMachine.install_faults`), every inter-leaf move additionally
goes through the ack/seq :class:`~repro.faults.transport.AckTransport`,
crash/stall faults fire at step boundaries, and a degraded host map
(``host_of_leaf``) reroutes a dead leaf's traffic and compute onto its
sibling.  With no injector, every code path is identical to the
fault-free machine — bit-for-bit and charge-for-charge.
"""

from __future__ import annotations

import numpy as np

from ..orderings.plan import CompiledStep, compile_schedule
from ..orderings.schedule import Schedule
from ..svd.rotations import (
    RotationStats,
    apply_step_rotations,
    apply_step_rotations_batched,
    column_norms_sq,
)
from ..util.bits import leaf_of_slot
from ..util.validation import require
from .costmodel import CostModel
from .routing import route_moves
from .stats import StepRecord, SweepStats
from .topology import TreeTopology

__all__ = ["TreeMachine"]


class TreeMachine:
    """Leaf processors at the bottom of a tree topology, two columns each."""

    def __init__(self, topology: TreeTopology, cost_model: CostModel | None = None):
        self.topology = topology
        self.cost = cost_model or CostModel()
        self.X: np.ndarray | None = None
        self.V: np.ndarray | None = None
        self.labels: np.ndarray | None = None
        self.kernel: str = "reference"
        self.block_size: int | None = None
        self.inner_sweeps: int = 2
        #: (n_slots, b) block-to-column indirection in block mode
        self.block_cols: np.ndarray | None = None
        self._norms_sq: np.ndarray | None = None
        # batched kernel's column-as-row working buffer, allocated once
        # per load() and refilled (not reallocated) every sweep
        self._WT: np.ndarray | None = None
        # step executor for the block-mode local solves (None = serial)
        self._executor = None
        # runtime sanitizer for the block-mode local solves (None = off)
        self._sanitizer = None
        # compute backend for the block kernels' GEMM phases (set by load)
        self._compute_backend = None
        # fault-mode state: injector + reliable transport, and the
        # degraded host map (logical leaf -> physical leaf)
        self.injector = None
        self._transport = None
        self.host_of_leaf = np.arange(topology.n_leaves, dtype=np.intp)
        self.dead_leaves: set[int] = set()
        #: pin the event-driven reference path even when the fast path
        #: is eligible (parity tests, fastpath-vs-event benchmarks)
        self.force_event = False
        #: which path the last run_sweep took ("fast" or "event")
        self.last_sweep_path: str | None = None

    @property
    def n_slots(self) -> int:
        """Schedule slots: columns in scalar mode, blocks in block mode."""
        return 2 * self.topology.n_leaves

    @property
    def n_columns(self) -> int:
        """Matrix columns the machine holds (``n_slots * block_size``)."""
        return self.n_slots * (self.block_size or 1)

    def load(self, a: np.ndarray, compute_v: bool = True,
             kernel: str = "reference", block_size: int | None = None,
             inner_sweeps: int = 2, executor=None, sanitizer=None,
             compute_backend=None) -> None:
        """Distribute the columns of ``a`` over the leaves.

        Scalar mode (``block_size=None``): slot ``i`` holds column ``i``,
        ``kernel`` names a scalar rotation kernel.  Block mode: slot
        ``i`` holds the ``block_size`` columns ``i*b .. (i+1)*b - 1`` and
        ``kernel`` names a block-pair solver from
        :data:`repro.blockjacobi.BLOCK_KERNELS` (``inner_sweeps`` cyclic
        sweeps per met pair).  ``executor`` (a
        :class:`~repro.parallel.executor.StepExecutor`) runs each step's
        independent block solves across workers (the machine's ``X``/``V``
        are adopted into its arena, so the processes backend works on
        shared-memory views); results are bit-identical to serial, the
        caller owns (and closes) it — reclaiming ``machine.X``/``machine.V``
        first if it needs them after close.  ``sanitizer`` (a
        :class:`~repro.verify.sanitize.RuntimeSanitizer`) arms runtime
        write-set records on every block step; the driver owns it and
        runs the sweep-boundary canaries itself.  ``compute_backend`` (a
        :class:`~repro.kernels.ComputeBackend` or name) retargets the
        block kernels' batched GEMM phases.
        """
        if block_size is None:
            from ..svd.hestenes import KERNELS

            require(kernel in KERNELS,
                    f"unknown kernel {kernel!r}; available: {', '.join(KERNELS)}")
        else:
            from ..blockjacobi.kernel import BLOCK_KERNELS

            require(block_size >= 1, "block_size must be positive")
            require(inner_sweeps >= 1,
                    f"inner_sweeps must be >= 1, got {inner_sweeps!r}")
            require(kernel in BLOCK_KERNELS,
                    f"unknown block kernel {kernel!r}; "
                    f"available: {', '.join(BLOCK_KERNELS)}")
        a = np.asarray(a, dtype=np.float64)
        require(a.ndim == 2, "matrix expected")
        # a fresh load is a fresh machine: healthy host map, no faults
        self.injector = None
        self._transport = None
        self.host_of_leaf = np.arange(self.topology.n_leaves, dtype=np.intp)
        self.dead_leaves = set()
        self.block_size = block_size
        self.inner_sweeps = inner_sweeps
        require(a.shape[1] == self.n_columns,
                f"machine holds {self.n_columns} columns, matrix has {a.shape[1]}")
        X = a.copy()
        V = np.eye(a.shape[1]) if compute_v else None
        if executor is not None:
            X = executor.adopt("X", X)
            if V is not None:
                V = executor.adopt("V", V)
        self.X = X
        self.V = V
        self.labels = np.arange(self.n_slots, dtype=np.intp)
        self.kernel = kernel
        self._executor = executor
        self._sanitizer = sanitizer
        from ..kernels import resolve_compute_backend

        self._compute_backend = resolve_compute_backend(compute_backend)
        if executor is not None and sanitizer is not None:
            executor.sanitizer = sanitizer
        self._WT = None
        if block_size is not None:
            self.block_cols = np.arange(
                self.n_columns, dtype=np.intp).reshape(self.n_slots, block_size)
            self._norms_sq = None
        else:
            self.block_cols = None
            # the batched kernel's cross-sweep squared-norm cache, kept in
            # slot order (X/V stay the canonical storage between sweeps)
            self._norms_sq = column_norms_sq(self.X) if kernel == "batched" else None
            if kernel == "batched":
                # per-sweep working buffer (stacked [X; V] column-as-row),
                # allocated once here and refilled each sweep
                m, n = a.shape
                self._WT = np.empty((n, m + (n if compute_v else 0)))

    # -- fault-mode hooks -------------------------------------------------

    def install_faults(self, injector) -> None:
        """Arm a :class:`~repro.faults.injector.FaultInjector`.

        From now on inter-leaf moves are delivered through the ack/seq
        transport and step boundaries consult the injector for crash
        and stall faults.  Call after :meth:`load` (loading resets the
        fault state).
        """
        from ..faults.transport import AckTransport

        self.injector = injector
        self._transport = AckTransport(self.cost, injector)

    def _host(self, leaf: int) -> int:
        """Physical leaf executing logical leaf ``leaf`` (identity when
        healthy; the sibling after graceful degradation)."""
        return int(self.host_of_leaf[leaf])

    def _busiest_leaf(self, cs: CompiledStep) -> int:
        """Rotation count of the step's busiest physical leaf.

        The compiled plan precomputes the identity-host-map value; only
        a degraded machine (rehosted leaves) recounts under the current
        host map.
        """
        if not self.dead_leaves:
            return cs.max_pairs_per_leaf
        return int(np.bincount(self.host_of_leaf[cs.pair_leaves]).max())

    def require_finite(self) -> None:
        """Sweep-boundary guardrail: raise
        :class:`~repro.util.errors.NumericalBreakdown` at the first
        non-finite entry of the distributed matrix."""
        from ..util.errors import NumericalBreakdown

        for name, mat in (("X", self.X), ("V", self.V)):
            if mat is None:
                continue
            finite = np.isfinite(mat)
            if not finite.all():
                idx = tuple(int(i) for i in np.argwhere(~finite)[0])
                raise NumericalBreakdown(
                    f"non-finite entry in {name} at {idx} after sweep",
                    where=idx)

    def degrade_leaf(self, dead: int) -> tuple[int, list[int]]:
        """Gracefully degrade: rehost leaf ``dead``'s slots on its
        sibling ``dead ^ 1`` (the leaf sharing its lowest switch).

        Leaves previously rehosted *onto* the dead leaf move with it.
        Returns ``(new_host, remapped_logical_leaves)``; raises
        :class:`~repro.faults.errors.UnrecoverableFault` when the
        sibling (or its own host) is dead too — a buddy-pair double
        crash leaves no level-1 host for the columns.
        """
        from ..faults.errors import UnrecoverableFault

        self.dead_leaves.add(dead)
        buddy = dead ^ 1
        target = self._host(buddy)
        if target == dead or target in self.dead_leaves:
            raise UnrecoverableFault(
                f"leaf {dead} and its sibling {buddy} are both dead; "
                "no host remains for their columns")
        moved = [lf for lf in range(self.topology.n_leaves)
                 if self._host(lf) == dead]
        for lf in moved:
            self.host_of_leaf[lf] = target
        return target, moved

    def _fault_step_begin(self, sweep: int, k: int, mark) -> tuple[float, list]:
        """Fire crash/stall faults scheduled at step ``k``.

        Newly dead leaves have their resident slots NaN-marked through
        ``mark(slots)`` (mode-specific storage), so even a crash no
        message ever touches is caught by the non-finite sentinels.
        Returns ``(stall_time, events)``.
        """
        from ..faults.events import FaultEvent

        inj = self.injector
        events: list = []
        for leaf in inj.advance(sweep, k):
            mark([2 * leaf, 2 * leaf + 1])
            events.append(inj.record(FaultEvent(
                "crash", "injected", sweep, k, leaf=leaf,
                detail=f"leaf {leaf} crash-stopped; local columns lost")))
        stall_t = 0.0
        for leaf, duration in inj.stalls(sweep, k):
            if leaf in inj.dead:
                continue
            # the step is synchronous: the slowest (stalled) leaf gates it
            stall_t = max(stall_t, duration)
            events.append(inj.record(FaultEvent(
                "stall", "injected", sweep, k, leaf=leaf,
                time_charged=duration,
                detail=f"leaf {leaf} frozen for {duration:.0f}")))
        return stall_t, events

    def _fault_deliver(self, sweep: int, k: int, moves, words: int,
                       corrupt_slot):
        """Deliver a move phase through the transport under the current
        host map.  Returns ``(phase, extra_time, retries, events)``;
        silently corrupted payloads are damaged via
        ``corrupt_slot(dst_slot, mode)`` after the move."""
        pairs = [(self._host(leaf_of_slot(mv.src)),
                  self._host(leaf_of_slot(mv.dst))) for mv in moves]
        phase = route_moves(self.topology,
                            np.fromiter((s for s, _ in pairs),
                                        dtype=np.int64, count=len(pairs)),
                            np.fromiter((d for _, d in pairs),
                                        dtype=np.int64, count=len(pairs)))
        msgs = [(s, d, self.topology.comm_level(s, d))
                for s, d in pairs if s != d]
        outcome = self._transport.deliver_phase(sweep, k, msgs, words)
        pending = list(outcome.silent)
        for mv, (s, d) in zip(moves, pairs):
            if not pending:
                break
            for i, (ps, pd, mode) in enumerate(pending):
                if (s, d) == (ps, pd):
                    corrupt_slot(mv.dst, mode)
                    pending.pop(i)
                    break
        return phase, outcome.extra_time, outcome.retries, outcome.events

    def run_sweep(
        self,
        schedule: Schedule,
        tol: float = 1e-12,
        sort: str | None = "desc",
        sweep_index: int = 0,
    ) -> tuple[SweepStats, RotationStats, float]:
        """Execute one sweep; returns (timing stats, rotation stats, worst
        relative off-diagonal seen before rotating).

        ``sweep_index`` locates the sweep for fault matching and event
        records; it is ignored (and harmless) without an injector.

        Fault-free, sanitizer-off, single-worker sweeps auto-select the
        vectorised fast path (see :meth:`_fastpath_eligible`): columns
        never move during the sweep, costs come in closed form from the
        compiled plan, and the result is bit-identical to the
        event-driven reference path — X, V, worst, rotation counters and
        every StepRecord field (enforced by the parity suite).  Any
        armed injector or sanitizer keeps the event path, which remains
        the reference semantics.
        """
        require(self.X is not None, "load() a matrix first")
        require(schedule.n == self.n_slots, "schedule size != machine size")
        plan = compile_schedule(schedule)
        fast = self._fastpath_eligible()
        self.last_sweep_path = "fast" if fast else "event"
        if self.block_size is not None:
            if fast:
                return self._run_sweep_fast_block(plan, tol, sort)
            return self._run_sweep_block(plan, tol, sort, sweep_index)
        if fast:
            return self._run_sweep_fast_scalar(plan, tol, sort)
        X, V, labels = self.X, self.V, self.labels
        m = X.shape[0]
        batched = self.kernel == "batched"
        if batched:
            # column-as-row working buffer for this sweep; X/V remain the
            # canonical storage so the telemetry/inspection surface is
            # kernel-agnostic (conversion is one transpose either way);
            # the buffer itself is hoisted onto the machine by load()
            WT = self._WT
            WT[:, :m] = X.T
            if V is not None:
                WT[:, m:] = V.T
            norms_sq = self._norms_sq
        if self.injector is not None:
            from ..faults.corruptions import corrupt_payload

            if batched:
                def mark(slots):
                    WT[slots, :m] = np.nan
                    if norms_sq is not None:
                        norms_sq[slots] = np.nan

                def corrupt_slot(slot, mode):
                    corrupt_payload(WT[slot, :m], mode, self.injector.rng)
            else:
                def mark(slots):
                    X[:, slots] = np.nan

                def corrupt_slot(slot, mode):
                    corrupt_payload(X[:, slot], mode, self.injector.rng)
        stats = SweepStats()
        rstats = RotationStats()
        worst = 0.0
        for k, cs in enumerate(plan.steps, start=1):
            rotations = 0
            compute_t = 0.0
            retries = 0
            fault_events: list = []
            if self.injector is not None:
                compute_t, fault_events = self._fault_step_begin(
                    sweep_index, k, mark)
            if cs.n_pairs:
                a, b = cs.a, cs.b
                flip = labels[a] > labels[b]
                if batched:
                    ab = cs.pairs
                    P = np.where(flip[:, None], ab[:, ::-1], ab)
                    st, mx = apply_step_rotations_batched(
                        WT, P, tol, sort, norms_sq, m
                    )
                else:
                    left = np.where(flip, b, a)
                    right = np.where(flip, a, b)
                    st, mx = apply_step_rotations(X, V, left, right, tol, sort)
                rstats.merge(st)
                worst = max(worst, mx)
                rotations = cs.n_pairs
                # each leaf rotates at most one of the step's pairs; remote
                # pairs (non-co-resident slots) would serialise, but the
                # paper's orderings are fully local so the busiest leaf
                # performs exactly one rotation
                compute_t += self.cost.compute_time(
                    self._busiest_leaf(cs), m)
            comm_t = 0.0
            messages = 0
            max_level = 0
            contention = 0.0
            if cs.has_moves:
                src, dst = cs.src, cs.dst
                if batched:
                    WT[dst] = WT[src]
                    norms_sq[dst] = norms_sq[src]
                else:
                    X[:, dst] = X[:, src]
                    if V is not None:
                        V[:, dst] = V[:, src]
                labels[dst] = labels[src]
                # a message carries one column of m words (plus its V row
                # block when vectors are accumulated)
                words = m + (X.shape[1] if V is not None else 0)
                if self.injector is None:
                    # healthy host map: routing depends only on (plan,
                    # topology), so the memoised phase is exact
                    phase = plan.route_phase(self.topology, k - 1)
                    extra = 0.0
                else:
                    phase, extra, retries, move_events = self._fault_deliver(
                        sweep_index, k, cs.moves, words, corrupt_slot)
                    fault_events.extend(move_events)
                messages = phase.n_messages
                max_level = phase.max_level
                contention = phase.contention
                comm_t = self.cost.comm_time(phase, words) + extra
            stats.steps.append(
                StepRecord(
                    step=k,
                    rotations=rotations,
                    messages=messages,
                    max_level=max_level,
                    contention=contention,
                    compute_time=compute_t,
                    comm_time=comm_t,
                    retries=retries,
                    fault_events=tuple(fault_events),
                )
            )
        if batched:
            X[:] = WT[:, :m].T
            if V is not None:
                V[:] = WT[:, m:].T
        return stats, rstats, worst

    def _fastpath_eligible(self) -> bool:
        """True when the vectorised fast path may replace the
        event-driven sweep: no fault injector (per-move delivery and
        degraded host maps need real events), no runtime sanitizer (its
        write-set records hang off the event path's solvers), no
        multi-worker executor (the fast path is a single serial
        pipeline), and no explicit ``force_event`` pin."""
        if self.force_event or self.injector is not None:
            return False
        if self._sanitizer is not None:
            return False
        return self._executor is None or self._executor.workers <= 1

    def _fast_record(self, plan, k: int, cs: CompiledStep, rotations: int,
                     compute_t: float, words: int) -> StepRecord:
        """Closed-form :class:`StepRecord` of a healthy step: identical
        to the event path's record by construction — same memoised
        routing phase (derived from the compiled ``move_leaves``), same
        cost-model calls, zero fault fields."""
        comm_t = 0.0
        messages = 0
        max_level = 0
        contention = 0.0
        if cs.has_moves:
            phase = plan.route_phase(self.topology, k - 1)
            messages = phase.n_messages
            max_level = phase.max_level
            contention = phase.contention
            comm_t = self.cost.comm_time(phase, words)
        return StepRecord(
            step=k,
            rotations=rotations,
            messages=messages,
            max_level=max_level,
            contention=contention,
            compute_time=compute_t,
            comm_time=comm_t,
            retries=0,
            fault_events=(),
        )

    def _run_sweep_fast_scalar(
        self,
        plan,
        tol: float,
        sort: str | None,
    ) -> tuple[SweepStats, RotationStats, float]:
        """Vectorised fault-free sweep at scalar granularity.

        Columns never move: the plan's precomputed content pairs address
        each step's columns where they already sit (content id = slot at
        sweep start), and the sweep permutation is applied once at the
        end — the event path's per-step ``X[:, dst] = X[:, src]`` column
        copies (and the batched kernel's row moves) disappear entirely.
        The rotation kernels receive the same values in the same pair
        order with the same label orientation, so the arithmetic is
        bit-identical to the event path.
        """
        X, V, labels = self.X, self.V, self.labels
        m = X.shape[0]
        fp = plan.fastpath()
        labels0 = labels.copy()
        batched = self.kernel == "batched"
        if batched:
            WT = self._WT
            WT[:, :m] = X.T
            if V is not None:
                WT[:, m:] = V.T
            norms_sq = self._norms_sq
        stats = SweepStats()
        rstats = RotationStats()
        worst = 0.0
        words = m + (X.shape[1] if V is not None else 0)
        for k, cs in enumerate(plan.steps, start=1):
            rotations = 0
            compute_t = 0.0
            if cs.n_pairs:
                pc = fp.content_pairs[k - 1]
                # the label a content carries is fixed for the whole
                # sweep, so the event path's per-step ``labels[a] >
                # labels[b]`` orientation is a static lookup here
                flip = labels0[pc[:, 0]] > labels0[pc[:, 1]]
                if batched:
                    P = np.where(flip[:, None], pc[:, ::-1], pc)
                    st, mx = apply_step_rotations_batched(
                        WT, P, tol, sort, norms_sq, m
                    )
                else:
                    left = np.where(flip, pc[:, 1], pc[:, 0])
                    right = np.where(flip, pc[:, 0], pc[:, 1])
                    st, mx = apply_step_rotations(X, V, left, right, tol, sort)
                rstats.merge(st)
                worst = max(worst, mx)
                rotations = cs.n_pairs
                compute_t = self.cost.compute_time(cs.max_pairs_per_leaf, m)
            stats.steps.append(
                self._fast_record(plan, k, cs, rotations, compute_t, words))
        final = fp.final_layout
        if batched:
            X[:] = WT[final, :m].T
            if V is not None:
                V[:] = WT[final, m:].T
            norms_sq[:] = norms_sq[final]
        else:
            X[:] = X[:, final]
            if V is not None:
                V[:] = V[:, final]
        labels[:] = labels0[final]
        return stats, rstats, worst

    def _run_sweep_fast_block(
        self,
        plan,
        tol: float,
        sort: str | None,
    ) -> tuple[SweepStats, RotationStats, float]:
        """Vectorised fault-free sweep at block granularity.

        Block indirections (``block_cols``/``labels``) stop evolving per
        step: each step's met columns come from the plan's content pairs
        through the sweep-start indirection, and both indirections jump
        to their final state once at the end.  The gram kernel
        additionally runs on transposed row-major buffers
        (:func:`~repro.blockjacobi.kernel.fastpath_gram_step`): the
        event path's strided column gather/scatter — its dominant cost
        at large n — becomes contiguous row traffic, with sort-only
        steps reduced to index relabelings.  A numerical breakdown
        materialises ``X``/``V`` and delegates that step to the event
        solver, preserving the fallback-chain semantics bit for bit.
        """
        from ..blockjacobi.kernel import (
            fastpath_gram_flush,
            fastpath_gram_step,
            solve_block_step,
        )
        from ..util.errors import NumericalBreakdown

        X, V = self.X, self.V
        b = self.block_size
        m = X.shape[0]
        n_cols = X.shape[1]
        fp = plan.fastpath()
        block0 = self.block_cols.copy()
        labels0 = self.labels.copy()
        gram = self.kernel == "gram"
        if gram:
            XT = np.ascontiguousarray(X.T)
            VT = np.ascontiguousarray(V.T) if V is not None else None
            row_of_col = np.arange(n_cols, dtype=np.intp)
            scratch: dict = {}  # step stacks, allocated once per sweep
        stats = SweepStats()
        rstats = RotationStats()
        worst = 0.0
        words = b * (m + (n_cols if V is not None else 0))
        for k, cs in enumerate(plan.steps, start=1):
            rotations = 0
            compute_t = 0.0
            if cs.n_pairs:
                # (n_pairs, 2b): the event path's evolving ``block_cols``
                # indirection, replayed from the sweep-start snapshot
                pair_cols = block0[fp.content_pairs[k - 1]].reshape(
                    cs.n_pairs, 2 * b)
                if gram:
                    try:
                        st, mx = fastpath_gram_step(
                            XT, VT, row_of_col, pair_cols, tol, sort,
                            self.inner_sweeps, self._compute_backend,
                            scratch=scratch)
                    except NumericalBreakdown:
                        # materialise and delegate the poisoned step to
                        # the event solver: same per-pair fallback chain
                        # on the same values, then re-ingest the buffers
                        fastpath_gram_flush(XT, VT, scratch)
                        X[:] = XT[row_of_col].T
                        if V is not None:
                            V[:] = VT[row_of_col].T
                        st, mx = solve_block_step(
                            X, V, pair_cols, tol, sort, self.inner_sweeps,
                            self.kernel, executor=self._executor,
                            compute_backend=self._compute_backend)
                        XT[:] = X.T
                        if VT is not None:
                            VT[:] = V.T
                        row_of_col = np.arange(n_cols, dtype=np.intp)
                else:
                    st, mx = solve_block_step(
                        X, V, pair_cols, tol, sort, self.inner_sweeps,
                        self.kernel, executor=self._executor,
                        compute_backend=self._compute_backend)
                rstats.merge(st)
                worst = max(worst, mx)
                rotations = cs.n_pairs
                compute_t = self.cost.block_compute_time(
                    cs.max_pairs_per_leaf, m, b, self.inner_sweeps)
            stats.steps.append(
                self._fast_record(plan, k, cs, rotations, compute_t, words))
        final = fp.final_layout
        if gram:
            fastpath_gram_flush(XT, VT, scratch)
            X[:] = XT[row_of_col].T
            if V is not None:
                V[:] = VT[row_of_col].T
        self.block_cols[:] = block0[final]
        self.labels[:] = labels0[final]
        return stats, rstats, worst

    def _run_sweep_block(
        self,
        plan,
        tol: float,
        sort: str | None,
        sweep_index: int = 0,
    ) -> tuple[SweepStats, RotationStats, float]:
        """Block-granularity sweep: met pairs solve 2b-column subproblems,
        moves carry whole blocks, records charge block work."""
        from ..blockjacobi.kernel import solve_block_step

        X, V, labels = self.X, self.V, self.labels
        block_cols = self.block_cols
        b = self.block_size
        m = X.shape[0]
        if self.injector is not None:
            from ..faults.corruptions import corrupt_payload

            def mark(slots):
                for s in slots:
                    X[:, block_cols[s]] = np.nan

            def corrupt_slot(slot, mode):
                # pick one column of the block: an integer index yields a
                # writable view (a fancy-indexed block would be a copy and
                # the damage would silently miss the matrix)
                cols = block_cols[slot]
                col = int(cols[int(self.injector.rng.integers(len(cols)))])
                corrupt_payload(X[:, col], mode, self.injector.rng)
        stats = SweepStats()
        rstats = RotationStats()
        worst = 0.0
        for k, cs in enumerate(plan.steps, start=1):
            rotations = 0
            compute_t = 0.0
            retries = 0
            fault_events: list = []
            if self.injector is not None:
                compute_t, fault_events = self._fault_step_begin(
                    sweep_index, k, mark)
            if cs.n_pairs:
                # (n_pairs, 2b): row i = the met columns of block pair i
                pair_cols = block_cols[cs.pairs].reshape(cs.n_pairs, 2 * b)
                st, mx = solve_block_step(X, V, pair_cols, tol, sort,
                                          self.inner_sweeps, self.kernel,
                                          executor=self._executor,
                                          sanitizer=self._sanitizer,
                                          compute_backend=self._compute_backend)
                rstats.merge(st)
                worst = max(worst, mx)
                # block granularity: one "rotation" per met block pair
                rotations = cs.n_pairs
                compute_t += self.cost.block_compute_time(
                    self._busiest_leaf(cs), m, b, self.inner_sweeps
                )
            comm_t = 0.0
            messages = 0
            max_level = 0
            contention = 0.0
            if cs.has_moves:
                src, dst = cs.src, cs.dst
                # fancy assignment materialises the gather first, so the
                # snapshot semantics of a move phase hold
                block_cols[dst] = block_cols[src]
                labels[dst] = labels[src]
                # a message carries one b-column block of b*m words (plus
                # its V row block when vectors are accumulated)
                words = b * (m + (X.shape[1] if V is not None else 0))
                if self.injector is None:
                    phase = plan.route_phase(self.topology, k - 1)
                    extra = 0.0
                else:
                    phase, extra, retries, move_events = self._fault_deliver(
                        sweep_index, k, cs.moves, words, corrupt_slot)
                    fault_events.extend(move_events)
                messages = phase.n_messages
                max_level = phase.max_level
                contention = phase.contention
                comm_t = self.cost.comm_time(phase, words) + extra
            stats.steps.append(
                StepRecord(
                    step=k,
                    rotations=rotations,
                    messages=messages,
                    max_level=max_level,
                    contention=contention,
                    compute_time=compute_t,
                    comm_time=comm_t,
                    retries=retries,
                    fault_events=tuple(fault_events),
                )
            )
        return stats, rstats, worst

    def column_norms(self) -> np.ndarray:
        require(self.X is not None, "load() a matrix first")
        return np.linalg.norm(self.X, axis=0)
