"""The paper's hybrid ordering (Section 5, Fig 9).

The hybrid combines the fat-tree ordering with the new ring ordering so
that skinny fat-trees (such as the CM-5 data network) never contend:

* the ``n`` indices are divided into ``g`` groups of consecutive leaves
  (Schreiber partitioning); each group holds two interleaved *blocks*
  of ``K = n / (2g)`` indices (tops and bottoms of its leaves);
* super-step 1 runs a full fat-tree sweep *inside* every group, letting
  all indices of a group meet (this covers the two resident blocks'
  intra- and inter-block pairs at once);
* the remaining ``2g - 2`` super-steps circulate the ``2g`` blocks
  between groups under the new ring ordering at block granularity:
  whenever two blocks co-reside they run a two-block ordering (``K``
  steps), and after every super-step each group sends exactly one block
  to its ring neighbour — all in one direction, evenly loaded.

Because only one block of ``K`` columns crosses any group boundary per
super-step, the traffic through the skinny levels of the tree is bounded
by the block size, which can be chosen against the channel capacity so
that no channel is ever oversubscribed (the Section 5 contention-freedom
claim, measured by the machine simulator).

A sweep takes ``(2K - 1) + (2g - 2) K = n - 1`` steps — the optimal
count — and, like the ring ordering it inherits its movements from, the
original index order is restored after two consecutive sweeps.  As the
paper requires, each moving block is rotated by its two-block ordering
exactly when it is about to be shifted; any block left with its halves
crossed at the end of the sweep is un-crossed by intra-group homing
moves fused into the final step.
"""

from __future__ import annotations

from ..util.validation import require, require_power_of_two
from .base import Ordering
from .fattree import fat_tree_sweep
from .ringnew import ring_realization
from .schedule import Move, Schedule, Step
from .twoblock import StepFragment, merge_parallel, two_block_fragments

__all__ = ["HybridOrdering", "hybrid_sweep"]


def _shift_schedule_fragments(schedule: Schedule, leaf_offset: int) -> list[StepFragment]:
    """Re-anchor a standalone schedule's slots at a leaf offset."""
    d = 2 * leaf_offset
    out = []
    for step in schedule.steps:
        pairs = tuple((a + d, b + d) for a, b in step.pairs)
        moves = tuple(Move(m.src + d, m.dst + d) for m in step.moves)
        out.append(StepFragment(pairs=pairs, moves=moves))
    return out


def hybrid_sweep(n: int, n_groups: int) -> Schedule:
    """One sweep (``n - 1`` steps) of the hybrid ordering.

    ``n_groups`` is the number of leaf groups ``g``; the block size is
    ``K = n / (2g)`` indices.  ``g`` must be a power of two with at least
    two groups, and each group needs at least one leaf.
    """
    require_power_of_two(n, "n", minimum=8)
    require_power_of_two(n_groups, "n_groups", minimum=2)
    g = n_groups
    require(n % (2 * g) == 0 and n // (2 * g) >= 2,
            f"need at least two leaves per group: n={n}, groups={g}")
    K = n // (2 * g)           # indices per block == leaves per group
    group_leaves = [list(range(gi * K, (gi + 1) * K)) for gi in range(g)]

    def slot(gi: int, leaf_off: int, role: str) -> int:
        leaf = group_leaves[gi][leaf_off]
        return 2 * leaf + (0 if role == "top" else 1)

    # block-level ring realization: blocks 1..2g over ring columns 0..g-1
    assigns, target_col, _direction = ring_realization(2 * g, modified=False)
    n_super = len(assigns)     # == 2g - 1

    # block id -> (group, role); initially block 2j+1 = tops of group j,
    # block 2j+2 = bottoms (the natural interleaved layout)
    place: dict[int, tuple[int, str]] = {}
    for j in range(g):
        place[2 * j + 1] = (j, "top")
        place[2 * j + 2] = (j, "bottom")
    rotations = {b: 0 for b in place}

    def block_of(gi: int, step_assign: dict[frozenset[int], int]) -> frozenset[int]:
        for pr, c in step_assign.items():
            if c == gi:
                return pr
        raise AssertionError("every group hosts exactly one block pair")

    def move_blocks(cur: dict[frozenset[int], int], nxt: dict[frozenset[int], int]) -> tuple[Move, ...]:
        """Column moves realizing the block-level transition (fused later)."""
        pos_cur = {b: c for pr, c in cur.items() for b in pr}
        pos_nxt = {b: c for pr, c in nxt.items() for b in pr}
        movers = [b for b in pos_cur if pos_cur[b] != pos_nxt[b]]
        freed_role = {pos_cur[b]: place[b][1] for b in movers}
        moves: list[Move] = []
        for b in movers:
            src_g, src_role = place[b]
            dst_g = pos_nxt[b]
            dst_role = freed_role[dst_g]
            for i in range(K):
                moves.append(Move(slot(src_g, i, src_role), slot(dst_g, i, dst_role)))
        for b in movers:
            place[b] = (pos_nxt[b], freed_role[pos_nxt[b]])
        return tuple(moves)

    # ---- super-step 1: fat-tree ordering inside every group -------------
    intra = fat_tree_sweep(2 * K) if K >= 2 else None
    require(intra is not None, "groups must hold at least 4 indices")
    frags = merge_parallel(
        *[_shift_schedule_fragments(intra, gl[0]) for gl in group_leaves]
    )

    def attach(moves: tuple[Move, ...]) -> None:
        """Fuse a communication phase into the last step when that step has
        no moves of its own; otherwise emit a stand-alone phase so two
        phases never stack onto the same injection channels."""
        if not moves:
            return
        if frags[-1].moves:
            frags.append(StepFragment(pairs=(), moves=moves))
        else:
            frags[-1] = frags[-1].with_extra_moves(moves)

    # ---- super-steps 2 .. 2g-1: two-block orderings + ring moves --------
    for s in range(1, n_super):
        cur, nxt = assigns[s - 1], assigns[s]
        # blocks that will move after this coming super-step rotate in it,
        # so work out movers of the *following* transition first
        attach(move_blocks(cur, nxt))
        pos_nxt = {b: c for pr, c in nxt.items() for b in pr}
        if s + 1 < n_super:
            pos_after = {b: c for pr, c in assigns[s + 1].items() for b in pr}
        else:
            pos_after = {b: target_col[b] for b in pos_nxt}
        group_frag_lists = []
        for gi in range(g):
            pr = block_of(gi, nxt)
            mover = next((b for b in pr if pos_after[b] != pos_nxt[b]), None)
            if mover is None:
                # neither block moves next; rotate the bottom block
                mover = next(b for b in pr if place[b][1] == "bottom")
            rotate = place[mover][1]
            rotations[mover] += 1
            group_frag_lists.append(two_block_fragments(group_leaves[gi], rotate=rotate))
        frags = frags + merge_parallel(*group_frag_lists)

    # ---- final phase: each block returns to its ring target column and
    # home role (odd block ids are tops, even are bottoms), then blocks
    # with an odd rotation count get their halves un-crossed; each is its
    # own communication phase
    homing: list[Move] = []
    for b in sorted(place):
        src_g, src_role = place[b]
        dst_g = target_col[b]
        dst_role = "top" if b % 2 == 1 else "bottom"
        if (src_g, src_role) != (dst_g, dst_role):
            for i in range(K):
                homing.append(Move(slot(src_g, i, src_role), slot(dst_g, i, dst_role)))
        place[b] = (dst_g, dst_role)
    uncross: list[Move] = []
    half = K // 2
    for b, (gi, role) in place.items():
        if rotations[b] % 2 == 1 and half:
            for i in range(half):
                uncross.append(Move(slot(gi, i, role), slot(gi, i + half, role)))
                uncross.append(Move(slot(gi, i + half, role), slot(gi, i, role)))
    attach(tuple(homing))
    attach(tuple(uncross))

    steps = [Step(pairs=f.pairs, moves=f.moves) for f in frags]
    sched = Schedule(n=n, steps=steps, name=f"hybrid(n={n}, groups={g})")
    sched.notes["n_groups"] = g
    sched.notes["block_size"] = K
    sched.notes["superstep_boundaries"] = [2 * K - 1 + i * K for i in range(n_super - 1)]
    return sched


class HybridOrdering(Ordering):
    """Fat-tree ordering inside groups, ring ordering between groups;
    the contention-free ordering for skinny fat-trees (CM-5)."""

    name = "hybrid"

    def __init__(self, n: int, n_groups: int | None = None):
        require_power_of_two(n, "n", minimum=8)
        if n_groups is None:
            # default: groups of two leaves (smallest blocks, least traffic
            # per skinny channel) unless the machine is tiny
            n_groups = max(2, n // 8)
        super().__init__(n)
        self.n_groups = n_groups

    def build_sweep(self, sweep_index: int) -> Schedule:
        return hybrid_sweep(self.n, self.n_groups)
