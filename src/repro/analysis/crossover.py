"""Capacity crossover study (TAB-CROSS): when does the fat-tree ordering win?

The paper's closing sentence: "If communication-handling capability is
increased, then our fat-tree ordering will become more attractive."
This experiment turns that prediction into a curve: sweep the level
above which the tree goes skinny (``SkinnyFatTree(skinny_above=L)``,
from an ordinary binary tree at L = 1 to a perfect fat-tree at the top
level) and record the per-sweep communication time of the fat-tree and
hybrid orderings.  The crossover level — where the fat-tree ordering
first matches the hybrid — quantifies how much channel capacity the
fat-tree ordering needs before its superior locality pays off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.costmodel import CostModel
from ..machine.simulator import TreeMachine
from ..machine.topology import SkinnyFatTree
from ..orderings.registry import make_ordering
from ..util.bits import ilog2
from ..util.formatting import render_table

__all__ = ["CrossoverRow", "crossover_table", "render_crossover_table", "crossover_level"]


@dataclass(frozen=True)
class CrossoverRow:
    skinny_above: int
    comm_time: dict[str, float]
    fat_tree_contention: float
    fat_tree_wins: bool


def crossover_table(
    n: int = 64,
    m: int = 96,
    cost_model: CostModel | None = None,
    seed: int = 0,
) -> list[CrossoverRow]:
    """TAB-CROSS: comm time of fat-tree vs hybrid as capacity grows."""
    cm = cost_model or CostModel()
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    n_leaves = n // 2
    levels = ilog2(n_leaves)
    rows: list[CrossoverRow] = []
    hybrid_groups = max(2, n // 8)
    for L in range(1, levels + 1):
        topo = SkinnyFatTree(n_leaves, skinny_above=L)
        times: dict[str, float] = {}
        fat_cont = 0.0
        for name in ("fat_tree", "hybrid"):
            kw = {"n_groups": hybrid_groups} if name == "hybrid" else {}
            machine = TreeMachine(topo, cm)
            machine.load(a, compute_v=False)
            stats, _, _ = machine.run_sweep(make_ordering(name, n, **kw).sweep(0))
            times[name] = stats.comm_time
            if name == "fat_tree":
                fat_cont = stats.max_contention
        rows.append(
            CrossoverRow(
                skinny_above=L,
                comm_time=times,
                fat_tree_contention=fat_cont,
                fat_tree_wins=times["fat_tree"] <= times["hybrid"],
            )
        )
    return rows


def crossover_level(rows: list[CrossoverRow]) -> int | None:
    """First skinny-above level at which the fat-tree ordering wins."""
    for r in rows:
        if r.fat_tree_wins:
            return r.skinny_above
    return None


def render_crossover_table(rows: list[CrossoverRow]) -> str:
    """Text table for TAB-CROSS rows."""
    headers = ["skinny above level", "fat_tree comm", "hybrid comm",
               "fat_tree contention", "winner"]
    data = [
        [
            r.skinny_above,
            f"{r.comm_time['fat_tree']:.0f}",
            f"{r.comm_time['hybrid']:.0f}",
            f"{r.fat_tree_contention:.2f}",
            "fat_tree" if r.fat_tree_wins else "hybrid",
        ]
        for r in rows
    ]
    return render_table(headers, data, title="TAB-CROSS (channel capacity sweep)")
