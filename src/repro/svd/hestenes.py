"""Serial one-sided Jacobi SVD driver with pluggable parallel orderings.

The Hestenes method (Section 1 of the paper): generate an orthogonal
``V`` as a product of plane rotations so that ``A V = H`` has orthogonal
columns; normalising the nonzero columns of ``H`` gives ``U_r S_r`` with
the singular values on ``S_r``.  The rotations are performed sweep by
sweep in the fixed sequence prescribed by a parallel ordering; the
iteration terminates when one complete sweep passes the threshold test
for every pair.

This driver executes the *slot-level schedules* of
:mod:`repro.orderings`, moving actual columns between slots exactly as
the parallel machine would, so the sorted-output and order-restoration
behaviour of each ordering is observable on real numerics.  It is also
the numerical reference the simulated tree machine is bit-compared
against.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..core.result import SVDResult, SweepRecord
from ..orderings.base import Ordering
from ..orderings.registry import make_ordering
from ..util.errors import ConvergenceWarning
from ..util.validation import require
from .convergence import off_norm
from .rotations import (
    RotationStats,
    apply_step_rotations,
    apply_step_rotations_batched,
    column_norms_sq,
)
from .thresholds import ThresholdStrategy

__all__ = ["KERNELS", "JacobiOptions", "jacobi_svd", "hestenes_sweeps"]

#: registered rotation kernels: ``reference`` is the per-quantity masked
#: implementation the numerics are specified by; ``batched`` is the fused
#: gather/2x2-transform/scatter fast path with the cross-sweep norm cache
KERNELS = ("reference", "batched")


@dataclass(frozen=True)
class JacobiOptions:
    """Tuning knobs of the Jacobi iteration.

    ``tol``
        Relative threshold: a pair counts as orthogonal when
        ``|a_i . a_j| <= tol * ||a_i|| ||a_j||``; the sweep loop stops
        after the first complete sweep in which every pair passes.
    ``max_sweeps``
        Safety bound on the number of sweeps.
    ``sort``
        ``"desc"`` (paper default: singular values emerge nonincreasing),
        ``"asc"``, or ``None`` (never exchange columns).
    ``rank_tol``
        Columns with final norm below ``rank_tol * max_norm`` are treated
        as numerically zero (rank deficiency).
    ``threshold_strategy``
        Optional per-sweep *rotation* threshold schedule (Wilkinson's
        staged strategy); termination always uses ``tol``.
    ``kernel``
        Rotation kernel: ``"reference"`` (masked per-quantity updates) or
        ``"batched"`` (fused 2x2 batch transforms over stacked ``[X; V]``
        with a cross-sweep column-norm cache — same results to rounding,
        measurably faster; see ``repro.bench``).
    ``compute_backend``
        Batched-GEMM backend (:mod:`repro.kernels`) used when this
        options object drives a *block-mode* run (``parallel_svd`` with
        ``block_size > 1`` carries it into
        :class:`~repro.blockjacobi.driver.BlockJacobiOptions`); the
        scalar kernels here have no GEMM phase and ignore it.  ``None``
        resolves from ``$REPRO_COMPUTE_BACKEND`` (default numpy).
    """

    tol: float = 1e-12
    max_sweeps: int = 60
    sort: str | None = "desc"
    rank_tol: float = 1e-12
    threshold_strategy: "ThresholdStrategy | None" = None
    kernel: str = "reference"
    compute_backend: str | None = None

    def __post_init__(self) -> None:
        from ..kernels import COMPUTE_BACKENDS

        require(self.compute_backend is None
                or self.compute_backend in COMPUTE_BACKENDS,
                f"unknown compute backend {self.compute_backend!r}; "
                f"registered: {', '.join(COMPUTE_BACKENDS)}")


def _resolve_ordering(ordering: str | Ordering, n: int, **kwargs: object) -> Ordering:
    if isinstance(ordering, Ordering):
        require(ordering.n == n, f"ordering built for n={ordering.n}, matrix has n={n}")
        return ordering
    return make_ordering(ordering, n, **kwargs)


def _schedule_arrays(
    sched: object,
) -> list[tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]]:
    """Per-step index arrays ``(pairs (k,2), move src, move dst)`` of a
    schedule, drawn from its compiled plan
    (:func:`repro.orderings.plan.compile_schedule`) so the lowering is
    shared with the machine simulator and paid once per structure, not
    once per driver."""
    from ..orderings.plan import compile_schedule

    plan = compile_schedule(sched)
    return [
        (cs.pairs if cs.n_pairs else None,
         cs.src if cs.has_moves else None,
         cs.dst if cs.has_moves else None)
        for cs in plan.steps
    ]


def hestenes_sweeps(
    X: np.ndarray,
    V: np.ndarray | None,
    ordering: Ordering,
    options: JacobiOptions,
) -> tuple[list[SweepRecord], bool, int]:
    """Run threshold-Jacobi sweeps in place; returns (history, converged, sweeps).

    ``X`` (m x n) is transformed into ``H = A V``; ``V`` accumulates the
    rotations when given.  Column moves of the schedule are applied to
    both, mirroring the machine's communication phases.

    With ``options.kernel == "batched"`` the loop works on the stacked
    array ``W = [X; V]`` so data and vector columns advance in one fused
    update per step, and the Gram quantities ``alpha``/``beta`` come from
    a cross-sweep squared-norm cache maintained via the rotation
    invariants (permuted alongside the schedule's column moves) — only
    ``gamma`` costs a fresh dot product per pair.
    """
    require(options.kernel in KERNELS,
            f"unknown kernel {options.kernel!r}; available: {', '.join(KERNELS)}")
    if options.kernel == "batched":
        return _sweeps_batched(X, V, ordering, options)
    return _sweeps_reference(X, V, ordering, options)


def _sweeps_reference(
    X: np.ndarray,
    V: np.ndarray | None,
    ordering: Ordering,
    options: JacobiOptions,
) -> tuple[list[SweepRecord], bool, int]:
    n = X.shape[1]
    history: list[SweepRecord] = []
    converged = False
    sweeps_done = 0
    # logical index labels per slot (the paper numbers columns 1..n);
    # labels follow the schedule's moves but NOT the norm-ordering
    # exchanges — the exchanges are what places the larger-norm column at
    # the slot "associated with the index of a smaller number" (Section 4)
    labels = np.arange(n, dtype=np.intp)
    # schedules are cached per ordering, so converted index arrays can be
    # memoised by schedule identity across sweeps
    arrays_cache: dict[int, list] = {}
    for sweep in range(options.max_sweeps):
        sched = ordering.sweep(sweep)
        steps = arrays_cache.get(id(sched))
        if steps is None:
            steps = arrays_cache[id(sched)] = _schedule_arrays(sched)
        stats = RotationStats()
        worst = 0.0
        rot_tol = options.tol
        if options.threshold_strategy is not None:
            rot_tol = max(options.threshold_strategy.threshold(sweep), options.tol)
        for ab, src, dst in steps:
            if ab is not None:
                # orient each pair by its tracked labels so the sorting
                # exchanges are consistent along schedule trajectories
                la = labels[ab]
                flip = la[:, 0] > la[:, 1]
                left = np.where(flip, ab[:, 1], ab[:, 0])
                right = np.where(flip, ab[:, 0], ab[:, 1])
                st, mx = apply_step_rotations(X, V, left, right, rot_tol, options.sort)
                stats.merge(st)
                worst = max(worst, mx)
            if src is not None:
                labels[dst] = labels[src]
                X[:, dst] = X[:, src]
                if V is not None:
                    V[:, dst] = V[:, src]
        sweeps_done = sweep + 1
        history.append(
            SweepRecord(
                sweep=sweeps_done,
                off_norm=off_norm(X),
                max_rel_gamma=worst,
                rotations=stats.applied,
                skipped=stats.skipped,
            )
        )
        # the paper's rule: stop after a complete sweep in which all
        # columns were orthogonal AND no columns were interchanged
        if worst <= options.tol and stats.exchanged == 0:
            converged = True
            break
    return history, converged, sweeps_done


def _sweeps_batched(
    X: np.ndarray,
    V: np.ndarray | None,
    ordering: Ordering,
    options: JacobiOptions,
) -> tuple[list[SweepRecord], bool, int]:
    """Batched-kernel sweep loop.

    Works on ``WT``, the stacked factor ``[X; V]`` in column-as-row
    layout, with three structural optimisations over the reference loop:

    * schedule column moves advance a slot-to-row indirection instead of
      copying data (moves in every shipped ordering are slot
      permutations; a non-permutation move step falls back to a physical
      row copy so custom schedules keep reference semantics);
    * per-step oriented pair/row index arrays are cached keyed on the
      (schedule, labels, indirection) state at sweep start — the
      trajectory repeats with the ordering's restoration period, so the
      label-orientation and indirection lookups are paid once, not every
      sweep;
    * Gram quantities ``alpha``/``beta`` come from the cross-sweep
      squared-norm cache maintained by the kernel (keyed by physical
      row, so indirection moves never touch it).
    """
    m, n = X.shape
    history: list[SweepRecord] = []
    converged = False
    sweeps_done = 0
    stack = np.vstack((X, V)) if V is not None else X
    WT = np.ascontiguousarray(stack.T)  # row j = stacked column j
    Xdata = WT[:, :m].T  # data part view; off_norm is permutation-invariant
    norms_sq = column_norms_sq(Xdata)  # keyed by physical row
    labels = np.arange(n, dtype=np.intp)
    rowof = np.arange(n, dtype=np.intp)  # slot -> physical row of WT
    sched_cache: dict[int, list] = {}
    plan_cache: dict = {}
    for sweep in range(options.max_sweeps):
        sched = ordering.sweep(sweep)
        key = (id(sched), labels.tobytes(), rowof.tobytes())
        entry = plan_cache.get(key)
        if entry is None:
            steps = sched_cache.get(id(sched))
            if steps is None:
                steps = sched_cache[id(sched)] = _schedule_arrays(sched)
            plan: list = []
            for ab, src, dst in steps:
                P = csrc = cdst = None
                if ab is not None:
                    # orient each pair by its tracked labels so the
                    # sorting exchanges are consistent along schedule
                    # trajectories, then resolve slots to physical rows
                    la = labels[ab]
                    flip = la[:, 0] > la[:, 1]
                    P = rowof[np.where(flip[:, None], ab[:, ::-1], ab)]
                if src is not None:
                    labels[dst] = labels[src]
                    if np.array_equal(np.sort(src), np.sort(dst)):
                        rowof[dst] = rowof[src]
                    else:  # pragma: no cover - no shipped ordering hits this
                        csrc = rowof[src]
                        cdst = rowof[dst]
                if P is not None or csrc is not None:
                    plan.append((P, csrc, cdst))
            entry = plan_cache[key] = (plan, labels.copy(), rowof.copy())
        stats = RotationStats()
        worst = 0.0
        rot_tol = options.tol
        if options.threshold_strategy is not None:
            rot_tol = max(options.threshold_strategy.threshold(sweep), options.tol)
        for P, csrc, cdst in entry[0]:
            if P is not None:
                st, mx = apply_step_rotations_batched(
                    WT, P, rot_tol, options.sort, norms_sq, m
                )
                stats.merge(st)
                worst = max(worst, mx)
            if csrc is not None:  # pragma: no cover - non-permutation moves
                WT[cdst] = WT[csrc]
                norms_sq[cdst] = norms_sq[csrc]
        labels = entry[1].copy()
        rowof = entry[2].copy()
        sweeps_done = sweep + 1
        history.append(
            SweepRecord(
                sweep=sweeps_done,
                off_norm=off_norm(Xdata),
                max_rel_gamma=worst,
                rotations=stats.applied,
                skipped=stats.skipped,
            )
        )
        # the paper's rule: stop after a complete sweep in which all
        # columns were orthogonal AND no columns were interchanged
        if worst <= options.tol and stats.exchanged == 0:
            converged = True
            break
    # undo the indirection and copy the factors back to the caller
    slot_rows = WT[rowof]
    X[:] = slot_rows[:, :m].T
    if V is not None:
        V[:] = slot_rows[:, m:].T
    return history, converged, sweeps_done


def jacobi_svd(
    a: np.ndarray,
    ordering: str | Ordering = "fat_tree",
    options: JacobiOptions | None = None,
    compute_uv: bool = True,
    allow_wide: bool = False,
    **ordering_kwargs: object,
) -> SVDResult:
    """One-sided Jacobi SVD of ``a`` (m x n, m >= n) under an ordering.

    Returns an :class:`~repro.core.result.SVDResult` whose canonical
    ``sigma`` is nonincreasing; ``sigma_by_slot`` records the physical
    slot order at termination so the paper's sorted-output claims can be
    checked directly (``emerged_sorted`` summarises it as ``"desc"``,
    ``"asc"`` or ``None``).
    """
    a = np.asarray(a, dtype=np.float64)
    require(a.ndim == 2, "a must be a matrix")
    m, n = a.shape
    require(allow_wide or m >= n,
            f"expect m >= n (got {a.shape}); pass a.T for wide matrices, or "
            "allow_wide=True for zero-padded inputs")
    opts = options or JacobiOptions()
    ordering_obj = _resolve_ordering(ordering, n, **ordering_kwargs)

    X = a.copy()
    # pre-scale extreme inputs so column Gram quantities (sums of squares)
    # can neither overflow nor denormalise; sigma is rescaled at the end
    peak = float(np.abs(X).max(initial=0.0))
    prescale = 1.0
    if peak > 1e100 or (0.0 < peak < 1e-100):
        prescale = peak
        X /= prescale
    V = np.eye(n) if compute_uv else None
    # apply the rotations; X becomes H = A V (up to the prescale factor)
    history, converged, sweeps = hestenes_sweeps(X, V, ordering_obj, opts)

    watchdog_msg = None
    if not converged:
        # run the stall detector over the recorded off-norm series so the
        # result says *why* the budget ran out, then refuse to be silent
        from ..faults.watchdog import ConvergenceWatchdog

        dog = ConvergenceWatchdog()
        for h in history:
            dog.observe(h.sweep, h.off_norm)
        watchdog_msg = dog.escalate(opts.max_sweeps)
        warnings.warn(
            f"Jacobi SVD did not converge: {watchdog_msg}; the result is "
            "a partial decomposition (check result.converged)",
            ConvergenceWarning, stacklevel=2)

    # norms are computed on the scaled data (no overflow) and the scale
    # factor re-applied on sigma only; U is scale-invariant
    norms = np.linalg.norm(X, axis=0) * prescale
    sigma_by_slot = norms.copy()
    scale = max(1.0, float(norms.max(initial=0.0)))
    diffs = np.diff(norms)
    if np.all(diffs <= 1e-9 * scale):
        emerged = "desc"
    elif np.all(diffs >= -1e-9 * scale):
        emerged = "asc"
    else:
        emerged = None

    order = np.argsort(-norms, kind="stable")
    sigma = norms[order]
    max_norm = sigma[0] if n else 0.0
    rank = int(np.count_nonzero(sigma > opts.rank_tol * max(max_norm, 1e-300)))

    if compute_uv:
        u = np.zeros((m, n))
        nz = sigma > 0
        cols = X[:, order]
        # X is still in the prescaled frame: normalise by the scaled norms
        u[:, nz] = cols[:, nz] / (sigma[nz] / prescale)
        v = V[:, order]
    else:
        u = np.zeros((m, 0))
        v = np.zeros((n, 0))

    total_rot = sum(h.rotations for h in history)
    return SVDResult(
        u=u,
        sigma=sigma,
        v=v,
        rank=rank,
        converged=converged,
        sweeps=sweeps,
        rotations=total_rot,
        sigma_by_slot=sigma_by_slot,
        emerged_sorted=emerged,
        history=history,
        watchdog=watchdog_msg,
    )
