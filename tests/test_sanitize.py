"""Tests of the opt-in runtime sanitizer (repro.verify.sanitize).

Positive direction: sanitized runs of every kernel and backend complete
cleanly and still match LAPACK.  Negative direction: each corrupted
runtime record — stray column touch, wrong dispatch bounds, poisoned or
drifted factors — trips exactly the SAN rule it is engineered for, and
a violation aborts the run via SanitizerError.
"""

import numpy as np
import pytest

from repro.blockjacobi import BlockJacobiOptions, block_jacobi_svd
from repro.cli import main
from repro.verify import (
    RuntimeSanitizer,
    SanitizerError,
    check_numeric_canaries,
    check_write_record,
    drift_factor,
    poison_factor,
    sanitize_enabled,
    stray_column_touch,
)

EXPECTED = [frozenset({0, 1}), frozenset({2, 3}),
            frozenset({4, 5}), frozenset({6, 7})]


def _rules(diags):
    return {d.rule for d in diags}


class TestEnableSwitch:
    def test_explicit_option_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled(False) is False
        monkeypatch.delenv("REPRO_SANITIZE")
        assert sanitize_enabled(True) is True

    @pytest.mark.parametrize("value,expect", [
        ("1", True), ("true", True), ("YES", True), ("On", True),
        ("0", False), ("", False), ("off", False), ("no", False),
    ])
    def test_env_parsing(self, monkeypatch, value, expect):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitize_enabled() is expect

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitize_enabled() is False


class TestWriteRecord:
    def test_clean_record(self):
        dispatched = [(4, ((0, 2), (2, 4)))]
        touched = [(0, 2, (0, 1, 2, 3)), (2, 4, (4, 5, 6, 7))]
        assert check_write_record(4, EXPECTED, dispatched, touched,
                                  workers=2) == []

    def test_touching_fewer_columns_is_allowed(self):
        # the gram kernel's sort-only early return writes nothing: a
        # touch record is a subset claim, not an equality claim
        assert check_write_record(4, EXPECTED, [], [(0, 4, (0,))]) == []

    def test_stray_column_fires_san001(self):
        diags = check_write_record(4, EXPECTED, [],
                                   stray_column_touch(EXPECTED))
        assert _rules(diags) == {"SAN001"}
        assert "outside its static write-set" in diags[0].message

    def test_wrong_dispatch_bounds_fire_san001(self):
        dispatched = [(4, ((0, 3), (3, 4)))]  # static chunking is (0,2),(2,4)
        diags = check_write_record(4, EXPECTED, dispatched, [], workers=2)
        assert _rules(diags) == {"SAN001"}
        assert "dispatched" in diags[0].message

    def test_out_of_range_claim_fires_san001(self):
        diags = check_write_record(4, EXPECTED, [], [(2, 9, (4,))])
        assert _rules(diags) == {"SAN001"}
        assert "outside the step" in diags[0].message

    def test_overlap_across_disjoint_chunks_fires_san001(self):
        # both items may legally write column 0, but two *disjoint*
        # chunks actually doing so is a write-write race at runtime
        expected = [frozenset({0}), frozenset({0})]
        touched = [(0, 1, (0,)), (1, 2, (0,))]
        diags = check_write_record(2, expected, [], touched)
        assert _rules(diags) == {"SAN001"}
        assert "write-write overlap" in diags[0].message


class TestNumericCanaries:
    def _factors(self, n=8):
        rng = np.random.default_rng(3)
        X = rng.standard_normal((12, n))
        V = np.linalg.qr(rng.standard_normal((n, n)))[0]
        return X, V

    def test_clean_factors(self):
        X, V = self._factors()
        ref = float(np.linalg.norm(X))
        assert check_numeric_canaries(X, V, ref) == []

    def test_poisoned_factor_fires_san002_only(self):
        X, V = self._factors()
        ref = float(np.linalg.norm(X))
        diags = check_numeric_canaries(poison_factor(X), V, ref)
        assert _rules(diags) == {"SAN002"}  # drift check short-circuits

    def test_poisoned_v_fires_san002(self):
        X, V = self._factors()
        diags = check_numeric_canaries(X, poison_factor(V), None)
        assert _rules(diags) == {"SAN002"}

    def test_drifted_norm_fires_san003(self):
        X, V = self._factors()
        ref = float(np.linalg.norm(X))
        diags = check_numeric_canaries(drift_factor(X), V, ref)
        assert _rules(diags) == {"SAN003"}
        assert "drifted" in diags[0].message

    def test_lost_orthogonality_fires_san003(self):
        X, V = self._factors()
        ref = float(np.linalg.norm(X))
        V2 = V.copy()
        V2[:, 0] += 1e-4 * V2[:, 1]
        diags = check_numeric_canaries(X, V2, ref)
        assert _rules(diags) == {"SAN003"}
        assert "orthogonality" in diags[0].message

    def test_none_or_nonfinite_reference_skips_frobenius(self):
        X, V = self._factors()
        assert check_numeric_canaries(drift_factor(X), V, None) == []
        assert check_numeric_canaries(drift_factor(X), V, float("inf")) == []


class TestRuntimeSanitizer:
    def test_clean_step_protocol(self):
        san = RuntimeSanitizer()
        san.begin_step(4, EXPECTED, workers=2)
        san.note_dispatch(4, [(0, 2), (2, 4)])
        san.record_touch(0, 2, [0, 1, 2, 3])
        san.record_touch(2, 4, [4, 5, 6, 7])
        san.end_step(step=1)
        assert san.clean
        assert san.steps_checked == 1

    def test_violation_raises_with_rule_tag(self):
        san = RuntimeSanitizer()
        san.begin_step(4, EXPECTED, workers=2)
        san.note_dispatch(4, [(0, 3), (3, 4)])
        with pytest.raises(SanitizerError) as exc:
            san.end_step()
        assert exc.value.diagnostic.rule == "SAN001"
        assert not san.clean

    def test_collect_mode_accumulates_instead_of_raising(self):
        san = RuntimeSanitizer(raise_on_violation=False)
        san.begin_step(4, EXPECTED)
        san.record_touch(*stray_column_touch(EXPECTED)[0])
        san.end_step()
        assert _rules(san.diagnostics) == {"SAN001"}

    def test_abort_discards_the_open_record(self):
        san = RuntimeSanitizer()
        san.begin_step(4, EXPECTED)
        san.record_touch(*stray_column_touch(EXPECTED)[0])
        san.abort_step()
        san.end_step()  # no open record: a no-op, nothing checked
        assert san.clean
        assert san.steps_checked == 0

    def test_touches_outside_a_step_are_ignored(self):
        san = RuntimeSanitizer()
        san.record_touch(0, 1, [0])
        san.note_dispatch(1, [(0, 1)])
        san.begin_step(4, EXPECTED, workers=1)
        san.end_step()
        assert san.clean

    def test_sweep_canaries_raise_on_drift(self):
        rng = np.random.default_rng(5)
        X = rng.standard_normal((10, 6))
        san = RuntimeSanitizer()
        san.arm_reference(X)
        san.check_sweep(X, np.eye(6), sweep=1)
        assert san.sweeps_checked == 1
        with pytest.raises(SanitizerError) as exc:
            san.check_sweep(drift_factor(X), np.eye(6), sweep=2)
        assert exc.value.diagnostic.rule == "SAN003"


class TestSanitizedRuns:
    """End-to-end: sanitized runs stay clean and still match LAPACK."""

    @pytest.mark.parametrize("kernel", ["reference", "batched", "gram"])
    @pytest.mark.parametrize("executor,workers", [("serial", None),
                                                  ("threads", 4)])
    def test_block_jacobi_clean_under_sanitizer(self, kernel, executor,
                                                workers):
        rng = np.random.default_rng(17)
        a = rng.standard_normal((24, 16))
        opts = BlockJacobiOptions(block_size=2, kernel=kernel,
                                  executor=executor, workers=workers,
                                  sanitize=True)
        r = block_jacobi_svd(a, options=opts)
        assert r.converged
        np.testing.assert_allclose(r.sigma, np.linalg.svd(a, compute_uv=False),
                                   rtol=1e-10, atol=1e-10)

    def test_env_switch_reaches_the_machine_driver(self, monkeypatch):
        from repro import parallel_svd

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        rng = np.random.default_rng(23)
        a = rng.standard_normal((20, 16))
        r, _ = parallel_svd(a, topology="perfect", ordering="ring_new",
                            block_size=2)
        assert r.converged
        np.testing.assert_allclose(r.sigma, np.linalg.svd(a, compute_uv=False),
                                   rtol=1e-10, atol=1e-10)

    def test_cli_sanitize_flag(self, capsys):
        assert main(["svd", "--m", "20", "--n", "16", "--block-size", "2",
                     "--sanitize", "--serial"]) == 0
        assert "converged" in capsys.readouterr().out

    def test_cli_sanitize_requires_block_mode(self, capsys):
        assert main(["svd", "--m", "12", "--n", "8", "--sanitize"]) == 2

    def test_cli_sanitize_rejects_fault_injection(self, capsys):
        assert main(["svd", "--m", "12", "--n", "8", "--block-size", "2",
                     "--sanitize", "--fault", "corrupt"]) == 2
