"""repro — Parallel SVD on Tree Architectures (Zhou & Brent, ICPP 1993).

A from-scratch reproduction of the paper's three Jacobi orderings
(fat-tree, new ring, hybrid) for the one-sided Hestenes SVD, together
with the baselines it compares against, a simulated tree multiprocessor
(perfect/skinny fat-trees and a CM-5 model) with explicit routing and
contention accounting, and the experiment harness regenerating every
figure and claim of the paper.

Quick start::

    import numpy as np
    from repro import svd

    a = np.random.default_rng(0).standard_normal((64, 32))
    result = svd(a, ordering="fat_tree")
    assert result.converged and result.emerged_sorted == "desc"
"""

from .apps import lstsq, pca, pca_batch, pinv, truncated_svd
from .blockjacobi import (BlockJacobiOptions, block_jacobi_svd,
                          block_jacobi_svd_batch)
from .core import (BatchResult, SVDResult, SweepRecord, parallel_svd, svd,
                   svd_batch)
from .eig import EigOptions, EigResult, jacobi_eigh
from .faults import FaultPlan
from .machine import CostModel, TreeMachine, make_topology
from .orderings import Ordering, make_ordering, ordering_names
from .parallel import ParallelJacobiSVD
from .svd import JacobiOptions, jacobi_svd
from .util.errors import ConvergenceWarning, NumericalBreakdown
from .verify import lint_ordering, lint_schedule

__version__ = "1.0.0"

__all__ = [
    "BatchResult",
    "BlockJacobiOptions",
    "ConvergenceWarning",
    "CostModel",
    "EigOptions",
    "EigResult",
    "FaultPlan",
    "JacobiOptions",
    "NumericalBreakdown",
    "Ordering",
    "ParallelJacobiSVD",
    "SVDResult",
    "SweepRecord",
    "TreeMachine",
    "block_jacobi_svd",
    "block_jacobi_svd_batch",
    "jacobi_eigh",
    "jacobi_svd",
    "lint_ordering",
    "lint_schedule",
    "lstsq",
    "pca",
    "pca_batch",
    "pinv",
    "make_ordering",
    "make_topology",
    "ordering_names",
    "parallel_svd",
    "svd",
    "svd_batch",
    "truncated_svd",
]
