"""Unit tests for routing, contention accounting and the cost model."""

import numpy as np
import pytest

from repro.machine.costmodel import CostModel
from repro.machine.routing import route_moves, route_phase
from repro.machine.topology import (
    BinaryTree,
    CM5Tree,
    PerfectFatTree,
    make_topology,
)


class TestRoutePhase:
    def test_empty_phase(self):
        ph = route_phase(PerfectFatTree(8), [])
        assert ph.n_messages == 0
        assert ph.contention == 0.0
        assert ph.is_contention_free

    def test_self_messages_ignored(self):
        ph = route_phase(PerfectFatTree(8), [(3, 3), (5, 5)])
        assert ph.n_messages == 0

    def test_single_message_loads_path(self):
        t = PerfectFatTree(8)
        ph = route_phase(t, [(0, 7)])
        assert ph.n_messages == 1
        assert ph.max_level == 3
        assert len(ph.channel_loads) == 6
        assert all(v == 1 for v in ph.channel_loads.values())

    def test_level_counts(self):
        ph = route_phase(PerfectFatTree(8), [(0, 1), (2, 3), (0, 2)])
        assert ph.level_message_counts == {1: 2, 2: 1}

    def test_contention_on_binary_tree(self):
        # 4 messages crossing the root of a binary tree: load 4, cap 1
        t = BinaryTree(8)
        msgs = [(i, i + 4) for i in range(4)]
        ph = route_phase(t, msgs)
        assert ph.contention == 4.0
        assert not ph.is_contention_free
        assert ph.hot_channel.level == 3

    def test_same_phase_free_on_perfect(self):
        t = PerfectFatTree(8)
        msgs = [(i, i + 4) for i in range(4)]
        ph = route_phase(t, msgs)
        assert ph.contention == 1.0
        assert ph.is_contention_free

    def test_cm5_intermediate(self):
        t = CM5Tree(16)
        msgs = [(i, i + 8) for i in range(8)]
        ph = route_phase(t, msgs)
        # 8 messages through a level-4 channel of capacity 4
        assert ph.contention == 2.0


class TestRouteMoves:
    """The vectorised router honours its equivalence contract with
    :func:`route_phase`: every field identical except the documented
    ``hot_channel`` tie-break."""

    @pytest.mark.parametrize("topo_name",
                             ["perfect", "binary", "cm5", "skinny"])
    @pytest.mark.parametrize("n_leaves", [4, 16, 64])
    def test_equivalence_on_random_phases(self, topo_name, n_leaves):
        topo = make_topology(topo_name, n_leaves)
        rng = np.random.default_rng(n_leaves)
        for _ in range(10):
            m = int(rng.integers(1, 2 * n_leaves))
            src = rng.integers(0, n_leaves, m)
            dst = rng.integers(0, n_leaves, m)
            loop = route_phase(topo, [(int(s), int(d))
                                      for s, d in zip(src, dst)])
            vec = route_moves(topo, src, dst)
            assert vec.n_messages == loop.n_messages
            assert vec.channel_loads == loop.channel_loads
            assert vec.max_level == loop.max_level
            assert vec.level_message_counts == loop.level_message_counts
            assert vec.contention == loop.contention

    def test_empty_phase(self):
        ph = route_moves(PerfectFatTree(8), np.empty(0, dtype=np.int64),
                         np.empty(0, dtype=np.int64))
        assert ph.n_messages == 0
        assert ph.contention == 0.0
        assert ph.hot_channel is None

    def test_self_messages_ignored(self):
        ph = route_moves(PerfectFatTree(8), np.array([3, 5]),
                         np.array([3, 5]))
        assert ph.n_messages == 0

    def test_hot_channel_is_maximally_contended(self):
        t = BinaryTree(8)
        src = np.arange(4)
        ph = route_moves(t, src, src + 4)
        assert ph.contention == 4.0
        hot = ph.hot_channel
        assert ph.channel_loads[hot] / t.capacity(hot.level) == ph.contention
        # the documented tie-break: the smallest (level, index, up)
        # among the maximally contended channels
        worst = min(ch for ch, load in ph.channel_loads.items()
                    if load / t.capacity(ch.level) == ph.contention)
        assert hot == worst

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length mismatch"):
            route_moves(PerfectFatTree(8), np.array([0, 1]), np.array([2]))

    def test_out_of_range_leaf_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            route_moves(PerfectFatTree(8), np.array([0]), np.array([8]))

    def test_compiled_schedule_routes_through_the_vector_path(self):
        from repro.orderings import make_ordering
        from repro.orderings.plan import compile_schedule

        sched = make_ordering("ring_new", 16).sweep(0)
        plan = compile_schedule(sched)
        topo = PerfectFatTree(8)
        for k, step in enumerate(sched.steps):
            got = plan.route_phase(topo, k)
            want = route_phase(
                topo, [(m.src // 2, m.dst // 2) for m in step.moves])
            assert got.channel_loads == want.channel_loads
            assert got.contention == want.contention
            assert got.level_message_counts == want.level_message_counts


class TestCostModel:
    def test_compute_time_scales_with_rows(self):
        cm = CostModel(flop_time=1.0)
        assert cm.compute_time(1, 10) == 100.0
        assert cm.compute_time(2, 10) == 200.0

    def test_comm_time_zero_without_messages(self):
        cm = CostModel()
        ph = route_phase(PerfectFatTree(8), [])
        assert cm.comm_time(ph, 100) == 0.0

    def test_comm_time_contention_rounds(self):
        cm = CostModel(alpha=0.0, beta=1.0, hop_time=0.0)
        t = BinaryTree(8)
        free = route_phase(t, [(0, 1)])
        congested = route_phase(t, [(i, i + 4) for i in range(4)])
        assert cm.comm_time(congested, 10) == pytest.approx(4 * cm.comm_time(free, 10))

    def test_alpha_charged_once_per_phase(self):
        cm = CostModel(alpha=7.0, beta=0.0, hop_time=0.0)
        ph = route_phase(PerfectFatTree(8), [(0, 1), (2, 3)])
        assert cm.comm_time(ph, 1000) == 7.0

    def test_hop_latency_scales_with_level(self):
        cm = CostModel(alpha=0.0, beta=0.0, hop_time=1.0)
        near = route_phase(PerfectFatTree(8), [(0, 1)])
        far = route_phase(PerfectFatTree(8), [(0, 7)])
        assert cm.comm_time(far, 1) == 3 * cm.comm_time(near, 1)

    def test_rotation_flops(self):
        assert CostModel().rotation_flops(100) == 1000
