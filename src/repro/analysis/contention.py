"""Channel contention measurement per ordering x topology (TAB-CONT).

Section 5's claim: the fat-tree ordering oversubscribes the skinny
channels of a CM-5-like tree, while the hybrid ordering — with the block
size chosen against the channel capacities — never oversubscribes any
channel, and the ring ordering is contention-free even on an ordinary
binary tree.  The measurement is the worst per-channel ``load/capacity``
over every communication phase of a sweep, reported per level.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..machine.topology import TreeTopology, make_topology
from ..orderings.base import Ordering
from ..orderings.registry import make_ordering
from ..orderings.schedule import Schedule
from ..util.bits import leaf_of_slot

__all__ = ["ContentionRow", "per_level_contention", "contention_row", "contention_table"]


@dataclass(frozen=True)
class ContentionRow:
    ordering: str
    topology: str
    n: int
    by_level: dict[int, float]
    max_contention: float
    contention_free: bool


def per_level_contention(schedule: Schedule, topology: TreeTopology) -> dict[int, float]:
    """Worst channel load/capacity per level over all phases of a sweep."""
    worst: dict[int, float] = defaultdict(float)
    for step in schedule.steps:
        if not step.moves:
            continue
        loads: dict[object, int] = defaultdict(int)
        for mv in step.moves:
            s, d = leaf_of_slot(mv.src), leaf_of_slot(mv.dst)
            if s == d:
                continue
            for ch in topology.path(s, d):
                loads[ch] += 1
        for ch, load in loads.items():
            level = ch.level
            worst[level] = max(worst[level], load / topology.capacity(level))
    return dict(sorted(worst.items()))


def contention_row(ordering: Ordering, topology: TreeTopology) -> ContentionRow:
    """Measure one ordering's per-level contention on one topology."""
    prof = per_level_contention(ordering.sweep(0), topology)
    worst = max(prof.values(), default=0.0)
    return ContentionRow(
        ordering=ordering.name,
        topology=topology.name,
        n=ordering.n,
        by_level=prof,
        max_contention=worst,
        contention_free=worst <= 1.0,
    )


def contention_table(
    n: int,
    topologies: list[str] | None = None,
    names: list[str] | None = None,
    **kwargs_by_name: dict,
) -> list[ContentionRow]:
    """TAB-CONT: contention per ordering x topology at size n."""
    topologies = topologies or ["perfect", "cm5", "binary"]
    names = names or ["round_robin", "ring_new", "fat_tree", "hybrid"]
    rows = []
    for tname in topologies:
        topo = make_topology(tname, n // 2)
        for name in names:
            kw = kwargs_by_name.get(name, {})
            rows.append(contention_row(make_ordering(name, n, **kw), topo))
    return rows
