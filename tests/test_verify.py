"""Tests of the static schedule verifier (repro.verify).

Positive direction: every registered ordering, at every gate size, is
clean under the uniform analysis — and clean *with* capacity checks on
the topology the paper proves it contention-free on.  Negative
direction: each corruption operator trips exactly the rule it is
engineered for, by rule ID.
"""

import json

import pytest

from repro.cli import main
from repro.machine.topology import make_topology
from repro.orderings import make_ordering, ordering_names
from repro.orderings.schedule import Move, Step
from repro.verify import (
    RULES,
    Diagnostic,
    channel_dependency_cycle,
    check_restoration,
    drop_exchange,
    duplicate_pair,
    lint_ordering,
    lint_registry,
    lint_schedule,
    overload_link,
    permutation_order,
    reverse_ring_step,
    rule_description,
    unchecked_schedule,
    unchecked_step,
)

GATE_SIZES = (8, 16, 32)


class TestRegistryGate:
    @pytest.mark.parametrize("name", ordering_names())
    @pytest.mark.parametrize("n", GATE_SIZES)
    def test_every_registered_ordering_is_clean(self, name, n):
        report = lint_ordering(make_ordering(name, n))
        assert report.ok, report.render()

    def test_lint_registry_covers_all_names_and_sizes(self):
        reports = lint_registry()
        targets = {r.target for r in reports}
        assert len(reports) == len(ordering_names()) * len(GATE_SIZES)
        assert all(r.ok for r in reports)
        assert "fat_tree(n=32)" in targets and "llb(n=8)" in targets

    def test_unconstructible_size_is_skipped_not_failed(self):
        reports = lint_registry(names=["fat_tree"], sizes=(6,))
        assert len(reports) == 1
        assert reports[0].ok
        assert any(c.startswith("skipped:") for c in reports[0].checks)

    @pytest.mark.parametrize("name,topo", [
        ("fat_tree", "perfect"),
        ("hybrid", "perfect"),
        ("hybrid", "cm5"),
        ("ring_new", "binary"),
        ("ring_modified", "binary"),
        ("llb", "perfect"),
    ])
    def test_paper_contention_claims_hold_statically(self, name, topo):
        # Section 5: each ordering is contention-free on its native tree
        n = 16
        report = lint_ordering(make_ordering(name, n), make_topology(topo, n // 2))
        assert report.ok, report.render()

    def test_fat_tree_oversubscribes_binary_tree(self):
        # ... and the fat-tree ordering is *not* clean on a skinny tree
        n = 16
        report = lint_ordering(make_ordering("fat_tree", n),
                               make_topology("binary", n // 2))
        assert not report.ok
        assert "CAP003" in report.rules_fired()

    def test_odd_even_remote_pairs_warn_but_do_not_fail(self):
        report = lint_ordering(make_ordering("odd_even", 8))
        assert report.ok
        assert "RACE005" in report.rules_fired()
        assert all(not d.is_error for d in report.diagnostics
                   if d.rule == "RACE005")


class TestCorruptedSchedules:
    """The four deliberate corruptions fire their exact rule IDs."""

    def test_duplicate_pair_fires_sweep001(self):
        sched = duplicate_pair(make_ordering("fat_tree", 16).sweep(0))
        report = lint_schedule(sched)
        assert not report.ok
        assert "SWEEP001" in report.rules_fired()

    def test_dropped_exchange_fires_race003(self):
        sched = drop_exchange(make_ordering("ring_new", 16).sweep(0))
        report = lint_schedule(sched)
        assert not report.ok
        assert "RACE003" in report.rules_fired()

    def test_reversed_ring_edge_fires_dir002(self):
        sched = reverse_ring_step(make_ordering("ring_new", 16).sweep(0))
        report = lint_schedule(sched)
        assert not report.ok
        assert "DIR002" in report.rules_fired()

    def test_over_capacity_link_fires_cap003(self):
        sched = overload_link(make_ordering("fat_tree", 16).sweep(0))
        report = lint_schedule(sched, make_topology("perfect", 8))
        assert not report.ok
        assert "CAP003" in report.rules_fired()

    def test_corruption_preserves_the_original(self):
        base = make_ordering("ring_new", 8).sweep(0)
        snapshot = [(s.pairs, s.moves) for s in base.steps]
        for op in (duplicate_pair, drop_exchange, reverse_ring_step, overload_link):
            op(base)
        assert [(s.pairs, s.moves) for s in base.steps] == snapshot
        assert lint_schedule(base).ok


class TestRaceRules:
    def test_slot_in_two_pairs_fires_race001(self):
        step = unchecked_step(pairs=((0, 1), (1, 2)))
        sched = unchecked_schedule(4, [step], "race1")
        fired = lint_schedule(sched).rules_fired()
        assert "RACE001" in fired

    def test_duplicate_move_destination_fires_race002(self):
        step = unchecked_step(pairs=((0, 1), (2, 3)),
                              moves=(Move(0, 2), Move(1, 2), Move(2, 0), Move(3, 1)))
        sched = unchecked_schedule(4, [step], "race2")
        fired = lint_schedule(sched).rules_fired()
        assert "RACE002" in fired

    def test_lost_column_fires_race004(self):
        # a move set that is a valid partial permutation per step can still
        # be corrupted by hand to lose a column across steps: here slot 3's
        # column is overwritten while its own content goes nowhere
        step = unchecked_step(pairs=(), moves=(Move(0, 3),))
        sched = unchecked_schedule(4, [step], "race4")
        report = lint_schedule(sched)
        fired = report.rules_fired()
        assert "RACE003" in fired  # unmatched exchange is the root cause
        assert "RACE004" in fired  # and the bijection break is detected too

    def test_out_of_range_slot_fires_race004(self):
        step = unchecked_step(pairs=((0, 9),))
        sched = unchecked_schedule(4, [step], "race4b")
        assert "RACE004" in lint_schedule(sched).rules_fired()


class TestDirectionRules:
    def test_multi_hop_ring_move_fires_dir003(self):
        # jump two ring positions in one step: 8 columns on 4 leaves
        sched = make_ordering("ring_new", 8).sweep(0)
        jump = Step(pairs=(), moves=(Move(0, 4), Move(4, 0)))
        broken = unchecked_schedule(8, [*sched.steps, jump], "dir3",
                                    notes=sched.notes)
        assert "DIR003" in lint_schedule(broken).rules_fired()

    def test_channel_cycle_detection(self):
        from repro.machine.topology import Channel

        a = Channel(level=1, index=0, up=True)
        b = Channel(level=1, index=1, up=True)
        assert channel_dependency_cycle([[a, b], [b, a]]) is not None
        assert channel_dependency_cycle([[a, b]]) is None
        assert channel_dependency_cycle([]) is None

    def test_tree_routing_is_deadlock_free_for_all_orderings(self):
        topo = make_topology("perfect", 8)
        for name in ordering_names():
            report = lint_ordering(make_ordering(name, 16), topo)
            assert "DIR001" not in report.rules_fired(), report.render()


class TestSweepRules:
    def test_permutation_order(self):
        assert permutation_order([0, 1, 2]) == 1
        assert permutation_order([1, 0, 2]) == 2
        assert permutation_order([1, 2, 0, 4, 3]) == 6

    def test_restoration_bound_enforced(self):
        sched = make_ordering("ring_new", 8).sweep(0)
        assert check_restoration(sched, max_period=2) == []
        assert check_restoration(sched, max_period=1)[0].rule == "SWEEP003"

    def test_llb_backward_exemption_is_exact(self):
        # the omitted duplicate rotation is tolerated, but nothing more:
        # the same backward sweep without its context still fails
        o = make_ordering("llb", 16)
        assert lint_ordering(o).ok
        backward = o.sweep(1)
        standalone = lint_schedule(backward)
        assert "SWEEP002" in standalone.rules_fired()


class TestDiagnostics:
    def test_every_rule_has_severity_and_description(self):
        for rule, (severity, _) in RULES.items():
            assert severity in ("error", "warning")
            assert rule_description(rule)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(rule="NOPE001", message="x")

    def test_report_json_roundtrip(self):
        report = lint_ordering(make_ordering("odd_even", 8))
        blob = json.dumps(report.to_dict())
        data = json.loads(blob)
        assert data["ok"] is True
        assert {d["rule"] for d in data["diagnostics"]} == {"RACE005"}


@pytest.mark.lint
class TestLintCLI:
    def test_default_gate_is_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "all clean" in out

    def test_single_target(self, capsys):
        assert main(["lint", "--ordering", "ring_new", "--n", "8",
                     "--topology", "binary"]) == 0
        assert "ring_new(n=8): ok" in capsys.readouterr().out

    def test_finding_sets_exit_code(self, capsys):
        rc = main(["lint", "--ordering", "fat_tree", "--n", "8",
                   "--topology", "binary"])
        assert rc == 1
        assert "CAP003" in capsys.readouterr().out

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["lint", "--ordering", "hybrid", "--n", "16",
                     "--topology", "cm5", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["reports"][0]["target"] == "hybrid(n=16)"

    def test_unknown_ordering_is_usage_error(self, capsys):
        assert main(["lint", "--ordering", "nope"]) == 2

    def test_unknown_topology_is_usage_error(self, capsys):
        assert main(["lint", "--topology", "nope"]) == 2
