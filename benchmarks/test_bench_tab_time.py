"""TAB-TIME — simulated SVD time per ordering x topology (Section 6).

The paper's conclusion: the hybrid ordering should be the most efficient
on the CM-5; if channel capacities grow (the perfect fat-tree), the
fat-tree ordering becomes the most attractive.
"""

from repro.analysis import render_timing_table, tab_time


def test_tab_time_cm5(benchmark):
    rows = benchmark(
        tab_time, 64,
        **{"hybrid": {"n_groups": 8}},
    )
    print("\n" + render_timing_table(rows))
    cm5 = {r.ordering: r for r in rows if r.topology == "cm5"}
    perfect = {r.ordering: r for r in rows if r.topology == "perfect"}
    # hybrid wins on the CM-5 (communication time)
    assert cm5["hybrid"].comm_time <= min(
        cm5["fat_tree"].comm_time, cm5["round_robin"].comm_time
    )
    # the fat-tree ordering improves the most when capacity doubles
    gain_fat = cm5["fat_tree"].comm_time - perfect["fat_tree"].comm_time
    gain_ring = cm5["ring_new"].comm_time - perfect["ring_new"].comm_time
    assert gain_fat >= gain_ring


def test_tab_time_binary_tree_degradation(benchmark):
    rows = benchmark(
        tab_time, 32, topologies=["binary"], names=["fat_tree", "ring_new"],
    )
    print("\n" + render_timing_table(rows))
    by = {r.ordering: r for r in rows}
    # "skinny all over" punishes the fat-tree ordering hardest
    assert by["fat_tree"].comm_time > by["ring_new"].comm_time * 0.9
