"""Ordering-equivalence experiments (part of FIG7).

Definition 1 of the paper: two orderings are equivalent when one sweep
of the first can be obtained from one sweep of the second by relabelling
indices; equivalent orderings have the same convergence properties.
The paper proves its new ring ordering equivalent to the round-robin
ordering by the fold/interleave relabelling — we hold the explicit
mapping and verify it step by step.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..orderings.properties import relabelling_equivalent
from ..orderings.ringnew import RingOrdering, round_robin_relabelling
from ..orderings.roundrobin import round_robin_sweep

__all__ = ["EquivalenceReport", "ring_round_robin_equivalence"]


@dataclass(frozen=True)
class EquivalenceReport:
    n: int
    modified: bool
    relabelling: dict[int, int]
    verified: bool


def ring_round_robin_equivalence(n: int, modified: bool = False) -> EquivalenceReport:
    """Verify the Section-4 equivalence for the (modified) ring ordering."""
    ring = RingOrdering(n, modified=modified).sweep(0)
    rr = round_robin_sweep(n)
    mapping = round_robin_relabelling(n, modified)
    ok = relabelling_equivalent(ring, rr, mapping)
    return EquivalenceReport(n=n, modified=modified, relabelling=mapping, verified=ok)
