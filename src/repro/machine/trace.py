"""Execution-trace rendering: text timelines and utilization summaries.

Turns the :class:`~repro.machine.stats.SweepStats` a simulated sweep
produces into human-readable artefacts: a compact per-step table, a
proportional text Gantt strip (compute vs communication), and aggregate
utilization figures — the practical lens on the paper's "a problem
compute-bound on a serial computer may be communication-bound on a
parallel computer".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.formatting import render_table
from .stats import SweepStats

__all__ = [
    "UtilizationSummary",
    "utilization",
    "render_timeline",
    "render_gantt",
    "render_fault_log",
]


@dataclass(frozen=True)
class UtilizationSummary:
    """Aggregate efficiency figures of one sweep."""

    total_time: float
    compute_time: float
    comm_time: float
    compute_fraction: float
    messages: int
    busiest_step: int
    max_contention: float

    @property
    def communication_bound(self) -> bool:
        return self.compute_fraction < 0.5


def utilization(stats: SweepStats) -> UtilizationSummary:
    """Summarise a sweep's timeline."""
    total = stats.total_time
    comp = stats.compute_time
    busiest = max(
        stats.steps,
        key=lambda s: s.compute_time + s.comm_time,
        default=None,
    )
    return UtilizationSummary(
        total_time=total,
        compute_time=comp,
        comm_time=stats.comm_time,
        compute_fraction=(comp / total) if total > 0 else 1.0,
        messages=stats.total_messages,
        busiest_step=busiest.step if busiest else 0,
        max_contention=stats.max_contention,
    )


def render_timeline(stats: SweepStats, max_rows: int | None = 20) -> str:
    """Per-step table: rotations, messages, level, contention, times."""
    steps = stats.steps if max_rows is None else stats.steps[:max_rows]
    rows = [
        [
            s.step,
            s.rotations,
            s.messages,
            s.max_level,
            f"{s.contention:.2f}",
            f"{s.compute_time:.1f}",
            f"{s.comm_time:.1f}",
        ]
        for s in steps
    ]
    table = render_table(
        ["step", "rot", "msgs", "level", "cont", "compute", "comm"],
        rows,
        title="sweep timeline",
    )
    if max_rows is not None and len(stats.steps) > max_rows:
        table += f"\n... ({len(stats.steps) - max_rows} more steps)"
    return table


def render_gantt(stats: SweepStats, width: int = 60) -> str:
    """A proportional strip per step: ``#`` compute time, ``~`` comm time.

    The strip lengths share one global scale so the eye can compare
    steps; a sweep dominated by ``~`` is communication-bound.
    """
    longest = max(
        (s.compute_time + s.comm_time for s in stats.steps), default=0.0
    )
    if longest <= 0:
        return "(empty sweep)"
    lines = []
    for s in stats.steps:
        c = int(round(width * s.compute_time / longest))
        m = int(round(width * s.comm_time / longest))
        lines.append(f"{s.step:>4} |{'#' * c}{'~' * m}")
    lines.append(f"{'':>4}  # compute   ~ communication   scale: {longest:.1f} time units")
    return "\n".join(lines)


def render_fault_log(events, max_rows: int | None = 40) -> str:
    """Tabulate fault/recovery events (see :mod:`repro.faults.events`).

    One row per event, in firing order: where it struck, what the
    machine did about it, and the simulated time the reaction cost.
    """
    events = list(events)
    if not events:
        return "(no fault events)"
    shown = events if max_rows is None else events[:max_rows]
    rows = []
    for ev in shown:
        if ev.src is not None and ev.dst is not None:
            site = f"{ev.src}->{ev.dst}"
        elif ev.leaf is not None:
            site = f"leaf {ev.leaf}"
        elif ev.level is not None:
            site = f"level {ev.level}"
        else:
            site = "-"
        rows.append([
            ev.sweep,
            ev.step,
            ev.kind,
            ev.action,
            site,
            f"{ev.time_charged:.1f}",
            ev.detail,
        ])
    table = render_table(
        ["sweep", "step", "kind", "action", "site", "charged", "detail"],
        rows,
        title="fault log",
    )
    if max_rows is not None and len(events) > max_rows:
        table += f"\n... ({len(events) - max_rows} more events)"
    return table
