"""Top-level convenience API.

``svd`` is the one-call entry point a downstream user wants: pick an
ordering (default: the paper's fat-tree ordering), pad to an admissible
width if needed, run the one-sided Jacobi iteration, strip the padding.
``parallel_svd`` does the same on a simulated tree machine and returns
the execution telemetry alongside the decomposition.  Both accept
``block_size=b`` to run at block granularity (``b`` columns per
schedule unit, BLAS-3 gram kernel by default).
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..blockjacobi.driver import (BlockJacobiOptions, block_jacobi_svd,
                                  block_jacobi_svd_batch)
from ..blockjacobi.kernel import BLOCK_KERNELS
from ..machine.costmodel import CostModel
from ..orderings.base import Ordering
from ..orderings.plan import PlanCacheStats, plan_cache_stats
from ..parallel.distribution import pad_columns, strip_padding
from ..parallel.driver import ParallelJacobiSVD, ParallelRunReport
from ..svd.hestenes import JacobiOptions, jacobi_svd
from ..util.bits import is_power_of_two
from ..util.validation import (as_float_matrix, as_float_stack, require,
                               require_finite)
from .result import BatchResult, SVDResult

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.plan import FaultPlan

__all__ = ["parallel_svd", "svd", "svd_batch"]


def _needs_power_of_two(ordering: str | Ordering) -> bool:
    name = ordering if isinstance(ordering, str) else ordering.name
    return name in ("fat_tree", "llb", "hybrid")


def _profile_fill(
    profile: "str | Mapping | None",
    m: int,
    n: int,
    batch: int | None,
    default_ordering: str,
    ordering: "str | Ordering | None",
    options,
    kernel: str | None,
    block_size: int | None,
    executor: str | None,
    workers: int | None,
    compute_backend: str | None,
):
    """Fill unset knobs from a tuned profile; resolve ordering defaults.

    ``profile`` is a path or an already-loaded mapping; ``None`` falls
    back to ``$REPRO_PROFILE`` (unset → no profile, pure defaults).
    Only knobs the caller left at ``None`` are filled — an explicit
    argument always wins — and the fill is conservative where knobs
    couple: the kernel family (kernel + block size) fills only when the
    caller set *neither*, and the block-mode-only knobs (executor,
    workers, compute backend) fill only when the resolved configuration
    actually is block mode.  An explicit ``options`` object is a
    complete configuration, so the profile then fills nothing but the
    ordering.  The tune import is lazy (``repro.tune`` times this
    module's entry points — a module-level import would be a cycle).
    """
    if profile is None:
        profile = os.environ.get("REPRO_PROFILE", "").strip() or None
    if profile is not None:
        from ..tune.profile import profile_options

        filled = profile_options(profile, m, n, batch)
        if filled:
            if ordering is None:
                ordering = filled["ordering"]
            if options is None:
                if kernel is None and block_size is None:
                    kernel = filled["kernel"]
                    block_size = filled["block_size"]
                if block_size is not None:
                    if executor is None:
                        executor = filled["executor"]
                    if workers is None:
                        workers = filled["workers"]
                    if compute_backend is None:
                        compute_backend = filled["compute_backend"]
    if ordering is None:
        ordering = default_ordering
    return ordering, kernel, block_size, executor, workers, compute_backend


def _with_kernel(
    options: JacobiOptions | None, kernel: str | None
) -> JacobiOptions | None:
    if kernel is None:
        return options
    return dataclasses.replace(options or JacobiOptions(), kernel=kernel)


def _block_options(
    options: JacobiOptions | BlockJacobiOptions | None,
    kernel: str | None,
    block_size: int | None,
    executor: str | None = None,
    workers: int | None = None,
    compute_backend: str | None = None,
) -> BlockJacobiOptions | None:
    """Resolve the block-mode options, or ``None`` for scalar mode.

    Block mode is requested by ``block_size`` or by passing a
    :class:`BlockJacobiOptions` directly; scalar ``JacobiOptions`` carry
    their shared knobs (tol, max_sweeps, sort, compute_backend) over.  A
    block-only kernel (``"gram"``) without a block size is a usage
    error, as is an explicit step executor or compute backend (the
    scalar kernels have no independent pair subproblems to hand to
    workers and no GEMM phase to retarget).
    """
    if block_size is None and not isinstance(options, BlockJacobiOptions):
        require(kernel != "gram",
                "kernel='gram' is a block kernel; pass block_size=...")
        require(executor is None,
                f"executor={executor!r} applies to block mode only; "
                "pass block_size=...")
        require(workers is None,
                "workers= applies to block mode only; pass block_size=...")
        require(compute_backend is None,
                f"compute_backend={compute_backend!r} applies to block "
                "mode only; pass block_size=...")
        return None
    if isinstance(options, BlockJacobiOptions):
        base = options
        if block_size is not None and block_size != base.block_size:
            base = dataclasses.replace(base, block_size=block_size)
    else:
        shared = {}
        if options is not None:
            shared = {"tol": options.tol, "max_sweeps": options.max_sweeps,
                      "sort": options.sort,
                      "compute_backend": options.compute_backend}
        base = BlockJacobiOptions(block_size=block_size, **shared)
    if kernel is not None:
        require(kernel in BLOCK_KERNELS,
                f"unknown block kernel {kernel!r}; "
                f"available: {', '.join(BLOCK_KERNELS)}")
        base = dataclasses.replace(base, kernel=kernel)
    if executor is not None:
        base = dataclasses.replace(base, executor=executor)
    if workers is not None:
        base = dataclasses.replace(base, workers=workers)
    if compute_backend is not None:
        base = dataclasses.replace(base, compute_backend=compute_backend)
    return base


def svd(
    a: np.ndarray,
    ordering: "str | Ordering | None" = None,
    options: JacobiOptions | BlockJacobiOptions | None = None,
    kernel: str | None = None,
    block_size: int | None = None,
    executor: str | None = None,
    workers: int | None = None,
    compute_backend: str | None = None,
    fault_plan: "FaultPlan | None" = None,
    profile: "str | Mapping | None" = None,
    **ordering_kwargs: object,
) -> SVDResult:
    """One-sided Jacobi SVD of ``a`` (m x n, m >= n) under a parallel ordering.

    Matrices whose width is not admissible for the chosen ordering
    (power of two for the tree orderings, even otherwise) are transparently
    zero-padded and the result stripped back to ``n`` columns.

    ``kernel`` (``"reference"`` or ``"batched"``) overrides the rotation
    kernel of ``options``; the batched kernel fuses each parallel step
    into a single gathered 2x2 block transform and is the fast path.

    ``block_size=b`` switches to the block Jacobi driver: the ordering
    runs on ``b``-column blocks and the local subproblems are solved by
    a block kernel (``"gram"``, ``"batched"`` or ``"reference"``; the
    BLAS-3 gram kernel by default).  Admissibility and padding are then
    decided at block granularity.

    ``executor``/``workers`` pick the step-execution backend of block
    mode (``"serial"``, ``"threads"`` or ``"processes"``; workers split
    each step's independent pair subproblems, bit-identical to serial —
    processes work on shared-memory views of the column buffer) — see
    :mod:`repro.parallel.executor`.  ``compute_backend`` retargets the
    block kernels' batched GEMM phases (:mod:`repro.kernels`).

    ``fault_plan`` (a :class:`~repro.faults.FaultPlan`) runs the
    decomposition on the simulated tree machine under fault injection
    and recovery; the telemetry is discarded and only the result
    returned (use :func:`parallel_svd` to keep the run report).

    ``profile`` (a ``PROFILE_<host>.json`` path or loaded mapping; also
    ``$REPRO_PROFILE``) fills every knob left unset from the nearest
    tuned entry of a ``repro-harness tune`` profile — explicit
    arguments always win, and with no profile the ordering defaults to
    the paper's ``"fat_tree"``.
    """
    a = as_float_matrix(a, "a")
    (ordering, kernel, block_size, executor, workers,
     compute_backend) = _profile_fill(
        profile, a.shape[0], a.shape[1], None, "fat_tree", ordering,
        options, kernel, block_size, executor, workers, compute_backend)
    if fault_plan is not None:
        # fault injection lives in the machine layer; run there and
        # return just the decomposition
        result, _ = parallel_svd(
            a, topology="perfect", ordering=ordering, options=options,
            kernel=kernel, block_size=block_size, executor=executor,
            workers=workers, compute_backend=compute_backend,
            fault_plan=fault_plan, **ordering_kwargs)
        return result
    bopts = _block_options(options, kernel, block_size, executor, workers,
                           compute_backend)
    n = a.shape[1]
    pow2 = _needs_power_of_two(ordering)
    if bopts is not None:
        b = bopts.block_size
        n_blocks, rem = divmod(n, b)
        admissible = rem == 0 and (
            (is_power_of_two(n_blocks) and n_blocks >= 4)
            if pow2 else (n_blocks % 2 == 0 and n_blocks >= 2)
        )
        if admissible:
            return block_jacobi_svd(a, ordering=ordering, options=bopts,
                                    **ordering_kwargs)
        padded, orig = pad_columns(a, power_of_two=pow2, block_size=b)
        result = block_jacobi_svd(padded, ordering=ordering, options=bopts,
                                  **ordering_kwargs)
        return strip_padding(result, orig)
    options = _with_kernel(options, kernel)
    admissible = (is_power_of_two(n) and n >= 4) if pow2 else (n % 2 == 0)
    if admissible:
        return jacobi_svd(a, ordering=ordering, options=options, **ordering_kwargs)
    padded, orig = pad_columns(a, power_of_two=pow2)
    result = jacobi_svd(padded, ordering=ordering, options=options,
                        allow_wide=True, **ordering_kwargs)
    return strip_padding(result, orig)


def parallel_svd(
    a: np.ndarray,
    topology: str = "cm5",
    ordering: "str | Ordering | None" = None,
    cost_model: CostModel | None = None,
    options: JacobiOptions | BlockJacobiOptions | None = None,
    kernel: str | None = None,
    block_size: int | None = None,
    executor: str | None = None,
    workers: int | None = None,
    compute_backend: str | None = None,
    fault_plan: "FaultPlan | None" = None,
    profile: "str | Mapping | None" = None,
    **ordering_kwargs: object,
) -> tuple[SVDResult, ParallelRunReport]:
    """Distributed SVD on a simulated tree machine; returns result + telemetry.

    ``block_size=b`` runs the machine at block granularity: ``n / b``
    schedule units, ``b``-column messages, block kernels on the leaves
    (the BLAS-3 gram kernel by default).  ``executor``/``workers``
    choose the block step-execution backend (``"serial"``, ``"threads"``
    or ``"processes"``, bit-identical) and ``compute_backend`` the GEMM
    backend — see :mod:`repro.parallel.executor` / :mod:`repro.kernels`.

    ``fault_plan`` (a :class:`~repro.faults.FaultPlan`) injects the
    planned faults during the run; the machine recovers via the ack/seq
    transport, sweep checkpoints and leaf remapping, every recovery
    action is charged to the cost model and recorded on
    ``result.fault_events``, and an unrecoverable plan yields an
    explicit ``converged=False`` result — never silently wrong output.

    ``profile`` / ``$REPRO_PROFILE`` fill unset knobs from a tuned
    profile exactly as in :func:`svd`; the ordering default here is the
    machine-level ``"hybrid"``.
    """
    a = as_float_matrix(a, "a")
    (ordering, kernel, block_size, executor, workers,
     compute_backend) = _profile_fill(
        profile, a.shape[0], a.shape[1], None, "hybrid", ordering,
        options, kernel, block_size, executor, workers, compute_backend)
    bopts = _block_options(options, kernel, block_size, executor, workers,
                           compute_backend)
    pow2 = _needs_power_of_two(ordering)
    if bopts is not None:
        options = bopts
        padded, orig = pad_columns(a, power_of_two=pow2,
                                   block_size=bopts.block_size)
    else:
        options = _with_kernel(options, kernel)
        padded, orig = pad_columns(a, power_of_two=pow2)
    driver = ParallelJacobiSVD(
        topology=topology,
        ordering=ordering,
        cost_model=cost_model,
        options=options,
        **ordering_kwargs,
    )
    result, report = driver.compute(padded, fault_plan=fault_plan)
    if padded.shape[1] != orig:
        result = strip_padding(result, orig)
    return result, report


def _as_batch_stack(matrices: "np.ndarray | Sequence[np.ndarray]") -> np.ndarray:
    """Normalise the batch input to a C-contiguous float64 ``(B, m, n)``
    stack; accepts a 3-D array or a sequence of same-shape 2-D arrays."""
    if isinstance(matrices, np.ndarray):
        stack = as_float_stack(matrices, "matrices")
    else:
        items = [np.asarray(x) for x in matrices]
        require(len(items) >= 1, "svd_batch needs at least one matrix")
        for i, x in enumerate(items):
            require(x.ndim == 2,
                    f"matrices[{i}] must be a 2-D matrix, got ndim={x.ndim}")
            require(x.shape == items[0].shape,
                    "all matrices of a batch must share one shape; "
                    f"matrices[{i}] has {x.shape}, expected {items[0].shape}")
        stack = as_float_stack(np.stack(items), "matrices")
    require(stack.shape[0] >= 1, "svd_batch needs at least one matrix")
    return stack


def svd_batch(
    matrices: "np.ndarray | Sequence[np.ndarray]",
    ordering: "str | Ordering | None" = None,
    options: JacobiOptions | BlockJacobiOptions | None = None,
    kernel: str | None = None,
    block_size: int | None = None,
    executor: str | None = None,
    workers: int | None = None,
    compute_backend: str | None = None,
    profile: "str | Mapping | None" = None,
    **ordering_kwargs: object,
) -> BatchResult:
    """Jacobi SVD of many independent same-shape matrices at once.

    ``matrices`` is a ``(B, m, n)`` stack or a sequence of ``B``
    same-shape 2-D arrays.  The knobs are those of :func:`svd` and are
    shared by every item; the returned :class:`~repro.core.BatchResult`
    holds one :class:`~repro.core.SVDResult` per item (in input order)
    plus the aggregate accounting (sweeps histogram, plan-cache delta,
    matrices/sec).

    The contract is **bit-identity**: ``svd_batch(stack, ...)[i]`` equals
    ``svd(stack[i], ...)`` exactly, for every kernel, ordering and
    executor.  What the batch changes is amortisation, not arithmetic —
    in block mode the schedule is compiled once and every step's local
    solves fuse the whole batch into stacked GEMMs, with per-item
    convergence masks dropping finished matrices out of later sweeps
    (:func:`~repro.blockjacobi.driver.block_jacobi_svd_batch`).
    ``executor="threads"`` / ``"processes"`` chunk *batch items* across
    workers (processes via shared-memory views of the stack), so
    throughput scales with cores while the bits stay those of a serial
    loop.  Scalar mode (no ``block_size``) falls back to a plain loop of
    :func:`svd`.

    A non-finite entry raises ``ValueError`` naming the offending batch
    index and coordinates (``matrices[i] contains ... at index (r, c)``).

    ``profile`` / ``$REPRO_PROFILE`` fill unset knobs from a tuned
    profile as in :func:`svd`, with the batch size part of the shape
    lookup (a profile tuned for this batch shape wins over single-call
    entries).
    """
    stack = _as_batch_stack(matrices)
    nitems, _, n = stack.shape
    (ordering, kernel, block_size, executor, workers,
     compute_backend) = _profile_fill(
        profile, stack.shape[1], n, nitems, "fat_tree", ordering,
        options, kernel, block_size, executor, workers, compute_backend)
    # vectorised finiteness sweep; on failure re-check the first bad item
    # so the error names the batch index and in-matrix coordinates
    ok = np.isfinite(stack).reshape(nitems, -1).all(axis=1)
    if not ok.all():
        i = int(np.flatnonzero(~ok)[0])
        require_finite(stack[i], f"matrices[{i}]")
    bopts = _block_options(options, kernel, block_size, executor, workers,
                           compute_backend)
    pow2 = _needs_power_of_two(ordering)
    before = plan_cache_stats()
    t0 = time.perf_counter()
    if bopts is not None:
        b = bopts.block_size
        n_blocks, rem = divmod(n, b)
        admissible = rem == 0 and (
            (is_power_of_two(n_blocks) and n_blocks >= 4)
            if pow2 else (n_blocks % 2 == 0 and n_blocks >= 2)
        )
        if admissible:
            results = block_jacobi_svd_batch(stack, ordering=ordering,
                                             options=bopts, **ordering_kwargs)
        else:
            # pad the whole stack to the width a solo call would use
            probe, orig = pad_columns(stack[0], power_of_two=pow2, block_size=b)
            padded = np.zeros((nitems, stack.shape[1], probe.shape[1]))
            padded[:, :, :n] = stack
            results = [
                strip_padding(r, orig)
                for r in block_jacobi_svd_batch(padded, ordering=ordering,
                                                options=bopts,
                                                **ordering_kwargs)
            ]
    else:
        scalar_opts = _with_kernel(options, kernel)
        results = [
            svd(stack[i], ordering=ordering, options=scalar_opts,
                **ordering_kwargs)
            for i in range(nitems)
        ]
    elapsed = time.perf_counter() - t0
    after = plan_cache_stats()
    delta = PlanCacheStats(
        hits=after.hits - before.hits,
        misses=after.misses - before.misses,
        instance_hits=after.instance_hits - before.instance_hits,
        size=after.size,
    )
    return BatchResult(results=results, elapsed_s=elapsed, plan_cache=delta)
