"""Tests of tree collectives and execution-trace rendering."""

import operator

import numpy as np
import pytest

from repro.machine import (
    CostModel,
    collective_cost,
    make_topology,
    render_gantt,
    render_timeline,
    tree_allreduce,
    tree_broadcast,
    tree_reduce,
    tree_scan,
    utilization,
)
from repro.machine.simulator import TreeMachine
from repro.orderings import make_ordering


class TestCollectiveSemantics:
    def test_reduce_sum(self):
        assert tree_reduce([1.0, 2.0, 3.0, 4.0], operator.add) == 10.0

    def test_reduce_max(self):
        assert tree_reduce([1.0, 9.0, 3.0, 4.0], max) == 9.0

    def test_reduce_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            tree_reduce([1.0, 2.0, 3.0], operator.add)

    def test_reduce_order_is_pairwise(self):
        # combination order is the tree's, not left-to-right
        seen = []

        def op(a, b):
            seen.append((a, b))
            return a + b

        tree_reduce([1, 2, 3, 4], op)
        assert seen == [(1, 2), (3, 4), (3, 7)]

    def test_broadcast(self):
        assert tree_broadcast(7.0, 4) == [7.0] * 4

    def test_allreduce(self):
        assert tree_allreduce([1.0, 2.0, 3.0, 4.0], operator.add) == [10.0] * 4

    def test_scan_inclusive(self):
        assert tree_scan([1.0, 2.0, 3.0, 4.0], operator.add) == [1.0, 3.0, 6.0, 10.0]


class TestCollectiveCosts:
    def test_reduce_cost_scales_with_levels(self):
        cm = CostModel(alpha=0.0, beta=1.0, hop_time=0.0)
        small = collective_cost("reduce", make_topology("perfect", 4), 10, cm)
        large = collective_cost("reduce", make_topology("perfect", 16), 10, cm)
        assert large.time == 2 * small.time  # 4 levels vs 2

    def test_allreduce_is_two_traversals(self):
        topo = make_topology("perfect", 8)
        red = collective_cost("reduce", topo, 10)
        allr = collective_cost("allreduce", topo, 10)
        assert allr.time == pytest.approx(2 * red.time)
        assert allr.channel_crossings == 2 * red.channel_crossings

    def test_allgather_payload_grows(self):
        topo = make_topology("perfect", 16)
        ag = collective_cost("allgather", topo, 10)
        br = collective_cost("broadcast", topo, 10)
        assert ag.time > br.time

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            collective_cost("gossip", make_topology("perfect", 4), 1)

    def test_crossings_are_edge_count(self):
        topo = make_topology("perfect", 8)
        assert collective_cost("broadcast", topo, 1).channel_crossings == 7


class TestTrace:
    @pytest.fixture
    def stats(self, rng):
        a = rng.standard_normal((24, 16))
        m = TreeMachine(make_topology("cm5", 8))
        m.load(a)
        stats, _, _ = m.run_sweep(make_ordering("fat_tree", 16).sweep(0))
        return stats

    def test_utilization_sums(self, stats):
        u = utilization(stats)
        assert u.total_time == pytest.approx(u.compute_time + u.comm_time)
        assert 0.0 <= u.compute_fraction <= 1.0
        assert u.messages == stats.total_messages

    def test_small_problem_is_communication_bound(self, stats):
        # the paper's point: compute-bound serially, comm-bound in parallel
        assert utilization(stats).communication_bound

    def test_timeline_renders_rows(self, stats):
        text = render_timeline(stats, max_rows=5)
        assert "sweep timeline" in text
        assert "more steps" in text

    def test_timeline_full(self, stats):
        text = render_timeline(stats, max_rows=None)
        assert len(text.splitlines()) >= len(stats.steps)

    def test_gantt_strip(self, stats):
        text = render_gantt(stats, width=30)
        assert "#" in text or "~" in text
        assert "compute" in text

    def test_gantt_empty(self):
        from repro.machine.stats import SweepStats

        assert render_gantt(SweepStats()) == "(empty sweep)"
