"""Golden batch conformance: ``svd_batch`` is bit-identical to a loop of ``svd``.

The batch API's whole contract is that fusing the problem axis changes
amortisation, not arithmetic — ``svd_batch(stack, ...)[i]`` must equal
``svd(stack[i], ...)`` *bit for bit* for every kernel, ordering and
executor, including batches mixing well-conditioned, rank-deficient and
ill-conditioned items (whose convergence masks retire them in different
sweeps).  These tests enforce that with ``np.array_equal``, no
tolerances anywhere.

Also here: the input-normalisation regressions (F-contiguous / non-float
inputs used to flow into the kernels unchanged) and the ``BatchResult``
aggregate accounting.
"""

import numpy as np
import pytest

from repro import BatchResult, parallel_svd, svd, svd_batch
from repro.core.result import SVDResult

KERNELS = ("reference", "batched", "gram")
ORDERINGS = ("fat_tree", "ring_new")
EXECUTORS = (("serial", None), ("threads", 2))

RESULT_FIELDS = ("u", "sigma", "v", "sigma_by_slot", "rank", "converged",
                 "sweeps", "rotations", "emerged_sorted")


def make_mixed_batch(n: int, rng: np.random.Generator, extra_rows: int = 2
                     ) -> np.ndarray:
    """Batch mixing gaussian, rank-deficient and ill-conditioned items."""
    m = n + extra_rows
    mats = [rng.standard_normal((m, n)) for _ in range(5)]
    mats[2][:, -1] = mats[2][:, 0]                      # rank-deficient
    mats[3] = mats[3] @ np.diag(np.logspace(0, -9, n))  # ill-conditioned
    mats[4][:, : n // 2] = 0.0                          # half-zero columns
    return np.stack(mats)


def assert_results_identical(got: SVDResult, want: SVDResult) -> None:
    """Bitwise equality of every user-visible field, history included."""
    for f in RESULT_FIELDS:
        x, y = getattr(got, f), getattr(want, f)
        if isinstance(x, np.ndarray):
            assert np.array_equal(x, y), f"field {f} differs"
        else:
            assert x == y, f"field {f} differs: {x!r} != {y!r}"
    assert len(got.history) == len(want.history)
    for hg, hw in zip(got.history, want.history):
        assert (hg.sweep, hg.off_norm, hg.max_rel_gamma, hg.rotations,
                hg.skipped) == (hw.sweep, hw.off_norm, hw.max_rel_gamma,
                                hw.rotations, hw.skipped)
    assert got.watchdog == want.watchdog


class TestBatchConformance:
    """The golden grid: every kernel x ordering x size x executor."""

    @pytest.mark.parametrize("executor,workers", EXECUTORS)
    @pytest.mark.parametrize("n", [4, 8, 16])
    @pytest.mark.parametrize("ordering", ORDERINGS)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_batch_equals_loop(self, rng, kernel, ordering, n, executor,
                               workers):
        b = max(1, n // 4)
        stack = make_mixed_batch(n, rng)
        kw = dict(ordering=ordering, kernel=kernel, block_size=b,
                  executor=executor, workers=workers)
        batch = svd_batch(stack, **kw)
        assert isinstance(batch, BatchResult)
        assert len(batch) == len(stack)
        for i in range(len(stack)):
            assert_results_identical(batch[i], svd(stack[i], **kw))

    def test_batch_equals_loop_padded_width(self, rng):
        # n=12 with b=2 under fat_tree: 6 blocks is not a power of two,
        # so both paths must take the same transparent padding route
        stack = np.stack([rng.standard_normal((14, 12)) for _ in range(4)])
        kw = dict(ordering="fat_tree", kernel="gram", block_size=2)
        batch = svd_batch(stack, **kw)
        for i in range(4):
            assert_results_identical(batch[i], svd(stack[i], **kw))

    def test_batch_equals_loop_scalar_mode(self, rng):
        # no block_size: svd_batch degrades to a loop of scalar svd()
        stack = np.stack([rng.standard_normal((10, 8)) for _ in range(3)])
        batch = svd_batch(stack)
        for i in range(3):
            assert_results_identical(batch[i], svd(stack[i]))

    def test_batch_equals_loop_no_sort(self, rng):
        from repro import BlockJacobiOptions

        opts = BlockJacobiOptions(block_size=4, sort=None)
        stack = make_mixed_batch(16, rng)
        batch = svd_batch(stack, ordering="ring_new", options=opts)
        for i in range(len(stack)):
            assert_results_identical(
                batch[i], svd(stack[i], ordering="ring_new", options=opts))

    def test_list_input_equals_stack_input(self, rng):
        mats = [rng.standard_normal((10, 8)) for _ in range(3)]
        a = svd_batch(mats, kernel="gram", block_size=2)
        b = svd_batch(np.stack(mats), kernel="gram", block_size=2)
        for i in range(3):
            assert_results_identical(a[i], b[i])

    def test_nonconverged_items_match_loop(self, rng):
        from repro import BlockJacobiOptions
        from repro.util.errors import ConvergenceWarning

        opts = BlockJacobiOptions(block_size=4, max_sweeps=2)
        stack = make_mixed_batch(16, rng)
        with pytest.warns(ConvergenceWarning):
            batch = svd_batch(stack, ordering="ring_new", options=opts)
        assert not batch.converged
        for i in range(len(stack)):
            with pytest.warns(ConvergenceWarning):
                solo = svd(stack[i], ordering="ring_new", options=opts)
            assert_results_identical(batch[i], solo)


class TestBatchResultAggregates:
    def test_aggregates(self, rng):
        stack = make_mixed_batch(16, rng)
        batch = svd_batch(stack, kernel="gram", block_size=4)
        assert batch.n_items == len(stack) == len(batch)
        assert batch.converged and batch.n_converged == len(stack)
        hist = batch.sweeps_histogram
        assert sum(hist.values()) == len(stack)
        assert all(r.sweeps in hist for r in batch)
        assert batch.elapsed_s > 0 and batch.matrices_per_sec > 0
        assert batch.sigma_stack().shape == (len(stack), 16)
        assert np.array_equal(batch.sigma_stack()[0], batch[0].sigma)
        s = batch.summary()
        assert "converged" in s and "matrices/sec" in s

    def test_plan_cache_amortisation(self, rng):
        # a second identical-shape batch must recompile nothing
        stack = np.stack([rng.standard_normal((18, 16)) for _ in range(4)])
        svd_batch(stack, kernel="gram", block_size=4)  # warm the cache
        batch = svd_batch(stack, kernel="gram", block_size=4)
        assert batch.plan_cache is not None
        assert batch.plan_cache.misses == 0
        assert batch.plan_cache.hits + batch.plan_cache.instance_hits > 0

    def test_iteration_yields_results(self, rng):
        stack = np.stack([rng.standard_normal((10, 8)) for _ in range(3)])
        batch = svd_batch(stack, kernel="gram", block_size=2)
        assert [r.rank for r in batch] == [batch[i].rank for i in range(3)]


class TestBatchValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            svd_batch([])
        with pytest.raises(ValueError, match="at least one"):
            svd_batch(np.empty((0, 8, 8)))

    def test_rejects_wrong_ndim(self, rng):
        with pytest.raises(ValueError, match="3-D"):
            svd_batch(rng.standard_normal((8, 8)))
        with pytest.raises(ValueError, match="2-D"):
            svd_batch([rng.standard_normal(8)])

    def test_rejects_mismatched_shapes(self, rng):
        with pytest.raises(ValueError, match="share one shape"):
            svd_batch([rng.standard_normal((8, 8)),
                       rng.standard_normal((10, 8))])

    def test_nonfinite_error_names_item_and_coords(self, rng):
        stack = np.stack([rng.standard_normal((10, 8)) for _ in range(4)])
        stack[2, 5, 3] = np.nan
        with pytest.raises(ValueError, match=r"matrices\[2\].*\(5, 3\)"):
            svd_batch(stack, kernel="gram", block_size=2)


class TestInputNormalisation:
    """Regressions for the F-contiguous / non-float validation gap."""

    @pytest.mark.parametrize("entry", ["svd", "svd_batch"])
    def test_f_contiguous_matches_c_contiguous(self, rng, entry):
        a = rng.standard_normal((12, 8))
        fa = np.asfortranarray(a)
        assert not fa.flags.c_contiguous
        if entry == "svd":
            got, want = svd(fa), svd(a)
        else:
            got = svd_batch(fa[None])[0]
            want = svd_batch(a[None])[0]
        assert_results_identical(got, want)

    @pytest.mark.parametrize("dtype", [np.float32, np.int64])
    def test_nonfloat64_dtypes_are_normalised(self, rng, dtype):
        a = (rng.standard_normal((12, 8)) * 8).astype(dtype)
        want = svd(a.astype(np.float64))
        assert_results_identical(svd(a), want)
        assert_results_identical(svd_batch(a[None])[0], want)

    def test_parallel_svd_normalises_too(self, rng):
        a = rng.standard_normal((12, 8))
        got, _ = parallel_svd(np.asfortranarray(a), topology="perfect")
        want, _ = parallel_svd(a, topology="perfect")
        assert_results_identical(got, want)

    @pytest.mark.parametrize("fn", [svd, parallel_svd])
    def test_complex_input_rejected(self, rng, fn):
        a = rng.standard_normal((8, 8)) + 1j * rng.standard_normal((8, 8))
        with pytest.raises((ValueError, TypeError)):
            fn(a)

    def test_complex_batch_rejected(self, rng):
        a = rng.standard_normal((2, 8, 8)).astype(np.complex128)
        with pytest.raises((ValueError, TypeError)):
            svd_batch(a)

    def test_input_not_mutated(self, rng):
        a = rng.standard_normal((12, 8))
        keep = a.copy()
        svd(a, kernel="gram", block_size=2)
        assert np.array_equal(a, keep)
        stack = np.stack([keep, keep])
        keep3 = stack.copy()
        svd_batch(stack, kernel="gram", block_size=2)
        assert np.array_equal(stack, keep3)


class TestPcaBatch:
    def test_pca_batch_matches_loop(self, rng):
        from repro import pca, pca_batch

        xs = np.stack([rng.standard_normal((12, 8)) for _ in range(3)])
        results = pca_batch(xs, k=3)
        assert len(results) == 3
        for i, got in enumerate(results):
            want = pca(xs[i], k=3)
            assert np.array_equal(got.components, want.components)
            assert np.array_equal(got.scores, want.scores)
            assert np.array_equal(got.explained_variance,
                                  want.explained_variance)
            assert np.array_equal(got.explained_variance_ratio,
                                  want.explained_variance_ratio)
            assert np.array_equal(got.mean, want.mean)

    def test_pca_batch_wide(self, rng):
        from repro import pca, pca_batch

        xs = np.stack([rng.standard_normal((6, 12)) for _ in range(2)])
        results = pca_batch(xs, k=2)
        for i, got in enumerate(results):
            want = pca(xs[i], k=2)
            assert np.array_equal(got.components, want.components)
            assert np.array_equal(got.scores, want.scores)
