"""Synchronous alpha-beta cost model for simulated sweeps.

Each schedule step is a compute phase followed by a communication phase:

* compute: the slowest leaf performs its rotations back-to-back; one
  rotation on columns of length ``m`` costs ``rotation_flops(m)`` =
  ``~10 m`` flops (three fused dot products + two column updates);
* communication: all messages of the phase start together; a channel
  with ``load`` messages and ``capacity`` wires serialises them in
  ``ceil(load / capacity)`` rounds, so the phase's transfer time is
  ``beta * words * max_round_count`` plus a per-phase startup ``alpha``
  charged once (wormhole-style synchronous phase, the regime the CM-5
  measurements of [13] motivate: contention, not distance, dominates).

The constants default to a CM-5-flavoured balance (fast channels,
expensive startup relative to flops) but are plain dataclass fields —
the TAB-TIME experiment sweeps them to find the fat-tree/hybrid
crossover the paper's conclusion anticipates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .routing import MessagePhase

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Time constants, in arbitrary consistent units (say, microseconds).

    ``alpha``      — per-phase message startup overhead
    ``beta``       — per-word transfer time on one channel wire
    ``flop_time``  — time per floating point operation
    ``hop_time``   — per-level pipelining latency of a message
    """

    alpha: float = 50.0
    beta: float = 0.25
    flop_time: float = 0.01
    hop_time: float = 2.0

    def rotation_flops(self, m: int) -> int:
        """Flops of one plane rotation on two length-``m`` columns:
        3 dot products (6m) plus the 2-column update (4m)."""
        return 10 * m

    def compute_time(self, max_rotations_per_leaf: int, m: int) -> float:
        """Compute phase: the busiest leaf's rotations, serialised."""
        return max_rotations_per_leaf * self.rotation_flops(m) * self.flop_time

    def block_compute_time(
        self, max_pairs_per_leaf: int, m: int, b: int, inner_sweeps: int
    ) -> float:
        """Compute phase of a *block* step: each met block pair solves a
        ``2b``-column local subproblem — ``inner_sweeps`` cyclic sweeps
        over its ``b (2b - 1)`` column pairs — so the busiest leaf is
        charged that many plane rotations (``b = 1`` degenerates to
        ``inner_sweeps`` scalar rotations per met pair)."""
        rotations = inner_sweeps * b * (2 * b - 1)
        return max_pairs_per_leaf * rotations * self.rotation_flops(m) * self.flop_time

    def comm_time(self, phase: MessagePhase, words_per_message: int) -> float:
        """Communication phase under channel serialisation."""
        if phase.n_messages == 0:
            return 0.0
        rounds = max(1, math.ceil(phase.contention - 1e-12))
        return (
            self.alpha
            + self.hop_time * 2 * phase.max_level
            + self.beta * words_per_message * rounds
        )
