"""Empirical configuration autotuner (``repro-harness tune``).

With three kernels, seven orderings, three executors, pluggable compute
backends and free block sizes, the fastest configuration for a given
``(m, n, batch)`` is an empirical question — the tiled/blocked Jacobi
literature (PAPERS.md) answers it with exactly this kind of parameter
search.  The subsystem has three layers:

:mod:`~repro.tune.space`
    The candidate enumeration, pruned by this host's backend probe
    catalogue (unavailable executors/backends are skipped, not errors).
:mod:`~repro.tune.runner`
    Successive-halving elimination over the candidates with the bench
    harness' median-of-k timing; deterministic given a timer, which is
    injectable for tests.
:mod:`~repro.tune.profile`
    Schema-versioned persistence (``PROFILE_<host>.json``) and the
    nearest-shape lookup that lets ``svd(profile=...)`` /
    ``$REPRO_PROFILE`` fill unset options from a tuned profile.
"""

from .profile import (SCHEMA, default_host, load_profile, lookup_entry,
                      profile_entry, profile_options, profile_path,
                      save_profile, validate_profile)
from .runner import Trial, TuneResult, default_timer, tune
from .space import (Candidate, DEFAULT_CANDIDATE, backend_catalogue,
                    candidate_space)

__all__ = [
    "Candidate",
    "DEFAULT_CANDIDATE",
    "SCHEMA",
    "Trial",
    "TuneResult",
    "backend_catalogue",
    "candidate_space",
    "default_host",
    "default_timer",
    "load_profile",
    "lookup_entry",
    "profile_entry",
    "profile_options",
    "profile_path",
    "save_profile",
    "tune",
    "validate_profile",
]
