"""A simulated tree multiprocessor executing Jacobi schedules.

``TreeMachine`` holds the distributed matrix (two column slots per leaf,
as in the paper), executes a schedule's rotation and communication
phases with real numerics, and charges every phase to the cost model
while the router measures channel loads on the chosen topology.

The numerics are identical to the serial driver — same kernels, same
label-oriented sorting — so the parallel path is bit-compatible with
:func:`repro.svd.jacobi_svd` (asserted in the integration tests); what
the machine adds is the *timeline*: per-step compute/communication
times, message counts and contention factors.
"""

from __future__ import annotations

import numpy as np

from ..orderings.schedule import Schedule
from ..svd.rotations import (
    RotationStats,
    apply_step_rotations,
    apply_step_rotations_batched,
    column_norms_sq,
)
from ..util.bits import leaf_of_slot
from ..util.validation import require
from .costmodel import CostModel
from .routing import route_phase
from .stats import StepRecord, SweepStats
from .topology import TreeTopology

__all__ = ["TreeMachine"]


class TreeMachine:
    """Leaf processors at the bottom of a tree topology, two columns each."""

    def __init__(self, topology: TreeTopology, cost_model: CostModel | None = None):
        self.topology = topology
        self.cost = cost_model or CostModel()
        self.X: np.ndarray | None = None
        self.V: np.ndarray | None = None
        self.labels: np.ndarray | None = None
        self.kernel: str = "reference"
        self._norms_sq: np.ndarray | None = None

    @property
    def n_slots(self) -> int:
        return 2 * self.topology.n_leaves

    def load(self, a: np.ndarray, compute_v: bool = True,
             kernel: str = "reference") -> None:
        """Distribute the columns of ``a`` over the leaves (slot i = col i)."""
        from ..svd.hestenes import KERNELS

        require(kernel in KERNELS,
                f"unknown kernel {kernel!r}; available: {', '.join(KERNELS)}")
        a = np.asarray(a, dtype=np.float64)
        require(a.ndim == 2, "matrix expected")
        require(a.shape[1] == self.n_slots,
                f"machine holds {self.n_slots} columns, matrix has {a.shape[1]}")
        self.X = a.copy()
        self.V = np.eye(a.shape[1]) if compute_v else None
        self.labels = np.arange(a.shape[1], dtype=np.intp)
        self.kernel = kernel
        # the batched kernel's cross-sweep squared-norm cache, kept in
        # slot order (X/V stay the canonical storage between sweeps)
        self._norms_sq = column_norms_sq(self.X) if kernel == "batched" else None

    def run_sweep(
        self,
        schedule: Schedule,
        tol: float = 1e-12,
        sort: str | None = "desc",
    ) -> tuple[SweepStats, RotationStats, float]:
        """Execute one sweep; returns (timing stats, rotation stats, worst
        relative off-diagonal seen before rotating)."""
        require(self.X is not None, "load() a matrix first")
        require(schedule.n == self.n_slots, "schedule size != machine size")
        X, V, labels = self.X, self.V, self.labels
        m = X.shape[0]
        batched = self.kernel == "batched"
        if batched:
            # column-as-row working buffer for this sweep; X/V remain the
            # canonical storage so the telemetry/inspection surface is
            # kernel-agnostic (conversion is one transpose either way)
            stack = np.vstack((X, V)) if V is not None else X
            WT = np.ascontiguousarray(stack.T)
            norms_sq = self._norms_sq
        stats = SweepStats()
        rstats = RotationStats()
        worst = 0.0
        for k, step in enumerate(schedule.steps, start=1):
            rotations = 0
            compute_t = 0.0
            if step.pairs:
                a = np.fromiter((p[0] for p in step.pairs), dtype=np.intp)
                b = np.fromiter((p[1] for p in step.pairs), dtype=np.intp)
                flip = labels[a] > labels[b]
                if batched:
                    ab = np.column_stack((a, b))
                    P = np.where(flip[:, None], ab[:, ::-1], ab)
                    st, mx = apply_step_rotations_batched(
                        WT, P, tol, sort, norms_sq, m
                    )
                else:
                    left = np.where(flip, b, a)
                    right = np.where(flip, a, b)
                    st, mx = apply_step_rotations(X, V, left, right, tol, sort)
                rstats.merge(st)
                worst = max(worst, mx)
                rotations = len(step.pairs)
                # each leaf rotates at most one of the step's pairs; remote
                # pairs (non-co-resident slots) would serialise, but the
                # paper's orderings are fully local so the busiest leaf
                # performs exactly one rotation
                per_leaf: dict[int, int] = {}
                for pa, pb in step.pairs:
                    leaf = leaf_of_slot(pa)
                    per_leaf[leaf] = per_leaf.get(leaf, 0) + 1
                compute_t = self.cost.compute_time(max(per_leaf.values()), m)
            comm_t = 0.0
            messages = 0
            max_level = 0
            contention = 0.0
            if step.moves:
                src = np.fromiter((mv.src for mv in step.moves), dtype=np.intp)
                dst = np.fromiter((mv.dst for mv in step.moves), dtype=np.intp)
                if batched:
                    WT[dst] = WT[src]
                    norms_sq[dst] = norms_sq[src]
                else:
                    X[:, dst] = X[:, src]
                    if V is not None:
                        V[:, dst] = V[:, src]
                labels[dst] = labels[src]
                phase = route_phase(
                    self.topology,
                    ((leaf_of_slot(mv.src), leaf_of_slot(mv.dst)) for mv in step.moves),
                )
                messages = phase.n_messages
                max_level = phase.max_level
                contention = phase.contention
                # a message carries one column of m words (plus its V row
                # block when vectors are accumulated)
                words = m + (X.shape[1] if V is not None else 0)
                comm_t = self.cost.comm_time(phase, words)
            stats.steps.append(
                StepRecord(
                    step=k,
                    rotations=rotations,
                    messages=messages,
                    max_level=max_level,
                    contention=contention,
                    compute_time=compute_t,
                    comm_time=comm_t,
                )
            )
        if batched:
            X[:] = WT[:, :m].T
            if V is not None:
                V[:] = WT[:, m:].T
        return stats, rstats, worst

    def column_norms(self) -> np.ndarray:
        require(self.X is not None, "load() a matrix first")
        return np.linalg.norm(self.X, axis=0)
