"""Execution-layer analysis gate: orchestrate the ``EXEC``/``PLAN``/
``FT`` passes over schedules, orderings and the whole registry.

:func:`~repro.verify.linter.lint_registry` proves the *schedules* sound
— races, coverage, direction, capacity, restoration.  This module is
the second gate, one layer down: it proves the *execution machinery*
sound for those schedules.  For every registered ordering x size it

* re-elaborates the compiled plan against its source schedule and the
  plan cache (:mod:`repro.verify.plancheck`, ``PLAN001``-``PLAN003``);
* derives the executor's chunking for every kernel x worker-count
  configuration and proves it race-free and merge-deterministic
  (:mod:`repro.verify.executor_plan`, ``EXEC001``-``EXEC004``), then
  projects the same chunking into the process executor's shared-memory
  arena and proves the chunks' address ranges disjoint (``EXEC005``);
* projects the simulator fast path's per-step write-sets and proves
  each stacked scatter hazard-free, trajectory-consistent and the
  sweep permutation a bijection (``EXEC006``);
* enumerates every single-leaf death and proves graceful degradation
  total, plus fallback-chain well-formedness
  (:mod:`repro.verify.faultcheck`, ``FT001``/``FT002``).

``repro-harness analyze`` is the CLI face of this module; CI runs
``analyze --quick``.  Reports use the same
:class:`~repro.verify.diagnostics.Report` vocabulary as the linter, so
the exit-code and JSON conventions carry over unchanged.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..blockjacobi.kernel import BLOCK_KERNELS
from ..machine.topology import TreeTopology, make_topology
from ..orderings.base import Ordering
from ..orderings.registry import ORDERINGS, make_ordering
from ..orderings.schedule import Schedule
from .diagnostics import Report
from .executor_plan import (check_executor_plan, check_fastpath_projection,
                            check_shared_memory_plan)
from .faultcheck import check_degraded_totality, check_fallback_chains
from .linter import DEFAULT_SIZES, MAX_RESTORATION_PERIOD
from .plancheck import check_plan_cache, check_plan_integrity

__all__ = [
    "ANALYZE_WORKERS",
    "analyze_ordering",
    "analyze_registry",
    "analyze_schedule",
]

#: worker counts the gate proves the executor chunking for (1 covers
#: the serial path; 2 and 4 exercise uneven and clamped partitions)
ANALYZE_WORKERS: tuple[int, ...] = (1, 2, 4)


def analyze_schedule(
    schedule: Schedule,
    topology: TreeTopology | None = None,
    *,
    kernels: Sequence[str] = BLOCK_KERNELS,
    workers: Sequence[int] = ANALYZE_WORKERS,
) -> Report:
    """Run every execution-layer pass over one schedule.

    The fault-tolerance totality pass needs a ``topology`` (death is a
    machine event); without one its skip is recorded in ``checks``.
    """
    report = Report(target=schedule.name)
    report.extend(check_plan_integrity(schedule), "plan-integrity")
    report.extend(check_plan_cache(schedule), "plan-cache")
    report.extend(check_fastpath_projection(schedule), "fastpath-projection")
    for kernel in kernels:
        for w in workers:
            report.extend(
                check_executor_plan(schedule, kernel=kernel, workers=w),
                f"exec-plan[{kernel},w={w}]")
            report.extend(
                check_shared_memory_plan(schedule, kernel=kernel, workers=w),
                f"exec-shm[{kernel},w={w}]")
    if topology is not None:
        report.extend(check_degraded_totality(schedule, topology),
                      "ft-degraded")
    else:
        report.checks.append("ft-degraded(skipped: no topology)")
    report.extend(check_fallback_chains(), "ft-fallback")
    return report


def analyze_ordering(
    ordering: Ordering,
    topology: TreeTopology | None = None,
    *,
    kernels: Sequence[str] = BLOCK_KERNELS,
    workers: Sequence[int] = ANALYZE_WORKERS,
) -> Report:
    """Analyze every structurally distinct sweep an ordering generates
    (same dedup discipline as :func:`~repro.verify.linter.lint_ordering`)."""
    report = Report(target=f"{ordering.name}(n={ordering.n})")
    alternating = ordering.sweep_key(1) != ordering.sweep_key(0)
    seen_keys: set[int] = set()
    for s in range(MAX_RESTORATION_PERIOD):
        key = ordering.sweep_key(s)
        if key in seen_keys:
            continue
        seen_keys.add(key)
        sub = analyze_schedule(ordering.sweep(s), topology,
                               kernels=kernels, workers=workers)
        label = f"sweep{s}" if alternating else "sweep"
        for check in sub.checks:
            report.checks.append(f"{label}:{check}")
        report.diagnostics.extend(sub.diagnostics)
    return report


def analyze_registry(
    names: Sequence[str] | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    topology: str | None = "perfect",
    *,
    kernels: Sequence[str] = BLOCK_KERNELS,
    workers: Sequence[int] = ANALYZE_WORKERS,
    quick: bool = False,
    **kwargs_by_name: dict[str, object],
) -> list[Report]:
    """The execution-layer gate over the whole ordering registry.

    Mirrors :func:`~repro.verify.linter.lint_registry`: unconstructible
    (name, size) combinations contribute skip reports rather than
    passing silently.  ``topology`` names the machine for the
    fault-tolerance totality pass (``None`` disables it);
    ``quick=True`` shrinks the matrix to size 8 with workers (1, 2) —
    the CI smoke configuration.
    """
    if quick:
        sizes = (8,)
        workers = (1, 2)
    reports: list[Report] = []
    for name in (names if names is not None else sorted(ORDERINGS)):
        for n in sizes:
            try:
                ordering = make_ordering(name, n,
                                         **kwargs_by_name.get(name, {}))
            except ValueError as exc:
                skip = Report(target=f"{name}(n={n})")
                skip.checks.append(f"skipped: {exc}")
                reports.append(skip)
                continue
            topo = make_topology(topology, n // 2) if topology else None
            reports.append(analyze_ordering(ordering, topo,
                                            kernels=kernels,
                                            workers=workers))
    return reports
