"""Tests of the top-level public API."""

import numpy as np
import pytest

from repro import (
    JacobiOptions,
    SVDResult,
    jacobi_svd,
    make_ordering,
    ordering_names,
    parallel_svd,
    svd,
)


class TestSvd:
    def test_basic(self, rng):
        a = rng.standard_normal((20, 16))
        r = svd(a)
        assert isinstance(r, SVDResult)
        assert r.converged

    def test_awkward_width_padded(self, rng):
        a = rng.standard_normal((20, 13))
        r = svd(a)
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(r.sigma - ref)) < 1e-12 * ref[0]
        assert r.u.shape == (20, 13)
        assert r.v.shape == (13, 13)
        assert np.linalg.norm(a - (r.u * r.sigma) @ r.v.T) < 1e-10

    def test_even_width_ring_not_padded(self, rng):
        a = rng.standard_normal((20, 10))
        r = svd(a, ordering="ring_new")
        assert r.sigma.shape == (10,)
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(r.sigma - ref)) < 1e-12 * ref[0]

    def test_odd_width_ring_padded(self, rng):
        a = rng.standard_normal((20, 9))
        r = svd(a, ordering="ring_new")
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(r.sigma - ref)) < 1e-12 * ref[0]

    def test_options_forwarded(self, rng):
        a = rng.standard_normal((20, 16))
        r = svd(a, options=JacobiOptions(max_sweeps=1))
        assert r.sweeps == 1

    def test_ordering_kwargs_forwarded(self, rng):
        a = rng.standard_normal((40, 32))
        r = svd(a, ordering="hybrid", n_groups=8)
        assert r.converged


class TestParallelSvd:
    def test_default_cm5_hybrid(self, rng):
        a = rng.standard_normal((48, 32))
        result, report = parallel_svd(a)
        assert result.converged
        assert report.contention_free  # the paper's CM-5 design point

    def test_padding_path(self, rng):
        a = rng.standard_normal((30, 20))
        result, report = parallel_svd(a, topology="perfect", ordering="fat_tree")
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(result.sigma - ref)) < 1e-12 * ref[0]
        assert result.u.shape == (30, 20)

    def test_report_has_per_sweep_stats(self, rng):
        a = rng.standard_normal((24, 16))
        result, report = parallel_svd(a, topology="cm5", ordering="fat_tree")
        assert len(report.sweep_stats) == result.sweeps


class TestRegistry:
    def test_names_stable(self):
        assert ordering_names() == [
            "fat_tree", "hybrid", "llb", "odd_even",
            "ring_modified", "ring_new", "round_robin",
        ]

    def test_make_each(self):
        for name in ordering_names():
            o = make_ordering(name, 16)
            assert o.n == 16
            assert o.sweep(0).n_rotation_steps >= 15

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_ordering("butterfly", 16)


class TestResultObject:
    def test_reconstruct(self, rng):
        a = rng.standard_normal((16, 8))
        r = jacobi_svd(a)
        assert np.allclose(r.reconstruct(), a, atol=1e-10)

    def test_reconstruction_error_normalised(self, rng):
        a = rng.standard_normal((16, 8))
        r = jacobi_svd(a)
        assert r.reconstruction_error(a) < 1e-12

    def test_version_exported(self):
        import repro

        assert repro.__version__


class TestInputValidation:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_svd_rejects_non_finite_input(self, rng, bad):
        a = rng.standard_normal((12, 8))
        a[3, 5] = bad
        with pytest.raises(ValueError, match=r"\(3, 5\)"):
            svd(a)

    def test_parallel_svd_rejects_non_finite_input(self, rng):
        a = rng.standard_normal((12, 8))
        a[0, 0] = np.nan
        with pytest.raises(ValueError, match=r"\(0, 0\)"):
            parallel_svd(a)

    def test_error_names_the_offending_coordinate(self, rng):
        a = rng.standard_normal((12, 8))
        a[7, 2] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            svd(a)


class TestConvergenceSurfacing:
    def test_non_convergence_warns_and_flags(self, rng):
        from repro import ConvergenceWarning

        a = rng.standard_normal((20, 16))
        with pytest.warns(ConvergenceWarning):
            r = svd(a, options=JacobiOptions(max_sweeps=1))
        assert not r.converged
        assert r.sweeps_used == 1
        assert r.watchdog is not None
        assert "NOT converged" in r.summary()

    def test_block_driver_warns_too(self, rng):
        from repro import BlockJacobiOptions, ConvergenceWarning

        a = rng.standard_normal((20, 16))
        with pytest.warns(ConvergenceWarning):
            r = svd(a, options=BlockJacobiOptions(block_size=2, max_sweeps=1))
        assert not r.converged

    def test_converged_run_is_quiet(self, rng):
        import warnings

        from repro import ConvergenceWarning

        a = rng.standard_normal((20, 16))
        with warnings.catch_warnings():
            warnings.simplefilter("error", ConvergenceWarning)
            r = svd(a)
        assert r.converged
        assert r.watchdog is None
        assert r.fault_summary() == {}
