"""Timed reference-vs-batched rotation kernel comparison.

The pytest-benchmark twin of the ``svd/*`` scenarios in
``repro-harness bench``: one artefact per (kernel, ordering) pair at
n = 64, asserting the batched kernel's result stays golden while the
benchmark fixture records the timing.  The JSON-reporting harness in
``repro.bench`` is the CI regression gate; these are for interactive
``pytest benchmarks/ --benchmark-only`` sessions.
"""

import numpy as np
import pytest

from repro.orderings import make_ordering
from repro.svd import JacobiOptions, jacobi_svd

N = 64


def _matrix():
    rng = np.random.default_rng(2024)
    return rng.standard_normal((N + 16, N))


@pytest.mark.parametrize("ordering", ["fat_tree", "ring_new"])
@pytest.mark.parametrize("kernel", ["reference", "batched"])
def test_kernel_timing(benchmark, kernel, ordering):
    a = _matrix()
    o = make_ordering(ordering, N)
    options = JacobiOptions(kernel=kernel)

    r = benchmark(lambda: jacobi_svd(a, ordering=o, options=options))
    assert r.converged
    lap = np.linalg.svd(a, compute_uv=False)
    assert np.max(np.abs(r.sigma - lap)) < 1e-11 * lap[0]
