"""Hypothesis properties of the batch SVD path.

Four behavioural laws the batch API must satisfy on *generated* inputs,
not just the golden grid: batch order is irrelevant (permuting the items
permutes the results, bit for bit), runs are deterministic (same data →
identical ``BatchResult``), a batch of one is exactly ``svd()``, and a
planted non-finite entry is reported with its batch index and in-matrix
coordinates.
"""

import re

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import svd, svd_batch

from .test_batch_api import assert_results_identical

SETTINGS = dict(deadline=None, max_examples=15,
                suppress_health_check=[HealthCheck.too_slow])

seeds = st.integers(min_value=0, max_value=2**32 - 1)
batch_sizes = st.integers(min_value=1, max_value=5)
kernels = st.sampled_from(["reference", "batched", "gram"])


def make_stack(seed: int, nitems: int, n: int = 8) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((nitems, n + 2, n))


@given(seed=seeds, nitems=batch_sizes, kernel=kernels, permseed=seeds)
@settings(**SETTINGS)
def test_permuting_items_permutes_results(seed, nitems, kernel, permseed):
    stack = make_stack(seed, nitems)
    perm = np.random.default_rng(permseed).permutation(nitems)
    base = svd_batch(stack, kernel=kernel, block_size=2)
    shuffled = svd_batch(stack[perm], kernel=kernel, block_size=2)
    for j, i in enumerate(perm):
        assert_results_identical(shuffled[j], base[int(i)])


@given(seed=seeds, nitems=batch_sizes, kernel=kernels)
@settings(**SETTINGS)
def test_same_input_gives_identical_batch(seed, nitems, kernel):
    stack = make_stack(seed, nitems)
    a = svd_batch(stack, kernel=kernel, block_size=2)
    b = svd_batch(stack, kernel=kernel, block_size=2)
    assert len(a) == len(b) == nitems
    for i in range(nitems):
        assert_results_identical(a[i], b[i])
    assert a.sweeps_histogram == b.sweeps_histogram
    assert a.n_converged == b.n_converged


@given(seed=seeds, kernel=kernels)
@settings(**SETTINGS)
def test_batch_of_one_equals_svd(seed, kernel):
    stack = make_stack(seed, 1)
    batch = svd_batch(stack, kernel=kernel, block_size=2)
    assert len(batch) == 1
    assert_results_identical(batch[0], svd(stack[0], kernel=kernel,
                                           block_size=2))


@given(seed=seeds, nitems=batch_sizes, data=st.data())
@settings(**SETTINGS)
def test_nonfinite_reports_item_and_coordinates(seed, nitems, data):
    stack = make_stack(seed, nitems)
    item = data.draw(st.integers(0, nitems - 1))
    row = data.draw(st.integers(0, stack.shape[1] - 1))
    col = data.draw(st.integers(0, stack.shape[2] - 1))
    bad = data.draw(st.sampled_from([np.nan, np.inf, -np.inf]))
    stack[item, row, col] = bad
    with pytest.raises(ValueError) as exc:
        svd_batch(stack, kernel="gram", block_size=2)
    msg = str(exc.value)
    assert re.search(rf"matrices\[{item}\]", msg)
    # the reported coordinates must point at a genuinely non-finite entry
    # of that item (the first one in scan order; ours if it is unique)
    coords = re.search(r"at index \((\d+), (\d+)\)", msg)
    assert coords is not None
    r, c = int(coords.group(1)), int(coords.group(2))
    assert not np.isfinite(stack[item, r, c])
