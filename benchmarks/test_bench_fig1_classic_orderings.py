"""FIG1 — regenerate the classic orderings of Fig 1 (ring style, round-robin).

The benchmark times schedule construction; the assertions re-verify the
figure-level structure the table in EXPERIMENTS.md records.
"""

from repro.analysis import fig1_ring_style, fig1_round_robin, step_table
from repro.orderings import check_all_pairs_once
from repro.util.formatting import render_step_table


def test_fig1b_round_robin(benchmark):
    sched = benchmark(fig1_round_robin, 8)
    assert sched.n_rotation_steps == 7
    assert check_all_pairs_once(sched).is_valid
    table = render_step_table(step_table(sched), title="Fig 1(b) round-robin, n=8")
    print("\n" + table)
    assert sched.index_pairs()[0] == [(1, 2), (3, 4), (5, 6), (7, 8)]


def test_fig1a_ring_style(benchmark):
    sched = benchmark(fig1_ring_style, 8)
    assert sched.n_rotation_steps == 8
    assert check_all_pairs_once(sched).is_valid
    print("\n" + render_step_table(step_table(sched), title="Fig 1(a) odd-even stand-in, n=8"))


def test_fig1_scaling_construction(benchmark):
    sched = benchmark(fig1_round_robin, 256)
    assert sched.n_rotation_steps == 255
