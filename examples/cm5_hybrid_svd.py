"""The paper's headline scenario: SVD on a (simulated) CM-5.

Runs the same decomposition under the fat-tree, ring and hybrid
orderings on the CM-5 tree model and on a perfect fat-tree, reporting
the execution timeline the machine simulator measures — reproducing the
Section 6 conclusion that the hybrid ordering suits the CM-5 best while
the fat-tree ordering profits most from wider channels.

Run:  python examples/cm5_hybrid_svd.py
"""

import numpy as np

from repro import parallel_svd

rng = np.random.default_rng(1)
a = rng.standard_normal((96, 64))

print(f"matrix: {a.shape[0]} x {a.shape[1]}  "
      f"({a.shape[1] // 2} leaf processors, 2 columns each)\n")

header = f"{'topology':10s} {'ordering':10s} {'sweeps':>6s} {'comm':>10s} {'total':>10s} {'max cont':>9s}"
print(header)
print("-" * len(header))

for topology in ("cm5", "perfect", "binary"):
    for ordering, kwargs in (
        ("fat_tree", {}),
        ("ring_new", {}),
        ("hybrid", {"n_groups": 8}),
    ):
        result, report = parallel_svd(a, topology=topology, ordering=ordering, **kwargs)
        assert result.converged
        print(
            f"{topology:10s} {ordering:10s} {result.sweeps:6d} "
            f"{report.comm_time:10.0f} {report.total_time:10.0f} "
            f"{report.max_contention:9.2f}"
        )
    print()

print("Reading the table:")
print(" * on the CM-5 model the hybrid ordering is contention-free and")
print("   has the lowest communication time (the paper's expectation);")
print(" * on the perfect fat-tree the fat-tree ordering catches up - its")
print("   traffic profile exactly matches the doubling channel capacity;")
print(" * the ordinary binary tree punishes the fat-tree ordering and")
print("   leaves the one-directional ring ordering untouched.")
