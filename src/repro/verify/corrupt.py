"""Schedule corruption operators for negative testing of the verifier.

Each operator takes a healthy :class:`~repro.orderings.schedule.Schedule`
and returns a broken copy engineered to trip exactly one family of
rules, so the test-suite (and anyone fuzzing the gate) can assert that
the verifier catches each paper invariant's violation by rule ID:

==================  ============================================
operator            rule the linter must fire
==================  ============================================
:func:`duplicate_pair`    ``SWEEP001`` (pair rotated twice)
:func:`drop_exchange`     ``RACE003`` (send without receive)
:func:`reverse_ring_step` ``DIR002`` (backward ring edge)
:func:`overload_link`     ``CAP003`` (oversubscribed channel)
==================  ============================================

Some corruptions are unrepresentable through the validating
constructors (``Step`` rejects non-permutation moves at build time),
which is exactly the scenario the verifier exists for: input that did
*not* come through our constructors.  The unchecked builders — shared
with the chaos-injection side in :mod:`repro.faults.corruptions` so
negative-test corruption and fault injection cannot drift apart — are
re-exported here for backwards compatibility.
"""

from __future__ import annotations

from ..faults.corruptions import (
    first_remote_move,
    unchecked_schedule,
    unchecked_step,
)
from ..orderings.schedule import Move, Schedule, Step
from ..util.validation import require

__all__ = [
    "unchecked_step",
    "unchecked_schedule",
    "duplicate_pair",
    "drop_exchange",
    "reverse_ring_step",
    "overload_link",
]


def duplicate_pair(schedule: Schedule) -> Schedule:
    """Rotate the first step's pairs twice: prepend a move-free copy.

    The inserted step performs the same rotations on the same (still
    unmoved) columns, so every index pair of the original first step is
    now met twice in the sweep — the paper's "exactly once per sweep"
    invariant broken with every step still locally well-formed.
    """
    require(bool(schedule.steps) and bool(schedule.steps[0].pairs),
            "schedule has no rotation step to duplicate")
    extra = Step(pairs=schedule.steps[0].pairs, moves=())
    out = Schedule(n=schedule.n, steps=[extra, *schedule.steps],
                   name=f"{schedule.name}+duplicate_pair")
    out.notes.update(schedule.notes)
    return out


def drop_exchange(schedule: Schedule) -> Schedule:
    """Remove one inter-leaf move: its payload column is never received.

    The resulting move set is no longer a partial permutation, which a
    validating constructor would reject — so the broken step is built
    unchecked, exactly like a schedule deserialized from an external
    (buggy) scheduler would arrive.
    """
    try:
        step_no, victim = first_remote_move(schedule)
    except ValueError:
        raise ValueError(
            f"{schedule.name} has no inter-leaf move to drop") from None
    k = step_no - 1
    step = schedule.steps[k]
    kept = tuple(m for m in step.moves if m is not victim)
    broken = unchecked_step(step.pairs, kept)
    steps = [*schedule.steps[:k], broken, *schedule.steps[k + 1:]]
    return unchecked_schedule(schedule.n, steps,
                              f"{schedule.name}+drop_exchange",
                              notes=schedule.notes)


def reverse_ring_step(schedule: Schedule) -> Schedule:
    """Reverse every move of the first communicating step.

    The reversed moves still form a valid partial permutation (the
    inverse one), but the messages of that step now travel in the
    opposite ring direction — the one-directionality of Section 4 is
    broken while all local validation still passes.
    """
    try:
        step_no, _ = first_remote_move(schedule)
    except ValueError:
        raise ValueError(
            f"{schedule.name} has no communicating step to reverse") from None
    k = step_no - 1
    step = schedule.steps[k]
    flipped = tuple(Move(m.dst, m.src) for m in step.moves)
    steps = [*schedule.steps[:k],
             Step(pairs=step.pairs, moves=flipped),
             *schedule.steps[k + 1:]]
    out = Schedule(n=schedule.n, steps=steps,
                   name=f"{schedule.name}+reverse_ring_step")
    out.notes.update(schedule.notes)
    return out


def overload_link(schedule: Schedule) -> Schedule:
    """Append a phase that swaps the machine's two halves in one step.

    Every leaf of the left half sends both of its columns across the
    root simultaneously: ``n/2`` messages through a top-level channel
    of capacity ``n/4`` on a perfect fat-tree — contention 2.0 on any
    of the modelled topologies.
    """
    n = schedule.n
    require(n >= 4, "need at least two leaves to overload the root")
    half = n // 2
    moves = tuple(Move(s, (s + half) % n) for s in range(n))
    flood = Step(pairs=(), moves=moves)
    out = Schedule(n=n, steps=[*schedule.steps, flood],
                   name=f"{schedule.name}+overload_link")
    out.notes.update(schedule.notes)
    return out
