"""Top-level convenience API.

``svd`` is the one-call entry point a downstream user wants: pick an
ordering (default: the paper's fat-tree ordering), pad to an admissible
width if needed, run the one-sided Jacobi iteration, strip the padding.
``parallel_svd`` does the same on a simulated tree machine and returns
the execution telemetry alongside the decomposition.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..machine.costmodel import CostModel
from ..orderings.base import Ordering
from ..parallel.distribution import pad_columns, strip_padding
from ..parallel.driver import ParallelJacobiSVD, ParallelRunReport
from ..svd.hestenes import JacobiOptions, jacobi_svd
from ..util.bits import is_power_of_two
from .result import SVDResult

__all__ = ["svd", "parallel_svd"]


def _needs_power_of_two(ordering: str | Ordering) -> bool:
    name = ordering if isinstance(ordering, str) else ordering.name
    return name in ("fat_tree", "llb", "hybrid")


def _with_kernel(
    options: JacobiOptions | None, kernel: str | None
) -> JacobiOptions | None:
    if kernel is None:
        return options
    return dataclasses.replace(options or JacobiOptions(), kernel=kernel)


def svd(
    a: np.ndarray,
    ordering: str | Ordering = "fat_tree",
    options: JacobiOptions | None = None,
    kernel: str | None = None,
    **ordering_kwargs: object,
) -> SVDResult:
    """One-sided Jacobi SVD of ``a`` (m x n, m >= n) under a parallel ordering.

    Matrices whose width is not admissible for the chosen ordering
    (power of two for the tree orderings, even otherwise) are transparently
    zero-padded and the result stripped back to ``n`` columns.

    ``kernel`` (``"reference"`` or ``"batched"``) overrides the rotation
    kernel of ``options``; the batched kernel fuses each parallel step
    into a single gathered 2x2 block transform and is the fast path.
    """
    a = np.asarray(a, dtype=np.float64)
    options = _with_kernel(options, kernel)
    n = a.shape[1]
    pow2 = _needs_power_of_two(ordering)
    admissible = (is_power_of_two(n) and n >= 4) if pow2 else (n % 2 == 0)
    if admissible:
        return jacobi_svd(a, ordering=ordering, options=options, **ordering_kwargs)
    padded, orig = pad_columns(a, power_of_two=pow2)
    result = jacobi_svd(padded, ordering=ordering, options=options,
                        allow_wide=True, **ordering_kwargs)
    return strip_padding(result, orig)


def parallel_svd(
    a: np.ndarray,
    topology: str = "cm5",
    ordering: str | Ordering = "hybrid",
    cost_model: CostModel | None = None,
    options: JacobiOptions | None = None,
    kernel: str | None = None,
    **ordering_kwargs: object,
) -> tuple[SVDResult, ParallelRunReport]:
    """Distributed SVD on a simulated tree machine; returns result + telemetry."""
    a = np.asarray(a, dtype=np.float64)
    options = _with_kernel(options, kernel)
    pow2 = _needs_power_of_two(ordering)
    padded, orig = pad_columns(a, power_of_two=pow2)
    driver = ParallelJacobiSVD(
        topology=topology,
        ordering=ordering,
        cost_model=cost_model,
        options=options,
        **ordering_kwargs,
    )
    result, report = driver.compute(padded)
    if padded.shape[1] != orig:
        result = strip_padding(result, orig)
    return result, report
