"""``FaultPlan`` — a deterministic, seed-reproducible fault-injection DSL.

A plan is an immutable list of :class:`Fault` specs plus a seed and the
recovery budgets.  Each spec names *where* a fault strikes (sweep, step,
link endpoints, leaf or tree level) and *what* happens there:

=================  =======================================================
kind               semantics
=================  =======================================================
``drop``           the message is lost in flight; the sender times out
                   and retransmits (ack/seq transport)
``duplicate``      the message is delivered twice; the receiver dedups
                   the second copy by sequence number
``delay``          the message arrives late; past the retransmission
                   timeout the sender resends and the late original is
                   deduped
``corrupt``        the payload is damaged in flight but the checksum
                   catches it; the receiver nacks and the sender resends
``corrupt_silent`` the damage evades the checksum (NaN/Inf injected into
                   the payload); caught later by the kernels' non-finite
                   sentinels, triggering a sweep-checkpoint rollback
``stall``          a processor freezes for ``duration`` time units in
                   one step (transient; charged to that step)
``crash``          crash-stop: the processor dies at (sweep, step) and
                   never answers again; detected by peer timeout, its
                   columns are remapped onto the sibling leaf and the
                   sweep re-run from the checkpoint
``outage``         every channel of tree level ``level`` is down for the
                   step window ``[step, until_step]`` of one sweep;
                   senders back off and finally wait the window out
=================  =======================================================

``sweep``/``step``/``src``/``dst`` may be ``None`` as wildcards (match
any).  ``fires`` bounds how many times a spec triggers (default 1), so a
rolled-back sweep retries against a machine whose transient faults are
spent — the property that makes recovery deterministic and testable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..util.validation import require
from .corruptions import PAYLOAD_MODES

__all__ = ["FAULT_KINDS", "Fault", "FaultPlan"]

#: the registered fault kinds, in campaign order
FAULT_KINDS = (
    "drop",
    "duplicate",
    "delay",
    "corrupt",
    "corrupt_silent",
    "stall",
    "crash",
    "outage",
)

_MESSAGE_KINDS = frozenset(
    {"drop", "duplicate", "delay", "corrupt", "corrupt_silent"})


@dataclass(frozen=True)
class Fault:
    """One armed fault.  Use the :class:`FaultPlan` builders to make these."""

    kind: str
    sweep: int | None = None
    step: int | None = None
    src: int | None = None
    dst: int | None = None
    leaf: int | None = None
    level: int | None = None
    until_step: int | None = None
    duration: float = 0.0
    mode: str = "nan"
    fires: int = 1

    def __post_init__(self) -> None:
        require(self.kind in FAULT_KINDS,
                f"unknown fault kind {self.kind!r}; "
                f"available: {', '.join(FAULT_KINDS)}")
        require(self.fires >= 1, f"fires must be >= 1, got {self.fires!r}")
        require(self.mode in PAYLOAD_MODES,
                f"unknown corruption mode {self.mode!r}; "
                f"available: {', '.join(PAYLOAD_MODES)}")
        for name in ("sweep", "step", "src", "dst", "leaf"):
            v = getattr(self, name)
            require(v is None or v >= 0, f"{name} must be >= 0, got {v!r}")
        if self.kind == "stall":
            require(self.duration > 0.0, "stall needs a positive duration")
            require(self.leaf is not None, "stall needs a leaf")
        if self.kind == "crash":
            require(self.leaf is not None, "crash needs a leaf")
        if self.kind == "outage":
            require(self.level is not None and self.level >= 1,
                    "outage needs a tree level >= 1")
            require(self.sweep is not None and self.step is not None,
                    "outage needs an explicit (sweep, step) window start")
            end = self.until_step if self.until_step is not None else self.step
            require(end >= self.step, "outage window must end at or after start")

    def matches_message(self, sweep: int, step: int,
                        src: int, dst: int) -> bool:
        """Does this (armed message-kind) fault hit the given message?"""
        if self.kind not in _MESSAGE_KINDS:
            return False
        return ((self.sweep is None or self.sweep == sweep)
                and (self.step is None or self.step == step)
                and (self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))

    def outage_covers(self, sweep: int, step: int, level: int) -> bool:
        """Is a level-``level`` message at (sweep, step) inside the window?"""
        if self.kind != "outage":
            return False
        end = self.until_step if self.until_step is not None else self.step
        return (self.sweep == sweep and self.step <= step <= end
                and level >= self.level)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable chaos scenario: faults + seed + recovery budgets.

    Builder methods return extended copies, so plans compose fluently::

        plan = (FaultPlan(seed=7)
                .drop(sweep=0, step=2, src=0, dst=1)
                .crash(leaf=3, sweep=1, step=1))

    ``max_retries`` caps the transport's retransmission attempts per
    message (exponential backoff in between); ``max_sweep_attempts``
    caps checkpoint rollback-and-retry per sweep.  Both bounds are what
    turns "never deadlocks" into a provable property: every recovery
    path either succeeds within its budget or escalates explicitly.
    """

    faults: tuple[Fault, ...] = ()
    seed: int = 0
    max_retries: int = 4
    max_sweep_attempts: int = 3

    def __post_init__(self) -> None:
        require(self.max_retries >= 1, "max_retries must be >= 1")
        require(self.max_sweep_attempts >= 1, "max_sweep_attempts must be >= 1")

    def __len__(self) -> int:
        return len(self.faults)

    def add(self, fault: Fault) -> "FaultPlan":
        """Extended copy with one more armed fault."""
        return dataclasses.replace(self, faults=(*self.faults, fault))

    # -- fluent single-fault builders ------------------------------------
    def drop(self, sweep: int | None = None, step: int | None = None,
             src: int | None = None, dst: int | None = None,
             fires: int = 1) -> "FaultPlan":
        return self.add(Fault("drop", sweep=sweep, step=step,
                              src=src, dst=dst, fires=fires))

    def duplicate(self, sweep: int | None = None, step: int | None = None,
                  src: int | None = None, dst: int | None = None) -> "FaultPlan":
        return self.add(Fault("duplicate", sweep=sweep, step=step,
                              src=src, dst=dst))

    def delay(self, sweep: int | None = None, step: int | None = None,
              src: int | None = None, dst: int | None = None,
              duration: float = 0.0) -> "FaultPlan":
        return self.add(Fault("delay", sweep=sweep, step=step,
                              src=src, dst=dst, duration=duration))

    def corrupt(self, sweep: int | None = None, step: int | None = None,
                src: int | None = None, dst: int | None = None,
                mode: str = "scale", silent: bool = False) -> "FaultPlan":
        kind = "corrupt_silent" if silent else "corrupt"
        return self.add(Fault(kind, sweep=sweep, step=step,
                              src=src, dst=dst, mode=mode))

    def stall(self, leaf: int, sweep: int | None = None,
              step: int | None = None, duration: float = 200.0) -> "FaultPlan":
        return self.add(Fault("stall", sweep=sweep, step=step,
                              leaf=leaf, duration=duration))

    def crash(self, leaf: int, sweep: int = 0, step: int = 1) -> "FaultPlan":
        return self.add(Fault("crash", sweep=sweep, step=step, leaf=leaf))

    def outage(self, level: int, sweep: int, step: int,
               until_step: int | None = None) -> "FaultPlan":
        return self.add(Fault("outage", sweep=sweep, step=step,
                              level=level, until_step=until_step))
