"""Small bit-manipulation helpers used throughout the tree machinery.

The paper indexes tree levels from the leaves up starting at 1; the
*level* of a communication between two leaves is the number of levels a
message must climb before descending to its destination (Section 3 of the
paper).  For leaves ``i`` and ``j`` on a complete binary tree this is
``msb(i ^ j) + 1`` where ``msb`` is the zero-based index of the most
significant set bit.
"""

from __future__ import annotations

__all__ = [
    "is_power_of_two",
    "ilog2",
    "msb",
    "comm_level",
    "leaf_of_slot",
]


def is_power_of_two(x: int) -> bool:
    """Return True iff ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Exact integer log2 of a positive power of two.

    Raises ``ValueError`` for any other input so that silent mis-sizing of
    a tree cannot occur.
    """
    if not is_power_of_two(x):
        raise ValueError(f"expected a positive power of two, got {x!r}")
    return x.bit_length() - 1


def msb(x: int) -> int:
    """Zero-based index of the most significant set bit of ``x`` > 0."""
    if x <= 0:
        raise ValueError(f"msb undefined for {x!r}")
    return x.bit_length() - 1


def comm_level(leaf_a: int, leaf_b: int) -> int:
    """Tree level crossed by a message between two leaves.

    Level 0 means the message stays on one leaf (no communication);
    level 1 is nearest-neighbour (sibling) communication, as defined in
    Section 3 of the paper.
    """
    if leaf_a == leaf_b:
        return 0
    return msb(leaf_a ^ leaf_b) + 1


def leaf_of_slot(slot: int, cols_per_leaf: int = 2) -> int:
    """Leaf processor owning a column slot (slots are dealt contiguously)."""
    if slot < 0:
        raise ValueError(f"negative slot {slot!r}")
    return slot // cols_per_leaf
