"""Phase attribution for bench scenarios (``bench --profile``).

Answers "where did the time go?" for one scenario run by splitting wall
time into three phases:

``compute``
    the rotation/block kernels — per-step solves, the fast-path gram
    step, the scalar rotation appliers;
``route``
    communication planning and execution — schedule lowering
    (``compile_schedule``), the vectorised and per-message routers;
``merge``
    result assembly — padding/stripping and ``SVDResult`` construction.

The probe monkeypatches the *consumer-visible* bindings of those
functions (both the defining module and every module that imported the
name at import time — a module-level ``from x import f`` binds a copy
the definition-site patch cannot see) with thin timing wrappers, runs
the workload once, and restores everything.  A thread-local reentrancy
guard ensures nested instrumented calls (a driver-level wrapper calling
a kernel-level one) are charged once, to the outermost phase entered.

The numbers are advisory diagnostics, not gate material: wrapper
overhead is real for very hot tiny functions, worker *processes* never
see the patches (their in-process time lands in ``other``), and
concurrent accumulation from worker threads is unsynchronised (GIL
increments; good to the precision a breakdown needs).  That is why the
breakdown rides in ``meta`` from one extra instrumented run and the
gated ``wall_time_s`` median stays uninstrumented.
"""

from __future__ import annotations

import importlib
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

__all__ = ["PHASES", "phase_breakdown", "phase_probe"]

PHASES = ("compute", "route", "merge")

#: (module, attribute) bindings charged to each phase; a binding that a
#: build does not expose is skipped, so the table can list every known
#: consumer site without version coupling
_SITES: dict[str, tuple[tuple[str, str], ...]] = {
    "compute": (
        ("repro.blockjacobi.kernel", "solve_block_step"),
        ("repro.blockjacobi.kernel", "solve_block_step_batch"),
        ("repro.blockjacobi.kernel", "fastpath_gram_step"),
        ("repro.blockjacobi.driver", "solve_block_step"),
        ("repro.blockjacobi.driver", "solve_block_step_batch"),
        ("repro.svd.rotations", "apply_step_rotations"),
        ("repro.svd.rotations", "apply_step_rotations_batched"),
        ("repro.svd.hestenes", "apply_step_rotations"),
        ("repro.svd.hestenes", "apply_step_rotations_batched"),
        ("repro.machine.simulator", "apply_step_rotations"),
        ("repro.machine.simulator", "apply_step_rotations_batched"),
    ),
    "route": (
        ("repro.orderings.plan", "compile_schedule"),
        ("repro.blockjacobi.driver", "compile_schedule"),
        ("repro.machine.simulator", "compile_schedule"),
        ("repro.machine.routing", "route_phase"),
        ("repro.machine.routing", "route_moves"),
        ("repro.machine.simulator", "route_moves"),
    ),
    "merge": (
        ("repro.parallel.distribution", "pad_columns"),
        ("repro.parallel.distribution", "strip_padding"),
        ("repro.core.api", "pad_columns"),
        ("repro.core.api", "strip_padding"),
        ("repro.core.result", "SVDResult"),
        ("repro.blockjacobi.driver", "SVDResult"),
        ("repro.svd.hestenes", "SVDResult"),
        ("repro.parallel.driver", "SVDResult"),
    ),
}


@contextmanager
def phase_probe() -> Iterator[dict[str, float]]:
    """Instrument every known site; yields the accruing totals dict.

    The yielded mapping has one seconds-entry per phase; it keeps
    filling until the context exits, at which point all original
    bindings are restored (also on error).  Same-function bindings in
    several modules get independent wrappers around the same original,
    so each call is charged exactly once wherever it was resolved from.
    """
    totals: dict[str, float] = {phase: 0.0 for phase in PHASES}
    tls = threading.local()

    def wrap(fn, phase: str):
        def wrapper(*args, **kwargs):
            if getattr(tls, "depth", 0):
                return fn(*args, **kwargs)
            tls.depth = 1
            t0 = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                tls.depth = 0
                totals[phase] += perf_counter() - t0
        wrapper.__wrapped__ = fn
        return wrapper

    saved: list[tuple[object, str, object]] = []
    try:
        for phase, sites in _SITES.items():
            for module_name, attr in sites:
                try:
                    module = importlib.import_module(module_name)
                except ImportError:  # pragma: no cover - optional layer
                    continue
                fn = getattr(module, attr, None)
                if fn is None or not callable(fn):
                    continue
                saved.append((module, attr, fn))
                setattr(module, attr, wrap(fn, phase))
        yield totals
    finally:
        for module, attr, fn in reversed(saved):
            setattr(module, attr, fn)


def phase_breakdown(work) -> dict[str, float]:
    """Run ``work()`` once instrumented; returns the breakdown record.

    ``{"compute_s", "route_s", "merge_s", "other_s", "total_s"}`` —
    ``other_s`` is the un-attributed remainder (driver control flow,
    convergence checks, worker-process internals), clamped at zero.
    """
    t0 = perf_counter()
    with phase_probe() as totals:
        work()
    total = perf_counter() - t0
    out = {f"{phase}_s": totals[phase] for phase in PHASES}
    out["other_s"] = max(0.0, total - sum(totals[p] for p in PHASES))
    out["total_s"] = total
    return out
