"""Downstream applications exercising the public SVD API."""

from .lowrank import (LowRankApproximation, PCAResult, pca, pca_batch,
                      truncated_svd)
from .lstsq import LstsqResult, lstsq, pinv

__all__ = [
    "LowRankApproximation",
    "LstsqResult",
    "PCAResult",
    "lstsq",
    "pca",
    "pca_batch",
    "pinv",
    "truncated_svd",
]
