"""Step executors: how one schedule step's independent work is run.

The paper's orderings make every step *embarrassingly parallel*: the
block pairs met in one step occupy disjoint column sets, so their local
subproblems are independent.  The simulator charges that parallelism to
the cost model; this module adds the real thing — a
:class:`StepExecutor` abstraction whose backends run a step's
independent work items across OS threads or processes sharing the
column buffer.

Backends
--------
``serial``
    Everything in the calling thread; the reference behaviour.
``threads``
    A reused :class:`~concurrent.futures.ThreadPoolExecutor`.  Numpy's
    GEMMs drop the GIL, so the BLAS-3 phases of the gram kernel (and the
    per-pair reference/batched solves) genuinely overlap on multicore
    hosts.
``processes``
    A persistent :class:`~concurrent.futures.ProcessPoolExecutor` whose
    workers operate on ``multiprocessing.shared_memory`` views of the
    column/V arrays.  The GIL-bound python between the GEMMs (gather
    index math, small-loop solvers) parallelises for real.  Chunks are
    dispatched **by bounds, not by pickling matrices**: a task ships as
    a module-level function reference, the ``(segment name, shape,
    dtype)`` specs of the shared arrays, the ``(lo, hi)`` bounds, and a
    small payload — workers attach the segments by name (cached per
    process) and write their disjoint slices in place.

Shared-memory protocol (``processes``)
--------------------------------------
The run's long-lived arrays enter the arena through
:meth:`StepExecutor.adopt` (drivers adopt ``X``/``V`` once per run; the
returned array is a shared-memory view the driver keeps using) and
per-step scratch stacks through :meth:`StepExecutor.scratch` (reused,
grown geometrically).  :meth:`StepExecutor.reclaim` copies a view back
to private memory before :meth:`StepExecutor.close` frees the arena.
On serial/threads all three are identity/``np.empty`` no-ops, so kernel
code is written once against the same seam.  If a shared dispatch
receives an array that is *not* arena-backed (e.g. a driver that never
adopted), the executor round-trips it through a temporary segment —
correct, but a documented slow path.

Pool lifecycle: process pools are module-global, created lazily, keyed
by ``(start method, workers)`` and reused across runs (worker startup
would otherwise dominate); ``close()`` frees only the executor's arena.
An ``atexit`` hook (and :func:`shutdown_process_pools`) tears the pools
down.  The start method is ``$REPRO_MP_START`` when set, else
``forkserver`` where available (fork-from-a-single-threaded-server: no
fork-with-threads hazard, cheap per-worker startup), else ``spawn``.

A worker process dying mid-dispatch (OOM kill, segfault) surfaces as
:class:`WorkerCrashError`; the broken pool is discarded so the *next*
dispatch transparently gets a fresh one — under the fault-recovery
driver the error rolls the sweep back to its checkpoint like any other
mid-step crash.

Determinism contract
--------------------
Results are **bit-identical to serial for any worker count, on every
backend**.  Three rules make that hold by construction:

1. *Disjoint writes.*  A work item writes only its own columns (the
   schedule's step pairs are disjoint); chunks of a batched phase write
   only their own slice of a preallocated output.  No write is ever
   shared, so memory order cannot matter.  For processes the analyzer
   additionally proves the chunk write-sets map to disjoint
   shared-memory ranges (rule ``EXEC005``).
2. *Identical per-item arithmetic.*  Chunking only splits the batch
   dimension of batched GEMMs (each 2D GEMM in the batch is unchanged)
   or the loop over independent pairs; no floating-point operation is
   reassociated.  A worker process runs the same numpy/BLAS build on
   the same slice, so per-chunk arithmetic is bit-identical across
   process boundaries too.  Coupled reductions — notably the inner Gram
   Jacobi, whose convergence floor couples matrices across the batch —
   are *never* chunked (see
   :func:`repro.blockjacobi.kernel.solve_block_step`).
3. *Deterministic reduction.*  Convergence statistics are merged in
   chunk order, and the first exception (by chunk index, not by wall
   clock) is the one re-raised, mirroring the serial loop's semantics.

Worker and backend defaults resolve from the environment
(``REPRO_EXECUTOR``, ``REPRO_WORKERS``) so a whole test run can be
switched onto another backend without code changes.
"""

from __future__ import annotations

import atexit
import operator
import os
import secrets
import sys
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, TypeVar

import numpy as np

from ..util.validation import require

__all__ = [
    "EXECUTORS",
    "ProcessStepExecutor",
    "SerialExecutor",
    "StepExecutor",
    "ThreadStepExecutor",
    "WorkerCrashError",
    "default_executor_name",
    "default_workers",
    "executor_availability",
    "resolve_executor",
    "shutdown_process_pools",
]

#: registered executor backends, in robustness order
EXECUTORS = ("serial", "threads", "processes")

T = TypeVar("T")


class WorkerCrashError(RuntimeError):
    """A worker process died mid-dispatch (killed, segfaulted, OOMed).

    The shared buffers may hold a partially written step, so the only
    safe reactions are retrying the whole step from clean data or —
    under the fault-recovery driver — rolling back to the last sweep
    checkpoint.  The broken pool has already been discarded; the next
    dispatch gets a fresh one.
    """


# ----------------------------------------------------- availability

def _probe_serial() -> None:
    return None


def _probe_threads() -> None:
    return None


def _probe_processes() -> None:
    # shared_memory needs a POSIX shm / Windows mapping implementation;
    # ProcessPoolExecutor needs working OS semaphores — both are missing
    # on some minimal platforms (e.g. WASM, some AWS Lambda images)
    from multiprocessing import shared_memory, synchronize  # noqa: F401


#: per-backend probes; tests monkeypatch entries to simulate a host
#: where an optional backend exists but cannot be imported
_PROBES: dict[str, Callable[[], None]] = {
    "serial": _probe_serial,
    "threads": _probe_threads,
    "processes": _probe_processes,
}


def executor_availability() -> dict[str, str | None]:
    """Per-backend availability: ``None`` when usable, else the captured
    probe-failure reason (import error, missing OS facility, ...)."""
    status: dict[str, str | None] = {}
    for name in EXECUTORS:
        try:
            _PROBES[name]()
            status[name] = None
        except Exception as exc:  # noqa: BLE001 - reason is the product
            status[name] = f"{type(exc).__name__}: {exc}"
    return status


def _executor_catalogue() -> str:
    status = executor_availability()
    ok = [n for n in EXECUTORS if status[n] is None]
    msg = f"available: {', '.join(ok)}"
    broken = [(n, status[n]) for n in EXECUTORS if status[n] is not None]
    if broken:
        msg += "; unavailable: " + "; ".join(
            f"{n} ({reason})" for n, reason in broken)
    return msg


def unknown_executor_message(name: object) -> str:
    """The error text for an unrecognised backend name: the registered
    names plus, for every optional backend that failed its probe, why."""
    return f"unknown executor {name!r}; {_executor_catalogue()}"


def default_executor_name() -> str:
    """Backend used when none is requested: ``$REPRO_EXECUTOR`` or serial."""
    name = os.environ.get("REPRO_EXECUTOR", "serial").strip() or "serial"
    require(name in EXECUTORS,
            f"REPRO_EXECUTOR={name!r} is not one of {', '.join(EXECUTORS)}")
    return name


def default_workers() -> int:
    """Worker count when none is requested: ``$REPRO_WORKERS`` or the
    CPU count (at least 1)."""
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        workers = int(env)
        require(workers >= 1, f"REPRO_WORKERS must be >= 1, got {env!r}")
        return workers
    return max(1, os.cpu_count() or 1)


class StepExecutor:
    """Runs the independent work of one schedule step.

    ``run_chunks(n_items, fn)`` partitions ``range(n_items)`` into at
    most :attr:`workers` contiguous chunks and calls ``fn(lo, hi)`` for
    each, returning the per-chunk results **in chunk order**.  The
    partition depends only on ``(n_items, workers)``, never on timing.
    Exceptions are collected and the lowest-chunk one re-raised after
    all chunks settle, so a failure is deterministic too.

    ``run_shared(n_items, task, arrays, **payload)`` is the
    location-transparent variant the kernels dispatch through: ``task``
    must be a module-level function called as
    ``task(arrays, lo, hi, **payload)``.  In-process backends call it
    directly on the caller's arrays; the process backend ships segment
    specs instead of array bytes (see the module docstring).  The
    payload must be small and picklable — indices, scalars, a compute
    backend — never a matrix.

    :meth:`adopt` / :meth:`scratch` / :meth:`reclaim` manage the shared
    arena; on in-process backends they are identity / ``np.empty`` /
    identity, so kernel and driver code is written once.
    """

    name: str = "abstract"
    workers: int = 1
    #: optional :class:`~repro.verify.sanitize.RuntimeSanitizer`; when
    #: armed, every dispatch reports its actual chunk bounds so the
    #: sanitizer can cross-check them against the static chunking
    sanitizer = None

    def run_chunks(self, n_items: int,
                   fn: Callable[[int, int], T]) -> list[T]:
        raise NotImplementedError

    def run_shared(self, n_items: int, task: Callable[..., T],
                   arrays: dict[str, np.ndarray],
                   **payload: Any) -> list[T]:
        """Run ``task(arrays, lo, hi, **payload)`` over the chunk bounds."""
        return self.run_chunks(
            n_items, lambda lo, hi: task(arrays, lo, hi, **payload))

    def adopt(self, key: str, array: np.ndarray) -> np.ndarray:
        """Move a run-lifetime array into the executor's shared arena
        (identity for in-process backends)."""
        return array

    def scratch(self, key: str, shape: tuple[int, ...],
                dtype: "np.dtype | type" = np.float64) -> np.ndarray:
        """A step-lifetime work array reachable by every worker
        (plain ``np.empty`` for in-process backends).  Contents are
        undefined until written; the buffer may be reused across calls
        with the same ``key``."""
        return np.empty(shape, dtype=dtype)

    def reclaim(self, array: np.ndarray) -> np.ndarray:
        """Copy an adopted array back to private memory (identity for
        in-process backends).  Call before :meth:`close`: the arena's
        buffers die with it."""
        return array

    def _note_dispatch(self, n_items: int,
                       bounds: list[tuple[int, int]]) -> None:
        """Report the bounds about to be dispatched to the sanitizer."""
        san = self.sanitizer
        if san is not None:
            san.note_dispatch(n_items, bounds)

    def close(self) -> None:
        """Release pooled resources (idempotent)."""

    def __enter__(self) -> "StepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def chunk_bounds(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
        """Contiguous ``(lo, hi)`` bounds covering ``range(n_items)``.

        At most ``n_chunks`` chunks, never an empty one; sizes differ by
        at most one, larger chunks first — a pure function of its
        arguments.  Degenerate inputs fail loudly: ``n_items`` must be a
        non-negative integer and ``n_chunks`` a positive one (a request
        for zero or negative chunks is a caller bug, not a smaller
        partition).  ``n_chunks > n_items`` clamps to one item per chunk,
        and zero items yield zero chunks — never silent empty chunks.
        """
        n_items = operator.index(n_items)
        n_chunks = operator.index(n_chunks)
        require(n_items >= 0,
                f"n_items must be >= 0, got {n_items!r}")
        require(n_chunks >= 1,
                f"n_chunks must be >= 1, got {n_chunks!r}")
        if n_items == 0:
            return []
        n_chunks = min(n_chunks, n_items)
        q, r = divmod(n_items, n_chunks)
        bounds = []
        lo = 0
        for i in range(n_chunks):
            hi = lo + q + (1 if i < r else 0)
            bounds.append((lo, hi))
            lo = hi
        return bounds


class SerialExecutor(StepExecutor):
    """Everything in the calling thread, one chunk — the reference path."""

    name = "serial"
    workers = 1

    def run_chunks(self, n_items: int,
                   fn: Callable[[int, int], T]) -> list[T]:
        if n_items <= 0:
            return []
        self._note_dispatch(n_items, [(0, n_items)])
        return [fn(0, n_items)]


class ThreadStepExecutor(StepExecutor):
    """Chunks dispatched to a reused thread pool sharing the buffers.

    The pool is created lazily on first use and reused across steps and
    sweeps of a run (thread spin-up would otherwise dominate the small
    steps).  Call :meth:`close` (or use as a context manager) when the
    run finishes.
    """

    name = "threads"

    def __init__(self, workers: int | None = None):
        workers = default_workers() if workers is None else int(workers)
        require(workers >= 1, f"workers must be >= 1, got {workers!r}")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None

    def run_chunks(self, n_items: int,
                   fn: Callable[[int, int], T]) -> list[T]:
        if n_items <= 0:
            return []
        bounds = self.chunk_bounds(n_items, self.workers)
        self._note_dispatch(n_items, bounds)
        if len(bounds) == 1:
            return [fn(0, n_items)]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-step")
        futures = [self._pool.submit(fn, lo, hi) for lo, hi in bounds]
        results: list[T] = []
        error: BaseException | None = None
        for fut in futures:  # chunk order, not completion order
            try:
                results.append(fut.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ------------------------------------------------ process pool plumbing

def _start_method() -> str:
    import multiprocessing as mp

    env = os.environ.get("REPRO_MP_START", "").strip()
    methods = mp.get_all_start_methods()
    if env:
        require(env in methods,
                f"REPRO_MP_START={env!r} is not one of {', '.join(methods)}")
        return env
    if "forkserver" in methods and sys.platform != "win32":
        return "forkserver"
    return "spawn"


#: persistent pools keyed by (start method, workers), shared by every
#: ProcessStepExecutor so worker startup amortises across runs
_POOLS: dict[tuple[str, int], ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _worker_init() -> None:
    """Worker-process initializer: attached segments must not be tracked.

    The parent owns every segment it creates (and unlinks it in
    ``close``); on Python < 3.13 merely *attaching* a ``SharedMemory``
    also registers it with the resource tracker, so a worker would
    either double-unlink at exit (spawn: its own tracker) or cancel the
    parent's registration (fork/forkserver: the inherited tracker).
    Disabling shared-memory registration in workers sidesteps both.
    """
    from multiprocessing import resource_tracker

    orig_register = resource_tracker.register

    def register(name: str, rtype: str) -> None:
        if rtype == "shared_memory":
            return
        orig_register(name, rtype)

    resource_tracker.register = register  # type: ignore[assignment]


def _get_pool(workers: int) -> ProcessPoolExecutor:
    import multiprocessing as mp

    method = _start_method()
    key = (method, workers)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=mp.get_context(method),
                initializer=_worker_init)
            _POOLS[key] = pool
        return pool


def _discard_pool(workers: int) -> None:
    key = (_start_method(), workers)
    with _POOLS_LOCK:
        pool = _POOLS.pop(key, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_process_pools() -> None:
    """Tear down every cached worker pool (also runs at interpreter
    exit).  Safe to call at any time; the next dispatch re-creates."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_process_pools)


#: worker-side segment cache: attach once per (process, segment)
_ATTACHED: dict[str, Any] = {}


def _attach_segment(seg_name: str):
    seg = _ATTACHED.get(seg_name)
    if seg is None:
        from multiprocessing import shared_memory

        # registration with the resource tracker is disabled for workers
        # (see _worker_init); the parent owns and unlinks the segment
        seg = shared_memory.SharedMemory(name=seg_name)
        _ATTACHED[seg_name] = seg
    return seg


def _open_view(spec: tuple[str, tuple[int, ...], str, int]) -> np.ndarray:
    seg_name, shape, dtype, offset = spec
    nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
    buf = _attach_segment(seg_name).buf[offset:offset + nbytes]
    return np.ndarray(shape, dtype=dtype, buffer=buf)


def _run_shared_task(task, specs, lo, hi, payload):
    """Worker entry point of :meth:`ProcessStepExecutor.run_shared`."""
    arrays = {key: _open_view(spec) for key, spec in specs.items()}
    return task(arrays, lo, hi, **payload)


class ProcessStepExecutor(StepExecutor):
    """Chunks dispatched to worker processes over shared-memory views.

    See the module docstring for the shared-memory protocol and the
    pool lifecycle.  ``run_chunks`` works too, but only for
    *module-level* ``fn`` (closures do not pickle) whose writes target
    arena-backed arrays — ``run_shared`` is the intended seam.
    """

    name = "processes"

    def __init__(self, workers: int | None = None):
        workers = default_workers() if workers is None else int(workers)
        require(workers >= 1, f"workers must be >= 1, got {workers!r}")
        self.workers = workers
        # arena: key -> (segment, capacity bytes); views: key -> array
        self._arena: dict[str, tuple[Any, int]] = {}
        self._views: dict[str, np.ndarray] = {}

    # ------------------------------------------------------- the arena

    def _allocate(self, key: str, nbytes: int):
        from multiprocessing import shared_memory

        held = self._arena.get(key)
        if held is not None and held[1] >= nbytes:
            return held[0]
        if held is not None:
            held[0].close()
            held[0].unlink()
            self._views.pop(key, None)
        # grow geometrically so a sequence of slightly larger scratch
        # requests does not reallocate every step
        cap = max(nbytes, 2 * held[1] if held is not None else nbytes, 1)
        seg = shared_memory.SharedMemory(
            create=True, size=cap,
            name=f"repro-{os.getpid()}-{secrets.token_hex(4)}")
        self._arena[key] = (seg, cap)
        return seg

    def _view(self, key: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        seg = self._allocate(key, nbytes)
        view = self._views.get(key)
        if view is None or view.shape != tuple(shape) or view.dtype != dtype:
            view = np.ndarray(shape, dtype=dtype, buffer=seg.buf[:nbytes])
            self._views[key] = view
        return view

    def adopt(self, key: str, array: np.ndarray) -> np.ndarray:
        array = np.ascontiguousarray(array)
        view = self._view(key, array.shape, array.dtype)
        if view is not array:
            view[...] = array
        return view

    def scratch(self, key: str, shape: tuple[int, ...],
                dtype: "np.dtype | type" = np.float64) -> np.ndarray:
        return self._view(key, tuple(shape), dtype)

    def reclaim(self, array: np.ndarray) -> np.ndarray:
        if self._locate(array) is not None:
            return np.array(array, copy=True)
        return array

    def _locate(self, array: np.ndarray) -> tuple[str, int] | None:
        """``(arena key, byte offset)`` of the segment backing a
        C-contiguous ``array``, or ``None`` when it is not arena memory."""
        if (not isinstance(array, np.ndarray) or array.size == 0
                or not array.flags.c_contiguous):
            return None
        addr = array.__array_interface__["data"][0]
        end = addr + array.nbytes
        for key, (seg, cap) in self._arena.items():
            base = np.frombuffer(seg.buf, dtype=np.uint8)
            start = base.__array_interface__["data"][0]
            if start <= addr and end <= start + cap:
                return key, addr - start
        return None

    # ---------------------------------------------------- dispatching

    def _collect(self, futures: list) -> list:
        results: list = []
        error: BaseException | None = None
        for fut in futures:  # chunk order, not completion order
            try:
                results.append(fut.result())
            except BrokenProcessPool as exc:
                _discard_pool(self.workers)
                raise WorkerCrashError(
                    "a worker process died mid-step (shared buffers may "
                    "hold a partial write); the pool has been replaced — "
                    "retry the step or roll back to the last checkpoint"
                ) from exc
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return results

    def run_shared(self, n_items: int, task: Callable[..., T],
                   arrays: dict[str, np.ndarray],
                   **payload: Any) -> list[T]:
        if n_items <= 0:
            return []
        bounds = self.chunk_bounds(n_items, self.workers)
        self._note_dispatch(n_items, bounds)
        if len(bounds) == 1:
            # one chunk is the whole stage: run in the parent (same
            # arithmetic, and it works on arrays that were never adopted)
            return [task(arrays, 0, n_items, **payload)]
        # slow-path safety net: round-trip non-arena arrays through
        # temporary segments (drivers normally adopt up front)
        borrowed: list[tuple[str, np.ndarray]] = []
        specs = {}
        shared: dict[str, np.ndarray] = {}
        for key, arr in arrays.items():
            where = self._locate(arr)
            if where is None:
                arr2 = self.adopt(f"__borrow_{key}", arr)
                borrowed.append((key, arr))
                where = self._locate(arr2)
                assert where is not None
                arr = arr2
            shared[key] = arr
            seg, _ = self._arena[where[0]]
            specs[key] = (seg.name, arr.shape, arr.dtype.str, where[1])
        pool = _get_pool(self.workers)
        futures = [pool.submit(_run_shared_task, task, specs, lo, hi, payload)
                   for lo, hi in bounds]
        try:
            return self._collect(futures)
        finally:
            for key, original in borrowed:
                original[...] = shared[key]
                self._release(f"__borrow_{key}")

    def run_chunks(self, n_items: int,
                   fn: Callable[[int, int], T]) -> list[T]:
        if n_items <= 0:
            return []
        bounds = self.chunk_bounds(n_items, self.workers)
        self._note_dispatch(n_items, bounds)
        if len(bounds) == 1:
            return [fn(0, n_items)]
        pool = _get_pool(self.workers)
        return self._collect([pool.submit(fn, lo, hi) for lo, hi in bounds])

    # -------------------------------------------------------- teardown

    def _release(self, key: str) -> None:
        held = self._arena.pop(key, None)
        self._views.pop(key, None)
        if held is not None:
            held[0].close()
            held[0].unlink()

    def close(self) -> None:
        """Free the shared arena (worker pools stay cached for reuse).

        Any views still held by the caller become invalid — drivers
        :meth:`reclaim` their results first.
        """
        for key in list(self._arena):
            self._release(key)


def resolve_executor(
    executor: "str | StepExecutor | None" = None,
    workers: int | None = None,
) -> StepExecutor:
    """Build (or pass through) the executor for a run.

    ``executor`` may be a backend name from :data:`EXECUTORS`, an
    existing :class:`StepExecutor` (returned as-is; ``workers`` must
    then be ``None``), or ``None`` for the environment default.  The
    caller owns the result and should :meth:`~StepExecutor.close` it.

    Unknown names report the full catalogue — including optional
    backends that exist but failed their availability probe, and why —
    and naming a registered-but-unavailable backend reports the probe
    failure instead of a generic message.
    """
    if isinstance(executor, StepExecutor):
        require(workers is None,
                "pass workers when naming a backend, not with an instance")
        return executor
    name = default_executor_name() if executor is None else executor
    require(name in EXECUTORS, unknown_executor_message(name))
    if workers is not None:
        require(workers >= 1, f"workers must be >= 1, got {workers!r}")
    reason = executor_availability()[name]
    require(reason is None,
            f"executor {name!r} is registered but unavailable on this "
            f"host: {reason}")
    if name == "serial":
        return SerialExecutor()
    if name == "threads":
        return ThreadStepExecutor(workers)
    return ProcessStepExecutor(workers)
