"""Unit tests for routing, contention accounting and the cost model."""

import pytest

from repro.machine.costmodel import CostModel
from repro.machine.routing import route_phase
from repro.machine.topology import BinaryTree, CM5Tree, PerfectFatTree


class TestRoutePhase:
    def test_empty_phase(self):
        ph = route_phase(PerfectFatTree(8), [])
        assert ph.n_messages == 0
        assert ph.contention == 0.0
        assert ph.is_contention_free

    def test_self_messages_ignored(self):
        ph = route_phase(PerfectFatTree(8), [(3, 3), (5, 5)])
        assert ph.n_messages == 0

    def test_single_message_loads_path(self):
        t = PerfectFatTree(8)
        ph = route_phase(t, [(0, 7)])
        assert ph.n_messages == 1
        assert ph.max_level == 3
        assert len(ph.channel_loads) == 6
        assert all(v == 1 for v in ph.channel_loads.values())

    def test_level_counts(self):
        ph = route_phase(PerfectFatTree(8), [(0, 1), (2, 3), (0, 2)])
        assert ph.level_message_counts == {1: 2, 2: 1}

    def test_contention_on_binary_tree(self):
        # 4 messages crossing the root of a binary tree: load 4, cap 1
        t = BinaryTree(8)
        msgs = [(i, i + 4) for i in range(4)]
        ph = route_phase(t, msgs)
        assert ph.contention == 4.0
        assert not ph.is_contention_free
        assert ph.hot_channel.level == 3

    def test_same_phase_free_on_perfect(self):
        t = PerfectFatTree(8)
        msgs = [(i, i + 4) for i in range(4)]
        ph = route_phase(t, msgs)
        assert ph.contention == 1.0
        assert ph.is_contention_free

    def test_cm5_intermediate(self):
        t = CM5Tree(16)
        msgs = [(i, i + 8) for i in range(8)]
        ph = route_phase(t, msgs)
        # 8 messages through a level-4 channel of capacity 4
        assert ph.contention == 2.0


class TestCostModel:
    def test_compute_time_scales_with_rows(self):
        cm = CostModel(flop_time=1.0)
        assert cm.compute_time(1, 10) == 100.0
        assert cm.compute_time(2, 10) == 200.0

    def test_comm_time_zero_without_messages(self):
        cm = CostModel()
        ph = route_phase(PerfectFatTree(8), [])
        assert cm.comm_time(ph, 100) == 0.0

    def test_comm_time_contention_rounds(self):
        cm = CostModel(alpha=0.0, beta=1.0, hop_time=0.0)
        t = BinaryTree(8)
        free = route_phase(t, [(0, 1)])
        congested = route_phase(t, [(i, i + 4) for i in range(4)])
        assert cm.comm_time(congested, 10) == pytest.approx(4 * cm.comm_time(free, 10))

    def test_alpha_charged_once_per_phase(self):
        cm = CostModel(alpha=7.0, beta=0.0, hop_time=0.0)
        ph = route_phase(PerfectFatTree(8), [(0, 1), (2, 3)])
        assert cm.comm_time(ph, 1000) == 7.0

    def test_hop_latency_scales_with_level(self):
        cm = CostModel(alpha=0.0, beta=0.0, hop_time=1.0)
        near = route_phase(PerfectFatTree(8), [(0, 1)])
        far = route_phase(PerfectFatTree(8), [(0, 7)])
        assert cm.comm_time(far, 1) == 3 * cm.comm_time(near, 1)

    def test_rotation_flops(self):
        assert CostModel().rotation_flops(100) == 1000
