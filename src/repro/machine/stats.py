"""Aggregated execution statistics of a simulated sweep."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StepRecord", "SweepStats"]


@dataclass
class StepRecord:
    """Per-step timing and traffic."""

    step: int
    rotations: int
    messages: int
    max_level: int
    contention: float
    compute_time: float
    comm_time: float


@dataclass
class SweepStats:
    """Whole-sweep aggregates produced by the simulator."""

    steps: list[StepRecord] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(s.compute_time + s.comm_time for s in self.steps)

    @property
    def compute_time(self) -> float:
        return sum(s.compute_time for s in self.steps)

    @property
    def comm_time(self) -> float:
        return sum(s.comm_time for s in self.steps)

    @property
    def total_messages(self) -> int:
        return sum(s.messages for s in self.steps)

    @property
    def max_contention(self) -> float:
        return max((s.contention for s in self.steps), default=0.0)

    @property
    def contention_free(self) -> bool:
        """True when no channel was ever oversubscribed (Section 5 claim)."""
        return self.max_contention <= 1.0

    def level_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for s in self.steps:
            if s.messages:
                hist[s.max_level] = hist.get(s.max_level, 0) + s.messages
        return dict(sorted(hist.items()))
