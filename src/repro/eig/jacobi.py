"""Two-sided Jacobi symmetric eigensolver driven by the parallel orderings.

The paper's lineage (Brent & Luk [2]: "The solution of singular-value
and *symmetric eigenvalue* problems on multiprocessor arrays") applies
the same parallel orderings to the classical two-sided Jacobi method:
each step annihilates the off-diagonal entries of the disjoint index
pairs the ordering prescribes, ``A <- J^T A J``, and a sweep visits
every pair exactly once.  Any ordering from :mod:`repro.orderings`
drives the sweep; column moves translate into symmetric row+column
permutations, so the tree-locality properties carry over unchanged.

The kernels are vectorised over the disjoint pairs of a step: one fused
row update and one fused column update per step instead of a Python
loop over pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..orderings.base import Ordering
from ..orderings.registry import make_ordering
from ..util.validation import require

__all__ = ["EigOptions", "EigResult", "jacobi_eigh", "symmetric_off_norm"]


@dataclass(frozen=True)
class EigOptions:
    """Tuning knobs of the two-sided Jacobi iteration."""

    tol: float = 1e-12
    max_sweeps: int = 60
    sort: str | None = "desc"


@dataclass
class EigResult:
    """Eigendecomposition ``a = v @ diag(w) @ v.T``.

    ``w`` is sorted (nonincreasing by default); ``v`` is orthogonal with
    columns in the matching order.
    """

    w: np.ndarray
    v: np.ndarray
    converged: bool
    sweeps: int
    rotations: int
    off_history: list[float] = field(default_factory=list)

    def reconstruct(self) -> np.ndarray:
        return (self.v * self.w) @ self.v.T


def symmetric_off_norm(a: np.ndarray) -> float:
    """Frobenius norm of the strict off-diagonal part."""
    off = a - np.diag(np.diag(a))
    return float(np.linalg.norm(off))


def _eig_rotation_params(app: np.ndarray, aqq: np.ndarray, apq: np.ndarray):
    """Classical symmetric Jacobi angles annihilating ``a_pq`` (vectorised)."""
    c = np.ones_like(app)
    s = np.zeros_like(app)
    nz = apq != 0.0
    if np.any(nz):
        theta = (aqq[nz] - app[nz]) / (2.0 * apq[nz])
        t = np.sign(theta) / (np.abs(theta) + np.sqrt(1.0 + theta * theta))
        t = np.where(theta == 0.0, 1.0, t)
        cn = 1.0 / np.sqrt(1.0 + t * t)
        c[nz] = cn
        s[nz] = t * cn
    return c, s


def _apply_two_sided(A: np.ndarray, V: np.ndarray | None,
                     p: np.ndarray, q: np.ndarray,
                     c: np.ndarray, s: np.ndarray) -> None:
    """``A <- J^T A J`` for the disjoint rotations J(p_k, q_k, theta_k)."""
    # row update: rows p and q mix
    Ap = A[p, :]
    Aq = A[q, :]
    A[p, :] = c[:, None] * Ap - s[:, None] * Aq
    A[q, :] = s[:, None] * Ap + c[:, None] * Aq
    # column update
    Ap = A[:, p]
    Aq = A[:, q]
    A[:, p] = c * Ap - s * Aq
    A[:, q] = s * Ap + c * Aq
    if V is not None:
        Vp = V[:, p]
        Vq = V[:, q]
        V[:, p] = c * Vp - s * Vq
        V[:, q] = s * Vp + c * Vq


def jacobi_eigh(
    a: np.ndarray,
    ordering: str | Ordering = "fat_tree",
    options: EigOptions | None = None,
    compute_v: bool = True,
    **ordering_kwargs: object,
) -> EigResult:
    """Eigendecomposition of a symmetric matrix under a parallel ordering.

    The iteration stops after the first complete sweep in which every
    prescribed pair already satisfies the relative threshold
    ``|a_pq| <= tol * sqrt(|a_pp a_qq|)`` (or the absolute scale of the
    matrix when a diagonal entry vanishes).
    """
    a = np.asarray(a, dtype=np.float64)
    require(a.ndim == 2 and a.shape[0] == a.shape[1], "square matrix expected")
    require(np.allclose(a, a.T, atol=1e-12 * max(1.0, float(np.abs(a).max(initial=0.0)))),
            "matrix must be symmetric")
    n = a.shape[0]
    opts = options or EigOptions()
    if isinstance(ordering, Ordering):
        require(ordering.n == n, "ordering size mismatch")
        ord_obj = ordering
    else:
        ord_obj = make_ordering(ordering, n, **ordering_kwargs)

    A = a.copy()
    V = np.eye(n) if compute_v else None
    scale = max(1.0, float(np.abs(a).max(initial=0.0)))
    history: list[float] = []
    rotations = 0
    converged = False
    sweeps = 0
    # logical labels follow the moves; pairs address matrix indices through
    # the slot -> index map so the schedule machinery is reused verbatim
    slot_index = np.arange(n, dtype=np.intp)
    for sweep in range(opts.max_sweeps):
        sched = ord_obj.sweep(sweep)
        worst = 0.0
        for step in sched.steps:
            if step.pairs:
                sa = np.fromiter((pr[0] for pr in step.pairs), dtype=np.intp)
                sb = np.fromiter((pr[1] for pr in step.pairs), dtype=np.intp)
                p = slot_index[sa]
                q = slot_index[sb]
                app = A[p, p]
                aqq = A[q, q]
                apq = A[p, q]
                denom = np.sqrt(np.abs(app * aqq))
                denom = np.where(denom > 0, denom, scale)
                rel = np.abs(apq) / denom
                worst = max(worst, float(rel.max(initial=0.0)))
                rotate = rel > opts.tol
                if np.any(rotate):
                    c, s = _eig_rotation_params(app[rotate], aqq[rotate], apq[rotate])
                    _apply_two_sided(A, V, p[rotate], q[rotate], c, s)
                    rotations += int(np.count_nonzero(rotate))
            if step.moves:
                src = np.fromiter((m.src for m in step.moves), dtype=np.intp)
                dst = np.fromiter((m.dst for m in step.moves), dtype=np.intp)
                slot_index[dst] = slot_index[src]
        sweeps = sweep + 1
        history.append(symmetric_off_norm(A))
        if worst <= opts.tol:
            converged = True
            break

    w = np.diag(A).copy()
    if opts.sort == "desc":
        order = np.argsort(-w, kind="stable")
    elif opts.sort == "asc":
        order = np.argsort(w, kind="stable")
    else:
        order = np.arange(n)
    w = w[order]
    v = V[:, order] if compute_v else np.zeros((n, 0))
    return EigResult(
        w=w, v=v, converged=converged, sweeps=sweeps,
        rotations=rotations, off_history=history,
    )
