"""Exception types for the fault-injection and recovery subsystem."""

from __future__ import annotations

__all__ = ["FaultError", "LeafFailure", "UnrecoverableFault"]


class FaultError(RuntimeError):
    """Base class for failures surfaced by the fault subsystem."""


class LeafFailure(FaultError):
    """A leaf processor stopped answering (crash-stop detected).

    Raised by the ack/seq transport when every retransmission attempt to
    a leaf timed out and the injector confirms it dead.  The recovery
    driver catches this, rolls back to the sweep checkpoint, remaps the
    dead leaf's columns onto its sibling and retries the sweep.
    """

    def __init__(self, message: str, leaf: int):
        super().__init__(message)
        #: index of the dead leaf
        self.leaf = leaf


class UnrecoverableFault(FaultError):
    """Recovery budgets are exhausted; the run must fail explicitly.

    Raised when a message still cannot be delivered after
    ``max_retries`` attempts to a leaf that is *not* dead (so remapping
    does not apply), or when a sweep keeps failing after
    ``max_sweep_attempts`` rollbacks.  The driver converts this into an
    explicit failed result (``converged=False``) — never silent garbage.
    """
