"""Tests of the execution-layer analysis gate (repro.verify.analyze).

Positive direction: every registered ordering, at every gate size, is
clean under the full execution-layer analysis — compiled-plan
integrity, executor chunking for every kernel x worker count, and
fault-tolerance totality on the perfect tree.  Negative direction:
each execution-layer corruption operator trips exactly the rule it is
engineered for, by rule ID.
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.machine.topology import make_topology
from repro.orderings import make_ordering, ordering_names
from repro.orderings.plan import compile_schedule
from repro.verify import (
    ANALYZE_WORKERS,
    analyze_ordering,
    analyze_registry,
    analyze_schedule,
    break_fallback_chain,
    check_degraded_totality,
    check_executor_plan,
    check_fallback_chains,
    check_host_map,
    check_plan_cache,
    check_plan_integrity,
    check_shared_memory_plan,
    check_shared_plan,
    check_stage_plan,
    dead_host_map,
    derive_shared_plan,
    derive_step_chunking,
    overlap_chunk_writes,
    overlap_shared_ranges,
    shuffle_chunk_bounds,
    skew_chunk_bounds,
    split_unsplittable_stage,
    stale_plan_memo,
    tamper_final_layout,
    tamper_plan_pairs,
)

GATE_SIZES = (8, 16, 32)


def _stage_plans(kernel="gram", workers=4, n=32):
    """Stage plans of the first rotating step of a real schedule."""
    plan = compile_schedule(make_ordering("ring_new", n).sweep(0))
    step = next(s for s in plan.steps if s.n_pairs)
    return {p.stage: p for p in derive_step_chunking(step, kernel, workers)}


def _rules(diags):
    return {d.rule for d in diags}


class TestRegistryGate:
    @pytest.mark.parametrize("name", ordering_names())
    @pytest.mark.parametrize("n", GATE_SIZES)
    def test_every_registered_ordering_is_clean(self, name, n):
        report = analyze_ordering(make_ordering(name, n),
                                  make_topology("perfect", n // 2))
        assert report.ok, report.render()
        assert not report.warnings, report.render()

    def test_quick_matrix_covers_all_names(self):
        reports = analyze_registry(quick=True)
        assert len(reports) == len(ordering_names())
        assert all(r.ok for r in reports)

    def test_unconstructible_size_is_skipped_not_failed(self):
        reports = analyze_registry(names=["fat_tree"], sizes=(6,))
        assert len(reports) == 1
        assert reports[0].ok
        assert any(c.startswith("skipped:") for c in reports[0].checks)

    def test_no_topology_records_the_ft_skip(self):
        sched = make_ordering("ring_new", 8).sweep(0)
        report = analyze_schedule(sched, topology=None)
        assert report.ok
        assert any("ft-degraded(skipped" in c for c in report.checks)

    def test_every_kernel_worker_combination_is_checked(self):
        sched = make_ordering("ring_new", 8).sweep(0)
        report = analyze_schedule(sched, make_topology("perfect", 4))
        for kernel in ("reference", "batched", "gram"):
            for w in ANALYZE_WORKERS:
                assert f"exec-plan[{kernel},w={w}]" in report.checks
                assert f"exec-shm[{kernel},w={w}]" in report.checks


class TestExecRules:
    """EXEC corruptions fire exactly their engineered rule."""

    def test_pristine_stage_plans_are_clean(self):
        for kernel in ("reference", "batched", "gram"):
            for w in (1, 2, 4):
                for plan in _stage_plans(kernel, w).values():
                    assert check_stage_plan(plan) == []

    def test_overlapping_write_sets_fire_exec001(self):
        plan = overlap_chunk_writes(_stage_plans()["gram-apply"])
        assert _rules(check_stage_plan(plan)) == {"EXEC001"}

    def test_split_gram_solve_fires_exec002(self):
        plan = split_unsplittable_stage(_stage_plans()["gram-solve"])
        assert _rules(check_stage_plan(plan)) == {"EXEC002"}

    def test_reordered_bounds_fire_exec003(self):
        plan = shuffle_chunk_bounds(_stage_plans()["gram-apply"])
        assert _rules(check_stage_plan(plan)) == {"EXEC003"}

    def test_skewed_bounds_warn_exec004(self):
        plan = skew_chunk_bounds(_stage_plans()["gram-apply"])
        diags = check_stage_plan(plan)
        assert _rules(diags) == {"EXEC004"}
        assert all(not d.is_error for d in diags)  # advisory, not a gate fail

    def test_whole_schedule_pass_is_clean(self):
        sched = make_ordering("fat_tree", 16).sweep(0)
        for kernel in ("reference", "batched", "gram"):
            assert check_executor_plan(sched, kernel=kernel, workers=4) == []


def _shared_plans(kernel="gram", workers=4, n=32, block_size=2):
    """Shared-memory plans of the first rotating step of a real schedule."""
    plan = compile_schedule(make_ordering("ring_new", n).sweep(0))
    step = next(s for s in plan.steps if s.n_pairs)
    return {p.stage: p
            for p in derive_shared_plan(step, kernel, workers, block_size)}


class TestSharedMemoryRules:
    """EXEC005: process chunks must map to disjoint arena ranges and
    must never split the batch-coupled inner Gram solve."""

    def test_pristine_shared_plans_are_clean(self):
        for kernel in ("reference", "batched", "gram"):
            for w in (1, 2, 4):
                for plan in _shared_plans(kernel, w).values():
                    assert check_shared_plan(plan) == []

    def test_whole_schedule_shm_pass_is_clean(self):
        for name in ("ring_new", "fat_tree"):
            sched = make_ordering(name, 16).sweep(0)
            for kernel in ("reference", "batched", "gram"):
                for w in (1, 2, 4):
                    assert check_shared_memory_plan(
                        sched, kernel=kernel, workers=w, block_size=2) == []

    def test_overlapping_shared_ranges_fire_exec005_only(self):
        plan = overlap_shared_ranges(_shared_plans()["gram-apply"])
        assert _rules(check_shared_plan(plan)) == {"EXEC005"}

    def test_overlap_does_not_confuse_the_slot_checker(self):
        # EXEC001 reasons about slots, EXEC005 about arena intervals;
        # the range corruption must be invisible to the slot checker.
        slots = _stage_plans()["gram-apply"]
        assert check_stage_plan(slots) == []

    def test_split_gram_solve_fires_exec005(self):
        plan = _shared_plans()["gram-solve"]
        assert plan.n_chunks == 1  # derivation never splits it
        mid = plan.n_items // 2
        split = dataclasses.replace(
            plan,
            bounds=((0, mid), (mid, plan.n_items)),
            ranges=((("G", 0, mid),), (("G", mid, plan.n_items),)))
        assert _rules(check_shared_plan(split)) == {"EXEC005"}

    def test_slot_columns_scale_with_block_size(self):
        small = _shared_plans(block_size=1)["gram-apply"]
        big = _shared_plans(block_size=4)["gram-apply"]
        hi_small = max(hi for r in small.ranges for _, _, hi in r)
        hi_big = max(hi for r in big.ranges for _, _, hi in r)
        assert hi_big == 4 * hi_small

    def test_corruption_preserves_the_original(self):
        plan = _shared_plans()["gram-apply"]
        before = plan.ranges
        overlap_shared_ranges(plan)
        assert plan.ranges == before


class TestPlanRules:
    """PLAN corruptions fire exactly their engineered rule."""

    def test_pristine_plan_is_clean(self):
        sched = make_ordering("hybrid", 16).sweep(0)
        assert check_plan_integrity(sched) == []
        assert check_plan_cache(sched) == []

    def test_tampered_pairs_fire_plan001(self):
        sched = make_ordering("ring_new", 16).sweep(0)
        diags = check_plan_integrity(sched, tamper_plan_pairs(sched))
        assert _rules(diags) == {"PLAN001"}

    def test_tampered_layout_fires_plan002(self):
        sched = make_ordering("ring_new", 16).sweep(0)
        diags = check_plan_integrity(sched, tamper_final_layout(sched))
        assert _rules(diags) == {"PLAN002"}

    def test_stale_memo_fires_plan003(self):
        sched = make_ordering("fat_tree", 16).sweep(0)
        diags = check_plan_cache(stale_plan_memo(sched))
        assert _rules(diags) == {"PLAN003"}

    def test_corruption_preserves_the_original(self):
        sched = make_ordering("ring_new", 8).sweep(0)
        tamper_plan_pairs(sched)
        tamper_final_layout(sched)
        stale_plan_memo(sched)
        assert check_plan_integrity(sched) == []
        assert check_plan_cache(sched) == []


class TestFaultRules:
    """FT corruptions fire exactly their engineered rule."""

    def test_degraded_totality_is_clean_on_perfect_tree(self):
        sched = make_ordering("ring_new", 16).sweep(0)
        assert check_degraded_totality(sched, make_topology("perfect", 8)) == []

    def test_unremapped_dead_leaf_fires_ft001(self):
        diags = check_host_map(*dead_host_map(8))
        assert _rules(diags) == {"FT001"}

    def test_live_fallback_chains_are_clean(self):
        assert check_fallback_chains() == []

    def test_dead_end_chain_fires_ft002(self):
        diags = check_fallback_chains(break_fallback_chain())
        assert _rules(diags) == {"FT002"}


@pytest.mark.lint
class TestAnalyzeCLI:
    def test_quick_gate_is_clean(self, capsys):
        assert main(["analyze", "--quick"]) == 0
        assert "all clean" in capsys.readouterr().out

    def test_single_target(self, capsys):
        assert main(["analyze", "--ordering", "ring_new", "--n", "8",
                     "--workers", "2"]) == 0
        assert "ring_new(n=8): ok" in capsys.readouterr().out

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["analyze", "--ordering", "hybrid", "--n", "16",
                     "--quick", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["reports"][0]["target"] == "hybrid(n=8)"  # quick pins n=8

    def test_topology_none_disables_ft_pass(self, capsys):
        assert main(["analyze", "--ordering", "ring_new", "--n", "8",
                     "--topology", "none", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        checks = data["reports"][0]["checks"]
        assert any("ft-degraded(skipped" in c for c in checks)

    def test_unknown_ordering_is_usage_error(self, capsys):
        assert main(["analyze", "--ordering", "nope"]) == 2

    def test_unknown_topology_is_usage_error(self, capsys):
        assert main(["analyze", "--topology", "nope"]) == 2

    def test_bad_worker_count_is_usage_error(self, capsys):
        assert main(["analyze", "--workers", "0"]) == 2
