"""Unit tests for the repro.bench timing harness and report machinery."""

import json

import pytest

from repro.bench import (
    SCHEMA,
    build_report,
    compare_reports,
    default_scenarios,
    load_report,
    median,
    render_report,
    run_scenario,
    scenario_names,
    time_callable,
    validate_report,
    write_report,
)


class TestTiming:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
        assert median([7.0]) == 7.0

    def test_median_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    def test_time_callable_counts_runs(self):
        calls = []
        t = time_callable(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert t.repeats == 3 and t.warmup == 2
        assert len(t.times_s) == 3
        assert all(x >= 0.0 for x in t.times_s)
        assert t.best_s <= t.median_s <= max(t.times_s)
        assert t.mean_s == pytest.approx(sum(t.times_s) / 3)

    def test_time_callable_validates_args(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_callable(lambda: None, warmup=-1)

    def test_times_are_monotonic_clock_positive(self):
        import time as _time

        t = time_callable(lambda: _time.sleep(0.001), repeats=2, warmup=0)
        assert all(x >= 0.001 for x in t.times_s)


class TestScenarios:
    def test_full_list_has_thirty_two_quick_has_twenty_one(self):
        assert len(default_scenarios(quick=False)) == 32
        assert len(default_scenarios(quick=True)) == 21

    def test_names_unique_and_stable(self):
        full = scenario_names(quick=False)
        assert len(set(full)) == len(full)
        assert "svd/batched/fat_tree/n64" in full
        assert "block/gram/ring_new/n128b8" in full
        assert "block/reference/ring_new/n128b8" in full
        assert "exec/serial/ring_new/n128b8" in full
        assert "exec/threads/ring_new/n128b8" in full
        assert "exec/processes/ring_new/n128b8" in full
        assert "route/loop/ring_new/n256" in full
        assert "route/vec/ring_new/n256" in full
        assert "sanitize/off/serial/n128b8" in full
        assert "sanitize/on/serial/n128b8" in full
        assert "sanitize/on/threads/n128b8" in full
        assert "parallel/hybrid/cm5/n64b4" in full
        assert "batch/loop/ring_new/n16x1000" in full
        assert "batch/batch/ring_new/n16x1000" in full
        assert "batch/batch/ring_new/n16x10000" in full
        assert "sim/fastpath-vs-event/n512" in full
        assert "tune/quick/n64" in full
        assert "faults/recovery-overhead/n16" in full
        assert "lint/registry" in full
        assert "analyze/registry" in full

    def test_fast_scenarios_declare_their_baseline(self):
        for s in default_scenarios():
            if s.kind == "svd-kernel" and s.params["kernel"] == "batched":
                assert s.reference == (
                    f"svd/reference/{s.params['ordering']}/n{s.params['n']}"
                )
            elif s.kind == "block-kernel" and s.params["kernel"] != "reference":
                assert s.reference == (
                    f"block/reference/{s.params['ordering']}"
                    f"/n{s.params['n']}b{s.params['block_size']}"
                )
            elif (s.kind == "svd-parallel-exec"
                  and s.params["executor"] != "serial"):
                assert s.reference == (
                    f"exec/serial/{s.params['ordering']}"
                    f"/n{s.params['n']}b{s.params['block_size']}"
                )
            elif s.kind == "sanitize-overhead" and s.params["sanitize"]:
                assert s.reference == (
                    f"sanitize/off/{s.params['executor']}"
                    f"/n{s.params['n']}b{s.params['block_size']}"
                )
            elif s.kind == "svd-batch" and s.params["mode"] == "batch" \
                    and s.params["batch"] <= 1000:
                assert s.reference == (
                    f"batch/loop/{s.params['ordering']}"
                    f"/n{s.params['n']}x{s.params['batch']}"
                )
            elif s.kind == "routing" and s.params["mode"] == "vec":
                assert s.reference == (
                    f"route/loop/{s.params['ordering']}/n{s.params['n']}"
                )
            else:
                assert s.reference is None

    def test_quick_block_pair_shares_the_full_name_structure(self):
        quick = {s.name: s for s in default_scenarios(quick=True)}
        assert "block/gram/ring_new/n32b4" in quick
        assert quick["block/gram/ring_new/n32b4"].reference == \
            "block/reference/ring_new/n32b4"

    @pytest.mark.parametrize(
        "name", ["svd/batched/fat_tree/n16", "block/gram/ring_new/n32b4",
                 "parallel/hybrid/cm5/n8", "lint/registry",
                 "analyze/registry"]
    )
    def test_run_scenario_record_shape(self, name):
        by_name = {s.name: s for s in default_scenarios(quick=True)}
        rec = run_scenario(by_name[name], repeats=1, warmup=0)
        assert rec["name"] == name
        assert rec["wall_time_s"] > 0
        assert rec["times_s"] and len(rec["times_s"]) == 1
        if rec["kind"] in ("lint", "analyze"):
            assert rec["meta"]["clean"] is True
        else:
            assert rec["meta"]["converged"] is True
            assert rec["meta"]["sweeps"] >= 1

    def test_run_sanitize_scenarios_same_computation(self):
        """The sanitizer may cost wall time but must not change the
        run: identical convergence trajectory with and without it."""
        by_name = {s.name: s for s in default_scenarios(quick=True)}
        recs = [run_scenario(by_name[f"sanitize/{sw}/serial/n32b4"],
                             repeats=1, warmup=0)
                for sw in ("off", "on")]
        for rec in recs:
            assert rec["kind"] == "sanitize-overhead"
            assert rec["meta"]["converged"] is True
        assert recs[0]["meta"]["sanitize"] is False
        assert recs[1]["meta"]["sanitize"] is True
        assert recs[0]["meta"]["sweeps"] == recs[1]["meta"]["sweeps"]
        assert recs[0]["meta"]["rotations"] == recs[1]["meta"]["rotations"]

    def test_run_faults_recovery_scenario(self):
        by_name = {s.name: s for s in default_scenarios(quick=True)}
        rec = run_scenario(by_name["faults/recovery-overhead/n8"],
                           repeats=1, warmup=0)
        assert rec["kind"] == "faults-recovery"
        assert rec["wall_time_s"] > 0
        assert rec["meta"]["converged"] is True
        assert rec["meta"]["fault_events"] > 0
        assert rec["meta"]["model_overhead"] > 1.0

    def test_run_exec_scenarios_bit_identical(self):
        """The serial, threads and processes exec scenarios are the same
        computation: identical convergence trajectory, only wall time may
        differ."""
        by_name = {s.name: s for s in default_scenarios(quick=True)}
        recs = [run_scenario(by_name[f"exec/{e}/ring_new/n32b4"],
                             repeats=1, warmup=0)
                for e in ("serial", "threads", "processes")]
        for rec in recs:
            assert rec["kind"] == "svd-parallel-exec"
            assert rec["meta"]["converged"] is True
            assert rec["meta"]["executor"] in ("serial", "threads",
                                               "processes")
            assert rec["meta"]["sweeps"] == recs[0]["meta"]["sweeps"]
            assert rec["meta"]["rotations"] == recs[0]["meta"]["rotations"]
        assert recs[1]["meta"]["workers"] == 2
        assert recs[2]["meta"]["workers"] == 2

    def test_run_route_scenarios_same_phase_totals(self):
        """The loop and vec routing scenarios route the same sweep: same
        phase count, same message total."""
        by_name = {s.name: s for s in default_scenarios(quick=True)}
        recs = [run_scenario(by_name[f"route/{mode}/ring_new/n64"],
                             repeats=1, warmup=0)
                for mode in ("loop", "vec")]
        for rec in recs:
            assert rec["kind"] == "routing"
            assert rec["meta"]["phases"] == recs[0]["meta"]["phases"]
            assert rec["meta"]["messages"] == recs[0]["meta"]["messages"]
        assert recs[1]["reference"] == "route/loop/ring_new/n64"

    def test_run_block_parallel_scenario(self):
        by_name = {s.name: s for s in default_scenarios(quick=False)}
        rec = run_scenario(by_name["parallel/hybrid/cm5/n64b4"],
                           repeats=1, warmup=0)
        assert rec["meta"]["converged"] is True
        assert rec["meta"]["model_time"] > 0

    def test_run_batch_scenarios_same_workload(self):
        """The loop and batch scenarios solve the same seeded stack; the
        batch record carries the throughput aggregates."""
        by_name = {s.name: s for s in default_scenarios(quick=True)}
        recs = [run_scenario(by_name[f"batch/{mode}/ring_new/n16x50"],
                             repeats=1, warmup=0)
                for mode in ("loop", "batch")]
        for rec in recs:
            assert rec["kind"] == "svd-batch"
            assert rec["meta"]["converged"] is True
            assert rec["meta"]["batch"] == 50
        assert recs[1]["meta"]["matrices_per_sec"] > 0
        assert sum(recs[1]["meta"]["sweeps_histogram"].values()) == 50


def _record(name, wall, reference=None):
    return {
        "name": name,
        "kind": "svd-kernel",
        "params": {},
        "reference": reference,
        "wall_time_s": wall,
        "times_s": [wall],
        "meta": {"sweeps": 5},
    }


def _report(**walls):
    records = [_record(name, wall) for name, wall in walls.items()]
    return build_report("t", records, repeats=1, warmup=0)


class TestReport:
    def test_build_stamps_schema_and_environment(self):
        doc = _report(a=1.0)
        assert doc["schema"] == SCHEMA
        assert doc["python"] and doc["numpy"] and doc["platform"]
        assert doc["created_unix"] > 0
        assert doc["cpu_count"] >= 1
        assert doc["blas_threads"] is None  # not pinned by build_report

    def test_build_records_pinned_blas_threads(self):
        doc = build_report("t", [_record("a", 1.0)], repeats=1, warmup=0,
                           blas_threads=1)
        assert doc["blas_threads"] == 1

    def test_build_derives_speedup(self):
        records = [
            _record("ref", 2.0),
            _record("fast", 0.5, reference="ref"),
        ]
        doc = build_report("t", records, repeats=1, warmup=0)
        by = {r["name"]: r for r in doc["scenarios"]}
        assert by["fast"]["speedup_vs_reference"] == pytest.approx(4.0)
        assert "speedup_vs_reference" not in by["ref"]

    def test_validate_accepts_built_reports(self):
        assert validate_report(_report(a=1.0, b=2.0)) == []

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda d: d.update(schema="other/9"), "schema"),
            (lambda d: d.update(tag=""), "tag"),
            (lambda d: d.update(scenarios=[]), "non-empty"),
            (lambda d: d["scenarios"][0].update(wall_time_s=0.0), "positive"),
            (lambda d: d["scenarios"][0].update(times_s=[]), "times_s"),
            (lambda d: d["scenarios"][0].update(name=""), "name"),
        ],
    )
    def test_validate_rejects_corruption(self, mutate, fragment):
        doc = _report(a=1.0)
        mutate(doc)
        problems = validate_report(doc)
        assert problems and any(fragment in p for p in problems)

    def test_validate_rejects_duplicate_names(self):
        doc = _report(a=1.0)
        doc["scenarios"].append(_record("a", 2.0))
        assert any("duplicated" in p for p in validate_report(doc))

    def test_validate_rejects_non_object(self):
        assert validate_report([1, 2]) == ["report is not a JSON object"]

    def test_compare_flags_only_true_regressions(self):
        old = _report(a=1.0, b=1.0, gone=1.0)
        new = _report(a=1.5, b=1.05)
        regressions, compared = compare_reports(old, new, max_slowdown=0.20)
        assert sorted(compared) == ["a", "b"]
        assert [r["name"] for r in regressions] == ["a"]
        assert regressions[0]["ratio"] == pytest.approx(1.5)

    def test_compare_within_tolerance_is_clean(self):
        old = _report(a=1.0)
        new = _report(a=1.19)
        regressions, _ = compare_reports(old, new, max_slowdown=0.20)
        assert regressions == []

    def test_roundtrip_and_render(self, tmp_path):
        doc = _report(a=0.25)
        path = tmp_path / "BENCH_x.json"
        write_report(doc, str(path))
        loaded = load_report(str(path))
        assert loaded == json.loads(json.dumps(doc))  # JSON-stable
        text = render_report(loaded)
        assert "a" in text and "250.000 ms" in text
