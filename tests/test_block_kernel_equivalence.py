"""Golden-numerics equivalence of the block-pair kernels.

The gram and batched block kernels are performance rewrites of the
reference block solver: across block sizes and matrix classes (generic
Gaussian, exactly rank-deficient, ill-conditioned) each must converge to
singular values matching LAPACK to the suite tolerance and agree with
the reference kernel's values, and ``block_size=1`` must reproduce the
scalar driver.  The gram kernel's convergence measure carries a
Gram-formation noise floor (see :mod:`repro.blockjacobi.kernel`), so the
guarantees here are the *absolute* sigma tolerances — exactly what the
scalar suite demands — not bitwise trajectory equality.
"""

import numpy as np
import pytest

from repro.blockjacobi import (
    BLOCK_KERNELS,
    BlockJacobiOptions,
    block_jacobi_svd,
    solve_block_pair,
)
from repro.svd import JacobiOptions, jacobi_svd

BLOCK_SIZES = (1, 2, 4, 8)

#: relative agreement demanded between two kernels' singular values
RTOL_SIGMA = 1e-12

#: absolute-vs-LAPACK tolerance, scaled by the largest singular value
LAPACK_TOL = 1e-11


def _matrix(case: str, n: int) -> np.ndarray:
    rng = np.random.default_rng(100 + n)
    m = n + 6
    if case == "gaussian":
        return rng.standard_normal((m, n))
    if case == "rank_deficient":
        half = max(2, n // 2)
        return rng.standard_normal((m, half)) @ rng.standard_normal((half, n))
    if case == "ill_conditioned":
        u, _ = np.linalg.qr(rng.standard_normal((m, n)))
        v, _ = np.linalg.qr(rng.standard_normal((n, n)))
        return (u * np.logspace(0, -10, n)) @ v.T
    raise AssertionError(case)


def _solve(a: np.ndarray, kernel: str, b: int, **kw):
    return block_jacobi_svd(
        a, ordering="ring_new",
        options=BlockJacobiOptions(block_size=b, kernel=kernel, **kw),
    )


class TestBlockKernelEquivalence:
    @pytest.mark.parametrize("kernel", BLOCK_KERNELS)
    @pytest.mark.parametrize("b", BLOCK_SIZES)
    @pytest.mark.parametrize(
        "case", ["gaussian", "rank_deficient", "ill_conditioned"]
    )
    def test_kernel_matches_lapack(self, kernel, b, case):
        a = _matrix(case, 32)
        r = _solve(a, kernel, b)
        assert r.converged
        lap = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(r.sigma - lap)) <= LAPACK_TOL * lap[0]

    @pytest.mark.parametrize("b", BLOCK_SIZES)
    @pytest.mark.parametrize(
        "case", ["gaussian", "rank_deficient", "ill_conditioned"]
    )
    def test_fast_kernels_agree_with_reference(self, b, case):
        a = _matrix(case, 32)
        ref = _solve(a, "reference", b)
        scale = max(float(ref.sigma[0]), 1.0)
        for kernel in ("batched", "gram"):
            fast = _solve(a, kernel, b)
            assert fast.converged
            assert fast.rank == ref.rank
            assert np.max(np.abs(fast.sigma - ref.sigma)) <= RTOL_SIGMA * scale

    @pytest.mark.parametrize("kernel", BLOCK_KERNELS)
    def test_block_size_one_reproduces_scalar_driver(self, kernel):
        a = _matrix("gaussian", 16)
        scalar = jacobi_svd(a, ordering="ring_new",
                            options=JacobiOptions(kernel="reference"))
        blocked = _solve(a, kernel, 1)
        assert blocked.converged
        scale = max(float(scalar.sigma[0]), 1.0)
        assert np.max(np.abs(blocked.sigma - scalar.sigma)) <= RTOL_SIGMA * scale
        assert blocked.rank == scalar.rank
        assert blocked.emerged_sorted == "desc"

    @pytest.mark.parametrize("kernel", BLOCK_KERNELS)
    def test_result_is_a_valid_svd(self, kernel):
        a = _matrix("gaussian", 32)
        r = _solve(a, kernel, 4)
        scale = float(r.sigma[0])
        recon = (r.u * r.sigma) @ r.v.T
        assert np.max(np.abs(recon - a)) <= 1e-10 * scale
        # orthogonality of the accumulated right factor
        assert np.max(np.abs(r.v.T @ r.v - np.eye(32))) <= 1e-12

    @pytest.mark.parametrize("kernel", BLOCK_KERNELS)
    @pytest.mark.parametrize("ordering", ["fat_tree", "hybrid", "odd_even"])
    def test_tree_orderings_at_block_granularity(self, kernel, ordering):
        a = _matrix("gaussian", 32)
        r = block_jacobi_svd(
            a, ordering=ordering,
            options=BlockJacobiOptions(block_size=4, kernel=kernel),
        )
        assert r.converged
        lap = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(r.sigma - lap)) <= LAPACK_TOL * lap[0]

    @pytest.mark.parametrize("sort", ["desc", "asc", None])
    def test_sort_modes_agree_across_kernels(self, sort):
        a = _matrix("gaussian", 16)
        sigmas = []
        for kernel in BLOCK_KERNELS:
            r = _solve(a, kernel, 4, sort=sort)
            assert r.converged
            sigmas.append(r.sigma)
        scale = max(float(sigmas[0][0]), 1.0)
        for s in sigmas[1:]:
            assert np.max(np.abs(s - sigmas[0])) <= RTOL_SIGMA * scale

    def test_tall_matrix(self):
        rng = np.random.default_rng(9)
        a = rng.standard_normal((120, 16))
        ref = _solve(a, "reference", 2)
        gram = _solve(a, "gram", 2)
        assert np.max(np.abs(ref.sigma - gram.sigma)) <= RTOL_SIGMA * ref.sigma[0]

    def test_unknown_kernel_rejected_by_options(self):
        with pytest.raises(ValueError, match="unknown block kernel"):
            BlockJacobiOptions(kernel="fused")

    def test_unknown_kernel_rejected_by_solver(self):
        X = np.eye(4)
        with pytest.raises(ValueError, match="unknown block kernel"):
            solve_block_pair(X, None, np.arange(4), 1e-12, "desc", 2,
                             kernel="fused")

    def test_bad_sort_mode_rejected(self):
        X = np.eye(4)
        with pytest.raises(ValueError, match="sort must be one of"):
            solve_block_pair(X, None, np.arange(4), 1e-12, "up", 2)
