"""Parallel Jacobi orderings for one-sided SVD on tree architectures.

The subpackage implements the three orderings contributed by the paper
(fat-tree, new ring, hybrid), the baselines it compares against
(round-robin, odd-even, Lee-Luk-Boley), and the machinery shared by all
of them: the explicit-communication :class:`~repro.orderings.schedule.Schedule`
representation and the property validators of
:mod:`repro.orderings.properties`.
"""

from .base import Ordering
from .fattree import FatTreeOrdering, fat_tree_sweep, merge_stage_plan
from .fourblock import (
    basic_module_fragments,
    basic_module_schedule,
    four_block_schedule,
    merge_stage_fragments,
)
from .hybrid import HybridOrdering, hybrid_sweep
from .llb import LLBOrdering, llb_backward_sweep, llb_forward_sweep
from .oddeven import OddEvenOrdering, odd_even_sweep
from .properties import (
    ValidityReport,
    check_all_pairs_once,
    check_local_pairs,
    check_one_directional,
    find_relabelling,
    meeting_gap_profile,
    relabelling_equivalent,
    sweep_message_counts,
)
from .registry import ORDERINGS, make_ordering, ordering_names
from .ringnew import (
    RingOrdering,
    folded_layout,
    ring_pair_schedule,
    ring_realization,
    ring_sweep,
    round_robin_relabelling,
)
from .roundrobin import RoundRobinOrdering, round_robin_sweep
from .schedule import Move, Schedule, Step, apply_moves, compose_moves, permutation_of_sweep
from .visualize import render_grid_steps, render_movements, trajectory_table
from .twoblock import StepFragment, merge_parallel, two_block_fragments, two_block_schedule

__all__ = [
    "Move",
    "ORDERINGS",
    "Ordering",
    "FatTreeOrdering",
    "HybridOrdering",
    "LLBOrdering",
    "OddEvenOrdering",
    "RingOrdering",
    "RoundRobinOrdering",
    "Schedule",
    "Step",
    "StepFragment",
    "ValidityReport",
    "apply_moves",
    "basic_module_fragments",
    "basic_module_schedule",
    "check_all_pairs_once",
    "check_local_pairs",
    "check_one_directional",
    "compose_moves",
    "fat_tree_sweep",
    "find_relabelling",
    "folded_layout",
    "four_block_schedule",
    "hybrid_sweep",
    "llb_backward_sweep",
    "llb_forward_sweep",
    "make_ordering",
    "meeting_gap_profile",
    "merge_parallel",
    "merge_stage_fragments",
    "merge_stage_plan",
    "odd_even_sweep",
    "ordering_names",
    "permutation_of_sweep",
    "relabelling_equivalent",
    "ring_pair_schedule",
    "ring_realization",
    "ring_sweep",
    "round_robin_relabelling",
    "render_grid_steps",
    "render_movements",
    "round_robin_sweep",
    "trajectory_table",
    "sweep_message_counts",
    "two_block_fragments",
    "two_block_schedule",
]
