"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_matrix(rng: np.random.Generator) -> np.ndarray:
    return rng.standard_normal((12, 8))


@pytest.fixture
def medium_matrix(rng: np.random.Generator) -> np.ndarray:
    return rng.standard_normal((24, 16))


@pytest.fixture
def verifier():
    """The static schedule verifier (:func:`repro.verify.lint_schedule`).

    Exposed as a fixture so property-based tests can cross-check the
    static analysis against the dynamic predicates on generated inputs
    without each module importing the verify package directly.
    """
    from repro.verify import lint_schedule

    return lint_schedule


@pytest.fixture
def ordering_verifier():
    """Ordering-level static verifier (:func:`repro.verify.lint_ordering`)."""
    from repro.verify import lint_ordering

    return lint_ordering
