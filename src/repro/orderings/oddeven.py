"""The classical odd-even transposition ordering.

This is the canonical nearest-neighbour ordering on a linear array of
processors, used here as the implementable stand-in for the ring ordering
of Fig 1(a) (Eberlein-Park); the source text of the paper lost the digits
of that figure, and the odd-even ordering has the same character the
paper attributes to it: strictly nearest-neighbour communication that
spreads evenly over a tree.

Definition (indices live on a line of ``n`` logical positions):

* odd steps pair positions ``(1,2)(3,4)...(n-1,n)``,
* even steps pair positions ``(2,3)(4,5)...(n-2,n-1)`` (ends idle),
* after each step the two members of every pair exchange positions
  (unconditional transposition).

A sweep takes ``n`` steps and generates every index pair exactly once;
after one sweep the index order is fully reversed, so two consecutive
sweeps restore the original order.

Slot realisation: logical position ``p`` is slot ``p``; an even step's
pair ``(2i+1, 2i+2)`` spans two leaves, so its rotation is *remote*
(one column is fetched from the neighbour and returned), which the cost
model charges as two level-1 messages — exactly the systolic-array
behaviour of Brent-Luk type arrays.
"""

from __future__ import annotations

from ..util.validation import require_even
from .base import Ordering
from .schedule import Move, Schedule, Step

__all__ = ["OddEvenOrdering", "odd_even_sweep"]


def odd_even_sweep(n: int) -> Schedule:
    """One sweep (``n`` steps) of the odd-even transposition ordering."""
    require_even(n)
    steps: list[Step] = []
    for t in range(1, n + 1):
        if t % 2 == 1:
            pair_starts = range(0, n - 1, 2)
        else:
            pair_starts = range(1, n - 2, 2)
        pairs = tuple((p, p + 1) for p in pair_starts)
        moves = tuple(
            m for p in pair_starts for m in (Move(p, p + 1), Move(p + 1, p))
        )
        steps.append(Step(pairs=pairs, moves=moves))
    return Schedule(n=n, steps=steps, name=f"odd_even(n={n})")


class OddEvenOrdering(Ordering):
    """Odd-even transposition ordering; order reversed per sweep (period 2)."""

    name = "odd_even"

    def __init__(self, n: int):
        require_even(n)
        super().__init__(n)

    def build_sweep(self, sweep_index: int) -> Schedule:
        return odd_even_sweep(self.n)
