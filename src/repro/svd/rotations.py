"""Plane-rotation kernels for the one-sided (Hestenes) Jacobi method.

Equation (1) of the paper: a plane rotation applied to two columns
``a_i, a_j`` chooses the angle so the transformed columns are orthogonal.
With ``alpha = a_i . a_i``, ``beta = a_j . a_j`` and ``gamma = a_i . a_j``
the standard stable parametrisation is

    zeta = (beta - alpha) / (2 gamma)
    t    = sign(zeta) / (|zeta| + sqrt(1 + zeta^2))
    c    = 1 / sqrt(1 + t^2),   s = t c

Equation (3) of the paper is the *swap-free* form: when the schedule
requires the two columns to exchange positions after the rotation, the
exchanged result is produced directly by applying the rotation with its
columns swapped, avoiding an explicit copy.  The vectorised kernel below
uses the same idea to keep the larger-norm column in the designated slot
("with a little control we may store the column with larger norm in the
position associated with the index of a smaller number" — Section 4),
which is what makes the singular values emerge sorted.

All kernels are vectorised over the disjoint pairs of one parallel step,
per the hpc guidance: one step is one fused set of BLAS-level column
operations rather than a Python loop over pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import NumericalBreakdown

__all__ = [
    "RotationStats",
    "rotation_params",
    "apply_step_rotations",
    "apply_step_rotations_batched",
    "column_norms_sq",
]

#: squared-norm agreement below this relative slack counts as a tie and
#: does not trigger a sorting exchange (keeps noise-level differences
#: from delaying the "no columns interchanged" termination rule)
SORT_SLACK = 32.0 * np.finfo(np.float64).eps

_SORT_MODES = ("desc", "asc", None)


def _validate_sort(sort: str | None) -> None:
    # an unrecognised string used to silently behave like ``None`` and
    # disable the sorting convention altogether; fail loudly instead
    if sort not in _SORT_MODES:
        raise ValueError(f"sort must be one of {_SORT_MODES}, got {sort!r}")


def column_norms_sq(X: np.ndarray) -> np.ndarray:
    """Squared column norms of ``X`` (the cache seed for the batched kernel)."""
    return np.einsum("ij,ij->j", X, X)


@dataclass
class RotationStats:
    """Counters accumulated over rotations.

    ``swapped`` counts rotations emitted in the swap-free exchanged form
    of eq (3) — each one is an explicit column exchange avoided;
    ``exchanged`` counts already-orthogonal pairs whose columns were
    exchanged to respect the norm ordering.  The paper's termination rule
    needs ``exchanged`` ("... and no columns are interchanged").
    ``fallbacks`` counts block pairs re-solved down the kernel fallback
    chain (gram -> batched -> reference) after a numerical breakdown.
    """

    applied: int = 0
    skipped: int = 0
    swapped: int = 0
    exchanged: int = 0
    fallbacks: int = 0

    def merge(self, other: "RotationStats") -> None:
        self.applied += other.applied
        self.skipped += other.skipped
        self.swapped += other.swapped
        self.exchanged += other.exchanged
        self.fallbacks += other.fallbacks


def _require_finite_grams(
    alpha: np.ndarray, beta: np.ndarray, gamma: np.ndarray,
    left: np.ndarray, right: np.ndarray,
) -> None:
    """Non-finite sentinel shared by the rotation kernels.

    A NaN/Inf Gram quantity means the column data itself is damaged
    (silent message corruption, a crashed leaf's NaN-marked slots, or a
    genuine overflow); rotating through it would smear the damage over
    every column the pair later meets.  Fail here instead, naming the
    pair, so a recovery driver can roll back to the sweep checkpoint.
    """
    bad = ~(np.isfinite(alpha) & np.isfinite(beta) & np.isfinite(gamma))
    if np.any(bad):
        k0 = int(np.argmax(bad))
        where = (int(left[k0]), int(right[k0]))
        raise NumericalBreakdown(
            f"non-finite Gram quantities for column pair {where} "
            f"(alpha={alpha[k0]!r}, beta={beta[k0]!r}, gamma={gamma[k0]!r})",
            where=where,
        )


def rotation_params(
    alpha: np.ndarray, beta: np.ndarray, gamma: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised (c, s) for each pair; pairs with ``gamma == 0`` get the
    identity rotation."""
    c = np.ones_like(alpha)
    s = np.zeros_like(alpha)
    nz = gamma != 0.0
    if np.any(nz):
        zeta = (beta[nz] - alpha[nz]) / (2.0 * gamma[nz])
        t = np.sign(zeta) / (np.abs(zeta) + np.sqrt(1.0 + zeta * zeta))
        # sign(0) is 0; zeta == 0 means alpha == beta with gamma != 0,
        # where the optimal angle is 45 degrees (t = 1)
        t = np.where(zeta == 0.0, 1.0, t)
        cn = 1.0 / np.sqrt(1.0 + t * t)
        c[nz] = cn
        s[nz] = t * cn
    return c, s


def apply_step_rotations(
    X: np.ndarray,
    V: np.ndarray | None,
    left: np.ndarray,
    right: np.ndarray,
    tol: float,
    sort: str | None = "desc",
) -> tuple[RotationStats, float]:
    """Orthogonalise the disjoint column pairs ``(left[k], right[k])``.

    ``X`` is modified in place (and ``V`` alongside, when accumulating
    right singular vectors).  A pair is rotated only when it fails the
    relative threshold test ``|gamma| > tol * sqrt(alpha beta)`` — the
    threshold strategy of [Wilkinson] the paper invokes to guarantee
    convergence.  With ``sort="desc"`` the larger-norm column ends in the
    ``left`` slot via the swap-free form of eq (3) (``"asc"`` for the
    smaller; ``None`` to never swap).

    Returns the rotation counters and the largest relative off-diagonal
    ``|gamma| / sqrt(alpha beta)`` observed *before* rotating (the sweep
    convergence measure).
    """
    _validate_sort(sort)
    stats = RotationStats()
    if left.size == 0:
        return stats, 0.0
    x = X[:, left]
    y = X[:, right]
    alpha = np.einsum("ij,ij->j", x, x)
    beta = np.einsum("ij,ij->j", y, y)
    gamma = np.einsum("ij,ij->j", x, y)
    _require_finite_grams(alpha, beta, gamma, left, right)
    denom = np.sqrt(alpha * beta)
    live = denom > 0.0
    rel = np.zeros_like(gamma)
    rel[live] = np.abs(gamma[live]) / denom[live]
    max_rel = float(rel.max(initial=0.0))

    rotate = rel > tol
    stats.skipped += int(np.count_nonzero(~rotate))
    if np.any(rotate):
        c, s = rotation_params(alpha[rotate], beta[rotate], gamma[rotate])
        li = left[rotate]
        ri = right[rotate]
        xr = X[:, li]
        yr = X[:, ri]
        new_x = c * xr - s * yr
        new_y = s * xr + c * yr
        # post-rotation squared norms, from the rotation invariants
        a_r, b_r, g_r = alpha[rotate], beta[rotate], gamma[rotate]
        na = c * c * a_r - 2 * c * s * g_r + s * s * b_r
        nb = s * s * a_r + 2 * c * s * g_r + c * c * b_r
        if sort == "desc":
            swap = nb > na
        elif sort == "asc":
            swap = na > nb
        else:
            swap = np.zeros(na.shape, dtype=bool)
        stats.swapped += int(np.count_nonzero(swap))
        X[:, li] = np.where(swap, new_y, new_x)
        X[:, ri] = np.where(swap, new_x, new_y)
        if V is not None:
            vx = V[:, li]
            vy = V[:, ri]
            new_vx = c * vx - s * vy
            new_vy = s * vx + c * vy
            V[:, li] = np.where(swap, new_vy, new_vx)
            V[:, ri] = np.where(swap, new_vx, new_vy)
        stats.applied += int(np.count_nonzero(rotate))

    # even when no rotation fires, the sorting convention must hold for
    # already-orthogonal pairs so the singular values finish ordered; a
    # small relative slack keeps noise-level norm differences from
    # triggering exchanges forever (ties would otherwise delay the
    # "no columns interchanged" termination rule)
    if sort in ("desc", "asc"):
        idle = ~rotate
        if np.any(idle):
            li = left[idle]
            ri = right[idle]
            na = alpha[idle]
            nb = beta[idle]
            slack = SORT_SLACK
            if sort == "desc":
                swap = nb > na * (1.0 + slack)
            else:
                swap = na > nb * (1.0 + slack)
            if np.any(swap):
                li, ri = li[swap], ri[swap]
                stats.exchanged += int(li.size)
                tmp = X[:, li].copy()
                X[:, li] = X[:, ri]
                X[:, ri] = tmp
                if V is not None:
                    tmp = V[:, li].copy()
                    V[:, li] = V[:, ri]
                    V[:, ri] = tmp
    return stats, max_rel


#: division guard used instead of a masked divide: a zero cached norm
#: implies an exactly-zero column, whose fresh ``gamma`` is exactly zero,
#: so the guarded quotient is still exactly zero
_TINY = float(np.finfo(np.float64).tiny)
_SQRT_EPS = float(np.sqrt(np.finfo(np.float64).eps))


def apply_step_rotations_batched(
    WT: np.ndarray,
    P: np.ndarray,
    tol: float,
    sort: str | None,
    norms_sq: np.ndarray,
    m: int,
) -> tuple[RotationStats, float]:
    """Fused batched form of :func:`apply_step_rotations`.

    All k independent pair updates of one step — the plane rotations of
    eq (1), the swap-free exchanged rotations of eq (3) *and* the
    idle-pair sorting exchanges — are expressed as one batch of per-pair
    2x2 transforms and applied with a single gather / fused update /
    scatter, instead of separate masked passes per quantity.

    ``WT`` is the working array in *column-as-row* layout: row ``j``
    holds column ``j`` of the stacked factor ``[X; V]`` (data entries
    first, ``m`` of them), so the gather/scatter of a step touches
    contiguous memory.  ``P`` is the ``(k, 2)`` array of (left, right)
    row indices, already oriented by the caller's label convention.

    ``norms_sq`` is the cross-sweep cache of squared data-column norms:
    ``alpha`` and ``beta`` are read from it instead of being recomputed
    (only ``gamma`` needs a fresh dot product), and it is updated in
    place through the exact rotation identities
    ``alpha' = alpha - t gamma``, ``beta' = beta + t gamma`` (the chosen
    tangent satisfies ``t^2 + 2 zeta t - 1 = 0``, which collapses the
    ``c^2 a - 2csg + s^2 b`` form to these).  The caller must permute the
    cache alongside any schedule column moves.

    Minor deviation from the reference kernel: the norm-ordering swap
    uses the same ``SORT_SLACK`` tie band for rotated pairs as for idle
    pairs (the reference compares rotated pairs strictly); the two can
    differ only when post-rotation norms agree to ~1e-14 relative, where
    either order satisfies every sortedness tolerance in the package.

    Returns the same ``(stats, max_rel)`` contract as the reference
    kernel.
    """
    _validate_sort(sort)
    stats = RotationStats()
    k = P.shape[0]
    if k == 0:
        return stats, 0.0
    Z = WT[P]  # (k, 2, M) gather of the paired columns
    x = Z[:, 0]
    y = Z[:, 1]
    # batched (k,1,m)@(k,m,1) dot products; cheaper to dispatch than einsum
    gamma = np.matmul(x[:, None, :m], y[:, :m, None]).reshape(k)
    ab = norms_sq[P]  # (k, 2) cached alpha, beta
    alpha = ab[:, 0]
    beta = ab[:, 1]
    _require_finite_grams(alpha, beta, gamma, P[:, 0], P[:, 1])
    denom = np.sqrt(alpha * beta)
    rel = np.abs(gamma) / np.maximum(denom, _TINY)
    max_rel = float(rel.max(initial=0.0))
    rotate = rel > tol
    applied = int(np.count_nonzero(rotate))
    stats.applied = applied
    stats.skipped = k - applied

    if applied:
        # tangent of the annihilating angle; written with copysign so the
        # zeta == 0 tie (alpha == beta, 45 degrees, t = 1) needs no branch
        # (a rotating pair always has gamma != 0, so masking with the
        # rotate flags doubles as the division guard)
        all_rot = applied == k
        gsafe = gamma if all_rot else np.where(rotate, gamma, 1.0)
        zeta = (beta - alpha) / (2.0 * gsafe)
        t = 1.0 / (zeta + np.copysign(np.sqrt(1.0 + zeta * zeta), zeta))
        if not all_rot:
            t = np.where(rotate, t, 0.0)  # t = 0 is the identity (c=1, s=0)
        c = 1.0 / np.sqrt(1.0 + t * t)
        s = t * c
        tg = t * gamma
        na = alpha - tg  # idle pairs keep their cached norms exactly
        nb = beta + tg
        # cancellation guard: when a rotation (near-)annihilates a column
        # the subtraction above loses relative accuracy (and can even
        # round negative); entries within sqrt(eps) of full cancellation
        # are recomputed freshly below, which caps the cache's relative
        # error at ~sqrt(eps) — enough that rotations computed from it
        # still annihilate their gamma to ~1e-8 relative, preserving the
        # quadratic convergence tail (a bare eps floor keeps the cache
        # finite but decays the tail to linear on ill-conditioned inputs)
        floor = _SQRT_EPS * (alpha + beta)
        stale = rotate & ((na < floor) | (nb < floor))
        if np.any(stale):
            np.maximum(na, 0.0, out=na)
            np.maximum(nb, 0.0, out=nb)
        else:
            stale = None
    else:
        na = alpha
        nb = beta
        stale = None

    # the identity-rotation path must honour the sorting convention too:
    # below-threshold pairs in the wrong norm order are exchanged even
    # when no rotation in the whole step fires
    if sort == "desc":
        swap = nb > na * (1.0 + SORT_SLACK)
    elif sort == "asc":
        swap = na > nb * (1.0 + SORT_SLACK)
    else:
        swap = None
    nswap = int(np.count_nonzero(swap)) if swap is not None else 0
    if swap is not None and nswap:
        stats.swapped = int(np.count_nonzero(swap & rotate)) if applied else 0
        stats.exchanged = nswap - stats.swapped
    if not applied and not nswap:
        return stats, max_rel  # fully idle step: nothing may move

    # per-pair 2x2 transforms applied as ONE batched matmul (new_left is
    # row 0 of R_k @ [x; y]); identity rows for idle pairs, the plain
    # exchange permutation for idle pairs that only need re-sorting —
    # writing strided slices of a (k, 2, M) buffer per coefficient would
    # cost ~3x the matmul
    R = np.empty((k, 2, 2))
    if applied:
        if nswap:
            R[:, 0, 0] = np.where(swap, s, c)
            R[:, 0, 1] = np.where(swap, c, -s)
            R[:, 1, 0] = np.where(swap, c, s)
            R[:, 1, 1] = np.where(swap, -s, c)
        else:
            R[:, 0, 0] = c
            R[:, 0, 1] = -s
            R[:, 1, 0] = s
            R[:, 1, 1] = c
    else:
        diag = np.where(swap, 0.0, 1.0)
        off = np.where(swap, 1.0, 0.0)
        R[:, 0, 0] = diag
        R[:, 1, 1] = diag
        R[:, 0, 1] = off
        R[:, 1, 0] = off

    out = np.matmul(R, Z)
    WT[P] = out  # pairs are disjoint within a step: scatter is race-free
    if nswap:
        norms_sq[P[:, 0]] = np.where(swap, nb, na)
        norms_sq[P[:, 1]] = np.where(swap, na, nb)
    else:
        norms_sq[P[:, 0]] = na
        norms_sq[P[:, 1]] = nb
    if stale is not None:
        # refresh cancelled entries from the just-written columns (the
        # swap, if any, is already baked into the ``out`` slot order)
        rows = out[stale]
        norms_sq[P[stale]] = np.einsum("kim,kim->ki", rows[:, :, :m], rows[:, :, :m])
    return stats, max_rel
