"""The paper's new ring ordering (Section 4, Figs 7-8).

Construction
------------
Section 4 *defines* the new ring ordering through its equivalence with
the Brent-Luk round-robin ordering: permute the round-robin's initial
positions (swap the two indices of each left-half pair except the
leftmost, then fold the two halves together so the pairs interleave) and
run the round-robin procedure on the relabelled indices; the generated
pair sets are, step for step, those of the ring ordering.  We take that
recipe literally: the *pair schedule* is a folded/relabelled round-robin,
which makes the ordering valid (all pairs exactly once in ``n - 1``
steps) and round-robin-equivalent by construction.

The distinguishing physical feature is the realization: every processor
sends exactly one column to its ring neighbour after every step, and all
messages travel in the *same direction* throughout the computation.  The
realization is computed by a deterministic constraint solver
(:func:`realize_one_directional`): at each step the new position of a
pair is confined to the union of its two members' previous positions
shifted by at most one ring position, which leaves at most two candidate
columns per pair; a matching with bounded backtracking resolves the rare
ambiguities.  The end-of-sweep layout is pinned so that:

* plain ordering (Fig 7(a)): the pair (1, 2) keeps its column, the
  remaining pair columns come back in reversed order — so two
  consecutive sweeps restore the original order (the paper's statement);
* modified ordering (Fig 8(a)): *all* pair columns are reversed, so the
  singular values emerge nonincreasing after an even number of sweeps
  and nondecreasing after an odd number (the paper's statement).

The OCR of the source text lost the digits of Figs 7-8, so the exact
typographic layout of the original figures cannot be transcribed; every
prose invariant of Section 4 is verified by the test-suite instead.
"""

from __future__ import annotations

from itertools import zip_longest

from ..util.validation import require, require_even
from .base import Ordering
from .schedule import Move, Schedule, Step

__all__ = [
    "RingOrdering",
    "folded_layout",
    "ring_pair_schedule",
    "realize_one_directional",
    "ring_realization",
    "ring_sweep",
    "round_robin_relabelling",
]


def folded_layout(n: int, modified: bool) -> list[tuple[int, int]]:
    """The Section-4 fold of the natural pair layout.

    Split the pairs ``(1,2)(3,4)...`` into halves, swap the members of
    every left-half pair except the leftmost, then interleave the halves
    (right half reversed).  The plain and modified orderings use the two
    interleaving phases.
    """
    require_even(n)
    m = n // 2
    pairs = [(2 * i + 1, 2 * i + 2) for i in range(m)]
    half = m // 2
    left = [pairs[0]] + [(b, a) for a, b in pairs[1:half]]
    right = pairs[half:]
    right_rev = list(reversed(right))
    first, second = (left, right_rev) if modified else (right_rev, left)
    woven = [p for pr in zip_longest(first, second) for p in pr if p is not None]
    return woven


def ring_pair_schedule(n: int, modified: bool) -> list[list[frozenset[int]]]:
    """Pair sets per step: round-robin run from the folded layout.

    For the plain ordering the indices are additionally relabelled by
    ``i -> n + 1 - i`` and the columns mirrored, which pins the pair
    (1, 2) instead of (n-1, n); the two presentations are identical up to
    naming (the paper's Definition 1 equivalence).
    """
    layout = folded_layout(n, modified)
    top = [p[0] for p in layout]
    bot = [p[1] for p in layout]
    m = n // 2
    out: list[list[frozenset[int]]] = []
    for _ in range(n - 1):
        out.append([frozenset((a, b)) for a, b in zip(top, bot)])
        if m > 1:
            new_top = [top[0], bot[0]] + top[1:-1]
            new_bot = bot[1:] + [top[-1]]
            top, bot = new_top, new_bot
    if not modified:
        rho = {i: n + 1 - i for i in range(1, n + 1)}
        out = [[frozenset(rho[x] for x in p) for p in reversed(step)] for step in out]
    return out


def round_robin_relabelling(n: int, modified: bool) -> dict[int, int]:
    """The relabelling mapping ring-ordering indices to round-robin indices.

    ``relabelling[i] = j`` means index ``i`` of the ring ordering plays
    the role of index ``j`` of the round-robin ordering (Fig 1(b));
    applying it to the ring schedule reproduces the round-robin pair sets
    step for step (Definition 1).
    """
    layout = folded_layout(n, modified)
    flat: list[int] = []
    for a, b in layout:
        flat.extend((a, b))
    natural: list[int] = []
    for i in range(n // 2):
        natural.extend((2 * i + 1, 2 * i + 2))
    mapping = {f: g for f, g in zip(flat, natural)}
    if not modified:
        rho = {i: n + 1 - i for i in range(1, n + 1)}
        mapping = {rho[f]: g for f, g in mapping.items()}
    return mapping


def _matchings(items: list[tuple[frozenset[int], list[int]]], m: int):
    """Yield perfect matchings pair -> column; each pair has <= 2 options.

    Iterative DFS (explicit stack) so that deep schedules cannot overflow
    the interpreter stack.
    """
    order = sorted(items, key=lambda t: (len(t[1]), min(t[1])))
    k = len(order)
    used = [False] * m
    choice = [0] * k
    assign: list[int | None] = [None] * k
    depth = 0
    while True:
        if depth == k:
            yield {order[i][0]: assign[i] for i in range(k)}
            depth -= 1
            if depth < 0:
                return
            used[assign[depth]] = False
            assign[depth] = None
            choice[depth] += 1
            continue
        opts = order[depth][1]
        advanced = False
        while choice[depth] < len(opts):
            col = opts[choice[depth]]
            if not used[col]:
                used[col] = True
                assign[depth] = col
                depth += 1
                if depth < k:
                    choice[depth] = 0
                advanced = True
                break
            choice[depth] += 1
        if advanced:
            if depth == k:
                continue
            choice[depth] = 0
            continue
        # exhausted this depth
        choice[depth] = 0
        depth -= 1
        if depth < 0:
            return
        used[assign[depth]] = False
        assign[depth] = None
        choice[depth] += 1


def realize_one_directional(
    pair_schedule: list[list[frozenset[int]]],
    n: int,
    target_col: dict[int, int],
    direction: int = 1,
    budget: int = 5_000_000,
) -> list[dict[frozenset[int], int]] | None:
    """Assign each step's pairs to ring columns with one-directional moves.

    An index may stay on its column or advance ``direction`` (+1 or -1)
    ring positions between steps; after the last step a final move phase
    must be able to bring every index to ``target_col`` under the same
    rule.  Returns one column assignment per step (step 1 included), or
    ``None`` if the budget is exhausted.
    """
    m = n // 2
    require(direction in (+1, -1), "direction must be +1 or -1")
    init_pairs = [frozenset((2 * i + 1, 2 * i + 2)) for i in range(m)]
    first = sorted(map(sorted, pair_schedule[0]))
    require(first == sorted(map(sorted, init_pairs)),
            "schedule's first step must pair the natural layout")
    pos0 = {x: c for c, p in enumerate(init_pairs) for x in p}
    nodes = [budget]

    n_steps = len(pair_schedule)
    # iterative backtracking over steps; per-step matchings come from _matchings
    gens: list = [None] * (n_steps + 1)
    assigns: list[dict[frozenset[int], int] | None] = [None] * (n_steps + 1)
    positions: list[dict[int, int]] = [dict(pos0)] + [dict() for _ in range(n_steps)]
    assigns[0] = {p: c for c, p in enumerate(init_pairs)}

    def options(step: int) -> list[tuple[frozenset[int], list[int]]] | None:
        pos = positions[step - 1]
        items = []
        for pr in pair_schedule[step]:
            x, y = tuple(pr)
            a, b = pos[x], pos[y]
            cand = sorted({a, (a + direction) % m} & {b, (b + direction) % m})
            if not cand:
                return None
            items.append((pr, cand))
        return items

    s = 1
    while True:
        if s > n_steps - 1:
            # final phase feasibility: every index within one move of target
            ok = all(
                (direction * (target_col[x] - c)) % m <= 1
                for x, c in positions[n_steps - 1].items()
            )
            if ok:
                return [dict(a) for a in assigns[:n_steps]]
            s -= 1
            if s < 1:
                return None
            continue
        if gens[s] is None:
            items = options(s)
            gens[s] = iter(()) if items is None else _matchings(items, m)
        nxt = next(gens[s], None)
        nodes[0] -= 1
        if nodes[0] <= 0:
            return None
        if nxt is None:
            gens[s] = None
            s -= 1
            if s < 1:
                return None
            continue
        assigns[s] = nxt
        positions[s] = {x: c for pr, c in nxt.items() for x in pr}
        s += 1
        if s <= n_steps - 1:
            gens[s] = None


def _mirror_conjugate(
    assigns: list[dict[frozenset[int], int]], n: int
) -> list[dict[frozenset[int], int]]:
    """Conjugate a rightward realization by the column mirror and the
    relabelling ``i -> n + 1 - i``; rightward (+1) moves become leftward
    (-1), which is the presentation with pair (1, 2) pinned at column 0."""
    m = n // 2
    rho = {i: n + 1 - i for i in range(1, n + 1)}
    out = []
    for a in assigns:
        out.append({frozenset(rho[x] for x in pr): (m - 1 - c) for pr, c in a.items()})
    return out


def _sweep_from_assignments(
    n: int,
    assigns: list[dict[frozenset[int], int]],
    target_col: dict[int, int],
    direction: int,
    name: str,
) -> Schedule:
    """Turn per-step column assignments into a slot-level :class:`Schedule`.

    Slot convention: each column keeps its resident index in place; an
    arriving index lands in the slot the departing index freed.  Within a
    column, the pair orientation (left slot first) lists the slot indices
    in ascending order; the SVD layer decides norm placement, so slot
    order here only fixes the figure presentation.
    """
    m = n // 2
    steps: list[Step] = []
    # slot_of maps index -> physical slot, maintained across steps
    slot_of: dict[int, int] = {}
    for pr, c in assigns[0].items():
        a, b = sorted(pr)
        slot_of[a] = 2 * c
        slot_of[b] = 2 * c + 1

    def step_pairs(assign: dict[frozenset[int], int]) -> tuple[tuple[int, int], ...]:
        pairs = []
        for pr in assign:
            a, b = sorted(pr)
            sa, sb = slot_of[a], slot_of[b]
            pairs.append((min(sa, sb), max(sa, sb)))
        return tuple(sorted(pairs))

    prev = assigns[0]
    for nxt in assigns[1:]:
        pairs = step_pairs(prev)
        moves, slot_of = _moves_between(prev, nxt, slot_of, m)
        steps.append(Step(pairs=pairs, moves=tuple(moves)))
        prev = nxt
    # last rotation step + final move phase: send every index straight to
    # its home slot (smaller pair member on the even slot), one composite
    # permutation so the step stays a single communication phase
    pairs = step_pairs(prev)
    final_slot: dict[int, int] = {}
    for x, c in target_col.items():
        # x's home partner is the other member of its natural pair; the
        # smaller index takes the even (left) slot of the target column
        final_slot[x] = 2 * c + (0 if x % 2 == 1 else 1)
    require(sorted(final_slot.values()) == list(range(n)),
            "final slots must form a permutation")
    moves = [Move(slot_of[x], final_slot[x])
             for x in final_slot if slot_of[x] != final_slot[x]]
    steps.append(Step(pairs=pairs, moves=tuple(moves)))
    return Schedule(n=n, steps=steps, name=name)


def _moves_between(
    prev: dict[frozenset[int], int],
    nxt: dict[frozenset[int], int],
    slot_of: dict[int, int],
    m: int,
) -> tuple[list[Move], dict[int, int]]:
    """Column moves realizing the transition between two assignments."""
    pos_prev = {x: c for pr, c in prev.items() for x in pr}
    pos_next = {x: c for pr, c in nxt.items() for x in pr}
    movers = [x for x in pos_prev if pos_prev[x] != pos_next[x]]
    stayers = [x for x in pos_prev if pos_prev[x] == pos_next[x]]
    new_slot = dict(slot_of)
    freed: dict[int, int] = {}  # column -> slot freed by its departing index
    for x in movers:
        freed[pos_prev[x]] = slot_of[x]
    moves: list[Move] = []
    for x in movers:
        dst_col = pos_next[x]
        dst_slot = freed.get(dst_col)
        if dst_slot is None:
            # destination column lost no index; must not happen when each
            # column sends exactly one, but guard for partial move phases
            occupied = {new_slot[y] for y in stayers + movers if pos_next[y] == dst_col and y != x}
            cand = [2 * dst_col, 2 * dst_col + 1]
            dst_slot = next(s for s in cand if s not in occupied)
        moves.append(Move(slot_of[x], dst_slot))
        new_slot[x] = dst_slot
    return moves, new_slot


def ring_realization(
    n: int, modified: bool = False
) -> tuple[list[dict[frozenset[int], int]], dict[int, int], int]:
    """Solved ring realization: ``(assignments, target_col, direction)``.

    ``assignments[k]`` maps each step-``k`` pair (a frozenset of two
    indices) to its ring column; ``target_col`` gives each index's
    end-of-sweep column, and ``direction`` (+1/-1) is the single ring
    direction every message travels in.  The hybrid ordering reuses this
    at *block* granularity (indices = blocks, columns = leaf groups).
    """
    require_even(n)
    m = n // 2
    if modified:
        sched = ring_pair_schedule(n, modified=True)
        target = {x: (m - 1 - (x - 1) // 2) for x in range(1, n + 1)}
        assigns = realize_one_directional(sched, n, target, direction=+1)
        require(assigns is not None, f"no one-directional realization for n={n}")
        return assigns, target, +1
    raw = _raw_plain_schedule(n)
    target = _raw_plain_target(n)
    assigns = realize_one_directional(raw, n, target, direction=+1)
    require(assigns is not None, f"no one-directional realization for n={n}")
    assigns = _mirror_conjugate(assigns, n)
    target = {n + 1 - x: (m - 1 - c) for x, c in target.items()}
    return assigns, target, -1


def ring_sweep(n: int, modified: bool = False) -> Schedule:
    """One sweep of the (plain or modified) new ring ordering."""
    require_even(n)
    m = n // 2
    if m == 1:
        return Schedule(n=n, steps=[Step(pairs=((0, 1),))],
                        name=f"ring_{'modified' if modified else 'new'}(n={n})")
    assigns, target, direction = ring_realization(n, modified)
    name = f"ring_{'modified' if modified else 'new'}(n={n})"
    schedule = _sweep_from_assignments(n, assigns, target, direction, name)
    schedule.notes["direction"] = direction
    schedule.notes["modified"] = modified
    return schedule


def _raw_plain_schedule(n: int) -> list[list[frozenset[int]]]:
    """Unrelabelled pair schedule of the plain ring ordering (pins the
    *last* pair); the public presentation conjugates it to pin (1, 2)."""
    layout = folded_layout(n, modified=False)
    top = [p[0] for p in layout]
    bot = [p[1] for p in layout]
    out: list[list[frozenset[int]]] = []
    for _ in range(n - 1):
        out.append([frozenset((a, b)) for a, b in zip(top, bot)])
        new_top = [top[0], bot[0]] + top[1:-1]
        new_bot = bot[1:] + [top[-1]]
        top, bot = new_top, new_bot
    return out


def _raw_plain_target(n: int) -> dict[int, int]:
    """End-of-sweep columns in the unrelabelled space: pair column ``m-1``
    (the pair (n-1, n)) is pinned, columns ``0..m-2`` reverse."""
    m = n // 2
    tau = {m - 1: m - 1}
    tau.update({j: (m - 2 - j) for j in range(m - 1)})
    return {x: tau[(x - 1) // 2] for x in range(1, n + 1)}


class RingOrdering(Ordering):
    """The paper's new ring ordering (``modified=True`` for Fig 8(a)).

    One message per processor per step, all in one ring direction; order
    restored after two consecutive sweeps.
    """

    name = "ring_new"

    def __init__(self, n: int, modified: bool = False):
        require_even(n)
        super().__init__(n)
        self.modified = modified
        if modified:
            self.name = "ring_modified"

    def build_sweep(self, sweep_index: int) -> Schedule:
        return ring_sweep(self.n, modified=self.modified)

    def relabelling_to_round_robin(self) -> dict[int, int]:
        """Explicit Definition-1 relabelling onto the round-robin ordering."""
        return round_robin_relabelling(self.n, self.modified)
