"""Tests of the two-block, four-block and fat-tree orderings (Section 3).

These encode the Section 3 invariants: the divide-and-conquer structure
of the two-block ordering, the order-preservation of the Fig 4(a) basic
module, the merge procedure's coverage/step-count/restoration properties
and the geometric locality of the fat-tree ordering's communication.
"""

from collections import Counter

import pytest

from repro.orderings.fattree import FatTreeOrdering, fat_tree_sweep, merge_stage_plan
from repro.orderings.fourblock import (
    basic_module_schedule,
    four_block_schedule,
    merge_stage_fragments,
)
from repro.orderings.properties import check_all_pairs_once, check_local_pairs
from repro.orderings.twoblock import two_block_schedule
from repro.util.bits import ilog2

SIZES = [4, 8, 16, 32, 64]


class TestTwoBlock:
    @pytest.mark.parametrize("K", [1, 2, 4, 8, 16])
    def test_k_steps(self, K):
        assert two_block_schedule(K).n_rotation_steps == K

    @pytest.mark.parametrize("K", [1, 2, 4, 8, 16])
    def test_cross_pairs_exactly_once(self, K):
        s = two_block_schedule(K)
        flat = [frozenset(p) for st in s.index_pairs() for p in st]
        counts = Counter(flat)
        block_a = set(range(1, 2 * K + 1, 2))   # top slots hold odd labels
        block_b = set(range(2, 2 * K + 1, 2))
        expected = {frozenset((a, b)) for a in block_a for b in block_b}
        assert set(counts) == expected
        assert all(v == 1 for v in counts.values())

    @pytest.mark.parametrize("K", [2, 4, 8, 16])
    def test_non_rotating_block_fixed(self, K):
        final = two_block_schedule(K, rotate="bottom").final_layout()
        assert final[0::2] == list(range(1, 2 * K + 1, 2))

    @pytest.mark.parametrize("K", [2, 4, 8, 16])
    def test_rotating_block_halves_exchanged_order_kept(self, K):
        final = two_block_schedule(K, rotate="bottom").final_layout()
        bots = final[1::2]
        home = list(range(2, 2 * K + 1, 2))
        half = K // 2
        assert bots == home[half:] + home[:half]

    @pytest.mark.parametrize("K", [2, 4, 8])
    def test_two_sweeps_restore(self, K):
        s = two_block_schedule(K)
        layout = s.final_layout(s.final_layout())
        assert layout == list(range(1, 2 * K + 1))

    @pytest.mark.parametrize("K", [2, 4, 8])
    def test_rotate_top_mirrors(self, K):
        final = two_block_schedule(K, rotate="top").final_layout()
        assert final[1::2] == list(range(2, 2 * K + 1, 2))  # bottoms fixed

    @pytest.mark.parametrize("K", [2, 4, 8, 16])
    def test_level_histogram_geometric(self, K):
        # level-r interchanges touch K^2/2^r columns: the two-block
        # ordering's traffic matches a fat-tree's doubling capacity
        hist = two_block_schedule(K).level_histogram()
        assert sorted(hist) == list(range(1, ilog2(K) + 1))
        for r in range(1, ilog2(K) + 1):
            assert hist[r] == K * K // (1 << (r - 1)) // 2

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            two_block_schedule(3)

    def test_rejects_bad_rotate(self):
        with pytest.raises(ValueError):
            two_block_schedule(4, rotate="sideways")

    def test_local_pairs(self):
        assert check_local_pairs(two_block_schedule(8))


class TestBasicModules:
    def test_variant_a_all_pairs(self):
        assert check_all_pairs_once(basic_module_schedule("a")).is_valid

    def test_variant_b_all_pairs(self):
        assert check_all_pairs_once(basic_module_schedule("b")).is_valid

    def test_variant_a_preserves_order(self):
        assert basic_module_schedule("a").final_layout() == [1, 2, 3, 4]

    def test_variant_b_swaps_three_four(self):
        assert basic_module_schedule("b").final_layout() == [1, 2, 4, 3]

    def test_variant_b_restores_after_two(self):
        s = basic_module_schedule("b")
        assert s.final_layout(s.final_layout()) == [1, 2, 3, 4]

    def test_variant_a_left_smaller_than_right(self):
        # Fig 4(a): the left index of every pair is the smaller one
        for pairs in basic_module_schedule("a").index_pairs():
            for a, b in pairs:
                assert a < b

    def test_three_steps(self):
        assert basic_module_schedule("a").n_rotation_steps == 3

    def test_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            basic_module_schedule("c")


class TestFourBlockMergeStage:
    def test_fragment_count(self):
        _, frags = merge_stage_fragments([0, 1], [2, 3])
        assert len(frags) == 4  # two two-block orderings of size 2

    def test_requires_equal_groups(self):
        with pytest.raises(ValueError):
            merge_stage_fragments([0, 1], [2])

    def test_four_block_eight_is_fig6(self):
        s = four_block_schedule(8)
        assert s.n_rotation_steps == 7
        assert check_all_pairs_once(s).is_valid
        assert s.final_layout() == list(range(1, 9))

    def test_four_block_rejects_other_sizes(self):
        with pytest.raises(ValueError):
            four_block_schedule(16)


class TestMergeStagePlan:
    def test_plan_shape_16(self):
        plan = merge_stage_plan(16)
        assert len(plan) == 3  # log2(16) - 1 stages
        assert plan[0] == [[0, 1], [2, 3], [4, 5], [6, 7]]
        assert plan[1] == [[[0, 1], [2, 3]], [[4, 5], [6, 7]]]
        assert plan[2] == [[[0, 1, 2, 3], [4, 5, 6, 7]]]

    def test_plan_covers_all_leaves_each_stage(self):
        plan = merge_stage_plan(64)
        for stage in plan[1:]:
            leaves = [leaf for pair in stage for half in pair for leaf in half]
            assert sorted(leaves) == list(range(32))


class TestFatTreeOrdering:
    @pytest.mark.parametrize("n", SIZES)
    def test_valid_sweep(self, n):
        assert check_all_pairs_once(fat_tree_sweep(n)).is_valid

    @pytest.mark.parametrize("n", SIZES)
    def test_optimal_step_count(self, n):
        assert fat_tree_sweep(n).n_rotation_steps == n - 1

    @pytest.mark.parametrize("n", SIZES)
    def test_order_restored_every_sweep(self, n):
        # the headline advantage over the Lee-Luk-Boley ordering
        assert FatTreeOrdering(n).restoration_period() == 1

    @pytest.mark.parametrize("n", SIZES)
    def test_all_pairs_local(self, n):
        assert check_local_pairs(fat_tree_sweep(n))

    @pytest.mark.parametrize("n", [8, 16, 32, 64])
    def test_level_traffic_decays_geometrically(self, n):
        hist = fat_tree_sweep(n).level_histogram()
        levels = sorted(hist)
        assert levels == list(range(1, ilog2(n // 2) + 1))
        for lo, hi in zip(levels, levels[1:]):
            assert hist[hi] < hist[lo]

    @pytest.mark.parametrize("n", [16, 32])
    def test_stage_locality(self, n):
        # stage s is the only part of the sweep touching level s+1: the
        # top level is touched by exactly the last merge stage
        sched = fat_tree_sweep(n)
        top = ilog2(n // 2)
        first_top_step = None
        for k, step in enumerate(sched.steps):
            if any(m.level == top for m in step.moves):
                first_top_step = k
                break
        assert first_top_step is not None
        # everything before the last stage stays below the top level
        last_stage_steps = n // 2  # 2 * K with K = n/4, plus boundary
        assert first_top_step >= len(sched.steps) - last_stage_steps - 2

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            FatTreeOrdering(12)

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            FatTreeOrdering(2)

    def test_sweep_invariant(self):
        o = FatTreeOrdering(16)
        assert o.sweep(0) is o.sweep(5)

    @pytest.mark.parametrize("n", [8, 16])
    def test_left_smaller_than_right_throughout(self, n):
        # inherited from Fig 4(a): sorted-output storage discipline
        for pairs in fat_tree_sweep(n).index_pairs():
            for a, b in pairs:
                assert a < b
