"""Tests of the machine-scaling experiment (TAB-SCALE)."""

import pytest

from repro.analysis import render_scaling_table, scaling_table


class TestScalingTable:
    @pytest.fixture(scope="class")
    def rows(self):
        return scaling_table(sizes=[16, 32, 64], m=64)

    def test_row_grid(self, rows):
        assert len(rows) == 3 * 4  # sizes x orderings
        assert {r.n for r in rows} == {16, 32, 64}

    def test_times_positive_and_decompose(self, rows):
        for r in rows:
            assert r.sweep_time > 0
            assert r.sweep_time == pytest.approx(r.compute_time + r.comm_time)
            assert 0.0 <= r.comm_fraction <= 1.0

    def test_communication_bound_regime(self, rows):
        # the Section-2 observation: parallel sweeps here are comm-bound
        assert all(r.comm_fraction > 0.5 for r in rows)

    def test_fat_tree_contention_trend_on_cm5(self, rows):
        fat = sorted((r.n, r.max_contention) for r in rows if r.ordering == "fat_tree")
        assert fat[-1][1] >= fat[0][1]

    def test_hybrid_contention_free_at_all_sizes(self, rows):
        assert all(r.max_contention <= 1.0 for r in rows if r.ordering == "hybrid")

    def test_ring_contention_free_at_all_sizes(self, rows):
        assert all(r.max_contention <= 1.0 for r in rows if r.ordering == "ring_new")

    def test_render(self, rows):
        text = render_scaling_table(rows)
        assert "TAB-SCALE" in text and "fat_tree" in text

    def test_perfect_tree_keeps_fat_tree_clean(self):
        rows = scaling_table(sizes=[32], m=48, topology="perfect",
                             names=["fat_tree"])
        assert rows[0].max_contention <= 1.0
