"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_svd_defaults(self):
        args = build_parser().parse_args(["svd"])
        assert args.m == 96 and args.n == 64
        assert args.ordering == "hybrid" and args.topology == "cm5"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fat_tree" in out and "cm5" in out and "FIG9" in out

    def test_svd_serial(self, capsys):
        rc = main(["svd", "--m", "24", "--n", "16", "--serial",
                   "--ordering", "fat_tree"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged=True" in out
        assert "sigma error" in out

    def test_svd_parallel(self, capsys):
        rc = main(["svd", "--m", "24", "--n", "16",
                   "--ordering", "ring_new", "--topology", "binary"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "contention-free=True" in out

    def test_figures_subset(self, capsys):
        assert main(["figures", "FIG2"]) == 0
        out = capsys.readouterr().out
        assert "two-block basic module" in out

    def test_figures_unknown_id(self, capsys):
        assert main(["figures", "FIG99"]) == 2

    def test_tables_unknown_id(self, capsys):
        assert main(["tables", "TAB-NOPE"]) == 2

    def test_tables_subset(self, capsys):
        assert main(["tables", "TAB-SWEEP"]) == 0
        out = capsys.readouterr().out
        assert "rotation-gap" in out
