# Development gates.  `make lint` is the static-verification gate CI runs:
# ruff + mypy over src/repro (skipped with a notice when the tools are not
# installed, e.g. in offline containers) followed by the schedule linter
# over every registered ordering.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-batch test-sanitized lint lint-tools lint-schedules analyze bench bench-check bench-figures tune faults

test:
	$(PYTHON) -m pytest -x -q

# the batch-API contract: svd_batch bit-identical to a loop of svd()
# across kernels x orderings x executors, plus the hypothesis batch
# properties (order-invariance, determinism, per-item error reporting)
test-batch:
	$(PYTHON) -m pytest -x -q tests/test_batch_api.py tests/test_batch_property.py

# the whole suite with the runtime sanitizer armed: every block run
# cross-checks its write records and numeric canaries; zero SAN
# diagnostics is part of the contract
test-sanitized:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q

lint: lint-tools lint-schedules

lint-tools:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro; \
	else \
		echo "ruff not installed; skipping (pip install -e .[lint])"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy --config-file pyproject.toml; \
	else \
		echo "mypy not installed; skipping (pip install -e .[lint])"; \
	fi

# the uniform static gate: every registered ordering, n in {8, 16, 32},
# races / coverage / direction / restoration; plus capacity+deadlock on
# the topologies the paper proves its orderings clean on
lint-schedules:
	$(PYTHON) -m repro.cli lint
	$(PYTHON) -m repro.cli lint --ordering fat_tree --ordering hybrid --topology perfect
	$(PYTHON) -m repro.cli lint --ordering hybrid --topology cm5
	$(PYTHON) -m repro.cli lint --ordering ring_new --ordering ring_modified --topology binary

# the execution-layer gate, one level below lint-schedules: compiled
# plans re-elaborated against their source schedules, executor
# chunkings proved race-free and merge-deterministic for every kernel x
# worker count, single-leaf degradation proved total, fallback chains
# proved well-formed
analyze:
	$(PYTHON) -m repro.cli analyze
	$(PYTHON) -m repro.cli analyze --topology none --workers 3

# the perf-regression harness: timed scenarios (reference vs batched
# scalar kernels, gram vs reference block kernels, parallel simulator at
# scalar and block granularity, lint latency) -> BENCH_local.json;
# compare a later run with `repro-harness bench --compare BENCH_local.json`
bench:
	$(PYTHON) -m repro.cli bench --tag local

# the regression gate over the checked-in report: re-times every scenario
# (including the block-gram-vs-reference pair) and fails on any shared
# scenario slowing down beyond the tolerance (generous, because the
# committed report may come from different hardware)
bench-check:
	$(PYTHON) -m repro.cli bench --tag check --repeats 3 \
		--compare BENCH_local.json --max-slowdown 400

# the autotuner: race kernel/ordering/block-size/executor/backend
# candidates with successive halving and persist the winner to
# PROFILE_<host>.json; `svd(..., profile=...)` or REPRO_PROFILE then
# fill any options the caller left unset
tune:
	$(PYTHON) -m repro.cli tune --m 144 --n 128
	$(PYTHON) -m repro.cli tune --m 272 --n 256 --quick

# timed replays of the paper's figures/tables via pytest-benchmark
bench-figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# the chaos gate: the registered single-fault campaign (fault kinds x
# orderings, survival matrix, exit 1 on any casualty) plus the seeded
# property-based chaos suite
faults:
	$(PYTHON) -m repro.cli faults --quick
	$(PYTHON) -m pytest -x -q tests/test_faults_property.py \
		tests/test_faults_recovery.py
