"""Numerical edge cases and failure-injection tests.

Robustness beyond the happy path: extreme scales, pathological spectra,
ill-conditioned inputs, and deliberately corrupted schedules that the
validators must reject before they can corrupt a factorisation.
"""

import numpy as np
import pytest

from repro import JacobiOptions, jacobi_svd, svd
from repro.orderings import check_all_pairs_once
from repro.orderings.schedule import Move, Schedule, Step
from repro.svd import accuracy_report

from tests.helpers import make_graded


class TestExtremeScales:
    def test_huge_scale(self, rng):
        a = 1e150 * rng.standard_normal((16, 8))
        r = jacobi_svd(a)
        assert r.converged
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(r.sigma - ref)) < 1e-12 * ref[0]

    def test_tiny_scale(self, rng):
        a = 1e-150 * rng.standard_normal((16, 8))
        r = jacobi_svd(a)
        assert r.converged
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(r.sigma - ref)) < 1e-12 * ref[0]

    def test_mixed_column_scales(self, rng):
        a = rng.standard_normal((20, 8))
        a[:, 0] *= 1e8
        a[:, 7] *= 1e-8
        r = jacobi_svd(a)
        assert r.converged
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(r.sigma - ref)) < 1e-11 * ref[0]

    def test_single_pair(self, rng):
        # n = 2: one leaf, one rotation per sweep
        a = rng.standard_normal((6, 2))
        r = jacobi_svd(a, ordering="round_robin")
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(r.sigma, ref, atol=1e-13)


class TestPathologicalSpectra:
    def test_hilbert_like_ill_conditioning(self):
        n = 8
        h = np.array([[1.0 / (i + j + 1) for j in range(n)] for i in range(2 * n)])
        r = jacobi_svd(h)
        ref = np.linalg.svd(h, compute_uv=False)
        assert r.converged
        # absolute accuracy relative to sigma_max (the classical bound)
        assert np.max(np.abs(r.sigma - ref)) < 1e-12 * ref[0]

    def test_all_equal_singular_values(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((16, 8)))
        a = 3.0 * q
        r = jacobi_svd(a)
        assert np.allclose(r.sigma, 3.0, atol=1e-12)
        assert r.sweeps <= 2  # already column-orthogonal

    def test_huge_condition_number(self, rng):
        a = make_graded(24, 8, rng, lo=1e-12)
        r = jacobi_svd(a)
        assert r.converged
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(r.sigma - ref)) < 1e-10 * ref[0]

    def test_duplicate_columns_many(self, rng):
        a = rng.standard_normal((20, 8))
        for j in range(4, 8):
            a[:, j] = a[:, j - 4]
        r = jacobi_svd(a)
        assert r.rank == 4
        assert r.reconstruction_error(a) < 1e-12

    def test_constant_matrix(self):
        a = np.ones((12, 4))
        r = jacobi_svd(a)
        assert r.rank == 1
        assert r.sigma[0] == pytest.approx(np.sqrt(48.0))


class TestNonFiniteInput:
    # non-finite data now trips the kernels' sentinels instead of being
    # silently rotated into the result: the driver raises a
    # NumericalBreakdown naming the first offending column pair (and the
    # public svd() rejects such input up front with ValueError)

    def test_nan_raises_breakdown_not_hangs(self, rng):
        from repro.util.errors import NumericalBreakdown

        a = rng.standard_normal((12, 8))
        a[0, 0] = np.nan
        with np.errstate(all="ignore"), pytest.raises(NumericalBreakdown):
            jacobi_svd(a, options=JacobiOptions(max_sweeps=3))

    def test_inf_raises_breakdown(self, rng):
        from repro.util.errors import NumericalBreakdown

        a = rng.standard_normal((12, 8))
        a[0, 0] = np.inf
        with np.errstate(all="ignore"), pytest.raises(NumericalBreakdown) as exc:
            jacobi_svd(a, options=JacobiOptions(max_sweeps=3))
        assert exc.value.where is not None


class TestCorruptedSchedules:
    def test_move_losing_a_column_rejected(self):
        # a move set that overwrites a slot without vacating it would
        # silently duplicate a column; the Step validator refuses it
        with pytest.raises(ValueError):
            Step(pairs=(), moves=(Move(0, 1), Move(2, 0)))

    def test_pair_overlap_rejected(self):
        with pytest.raises(ValueError):
            Step(pairs=((0, 1), (1, 2)))

    def test_validity_checker_catches_missing_pairs(self):
        steps = [Step(pairs=((0, 1), (2, 3)))] * 3
        report = check_all_pairs_once(Schedule(n=4, steps=steps))
        assert not report.is_valid
        assert report.duplicates and report.missing

    def test_schedule_bounds_enforced(self):
        with pytest.raises(ValueError):
            Schedule(n=4, steps=[Step(pairs=(), moves=(Move(0, 9), Move(9, 0)))])

    def test_driver_rejects_foreign_schedule_size(self, rng):
        from repro.machine import TreeMachine, make_topology
        from repro.orderings import make_ordering

        machine = TreeMachine(make_topology("perfect", 4))
        machine.load(rng.standard_normal((10, 8)))
        with pytest.raises(ValueError):
            machine.run_sweep(make_ordering("fat_tree", 16).sweep(0))


class TestPaddingEdgeCases:
    def test_width_one(self, rng):
        a = rng.standard_normal((8, 1))
        r = svd(a)
        assert r.sigma[0] == pytest.approx(np.linalg.norm(a))

    def test_width_two(self, rng):
        a = rng.standard_normal((8, 2))
        r = svd(a)
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(r.sigma, ref, atol=1e-12)

    def test_width_three_pads_to_four(self, rng):
        a = rng.standard_normal((8, 3))
        r = svd(a)
        ref = np.linalg.svd(a, compute_uv=False)
        assert r.sigma.shape == (3,)
        assert np.allclose(r.sigma, ref, atol=1e-12)
        rep = accuracy_report(a, r)
        assert rep["recon_err"] < 1e-12
