"""Unit tests for compiled schedule plans (:mod:`repro.orderings.plan`)."""

import warnings

import numpy as np
import pytest

from repro.orderings import make_ordering
from repro.orderings.plan import (
    clear_plan_cache,
    compile_schedule,
    plan_cache_stats,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Every test observes the cache from a clean slate."""
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestLowering:
    @pytest.mark.parametrize("name", ["fat_tree", "ring_new", "hybrid", "llb"])
    @pytest.mark.parametrize("n", [8, 16])
    def test_steps_match_the_schedule(self, name, n):
        sched = make_ordering(name, n).sweep(0)
        plan = compile_schedule(sched)
        assert plan.n == n and plan.name == sched.name
        assert plan.n_steps == sched.n_steps
        for cs, step in zip(plan.steps, sched.steps):
            assert cs.n_pairs == len(step.pairs)
            if step.pairs:
                assert cs.pairs.tolist() == [list(p) for p in step.pairs]
                np.testing.assert_array_equal(cs.a, cs.pairs[:, 0])
                np.testing.assert_array_equal(cs.b, cs.pairs[:, 1])
                np.testing.assert_array_equal(cs.pair_leaves, cs.a >> 1)
            assert cs.has_moves == bool(step.moves)
            assert cs.src.tolist() == [m.src for m in step.moves]
            assert cs.dst.tolist() == [m.dst for m in step.moves]
            assert cs.moves == step.moves
            assert cs.move_levels.tolist() == [m.level for m in step.moves]
            assert cs.n_remote == sum(1 for m in step.moves if not m.is_local)
            assert cs.hop_count == 2 * sum(m.level for m in step.moves)

    @pytest.mark.parametrize("name", ["fat_tree", "ring_new", "hybrid"])
    def test_trajectory_matches_schedule_trace(self, name):
        sched = make_ordering(name, 16).sweep(0)
        plan = compile_schedule(sched)
        layout = list(range(16))
        for k, (_, _, layout) in enumerate(sched.trace(layout)):
            assert plan.trajectory[k].tolist() == layout
        assert plan.final_layout().tolist() == \
            sched.final_layout(list(range(16)))

    def test_total_messages_matches_schedule(self):
        sched = make_ordering("hybrid", 16).sweep(0)
        assert compile_schedule(sched).total_messages == \
            sched.total_messages()

    def test_trajectory_is_read_only(self):
        plan = compile_schedule(make_ordering("ring_new", 8).sweep(0))
        with pytest.raises(ValueError):
            plan.trajectory[0, 0] = 99

    def test_empty_phases_are_zero_length_arrays(self):
        plan = compile_schedule(make_ordering("fat_tree", 8).sweep(0))
        for cs in plan.steps:
            # never None: consumers index unconditionally
            assert cs.src.ndim == 1 and cs.dst.ndim == 1
            assert cs.pairs.ndim == 2 and cs.pairs.shape[1] == 2


class TestRouteMemo:
    def test_same_phase_object_returned(self):
        from repro.machine.topology import make_topology

        plan = compile_schedule(make_ordering("hybrid", 16).sweep(0))
        topo = make_topology("cm5", 8)
        k = next(i for i, cs in enumerate(plan.steps) if cs.n_remote)
        assert plan.route_phase(topo, k) is plan.route_phase(topo, k)

    def test_memoised_routing_equals_direct_routing(self):
        from repro.machine.routing import route_phase
        from repro.machine.topology import make_topology

        plan = compile_schedule(make_ordering("ring_new", 16).sweep(0))
        topo = make_topology("binary", 8)
        for i, cs in enumerate(plan.steps):
            if not cs.has_moves:
                continue
            direct = route_phase(
                topo, [(int(s), int(d)) for s, d in cs.move_leaves])
            assert plan.route_phase(topo, i).channel_loads == \
                direct.channel_loads

    def test_distinct_topologies_memoised_separately(self):
        from repro.machine.topology import make_topology

        plan = compile_schedule(make_ordering("ring_new", 16).sweep(0))
        k = next(i for i, cs in enumerate(plan.steps) if cs.n_remote)
        p_bin = plan.route_phase(make_topology("binary", 8), k)
        p_cm5 = plan.route_phase(make_topology("cm5", 8), k)
        assert p_bin is not p_cm5


class TestCache:
    def test_same_instance_hits_the_instance_memo(self):
        sched = make_ordering("fat_tree", 8).sweep(0)
        p1 = compile_schedule(sched)
        p2 = compile_schedule(sched)
        assert p1 is p2
        stats = plan_cache_stats()
        assert stats.misses == 1
        assert stats.instance_hits == 1

    def test_structural_twins_share_one_plan(self):
        # fresh Ordering objects build fresh Schedule objects of
        # identical structure — the LRU must unify them
        p1 = compile_schedule(make_ordering("ring_new", 16).sweep(0))
        p2 = compile_schedule(make_ordering("ring_new", 16).sweep(0))
        assert p1 is p2
        stats = plan_cache_stats()
        assert stats.misses == 1 and stats.hits == 1

    def test_different_structures_do_not_collide(self):
        p1 = compile_schedule(make_ordering("ring_new", 8).sweep(0))
        p2 = compile_schedule(make_ordering("fat_tree", 8).sweep(0))
        assert p1 is not p2
        assert plan_cache_stats().misses == 2

    def test_clear_resets_counters_and_entries(self):
        compile_schedule(make_ordering("ring_new", 8).sweep(0))
        clear_plan_cache()
        stats = plan_cache_stats()
        assert (stats.hits, stats.misses, stats.instance_hits, stats.size) \
            == (0, 0, 0, 0)

    def test_ten_sweep_run_lowers_exactly_once(self):
        """The regression the plan layer exists for: a 10-sweep driver
        run compiles one plan per distinct sweep structure, not one per
        sweep (fat_tree has order 1: a single structure)."""
        from repro.svd import JacobiOptions, jacobi_svd
        from repro.util.errors import ConvergenceWarning

        rng = np.random.default_rng(0)
        a = rng.standard_normal((24, 16))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            r = jacobi_svd(a, ordering="fat_tree",
                           options=JacobiOptions(max_sweeps=10, tol=1e-300))
        assert r.sweeps == 10
        assert plan_cache_stats().compilations == 1

    def test_ten_sweep_machine_run_lowers_exactly_once(self):
        from repro.parallel.driver import ParallelJacobiSVD
        from repro.svd import JacobiOptions
        from repro.util.errors import ConvergenceWarning

        rng = np.random.default_rng(1)
        a = rng.standard_normal((24, 16))
        driver = ParallelJacobiSVD(
            topology="perfect", ordering="fat_tree",
            options=JacobiOptions(max_sweeps=10, tol=1e-300))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            r, _ = driver.compute(a)
        assert r.sweeps == 10
        assert plan_cache_stats().compilations == 1


class TestCachePressure:
    """The LRU under adversarial load: eviction past capacity must not
    serve stale plans, and the counters must stay coherent."""

    @staticmethod
    def _distinct_schedules(count, n=8):
        """``count`` structurally distinct single-sweep schedules: every
        two-step sequence of single-pair rotations is a unique
        fingerprint."""
        from itertools import combinations, product

        from repro.orderings.schedule import Schedule, Step

        pairs = list(combinations(range(n), 2))  # 28 at n=8
        out = []
        for k, (p1, p2) in enumerate(product(pairs, repeat=2)):
            if k >= count:
                break
            out.append(Schedule(n=n, steps=[Step(pairs=(p1,)),
                                            Step(pairs=(p2,))],
                                name=f"pressure{k}"))
        assert len(out) == count
        return out

    def test_eviction_keeps_size_bounded_and_counters_monotone(self):
        from repro.orderings.plan import _CACHE_MAXSIZE

        count = _CACHE_MAXSIZE + 40
        prev_misses = 0
        for sched in self._distinct_schedules(count):
            compile_schedule(sched)
            stats = plan_cache_stats()
            assert stats.misses == prev_misses + 1  # all distinct: all miss
            assert stats.size <= _CACHE_MAXSIZE
            prev_misses = stats.misses
        assert plan_cache_stats().size == _CACHE_MAXSIZE

    def test_no_stale_plan_after_eviction(self):
        """Re-presenting an evicted structure (as a fresh object) must
        recompile — and the served plan must still lower *that*
        structure, not whichever entry took its cache slot."""
        from repro.orderings.plan import _CACHE_MAXSIZE, lower_schedule
        from repro.verify import check_plan_integrity

        count = _CACHE_MAXSIZE + 40
        first = self._distinct_schedules(1)[0]
        compile_schedule(first)
        for sched in self._distinct_schedules(count)[1:]:
            compile_schedule(sched)
        # `first` is long evicted; a structural twin must miss again ...
        twin = self._distinct_schedules(1)[0]
        misses_before = plan_cache_stats().misses
        plan = compile_schedule(twin)
        assert plan_cache_stats().misses == misses_before + 1
        # ... and the plan it gets must be *its* lowering, verified by
        # the independent re-elaboration pass and the cache-bypass oracle
        assert check_plan_integrity(twin, plan) == []
        assert plan.n_steps == lower_schedule(twin).n_steps

    def test_hot_entry_survives_the_flood(self):
        """LRU means *least recently used*: an entry touched between
        batches of distinct misses must stay resident."""
        from repro.orderings.plan import _CACHE_MAXSIZE

        hot = make_ordering("ring_new", 8).sweep(0)
        compile_schedule(hot)
        # enough distinct structures to force evictions past the hot
        # entry's original insertion point — but fewer than the capacity
        # *after* the refresh, so the bumped entry must survive
        flood = self._distinct_schedules(_CACHE_MAXSIZE + 20)
        half = len(flood) // 2
        for sched in flood[:half]:
            compile_schedule(sched)
        # refresh the hot entry via a fresh structural twin (LRU bump)
        compile_schedule(make_ordering("ring_new", 8).sweep(0))
        for sched in flood[half:]:
            compile_schedule(sched)
        hits_before = plan_cache_stats().hits
        compile_schedule(make_ordering("ring_new", 8).sweep(0))
        assert plan_cache_stats().hits == hits_before + 1  # still resident


class TestConsumers:
    def test_permutation_of_sweep_reads_the_plan(self):
        from repro.orderings import permutation_of_sweep

        sched = make_ordering("ring_new", 16).sweep(0)
        perm = permutation_of_sweep(sched)
        assert isinstance(perm, list)
        assert sorted(perm) == list(range(16))
        assert plan_cache_stats().misses == 1

    def test_verify_and_simulator_share_the_plan(self):
        """Linting a schedule then simulating it must not recompile."""
        from repro.machine.costmodel import CostModel
        from repro.machine.simulator import TreeMachine
        from repro.machine.topology import make_topology
        from repro.verify.capacity import check_capacity

        ordering = make_ordering("hybrid", 16)
        sched = ordering.sweep(0)
        topo = make_topology("cm5", 8)
        assert check_capacity(sched, topo) == []
        before = plan_cache_stats().misses
        machine = TreeMachine(topo, CostModel())
        rng = np.random.default_rng(3)
        machine.load(rng.standard_normal((24, 16)))
        machine.run_sweep(sched, tol=1e-12, sort=None, sweep_index=0)
        assert plan_cache_stats().misses == before
