"""Result types for the SVD drivers."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.events import FaultEvent
    from ..orderings.plan import PlanCacheStats

__all__ = ["BatchResult", "SVDResult", "SweepRecord"]


@dataclass
class SweepRecord:
    """Per-sweep convergence diagnostics."""

    sweep: int
    off_norm: float
    max_rel_gamma: float
    rotations: int
    skipped: int


@dataclass
class SVDResult:
    """Outcome of a one-sided Jacobi SVD.

    ``u`` has orthonormal columns spanning the range of ``a`` (zero
    columns past the numerical rank ``rank``), ``sigma`` is nonincreasing
    and ``v`` orthogonal, with ``a ~ u @ diag(sigma) @ v.T``.
    ``sigma_by_slot`` preserves the physical slot order at termination —
    the quantity the paper's sorted-output claims are about — while
    ``sigma`` is canonically sorted for consumers.

    ``converged`` must be checked by callers that care about accuracy:
    a ``False`` value means the sweep budget ran out (or fault recovery
    was exhausted) and the factors are a partial decomposition.  The
    drivers additionally emit a
    :class:`~repro.util.errors.ConvergenceWarning` in that case, so the
    condition is never silent.  Under a fault plan, ``fault_events``
    carries the full injection/recovery audit trail and ``watchdog`` any
    convergence-stall diagnosis.
    """

    u: np.ndarray
    sigma: np.ndarray
    v: np.ndarray
    rank: int
    converged: bool
    sweeps: int
    rotations: int
    sigma_by_slot: np.ndarray
    emerged_sorted: str | None
    history: list[SweepRecord] = field(default_factory=list)
    fault_events: list["FaultEvent"] = field(default_factory=list)
    watchdog: str | None = None

    @property
    def sweeps_used(self) -> int:
        """Sweeps actually executed (alias of ``sweeps``, named for the
        convergence summary: compare against the driver's ``max_sweeps``)."""
        return self.sweeps

    def fault_summary(self) -> dict[str, int]:
        """Fault/recovery event counts per action (empty when fault-free)."""
        from ..faults.events import summarize_events

        return summarize_events(self.fault_events)

    def summary(self) -> str:
        """One-line convergence/fault summary for logs and CLIs."""
        state = "converged" if self.converged else "NOT converged"
        line = (f"{state} in {self.sweeps_used} sweeps, "
                f"rank {self.rank}, {self.rotations} rotations")
        if self.fault_events:
            counts = self.fault_summary()
            shown = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            line += f"; fault events: {shown}"
        if self.watchdog:
            line += f"; watchdog: {self.watchdog}"
        return line

    def reconstruct(self) -> np.ndarray:
        """``u @ diag(sigma) @ v.T`` (``u``, ``sigma``, ``v`` share the
        canonical nonincreasing order)."""
        return (self.u * self.sigma) @ self.v.T

    def reconstruction_error(self, a: np.ndarray) -> float:
        """Relative Frobenius reconstruction error against ``a``."""
        denom = np.linalg.norm(a) or 1.0
        return float(np.linalg.norm(a - self.reconstruct()) / denom)


@dataclass
class BatchResult:
    """Outcome of :func:`repro.svd_batch` over a stack of matrices.

    A sequence of per-item :class:`SVDResult`\\ s (``batch[i]``,
    ``len(batch)``, iteration) plus the aggregate accounting the batch
    exists for: wall time, throughput, the sweeps histogram across the
    batch, and the plan-cache traffic of this call (``plan_cache`` is
    the *delta* of :func:`repro.orderings.plan.plan_cache_stats` across
    the call — a warm cache shows ``misses == 0``: one compiled schedule
    amortised over every item).
    """

    results: list[SVDResult]
    elapsed_s: float
    plan_cache: "PlanCacheStats | None" = None

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i: int) -> SVDResult:
        return self.results[i]

    def __iter__(self) -> Iterator[SVDResult]:
        return iter(self.results)

    @property
    def n_items(self) -> int:
        return len(self.results)

    @property
    def converged(self) -> bool:
        """True when *every* item converged."""
        return all(r.converged for r in self.results)

    @property
    def n_converged(self) -> int:
        return sum(1 for r in self.results if r.converged)

    @property
    def sweeps_histogram(self) -> dict[int, int]:
        """``{sweeps_used: item count}``, sorted by sweep count."""
        return dict(sorted(Counter(r.sweeps for r in self.results).items()))

    @property
    def matrices_per_sec(self) -> float:
        return len(self.results) / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def sigma_stack(self) -> np.ndarray:
        """``(B, n)`` stack of the per-item sorted singular values."""
        return np.stack([r.sigma for r in self.results])

    def summary(self) -> str:
        """One-line batch summary for logs and CLIs."""
        hist = ", ".join(f"{s}:{c}" for s, c in self.sweeps_histogram.items())
        line = (f"{self.n_converged}/{self.n_items} converged, "
                f"sweeps histogram {{{hist}}}, "
                f"{self.matrices_per_sec:.1f} matrices/sec")
        if self.plan_cache is not None:
            line += (f", plan cache +{self.plan_cache.hits} hits "
                     f"+{self.plan_cache.misses} misses")
        return line
