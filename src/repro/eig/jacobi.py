"""Two-sided Jacobi symmetric eigensolver driven by the parallel orderings.

The paper's lineage (Brent & Luk [2]: "The solution of singular-value
and *symmetric eigenvalue* problems on multiprocessor arrays") applies
the same parallel orderings to the classical two-sided Jacobi method:
each step annihilates the off-diagonal entries of the disjoint index
pairs the ordering prescribes, ``A <- J^T A J``, and a sweep visits
every pair exactly once.  Any ordering from :mod:`repro.orderings`
drives the sweep; column moves translate into symmetric row+column
permutations, so the tree-locality properties carry over unchanged.

The kernels are vectorised over the disjoint pairs of a step: one fused
row update and one fused column update per step instead of a Python
loop over pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..kernels import ComputeBackend, numpy_backend
from ..orderings.base import Ordering
from ..orderings.registry import make_ordering
from ..util.validation import require

__all__ = ["EigOptions", "EigResult", "gram_eigh", "gram_eigh_batched",
           "gram_eigh_grouped", "jacobi_eigh", "symmetric_off_norm"]

_TINY = float(np.finfo(np.float64).tiny)


@dataclass(frozen=True)
class EigOptions:
    """Tuning knobs of the two-sided Jacobi iteration."""

    tol: float = 1e-12
    max_sweeps: int = 60
    sort: str | None = "desc"


@dataclass
class EigResult:
    """Eigendecomposition ``a = v @ diag(w) @ v.T``.

    ``w`` is sorted (nonincreasing by default); ``v`` is orthogonal with
    columns in the matching order.
    """

    w: np.ndarray
    v: np.ndarray
    converged: bool
    sweeps: int
    rotations: int
    off_history: list[float] = field(default_factory=list)

    def reconstruct(self) -> np.ndarray:
        return (self.v * self.w) @ self.v.T


def symmetric_off_norm(a: np.ndarray) -> float:
    """Frobenius norm of the strict off-diagonal part."""
    off = a - np.diag(np.diag(a))
    return float(np.linalg.norm(off))


def _eig_rotation_params(app: np.ndarray, aqq: np.ndarray, apq: np.ndarray):
    """Classical symmetric Jacobi angles annihilating ``a_pq`` (vectorised)."""
    c = np.ones_like(app)
    s = np.zeros_like(app)
    nz = apq != 0.0
    if np.any(nz):
        theta = (aqq[nz] - app[nz]) / (2.0 * apq[nz])
        t = np.sign(theta) / (np.abs(theta) + np.sqrt(1.0 + theta * theta))
        t = np.where(theta == 0.0, 1.0, t)
        cn = 1.0 / np.sqrt(1.0 + t * t)
        c[nz] = cn
        s[nz] = t * cn
    return c, s


def _apply_two_sided(A: np.ndarray, V: np.ndarray | None,
                     p: np.ndarray, q: np.ndarray,
                     c: np.ndarray, s: np.ndarray) -> None:
    """``A <- J^T A J`` for the disjoint rotations J(p_k, q_k, theta_k)."""
    # row update: rows p and q mix
    Ap = A[p, :]
    Aq = A[q, :]
    A[p, :] = c[:, None] * Ap - s[:, None] * Aq
    A[q, :] = s[:, None] * Ap + c[:, None] * Aq
    # column update
    Ap = A[:, p]
    Aq = A[:, q]
    A[:, p] = c * Ap - s * Aq
    A[:, q] = s * Ap + c * Aq
    if V is not None:
        Vp = V[:, p]
        Vq = V[:, q]
        V[:, p] = c * Vp - s * Vq
        V[:, q] = s * Vp + c * Vq


def jacobi_eigh(
    a: np.ndarray,
    ordering: str | Ordering = "fat_tree",
    options: EigOptions | None = None,
    compute_v: bool = True,
    **ordering_kwargs: object,
) -> EigResult:
    """Eigendecomposition of a symmetric matrix under a parallel ordering.

    The iteration stops after the first complete sweep in which every
    prescribed pair already satisfies the relative threshold
    ``|a_pq| <= tol * sqrt(|a_pp a_qq|)`` (or the absolute scale of the
    matrix when a diagonal entry vanishes).
    """
    a = np.asarray(a, dtype=np.float64)
    require(a.ndim == 2 and a.shape[0] == a.shape[1], "square matrix expected")
    require(np.allclose(a, a.T, atol=1e-12 * max(1.0, float(np.abs(a).max(initial=0.0)))),
            "matrix must be symmetric")
    n = a.shape[0]
    opts = options or EigOptions()
    if isinstance(ordering, Ordering):
        require(ordering.n == n, "ordering size mismatch")
        ord_obj = ordering
    else:
        ord_obj = make_ordering(ordering, n, **ordering_kwargs)

    A = a.copy()
    V = np.eye(n) if compute_v else None
    scale = max(1.0, float(np.abs(a).max(initial=0.0)))
    history: list[float] = []
    rotations = 0
    converged = False
    sweeps = 0
    # logical labels follow the moves; pairs address matrix indices through
    # the slot -> index map so the schedule machinery is reused verbatim
    slot_index = np.arange(n, dtype=np.intp)
    for sweep in range(opts.max_sweeps):
        sched = ord_obj.sweep(sweep)
        worst = 0.0
        for step in sched.steps:
            if step.pairs:
                sa = np.fromiter((pr[0] for pr in step.pairs), dtype=np.intp)
                sb = np.fromiter((pr[1] for pr in step.pairs), dtype=np.intp)
                p = slot_index[sa]
                q = slot_index[sb]
                app = A[p, p]
                aqq = A[q, q]
                apq = A[p, q]
                denom = np.sqrt(np.abs(app * aqq))
                denom = np.where(denom > 0, denom, scale)
                rel = np.abs(apq) / denom
                worst = max(worst, float(rel.max(initial=0.0)))
                rotate = rel > opts.tol
                if np.any(rotate):
                    c, s = _eig_rotation_params(app[rotate], aqq[rotate], apq[rotate])
                    _apply_two_sided(A, V, p[rotate], q[rotate], c, s)
                    rotations += int(np.count_nonzero(rotate))
            if step.moves:
                src = np.fromiter((m.src for m in step.moves), dtype=np.intp)
                dst = np.fromiter((m.dst for m in step.moves), dtype=np.intp)
                slot_index[dst] = slot_index[src]
        sweeps = sweep + 1
        history.append(symmetric_off_norm(A))
        if worst <= opts.tol:
            converged = True
            break

    w = np.diag(A).copy()
    if opts.sort == "desc":
        order = np.argsort(-w, kind="stable")
    elif opts.sort == "asc":
        order = np.argsort(w, kind="stable")
    else:
        order = np.arange(n)
    w = w[order]
    v = V[:, order] if compute_v else np.zeros((n, 0))
    return EigResult(
        w=w, v=v, converged=converged, sweeps=sweeps,
        rotations=rotations, off_history=history,
    )


@lru_cache(maxsize=None)
def _round_robin_steps(k: int) -> tuple[tuple[np.ndarray, np.ndarray], ...]:
    """``k - 1`` steps of ``k/2`` disjoint pairs covering all ``C(k, 2)``
    index pairs once (the circle method; ``k`` must be even)."""
    arr = list(range(k))
    steps = []
    for _ in range(k - 1):
        pa = []
        qa = []
        for i in range(k // 2):
            a, b = arr[i], arr[k - 1 - i]
            pa.append(min(a, b))
            qa.append(max(a, b))
        steps.append(
            (np.array(pa, dtype=np.intp), np.array(qa, dtype=np.intp))
        )
        arr = [arr[0], arr[-1]] + arr[1:-1]
    return tuple(steps)


def gram_eigh_batched(
    g: np.ndarray,
    tol: float = 1e-12,
    max_sweeps: int = 60,
    floor: np.ndarray | float = 0.0,
    backend: ComputeBackend | None = None,
) -> tuple[np.ndarray, int, int, bool]:
    """Cyclic two-sided Jacobi on a *stack* of small symmetric matrices.

    The low-overhead core of the Gram-space block kernel
    (:mod:`repro.blockjacobi.kernel`): ``g`` of shape ``(B, k, k)`` —
    typically the ``2b x 2b`` Gram matrices of all block pairs met in one
    schedule step — is overwritten **in place** with ``W^T g W`` while
    the orthogonal factors ``W`` (one per matrix) are accumulated.  The
    ``B`` sub-problems are independent (their column sets are disjoint),
    so each round-robin step rotates all of them at once: the rotation
    angles are computed on ``(B, k/2)`` arrays and applied as one batched
    ``(B, k, k)`` GEMM per side, which is what makes the block kernel
    BLAS-3 end to end.

    A pair is rotated when it fails the *relative* threshold
    ``|g_pq| > tol * sqrt(g_pp g_qq)``; pairs below it ride along with
    exact identity rotations.  The sweep loop exits early once every
    pair of every matrix satisfies
    ``|g_pq| <= tol * sqrt(g_pp g_qq) + floor``.  ``floor`` (scalar or
    per-matrix array) absorbs the Gram-formation noise a block kernel
    cannot rotate below (``~ k * eps * max(g_ii)`` after each BLAS-3
    application); ``floor = 0`` demands full relative orthogonality as
    the one-sided reference kernel does.

    Returns ``(W, rotations, sweeps, converged)`` with ``W`` of shape
    ``(B, k, k)`` and ``rotations`` summed over the stack; the final
    squared column norms are the diagonals of ``g`` after the call.
    """
    require(g.ndim == 3 and g.shape[1] == g.shape[2],
            "stack of square matrices expected")
    bk = backend if backend is not None else numpy_backend()
    nb, k = g.shape[0], g.shape[1]
    require(k % 2 == 0, "gram_eigh needs an even dimension (2b columns)")
    fdiv = np.asarray(floor, dtype=np.float64).reshape(-1, 1) / tol \
        if tol > 0.0 else np.zeros((1, 1))
    steps = _round_robin_steps(k)
    eye = np.eye(k)
    # J is rebuilt per step: every step pairs all k indices, so the
    # diagonal is fully overwritten; only the off-diagonal entries of
    # the *previous* step need clearing (done after each use)
    J = np.broadcast_to(eye, g.shape).copy()
    W = np.broadcast_to(eye, g.shape).copy()
    Wbuf = np.empty_like(W)
    tmp = np.empty_like(g)
    rotations = 0
    sweeps = 0
    converged = False
    for sweep in range(max_sweeps):
        worst = 0.0
        for p, q in steps:
            gpp = g[:, p, p]
            gqq = g[:, q, q]
            gpq = g[:, p, q]
            denom = np.sqrt(np.abs(gpp * gqq))
            rel = np.abs(gpq) / np.maximum(denom + fdiv, _TINY)
            worst = max(worst, float(rel.max(initial=0.0)))
            hits = (np.abs(gpq) > tol * denom) & (denom > 0.0)
            nhits = int(np.count_nonzero(hits))
            if nhits == 0:
                continue
            rotations += nhits
            safe = np.where(gpq == 0.0, 1.0, gpq)
            theta = (gqq - gpp) / (2.0 * safe)
            t = np.sign(theta) / (np.abs(theta) + np.sqrt(1.0 + theta * theta))
            t = np.where(theta == 0.0, 1.0, t)
            t = np.where(hits, t, 0.0)  # identity for pairs below threshold
            c = 1.0 / np.sqrt(1.0 + t * t)
            s = t * c
            J[:, p, p] = c
            J[:, q, q] = c
            J[:, p, q] = s
            J[:, q, p] = -s
            bk.matmul(g, J, out=tmp)
            bk.matmul(J.transpose(0, 2, 1), tmp, out=g)
            bk.matmul(W, J, out=Wbuf)
            W, Wbuf = Wbuf, W
            J[:, p, q] = 0.0
            J[:, q, p] = 0.0
        sweeps = sweep + 1
        if worst <= tol:
            converged = True
            break
    return W, rotations, sweeps, converged


def gram_eigh_grouped(
    g: np.ndarray,
    tol: float = 1e-12,
    max_sweeps: int = 60,
    floor: np.ndarray | float = 0.0,
    group_size: int = 1,
    backend: ComputeBackend | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """:func:`gram_eigh_batched` with *independent convergence per group*.

    The stack ``g`` of ``G * group_size`` small symmetric matrices is
    treated as ``G`` consecutive groups of ``group_size`` matrices each
    — in the batched SVD, one group is the set of block pairs one
    *problem matrix* meets in a schedule step.  Each group's sweep loop
    exits as soon as *its own* worst relative off-diagonal clears
    ``tol`` (the per-group analogue of the global early exit), and a
    finished group takes no further part in the iteration: its matrices
    are excluded from the gathered working stack, so the arithmetic any
    single group experiences is bit-identical to a standalone
    :func:`gram_eigh_batched` call on just that group.  That is the
    property the many-matrix batch API's conformance contract rests on
    — fusing problems into one super-batch must not change any
    problem's rotation sequence.

    Returns ``(W, rotations, sweeps, converged)`` where ``W`` is the
    full ``(G * group_size, k, k)`` stack of accumulated factors and the
    other three are per-group arrays of shape ``(G,)``.
    """
    require(g.ndim == 3 and g.shape[1] == g.shape[2],
            "stack of square matrices expected")
    bk = backend if backend is not None else numpy_backend()
    nb, k = g.shape[0], g.shape[1]
    require(k % 2 == 0, "gram_eigh needs an even dimension (2b columns)")
    require(group_size >= 1 and nb % group_size == 0,
            f"stack of {nb} matrices does not divide into groups "
            f"of {group_size}")
    ngroups = nb // group_size
    if tol > 0.0:
        fdiv = np.asarray(floor, dtype=np.float64).reshape(-1, 1) / tol
        if fdiv.shape[0] == 1:
            fdiv = np.broadcast_to(fdiv, (nb, 1))
    else:
        fdiv = np.zeros((nb, 1))
    steps = _round_robin_steps(k)
    eye = np.eye(k)
    W = np.broadcast_to(eye, g.shape).copy()
    rotations = np.zeros(ngroups, dtype=np.intp)
    sweeps = np.zeros(ngroups, dtype=np.intp)
    converged = np.zeros(ngroups, dtype=bool)
    active = np.arange(ngroups, dtype=np.intp)
    offsets = np.arange(group_size, dtype=np.intp)
    for _ in range(max_sweeps):
        if active.size == 0:
            break
        idx = (active[:, None] * group_size + offsets).reshape(-1)
        ga = g[idx]
        Wa = W[idx]
        fa = fdiv[idx]
        Ja = np.broadcast_to(eye, ga.shape).copy()
        tmp = np.empty_like(ga)
        Wbuf = np.empty_like(Wa)
        worst = np.zeros(len(idx))
        for p, q in steps:
            gpp = ga[:, p, p]
            gqq = ga[:, q, q]
            gpq = ga[:, p, q]
            denom = np.sqrt(np.abs(gpp * gqq))
            rel = np.abs(gpq) / np.maximum(denom + fa, _TINY)
            worst = np.maximum(worst, rel.max(axis=1))
            hits = (np.abs(gpq) > tol * denom) & (denom > 0.0)
            nhits = int(np.count_nonzero(hits))
            if nhits == 0:
                continue
            rotations[active] += hits.reshape(active.size, -1).sum(axis=1)
            safe = np.where(gpq == 0.0, 1.0, gpq)
            theta = (gqq - gpp) / (2.0 * safe)
            t = np.sign(theta) / (np.abs(theta) + np.sqrt(1.0 + theta * theta))
            t = np.where(theta == 0.0, 1.0, t)
            t = np.where(hits, t, 0.0)  # identity for pairs below threshold
            c = 1.0 / np.sqrt(1.0 + t * t)
            s = t * c
            Ja[:, p, p] = c
            Ja[:, q, q] = c
            Ja[:, p, q] = s
            Ja[:, q, p] = -s
            bk.matmul(ga, Ja, out=tmp)
            bk.matmul(Ja.transpose(0, 2, 1), tmp, out=ga)
            bk.matmul(Wa, Ja, out=Wbuf)
            Wa, Wbuf = Wbuf, Wa
            Ja[:, p, q] = 0.0
            Ja[:, q, p] = 0.0
        g[idx] = ga
        W[idx] = Wa
        sweeps[active] += 1
        done = worst.reshape(active.size, group_size).max(axis=1) <= tol
        converged[active[done]] = True
        active = active[~done]
    return W, rotations, sweeps, converged


def gram_eigh(
    g: np.ndarray,
    tol: float = 1e-12,
    max_sweeps: int = 60,
    floor: float = 0.0,
) -> tuple[np.ndarray, int, int, bool]:
    """Single-matrix view of :func:`gram_eigh_batched` (in place).

    ``g`` of shape ``(k, k)`` is overwritten with ``W^T g W``; returns
    ``(W, rotations, sweeps, converged)`` with ``W`` of shape
    ``(k, k)``.  See :func:`gram_eigh_batched` for the semantics of
    ``tol``, ``max_sweeps`` and ``floor``.
    """
    require(g.ndim == 2 and g.shape[0] == g.shape[1],
            "square matrix expected")
    W, rotations, sweeps, converged = gram_eigh_batched(
        g[None, :, :], tol=tol, max_sweeps=max_sweeps, floor=floor
    )
    return W[0], rotations, sweeps, converged
