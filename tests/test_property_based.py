"""Property-based tests (hypothesis) on core invariants.

These exercise the library on generated sizes and matrices rather than
hand-picked cases: ordering validity and restoration across the size
range, rotation invariants on arbitrary column data, move composition
algebra and SVD backward-stability on random well-posed inputs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.orderings import (
    check_all_pairs_once,
    check_local_pairs,
    check_one_directional,
    make_ordering,
)
from repro.orderings.schedule import Move, apply_moves, compose_moves
from repro.svd import jacobi_svd
from repro.svd.rotations import (
    apply_step_rotations,
    apply_step_rotations_batched,
    column_norms_sq,
    rotation_params,
)

# sizes are powers of two within the figure range; ring orderings accept
# any even size
pow2_sizes = st.sampled_from([4, 8, 16, 32])
even_sizes = st.sampled_from([4, 6, 8, 10, 12, 16, 20, 24, 32])


class TestOrderingInvariants:
    @settings(deadline=None, max_examples=20)
    @given(n=even_sizes)
    def test_ring_valid_any_even_size(self, n):
        sched = make_ordering("ring_new", n).sweep(0)
        assert check_all_pairs_once(sched).is_valid
        assert check_local_pairs(sched)
        assert check_one_directional(sched)

    @settings(deadline=None, max_examples=20)
    @given(n=even_sizes)
    def test_round_robin_valid_any_even_size(self, n):
        assert check_all_pairs_once(make_ordering("round_robin", n).sweep(0)).is_valid

    @settings(deadline=None, max_examples=10)
    @given(n=pow2_sizes)
    def test_fat_tree_identity_permutation(self, n):
        o = make_ordering("fat_tree", n)
        sched = o.sweep(0)
        assert check_all_pairs_once(sched).is_valid
        assert sched.final_layout() == list(range(1, n + 1))

    @settings(deadline=None, max_examples=10)
    @given(n=pow2_sizes, start=st.sampled_from([1, 17, 101]))
    def test_validity_independent_of_labelling(self, n, start):
        # relabelling invariance: any initial layout yields a valid sweep
        layout = list(range(start, start + n))
        sched = make_ordering("fat_tree", n).sweep(0)
        assert check_all_pairs_once(sched, layout=layout).is_valid


class TestStaticDynamicAgreement:
    """The static verifier and the dynamic predicates agree on generated
    schedules — healthy and corrupted alike (uses the ``verifier``
    fixture from conftest)."""

    # the verifier fixtures are stateless (they return module functions),
    # so sharing them across hypothesis examples is sound
    _fixture_ok = [HealthCheck.function_scoped_fixture]

    @settings(deadline=None, max_examples=15, suppress_health_check=_fixture_ok)
    @given(n=even_sizes)
    def test_static_gate_agrees_with_dynamic_predicates(self, verifier, n):
        sched = make_ordering("ring_new", n).sweep(0)
        report = verifier(sched)
        dynamic_ok = (check_all_pairs_once(sched).is_valid
                      and check_one_directional(sched))
        assert report.ok == dynamic_ok
        assert report.ok

    @settings(deadline=None, max_examples=10, suppress_health_check=_fixture_ok)
    @given(n=st.sampled_from([8, 16, 32]),
           which=st.sampled_from(["duplicate", "reverse"]))
    def test_corruptions_break_both_static_and_dynamic(self, verifier, n, which):
        # n >= 8 so the ring has >= 4 processors: on a 2-processor ring
        # the orientations coincide and reversal is not a corruption
        from repro.verify import duplicate_pair, reverse_ring_step

        sched = make_ordering("ring_new", n).sweep(0)
        if which == "duplicate":
            broken = duplicate_pair(sched)
            assert not check_all_pairs_once(broken).is_valid
            assert "SWEEP001" in verifier(broken).rules_fired()
        else:
            broken = reverse_ring_step(sched)
            assert not check_one_directional(broken)
            assert "DIR002" in verifier(broken).rules_fired()

    @settings(deadline=None, max_examples=10, suppress_health_check=_fixture_ok)
    @given(n=pow2_sizes)
    def test_ordering_gate_matches_restoration_period(self, ordering_verifier, n):
        for name in ("fat_tree", "ring_new", "round_robin"):
            o = make_ordering(name, n)
            report = ordering_verifier(o)
            assert report.ok
            assert 1 <= o.restoration_period() <= 2


class TestMoveAlgebra:
    @settings(deadline=None, max_examples=50)
    @given(data=st.data(), n=st.integers(4, 12))
    def test_compose_matches_sequential(self, data, n):
        perm1 = data.draw(st.permutations(range(n)))
        perm2 = data.draw(st.permutations(range(n)))
        m1 = tuple(Move(s, d) for s, d in enumerate(perm1) if s != d)
        m2 = tuple(Move(s, d) for s, d in enumerate(perm2) if s != d)
        payload = list(range(100, 100 + n))
        seq = apply_moves(apply_moves(payload, m1), m2)
        assert apply_moves(payload, compose_moves(m1, m2)) == seq

    @settings(deadline=None, max_examples=30)
    @given(data=st.data(), n=st.integers(4, 10))
    def test_compose_with_inverse_is_identity(self, data, n):
        perm = data.draw(st.permutations(range(n)))
        m = tuple(Move(s, d) for s, d in enumerate(perm) if s != d)
        inv = tuple(Move(mv.dst, mv.src) for mv in m)
        assert compose_moves(m, inv) == ()


class TestRotationInvariants:
    @settings(deadline=None, max_examples=50)
    @given(
        seed=st.integers(0, 10_000),
        m=st.integers(2, 20),
    )
    def test_rotation_orthogonalises_and_preserves_norms(self, seed, m):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(m)
        y = rng.standard_normal(m)
        a, b, g = x @ x, y @ y, x @ y
        c, s = rotation_params(np.array([a]), np.array([b]), np.array([g]))
        xn = c[0] * x - s[0] * y
        yn = s[0] * x + c[0] * y
        scale = max(1.0, abs(g))
        assert abs(xn @ yn) < 1e-9 * scale
        assert xn @ xn + yn @ yn == pytest.approx(a + b, rel=1e-12)

    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(0, 10_000))
    def test_step_preserves_frobenius_and_reduces_off(self, seed):
        from repro.svd.convergence import off_norm

        rng = np.random.default_rng(seed)
        X = rng.standard_normal((10, 8))
        f = np.linalg.norm(X)
        before = off_norm(X)
        apply_step_rotations(
            X, None, np.arange(0, 8, 2), np.arange(1, 8, 2), 0.0, "desc"
        )
        assert np.linalg.norm(X) == pytest.approx(f, rel=1e-12)
        assert off_norm(X) <= before + 1e-9


class TestNormCacheInvariants:
    """The batched kernel's cross-sweep squared-norm cache must track
    freshly computed column norms: within rtol after every kernel call
    and after every full machine sweep, for random orderings, sizes and
    sort modes.  The cancellation guard recomputes entries within
    ``sqrt(eps)`` of full cancellation, so ``1e-8`` relative is the
    contract."""

    CACHE_RTOL = 1e-8

    @settings(deadline=None, max_examples=40)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(1, 8),
        m=st.integers(2, 12),
        sort=st.sampled_from(["desc", "asc", None]),
    )
    def test_kernel_call_updates_cache_to_fresh_norms(self, seed, k, m, sort):
        rng = np.random.default_rng(seed)
        n = 2 * k
        WT = rng.standard_normal((n, m))
        norms = column_norms_sq(WT.T).copy()
        P = rng.permutation(n).reshape(k, 2).astype(np.intp)
        apply_step_rotations_batched(WT, P, 0.0, sort, norms, m)
        fresh = np.einsum("nm,nm->n", WT, WT)
        assert np.allclose(norms, fresh, rtol=self.CACHE_RTOL)

    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(0, 10_000), span=st.integers(0, 12))
    def test_kernel_cache_survives_wide_dynamic_range(self, seed, span):
        # columns spanning up to 10**span in norm exercise the
        # cancellation guard's fresh-recompute path
        rng = np.random.default_rng(seed)
        n, m = 8, 10
        WT = rng.standard_normal((n, m)) * np.logspace(0, -span, n)[:, None]
        norms = column_norms_sq(WT.T).copy()
        P = np.arange(n, dtype=np.intp).reshape(n // 2, 2)
        apply_step_rotations_batched(WT, P, 0.0, "desc", norms, m)
        fresh = np.einsum("nm,nm->n", WT, WT)
        assert np.allclose(norms, fresh, rtol=self.CACHE_RTOL)

    @settings(deadline=None, max_examples=15)
    @given(
        seed=st.integers(0, 1_000),
        n=st.sampled_from([4, 8, 16]),
        name=st.sampled_from(["fat_tree", "ring_new", "round_robin"]),
        sort=st.sampled_from(["desc", "asc", None]),
    )
    def test_machine_cache_tracks_norms_after_every_sweep(
        self, seed, n, name, sort
    ):
        # the simulated machine keeps the cache alive across sweeps —
        # exactly the cross-sweep reuse the serial driver performs
        from repro.machine import TreeMachine, make_topology

        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n + 4, n))
        machine = TreeMachine(make_topology("perfect", n // 2))
        machine.load(a, kernel="batched")
        ordering = make_ordering(name, n)
        for sweep in range(5):
            machine.run_sweep(ordering.sweep(sweep), tol=1e-12, sort=sort)
            fresh = column_norms_sq(machine.X)
            assert np.allclose(machine._norms_sq, fresh, rtol=self.CACHE_RTOL)


class TestSVDBackwardStability:
    @settings(deadline=None, max_examples=10)
    @given(
        seed=st.integers(0, 1_000),
        n=st.sampled_from([4, 8, 16]),
        extra=st.integers(0, 8),
    )
    def test_matches_lapack_on_random_input(self, seed, n, extra):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n + extra, n))
        r = jacobi_svd(a, ordering="fat_tree")
        ref = np.linalg.svd(a, compute_uv=False)
        assert r.converged
        scale = ref[0] if ref[0] > 0 else 1.0
        assert np.max(np.abs(r.sigma - ref)) < 1e-11 * scale

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 1_000))
    def test_scaling_equivariance(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((12, 8))
        r1 = jacobi_svd(a)
        r2 = jacobi_svd(1000.0 * a)
        assert np.allclose(r2.sigma, 1000.0 * r1.sigma, rtol=1e-10)

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 1_000))
    def test_orthogonal_invariance_of_sigma(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((12, 8))
        q, _ = np.linalg.qr(rng.standard_normal((12, 12)))
        r1 = jacobi_svd(a)
        r2 = jacobi_svd(q @ a)
        assert np.allclose(np.sort(r1.sigma), np.sort(r2.sigma), atol=1e-10)
