"""Plan-integrity analysis: re-elaborate compiled plans (``PLAN*``).

:mod:`repro.orderings.plan` lowers every :class:`Schedule` once and
caches the result behind a structural LRU plus a per-instance memo.
Every executor trusts those arrays blindly — the simulator moves
columns by ``block_cols[cs.dst] = block_cols[cs.src]``, the restoration
proof reads ``trajectory[-1]``.  A corrupted lowering, a stale memo or
a fingerprint collision would therefore corrupt *every* downstream
result while each individual step still looked plausible.

This pass re-derives everything from the source schedule by independent
means and compares:

``PLAN001``
    per-step index arrays (``pairs``/``a``/``b``/``src``/``dst``) plus
    the derived leaf/levels/counters, recomputed from ``step.pairs`` /
    ``step.moves`` with fresh arithmetic;
``PLAN002``
    the slot trajectory and final layout, re-walked through
    :func:`~repro.orderings.schedule.apply_moves` — the snapshot-
    semantics oracle the lowering does *not* use;
``PLAN003``
    the cached plan (instance memo + LRU, via
    :func:`~repro.orderings.plan.compile_schedule`) against a fresh
    uncached lowering (:func:`~repro.orderings.plan.lower_schedule`):
    whatever the cache serves must be structurally identical to what
    lowering would produce right now.
"""

from __future__ import annotations

import numpy as np

from ..orderings.plan import (
    CompiledSchedule,
    compile_schedule,
    lower_schedule,
    plans_structurally_equal,
)
from ..orderings.schedule import Schedule, apply_moves
from ..util.bits import comm_level, leaf_of_slot
from .diagnostics import Diagnostic

__all__ = ["check_plan_cache", "check_plan_integrity"]


def check_plan_integrity(
    schedule: Schedule,
    plan: CompiledSchedule | None = None,
) -> list[Diagnostic]:
    """Re-elaborate ``plan`` against its source ``schedule``
    (rules ``PLAN001``/``PLAN002``).

    ``plan`` defaults to whatever :func:`compile_schedule` serves —
    i.e. the exact object every executor would use.
    """
    if plan is None:
        plan = compile_schedule(schedule)
    out: list[Diagnostic] = []
    if plan.n != schedule.n or len(plan.steps) != len(schedule.steps):
        out.append(Diagnostic(
            rule="PLAN001",
            message=f"plan shape ({plan.n} slots, {len(plan.steps)} steps) "
                    f"disagrees with the schedule "
                    f"({schedule.n} slots, {len(schedule.steps)} steps)",
            details=(("plan_n", plan.n), ("schedule_n", schedule.n)),
        ))
        return out  # per-step comparison would be misaligned

    for step_no, (src_step, cs) in enumerate(
            zip(schedule.steps, plan.steps), start=1):
        want_pairs = np.asarray(src_step.pairs,
                                dtype=np.intp).reshape(-1, 2)
        want_src = np.asarray([m.src for m in src_step.moves],
                              dtype=np.intp)
        want_dst = np.asarray([m.dst for m in src_step.moves],
                              dtype=np.intp)
        mismatched = []
        if not np.array_equal(cs.pairs, want_pairs):
            mismatched.append("pairs")
        if not (np.array_equal(cs.a, want_pairs[:, 0])
                and np.array_equal(cs.b, want_pairs[:, 1])):
            mismatched.append("a/b views")
        if not np.array_equal(cs.src, want_src):
            mismatched.append("src")
        if not np.array_equal(cs.dst, want_dst):
            mismatched.append("dst")
        if not np.array_equal(cs.pair_leaves, want_pairs[:, 0] // 2):
            mismatched.append("pair_leaves")
        levels = [comm_level(leaf_of_slot(int(s)), leaf_of_slot(int(d)))
                  for s, d in zip(want_src, want_dst)]
        if not np.array_equal(cs.move_levels, np.asarray(levels,
                                                         dtype=np.intp)):
            mismatched.append("move_levels")
        if cs.n_remote != sum(1 for lv in levels if lv):
            mismatched.append("n_remote")
        if cs.hop_count != 2 * sum(levels):
            mismatched.append("hop_count")
        if mismatched:
            out.append(Diagnostic(
                rule="PLAN001", step=step_no,
                message="compiled arrays disagree with the source step: "
                        + ", ".join(mismatched),
                details=(("fields", tuple(mismatched)),),
            ))

    # PLAN002: independent trajectory walk through apply_moves (snapshot
    # semantics — a different algorithm than the lowering's layout walk)
    layout = list(range(schedule.n))
    for step_no, src_step in enumerate(schedule.steps, start=1):
        layout = apply_moves(layout, src_step.moves)
        if not np.array_equal(plan.trajectory[step_no - 1],
                              np.asarray(layout, dtype=np.intp)):
            out.append(Diagnostic(
                rule="PLAN002", step=step_no,
                message="compiled trajectory row disagrees with the "
                        "move phases walked independently",
                details=(("expected", tuple(layout)),
                         ("got", tuple(int(x)
                                       for x in plan.trajectory[step_no - 1]))),
            ))
    final = plan.final_layout()
    if not np.array_equal(final, np.asarray(layout, dtype=np.intp)):
        out.append(Diagnostic(
            rule="PLAN002",
            message="final layout disagrees with the sweep's move phases",
            details=(("expected", tuple(layout)),
                     ("got", tuple(int(x) for x in final))),
        ))
    return out


def check_plan_cache(schedule: Schedule) -> list[Diagnostic]:
    """Prove the cache serves the right plan for ``schedule``
    (rule ``PLAN003``).

    Compares the cached plan (instance memo or LRU hit — exactly what a
    run would get) against a fresh uncached lowering.  Any structural
    difference means a stale memo or a fingerprint collision.
    """
    served = compile_schedule(schedule)
    fresh = lower_schedule(schedule)
    if plans_structurally_equal(served, fresh):
        return []
    return [Diagnostic(
        rule="PLAN003",
        message=f"plan cache served a structurally different plan for "
                f"{schedule.name!r} (n={schedule.n}) than lowering "
                "produces now (stale instance memo or fingerprint "
                "collision)",
        details=(("schedule", schedule.name), ("n", schedule.n)),
    )]
