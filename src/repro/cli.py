"""Command-line interface: regenerate experiments and run quick SVDs.

Installed as ``repro-harness``; also runnable as ``python -m repro.cli``.

Subcommands
-----------
``list``                         list available experiments and orderings
``figures [IDS...]``             print figure step tables (default: all)
``tables [IDS...]``              print TAB-* tables (default: all)
``svd --m M --n N [--ordering O] [--topology T]``
                                 run one decomposition and report telemetry
``lint [--ordering O ...] [--n N ...] [--topology T] [--json]``
                                 statically verify schedules (exit 1 on findings)
``analyze [--ordering O ...] [--n N ...] [--workers W ...] [--quick] [--json]``
                                 statically verify the execution layer: compiled
                                 plans, executor chunkings, fault-tolerance
                                 totality (exit 1 on findings)
``bench [--tag T] [--compare OLD.json] [--quick] [--json]``
                                 run the timing harness, write BENCH_<tag>.json
                                 (exit 1 on perf regression vs --compare)
``faults [--quick] [--json]``    run the registered chaos campaign and print
                                 the survival matrix (exit 1 on any casualty)
``tune --m M --n N [--batch B] [--quick] [--dry-run] [--check]``
                                 search (kernel, ordering, block size,
                                 executor, workers, compute backend) for the
                                 shape and persist the winner as a tuned
                                 profile (PROFILE_<host>.json)
``backends [--json]``            list executor / compute-backend probe status
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]

_FIGURES = ("FIG1", "FIG2", "FIG3", "FIG4", "FIG5", "FIG6", "FIG7", "FIG8", "FIG9")
_TABLES = ("TAB-COMM", "TAB-CONT", "TAB-TIME", "TAB-CONV", "TAB-SWEEP",
           "TAB-SCALE", "TAB-MSG", "TAB-OPT", "TAB-CROSS", "TAB-BATCH")


def build_parser() -> argparse.ArgumentParser:
    """The repro-harness argument parser."""
    p = argparse.ArgumentParser(
        prog="repro-harness",
        description="Zhou & Brent (ICPP 1993) reproduction harness",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, orderings and topologies")

    fig = sub.add_parser("figures", help="regenerate figure step tables")
    fig.add_argument("ids", nargs="*", default=[], help=f"subset of {_FIGURES}")

    tab = sub.add_parser("tables", help="regenerate evaluation tables")
    tab.add_argument("ids", nargs="*", default=[], help=f"subset of {_TABLES}")

    run = sub.add_parser("svd", help="run one SVD and report telemetry")
    run.add_argument("--m", type=int, default=96)
    run.add_argument("--n", type=int, default=64)
    run.add_argument("--ordering", default="hybrid")
    run.add_argument("--topology", default="cm5")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--serial", action="store_true",
                     help="use the serial driver (no machine simulation)")
    run.add_argument("--batch", type=int, default=None, metavar="B",
                     help="solve a batch of B independent seeded matrices "
                          "through svd_batch (schedule compiled once, "
                          "problem-axis stacked GEMMs) and report the "
                          "throughput; incompatible with --fault")
    run.add_argument("--kernel", default=None,
                     choices=["reference", "batched", "gram"],
                     help="rotation kernel (batched = fused fast path; "
                          "gram = BLAS-3 block kernel, needs --block-size)")
    run.add_argument("--block-size", type=int, default=None, metavar="B",
                     help="run at block granularity with B columns per "
                          "schedule unit (default: scalar, 1 column)")
    run.add_argument("--executor", default=None,
                     choices=["serial", "threads", "processes"],
                     help="block step-execution backend (threads/processes "
                          "split each step's pair subproblems across "
                          "workers, bit-identical to serial; processes work "
                          "on shared-memory views; needs --block-size)")
    run.add_argument("--workers", type=int, default=None, metavar="W",
                     help="workers of --executor threads/processes "
                          "(default: $REPRO_WORKERS or the CPU count)")
    run.add_argument("--compute-backend", default=None,
                     choices=["numpy", "einsum", "numba", "cupy"],
                     help="batched-GEMM backend of the block kernels "
                          "(einsum is bit-identical to numpy; numba/cupy "
                          "are optional and fall back to numpy when "
                          "unavailable; needs --block-size)")
    run.add_argument("--sanitize", action="store_true",
                     help="arm the runtime sanitizer (write-set records + "
                          "sweep-boundary numeric canaries; needs "
                          "--block-size, incompatible with --fault)")
    run.add_argument("--max-sweeps", type=int, default=None, metavar="S",
                     help="outer sweep budget (exit 1 if exhausted without "
                          "convergence)")
    run.add_argument("--fault", default=None, metavar="KIND",
                     help="inject one fault of this kind (see 'faults' "
                          "subcommand) on the first remote move and recover")

    faults = sub.add_parser(
        "faults",
        help="run the registered chaos campaign (fault kinds x orderings "
             "x sizes) and print the survival matrix",
    )
    faults.add_argument("--quick", action="store_true",
                        help="n=8, scalar reference kernel only (CI tier)")
    faults.add_argument("--seed", type=int, default=1234,
                        help="matrix seed of the campaign runs")
    faults.add_argument("--json", action="store_true",
                        help="emit machine-readable per-case outcomes")

    lint = sub.add_parser(
        "lint",
        help="statically verify schedules (races, deadlock, direction, "
             "coverage, restoration; plus link capacity with --topology)",
    )
    lint.add_argument("--ordering", action="append", default=None,
                      metavar="NAME", dest="orderings",
                      help="ordering to lint (repeatable; default: all registered)")
    lint.add_argument("--n", action="append", type=int, default=None,
                      metavar="N", dest="sizes",
                      help="problem size to lint at (repeatable; default: 8 16 32)")
    lint.add_argument("--topology", default=None,
                      help="enable deadlock and link-capacity checks on this "
                           "topology (default: structural checks only)")
    lint.add_argument("--json", action="store_true",
                      help="emit a machine-readable JSON report")

    analyze = sub.add_parser(
        "analyze",
        help="statically verify the execution layer: compiled-plan "
             "integrity, executor chunking races/determinism, and "
             "fault-tolerance totality for every registered ordering",
    )
    analyze.add_argument("--ordering", action="append", default=None,
                         metavar="NAME", dest="orderings",
                         help="ordering to analyze (repeatable; "
                              "default: all registered)")
    analyze.add_argument("--n", action="append", type=int, default=None,
                         metavar="N", dest="sizes",
                         help="problem size to analyze at (repeatable; "
                              "default: 8 16 32)")
    analyze.add_argument("--workers", action="append", type=int, default=None,
                         metavar="W", dest="workers",
                         help="executor worker count to prove the chunking "
                              "for (repeatable; default: 1 2 4)")
    analyze.add_argument("--topology", default="perfect",
                         help="machine for the fault-tolerance totality "
                              "pass (default: perfect; 'none' disables it)")
    analyze.add_argument("--quick", action="store_true",
                         help="CI smoke matrix: n=8, workers 1 2")
    analyze.add_argument("--json", action="store_true",
                         help="emit a machine-readable JSON report")

    bench = sub.add_parser(
        "bench",
        help="time the named scenarios (kernels, parallel simulator, lint "
             "gate) and write a schema-versioned BENCH_<tag>.json",
    )
    bench.add_argument("--tag", default="local",
                       help="report tag; output file is BENCH_<tag>.json")
    bench.add_argument("--out", default=".", metavar="DIR",
                       help="directory the report is written to")
    bench.add_argument("--repeats", type=int, default=5,
                       help="measured repeats per scenario (median reported)")
    bench.add_argument("--warmup", type=int, default=1,
                       help="discarded warmup runs per scenario")
    bench.add_argument("--quick", action="store_true",
                       help="tiny problem sizes (CI smoke mode)")
    bench.add_argument("--scenario", action="append", default=None,
                       metavar="NAME", dest="scenarios",
                       help="run only this scenario (repeatable)")
    bench.add_argument("--filter", default=None, metavar="REGEX",
                       help="run only scenarios whose name matches this "
                            "regular expression (re.search; composes with "
                            "--scenario)")
    bench.add_argument("--json", action="store_true",
                       help="print the full report JSON to stdout")
    bench.add_argument("--compare", default=None, metavar="OLD.json",
                       help="compare against a previous report; exit 1 when "
                            "any shared scenario regressed")
    bench.add_argument("--max-slowdown", type=float, default=20.0,
                       metavar="PCT",
                       help="allowed per-scenario slowdown for --compare "
                            "(percent, default 20)")
    bench.add_argument("--profile", action="store_true",
                       help="attach a per-scenario phase breakdown "
                            "(compute / route / merge seconds) to the "
                            "report, from one extra instrumented run")

    tune = sub.add_parser(
        "tune",
        help="search kernel x ordering x block size x executor x workers "
             "x compute backend for one shape and persist the winner as "
             "a tuned profile (PROFILE_<host>.json)",
    )
    tune.add_argument("--m", type=int, default=96)
    tune.add_argument("--n", type=int, default=64)
    tune.add_argument("--batch", type=int, default=None, metavar="B",
                      help="tune the svd_batch path for batches of B "
                           "matrices (default: single-matrix svd)")
    tune.add_argument("--quick", action="store_true",
                      help="one candidate per axis and a short repeat "
                           "schedule (CI smoke mode)")
    tune.add_argument("--dry-run", action="store_true",
                      help="print the candidate space (availability-"
                           "filtered) without timing anything")
    tune.add_argument("--out", default=".", metavar="DIR",
                      help="directory the profile is written to")
    tune.add_argument("--host", default=None, metavar="TAG",
                      help="profile filename tag (default: this host's "
                           "sanitised node name)")
    tune.add_argument("--no-save", action="store_true",
                      help="search but do not write the profile")
    tune.add_argument("--check", action="store_true",
                      help="exit 1 unless the winner beats the default "
                           "configuration within --slack (the CI gate)")
    tune.add_argument("--slack", type=float, default=1.0, metavar="R",
                      help="--check passes when winner <= default * R "
                           "(default 1.0: strictly no slower)")
    tune.add_argument("--json", action="store_true",
                      help="emit the tune result as JSON")

    backends = sub.add_parser(
        "backends",
        help="list the step-executor and compute-backend probe status of "
             "this host (what tune's availability filter consumes)",
    )
    backends.add_argument("--json", action="store_true",
                          help="emit the catalogue as JSON")
    return p


def _harness():
    # deferred import: the harness lives in benchmarks/ for discoverability,
    # but the CLI must work from an installed package too, so the experiment
    # runners are resolved from repro.analysis directly
    import importlib.util
    import pathlib

    here = pathlib.Path(__file__).resolve()
    for candidate in (
        here.parents[2] / "benchmarks" / "harness.py",
        here.parents[3] / "benchmarks" / "harness.py",
    ):
        if candidate.exists():
            spec = importlib.util.spec_from_file_location("repro_harness", candidate)
            mod = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(mod)
            return mod.EXPERIMENTS
    raise RuntimeError("benchmarks/harness.py not found; run from the repository")


def _bench(args: argparse.Namespace) -> int:
    """The ``bench`` subcommand body; returns a process exit code
    (0 clean, 1 regression vs --compare, 2 usage/validation error)."""
    import json
    import os
    import re

    from repro.bench import (
        build_report,
        compare_reports,
        default_scenarios,
        load_report,
        pin_blas_threads,
        render_report,
        run_scenario,
        validate_report,
        write_report,
    )

    if not re.fullmatch(r"[A-Za-z0-9._-]+", args.tag):
        print(f"invalid tag {args.tag!r}: use letters, digits, . _ -")
        return 2
    if args.repeats < 1 or args.warmup < 0:
        print("need --repeats >= 1 and --warmup >= 0")
        return 2
    if args.max_slowdown <= 0:
        print("--max-slowdown must be a positive percentage")
        return 2
    old = None
    if args.compare is not None:
        # fail on a bad baseline *before* spending time measuring
        try:
            old = load_report(args.compare)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read {args.compare}: {exc}")
            return 2
        problems = validate_report(old)
        if problems:
            print(f"invalid report {args.compare}:")
            for msg in problems:
                print(f"  - {msg}")
            return 2

    scens = default_scenarios(quick=args.quick)
    if args.filter is not None:
        try:
            pat = re.compile(args.filter)
        except re.error as exc:
            print(f"invalid --filter regex {args.filter!r}: {exc}")
            return 2
        scens = [s for s in scens if pat.search(s.name)]
        if not scens:
            print(f"--filter {args.filter!r} matches no scenario")
            return 2
    if args.scenarios:
        by_name = {s.name: s for s in scens}
        unknown = [n for n in args.scenarios if n not in by_name]
        if unknown:
            print(f"unknown scenario(s) {unknown}; "
                  f"available: {', '.join(by_name)}")
            return 2
        scens = [by_name[n] for n in args.scenarios]

    # pin the BLAS pool so executor speedups are attributable to the
    # step executor, not to OpenBLAS's own threading
    pinned = pin_blas_threads(1)
    blas_threads = 1 if pinned is not None else None
    if not args.json and blas_threads is None:
        print("warning: no controllable BLAS pool found; timings unpinned",
              flush=True)
    records = []
    for s in scens:
        if not args.json:
            print(f"timing {s.name} ...", flush=True)
        records.append(run_scenario(s, repeats=args.repeats,
                                    warmup=args.warmup,
                                    profile=args.profile))
    doc = build_report(args.tag, records, repeats=args.repeats,
                       warmup=args.warmup, quick=args.quick,
                       blas_threads=blas_threads)
    path = os.path.join(args.out, f"BENCH_{args.tag}.json")
    write_report(doc, path)
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(render_report(doc))
        print(f"wrote {path}")

    if old is not None:
        regressions, compared = compare_reports(
            old, doc, max_slowdown=args.max_slowdown / 100.0
        )
        if not compared:
            print(f"no shared scenarios with {args.compare}; nothing compared")
            return 0
        if regressions:
            print(f"PERF REGRESSION vs {args.compare} "
                  f"(> {args.max_slowdown:g}% slower):")
            for r in regressions:
                print(f"  {r['name']}: {r['old_wall_time_s'] * 1e3:.3f} ms -> "
                      f"{r['new_wall_time_s'] * 1e3:.3f} ms "
                      f"({r['ratio']:.2f}x)")
            return 1
        print(f"{len(compared)} scenario(s) compared against "
              f"{args.compare}: no regression")
    return 0


def _tune(args: argparse.Namespace) -> int:
    """The ``tune`` subcommand body; returns a process exit code
    (0 ok, 1 --check failed, 2 usage error)."""
    import dataclasses
    import json

    from repro.bench import pin_blas_threads
    from repro.tune import (backend_catalogue, candidate_space, profile_path,
                            save_profile, tune)

    if args.m < 2 or args.n < 2 or args.m < args.n:
        print("need --m >= --n >= 2")
        return 2
    if args.batch is not None and args.batch < 1:
        print("--batch must be a positive matrix count")
        return 2
    if args.slack <= 0:
        print("--slack must be a positive ratio")
        return 2

    catalogue = backend_catalogue()
    candidates = candidate_space(args.m, args.n, args.batch,
                                 quick=args.quick, catalogue=catalogue)
    if args.dry_run:
        if args.json:
            print(json.dumps({
                "m": args.m, "n": args.n, "batch": args.batch,
                "quick": args.quick, "catalogue": catalogue,
                "candidates": [c.options_dict() for c in candidates],
            }, indent=2))
        else:
            shape = f"{args.m}x{args.n}" + \
                (f" batch={args.batch}" if args.batch else "")
            print(f"candidate space for {shape} "
                  f"({len(candidates)} configuration(s)):")
            for c in candidates:
                print(f"  {c.label()}")
        return 0

    # same pinning discipline as bench: attributable medians
    pin_blas_threads(1)
    log = None if args.json else (lambda msg: print(f"  {msg}", flush=True))
    if not args.json:
        print(f"tuning {args.m}x{args.n}"
              + (f" batch={args.batch}" if args.batch else "")
              + f" over {len(candidates)} candidate(s) ...", flush=True)
    result = tune(args.m, args.n, args.batch, quick=args.quick,
                  candidates=candidates, log=log)
    path = None
    if not args.no_save:
        path = profile_path(args.out, args.host)
        save_profile(result, path, host=args.host)
    beats = result.winner_median_s <= result.default_median_s * args.slack
    if args.json:
        print(json.dumps({
            "m": result.m, "n": result.n, "batch": result.batch,
            "winner": result.winner.options_dict(),
            "winner_median_s": result.winner_median_s,
            "default_median_s": result.default_median_s,
            "speedup": result.speedup,
            "beats_default": beats,
            "profile": None if path is None else str(path),
            "trials": [
                {**dataclasses.asdict(t), "candidate": t.candidate.label()}
                for t in result.trials
            ],
        }, indent=2))
    else:
        print(f"winner: {result.winner.label()}  "
              f"{result.winner_median_s * 1e3:.2f} ms "
              f"(default {result.default_median_s * 1e3:.2f} ms, "
              f"{result.speedup:.2f}x)")
        if path is not None:
            print(f"wrote {path}")
    if args.check and not beats:
        print(f"TUNE CHECK FAILED: winner {result.winner_median_s * 1e3:.2f} "
              f"ms > default {result.default_median_s * 1e3:.2f} ms "
              f"* slack {args.slack:g}")
        return 1
    return 0


def _backends(args: argparse.Namespace) -> int:
    """The ``backends`` subcommand body (always exit 0: an unavailable
    optional backend is information, not an error)."""
    import json

    from repro.tune import backend_catalogue

    catalogue = backend_catalogue()
    if args.json:
        print(json.dumps(catalogue, indent=2))
        return 0
    for family, status in catalogue.items():
        print(f"{family}:")
        for name, reason in status.items():
            state = "available" if reason is None else f"unavailable: {reason}"
            print(f"  {name:<10} {state}")
    return 0


def _svd(args: argparse.Namespace) -> int:
    """The ``svd`` subcommand body; returns a process exit code (0 ok,
    1 non-converged result, 2 usage error)."""
    if args.kernel == "gram" and args.block_size is None:
        print("--kernel gram is a block kernel; pass --block-size B")
        return 2
    if args.block_size is not None and args.block_size < 1:
        print("--block-size must be a positive column count")
        return 2
    if args.executor is not None and args.block_size is None:
        print("--executor applies to block mode; pass --block-size B")
        return 2
    if args.workers is not None and args.workers < 1:
        print("--workers must be >= 1")
        return 2
    if args.workers is not None and args.block_size is None:
        print("--workers applies to block mode; pass --block-size B")
        return 2
    if args.compute_backend is not None and args.block_size is None:
        print("--compute-backend applies to block mode; pass --block-size B")
        return 2
    if args.max_sweeps is not None and args.max_sweeps < 1:
        print("--max-sweeps must be >= 1")
        return 2
    if args.sanitize and args.block_size is None:
        print("--sanitize applies to block mode; pass --block-size B")
        return 2
    if args.sanitize and args.fault is not None:
        print("--sanitize is for healthy runs; fault-injected runs use "
              "the recovery machinery's own detectors")
        return 2
    if args.batch is not None and args.batch < 1:
        print("--batch must be a positive matrix count")
        return 2
    if args.batch is not None and args.fault is not None:
        print("--batch runs the direct batch driver; fault injection is a "
              "machine-layer feature (drop --batch or --fault)")
        return 2
    options = None
    if args.sanitize:
        from repro.blockjacobi import BlockJacobiOptions

        options = BlockJacobiOptions(
            block_size=args.block_size, sanitize=True,
            **({"max_sweeps": args.max_sweeps}
               if args.max_sweeps is not None else {}))
    elif args.max_sweeps is not None:
        from repro.svd import JacobiOptions

        options = JacobiOptions(max_sweeps=args.max_sweeps)
    plan = None
    if args.fault is not None:
        from repro.faults.campaign import CampaignCase, single_fault_plan
        from repro.faults.plan import FAULT_KINDS

        if args.fault not in FAULT_KINDS:
            print(f"unknown fault kind {args.fault!r}; "
                  f"available: {', '.join(FAULT_KINDS)}")
            return 2
        try:
            plan = single_fault_plan(CampaignCase(
                args.ordering, args.fault, args.n,
                args.kernel or "reference", args.block_size))
        except ValueError as exc:
            print(f"cannot place a {args.fault!r} fault: {exc}")
            return 2
    rng = np.random.default_rng(args.seed)
    import warnings

    from repro.util.errors import ConvergenceWarning

    if args.batch is not None:
        from repro import svd_batch

        stack = rng.standard_normal((args.batch, args.m, args.n))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            batch = svd_batch(stack, ordering=args.ordering,
                              kernel=args.kernel, block_size=args.block_size,
                              executor=args.executor, workers=args.workers,
                              compute_backend=args.compute_backend,
                              options=options)
        print(f"batch of {len(batch)}: {batch.summary()}")
        print(f"elapsed={batch.elapsed_s:.3f}s "
              f"throughput={batch.matrices_per_sec:.1f} matrices/sec")
        # LAPACK spot check on a handful of items
        errs = []
        for i in {0, len(batch) // 2, len(batch) - 1}:
            ref = np.linalg.svd(stack[i], compute_uv=False)
            errs.append(float(np.max(np.abs(batch[i].sigma - ref)) / ref[0]))
        print(f"max relative sigma error vs LAPACK (spot check): "
              f"{max(errs):.2e}")
        if not batch.converged:
            print(f"NOT CONVERGED: {batch.n_items - batch.n_converged} of "
                  f"{batch.n_items} items")
            return 1
        return 0

    a = rng.standard_normal((args.m, args.n))
    with warnings.catch_warnings():
        # the CLI reports convergence explicitly (and via the exit code)
        warnings.simplefilter("ignore", ConvergenceWarning)
        if args.serial and plan is None:
            from repro import svd

            r = svd(a, ordering=args.ordering, kernel=args.kernel,
                    block_size=args.block_size, executor=args.executor,
                    workers=args.workers,
                    compute_backend=args.compute_backend, options=options)
            print(f"converged={r.converged} sweeps={r.sweeps} "
                  f"rotations={r.rotations} sorted={r.emerged_sorted}")
        else:
            from repro import parallel_svd

            r, rep = parallel_svd(a, topology=args.topology,
                                  ordering=args.ordering, kernel=args.kernel,
                                  block_size=args.block_size,
                                  executor=args.executor,
                                  workers=args.workers,
                                  compute_backend=args.compute_backend,
                                  options=options, fault_plan=plan)
            print(f"converged={r.converged} sweeps={r.sweeps}")
            print(f"total={rep.total_time:.0f} compute={rep.compute_time:.0f} "
                  f"comm={rep.comm_time:.0f}")
            print(f"max contention={rep.max_contention:.2f} "
                  f"contention-free={rep.contention_free}")
            if plan is not None:
                from repro.machine.trace import render_fault_log

                print(f"recovery={rep.recovery_time:.0f} "
                      f"rollbacks={rep.rollbacks}")
                print(render_fault_log(r.fault_events))
    if not r.converged:
        print(f"NOT CONVERGED: {r.summary()}")
        return 1
    ref = np.linalg.svd(a, compute_uv=False)
    err = float(np.max(np.abs(r.sigma - ref)) / ref[0])
    print(f"max relative sigma error vs LAPACK: {err:.2e}")
    return 0


def _faults(args: argparse.Namespace) -> int:
    """The ``faults`` subcommand body; returns a process exit code
    (0 all cases survived, 1 any casualty)."""
    import dataclasses
    import json

    from repro.faults.campaign import render_survival_matrix, run_campaign

    progress = None
    if not args.json:
        tier = "quick" if args.quick else "full"
        print(f"running the {tier} chaos campaign ...", flush=True)

        def progress(o):
            mark = "ok " if o.survived else "FAIL"
            print(f"  {mark} {o.case.label}"
                  + (f"  ({o.detail})" if o.detail else ""), flush=True)

    outcomes = run_campaign(quick=args.quick, seed=args.seed,
                            progress=progress)
    ok = all(o.survived for o in outcomes)
    if args.json:
        print(json.dumps({
            "ok": ok,
            "quick": args.quick,
            "seed": args.seed,
            "cases": [
                {**dataclasses.asdict(o.case), "survived": o.survived,
                 "converged": o.converged, "rel_err": o.rel_err,
                 "overhead": o.overhead, "events": o.event_counts,
                 "detail": o.detail}
                for o in outcomes
            ],
        }, indent=2))
    else:
        print(render_survival_matrix(outcomes))
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        from repro.machine.topology import TOPOLOGIES
        from repro.orderings import ordering_names

        print("figures:    ", " ".join(_FIGURES))
        print("tables:     ", " ".join(_TABLES))
        print("orderings:  ", " ".join(ordering_names()))
        print("topologies: ", " ".join(sorted(TOPOLOGIES)))
        return 0

    if args.command in ("figures", "tables"):
        experiments = _harness()
        allowed = _FIGURES if args.command == "figures" else _TABLES
        wanted = [i.upper() for i in args.ids] or list(allowed)
        for key in wanted:
            if key not in allowed:
                print(f"unknown id {key!r}; choose from {', '.join(allowed)}")
                return 2
            print(f"==== {key} " + "=" * (60 - len(key)))
            experiments[key]()
        return 0

    if args.command == "lint":
        import json

        from repro.machine.topology import TOPOLOGIES
        from repro.orderings import ordering_names
        from repro.verify import DEFAULT_SIZES, lint_registry

        if args.topology is not None and args.topology not in TOPOLOGIES:
            print(f"unknown topology {args.topology!r}; "
                  f"available: {', '.join(sorted(TOPOLOGIES))}")
            return 2
        unknown = set(args.orderings or []) - set(ordering_names())
        if unknown:
            print(f"unknown ordering(s) {sorted(unknown)}; "
                  f"available: {', '.join(ordering_names())}")
            return 2
        reports = lint_registry(
            names=args.orderings,
            sizes=tuple(args.sizes) if args.sizes else DEFAULT_SIZES,
            topology=args.topology,
        )
        ok = all(r.ok for r in reports)
        if args.json:
            print(json.dumps(
                {"ok": ok, "topology": args.topology,
                 "reports": [r.to_dict() for r in reports]},
                indent=2, default=str,
            ))
        else:
            for r in reports:
                print(r.render())
            n_err = sum(len(r.errors) for r in reports)
            n_warn = sum(len(r.warnings) for r in reports)
            print(f"{len(reports)} target(s): "
                  f"{'all clean' if ok else f'{n_err} error(s)'}, "
                  f"{n_warn} warning(s)")
        return 0 if ok else 1

    if args.command == "analyze":
        import json

        from repro.machine.topology import TOPOLOGIES
        from repro.orderings import ordering_names
        from repro.verify import ANALYZE_WORKERS, DEFAULT_SIZES, analyze_registry

        topology = None if args.topology == "none" else args.topology
        if topology is not None and topology not in TOPOLOGIES:
            print(f"unknown topology {topology!r}; "
                  f"available: {', '.join(sorted(TOPOLOGIES))} (or 'none')")
            return 2
        unknown = set(args.orderings or []) - set(ordering_names())
        if unknown:
            print(f"unknown ordering(s) {sorted(unknown)}; "
                  f"available: {', '.join(ordering_names())}")
            return 2
        if args.workers and any(w < 1 for w in args.workers):
            print("--workers must be >= 1")
            return 2
        reports = analyze_registry(
            names=args.orderings,
            sizes=tuple(args.sizes) if args.sizes else DEFAULT_SIZES,
            topology=topology,
            workers=tuple(args.workers) if args.workers else ANALYZE_WORKERS,
            quick=args.quick,
        )
        ok = all(r.ok for r in reports)
        if args.json:
            print(json.dumps(
                {"ok": ok, "topology": topology, "quick": args.quick,
                 "reports": [r.to_dict() for r in reports]},
                indent=2, default=str,
            ))
        else:
            for r in reports:
                print(r.render())
            n_err = sum(len(r.errors) for r in reports)
            n_warn = sum(len(r.warnings) for r in reports)
            print(f"{len(reports)} target(s): "
                  f"{'all clean' if ok else f'{n_err} error(s)'}, "
                  f"{n_warn} warning(s)")
        return 0 if ok else 1

    if args.command == "bench":
        return _bench(args)

    if args.command == "faults":
        return _faults(args)

    if args.command == "tune":
        return _tune(args)

    if args.command == "backends":
        return _backends(args)

    if args.command == "svd":
        return _svd(args)

    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
