"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

import numpy as np

from .bits import is_power_of_two

__all__ = ["require", "require_even", "require_finite",
           "require_power_of_two", "require_range"]


def require(cond: bool, message: str) -> None:
    """Raise ``ValueError`` with ``message`` unless ``cond`` holds."""
    if not cond:
        raise ValueError(message)


def require_even(n: int, what: str = "n") -> None:
    """Require an even integer >= 2."""
    require(n >= 2 and n % 2 == 0, f"{what} must be an even integer >= 2, got {n!r}")


def require_power_of_two(n: int, what: str = "n", minimum: int = 1) -> None:
    """Require a power of two no smaller than ``minimum``."""
    require(
        is_power_of_two(n) and n >= minimum,
        f"{what} must be a power of two >= {minimum}, got {n!r}",
    )


def require_range(x: int, lo: int, hi: int, what: str = "value") -> None:
    """Require ``lo <= x <= hi``."""
    require(lo <= x <= hi, f"{what} must be in [{lo}, {hi}], got {x!r}")


def require_finite(a: np.ndarray, what: str = "a") -> None:
    """Require every entry of ``a`` to be finite (no NaN/Inf).

    The error names the first offending coordinate, so a caller feeding
    a matrix with one bad entry learns *where* it is instead of getting
    garbage singular values back.
    """
    finite = np.isfinite(a)
    if finite.all():
        return
    idx = tuple(int(i) for i in np.argwhere(~finite)[0])
    raise ValueError(
        f"{what} contains non-finite value {a[idx]!r} at index {idx}; "
        "the Jacobi iteration requires finite input"
    )
