"""Render orderings in the paper's own figure form.

Figures 1, 7 and 8 of the paper draw an ordering as a ``2 x (n/2)``
array per step — the two indices in one column form an index pair — with
arrows showing where indices move between steps.  This module recreates
that presentation in text: per-step grids, per-step movement arrows
(``leaf i -> leaf j`` with the crossed tree level), and a per-index
trajectory table (which leaf an index occupies at every step), which is
the cleanest way to *see* the one-directional flow of the ring ordering.
"""

from __future__ import annotations

from ..util.bits import leaf_of_slot
from .schedule import Schedule

__all__ = ["render_grid_steps", "render_movements", "trajectory_table"]


def render_grid_steps(schedule: Schedule, max_steps: int | None = None) -> str:
    """The Fig 1/7/8 presentation: one two-row grid per step.

    The top row holds the contents of the even slots, the bottom row the
    odd slots; each column is one leaf processor (= one index pair).
    """
    n = schedule.n
    m = n // 2
    width = len(str(n)) + 1
    lines: list[str] = []
    count = 0
    state = list(range(1, n + 1))
    for k, pairs, after in schedule.trace():
        if max_steps is not None and count >= max_steps:
            break
        if pairs:
            count += 1
            top = "".join(f"{state[2 * i]:>{width}}" for i in range(m))
            bot = "".join(f"{state[2 * i + 1]:>{width}}" for i in range(m))
            lines.append(f"step {count}:")
            lines.append(f"   {top}")
            lines.append(f"   {bot}")
        state = after
    return "\n".join(lines)


def render_movements(schedule: Schedule, max_steps: int | None = None) -> str:
    """The figure's arrows: per step, which index moves to which leaf.

    Intra-leaf slot swaps are omitted (they are free); each line shows
    ``index: leaf a -> leaf b (level r)``.
    """
    lines: list[str] = []
    state = list(range(1, schedule.n + 1))
    count = 0
    for _, pairs, after in schedule.trace():
        moved = []
        pos_before = {idx: leaf_of_slot(s) for s, idx in enumerate(state)}
        pos_after = {idx: leaf_of_slot(s) for s, idx in enumerate(after)}
        for idx in sorted(pos_before):
            a, b = pos_before[idx], pos_after[idx]
            if a != b:
                level = (a ^ b).bit_length()
                moved.append(f"{idx}: P{a}->P{b} (level {level})")
        if pairs:
            count += 1
            label = f"after step {count}"
        else:
            label = "communication phase"
        if moved:
            lines.append(f"{label}: " + ", ".join(moved))
        if max_steps is not None and count >= max_steps:
            break
        state = after
    return "\n".join(lines)


def trajectory_table(schedule: Schedule) -> dict[int, list[int]]:
    """Leaf occupied by every index at each rotation step.

    ``table[index]`` lists the leaf of ``index`` at steps 1..T; constant
    rows are stationary indices (e.g. index 1 in the ring ordering), and
    in a one-directional ordering every row is non-decreasing modulo the
    ring size.
    """
    table: dict[int, list[int]] = {i: [] for i in range(1, schedule.n + 1)}
    state = list(range(1, schedule.n + 1))
    for _, pairs, after in schedule.trace():
        if pairs:
            for slot, idx in enumerate(state):
                table[idx].append(leaf_of_slot(slot))
        state = after
    return table
