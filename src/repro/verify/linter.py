"""Orchestration: run every applicable static check over a schedule,
an ordering, or the whole registry, and collect rule-tagged reports.

What runs when
--------------
* race detection and all-pairs coverage: always;
* ring one-directionality (DIR002/DIR003): when the schedule declares
  a ring direction in ``notes["direction"]`` (as the ring orderings
  do) or the caller forces ``ring=True``;
* deadlock and capacity analysis (DIR001, CAP001-003): when a
  topology is supplied — channel loads are undefined without one.
  Note that the paper's baselines (round-robin, odd-even) genuinely
  oversubscribe channels on *every* modelled topology (that is the
  paper's point), so capacity findings are a property of the
  (ordering, topology) pair, not a defect of the ordering alone;
* order restoration (SWEEP003): at the ordering level, against the
  paper's bound of two sweeps, or at the schedule level when the
  caller passes ``closure_period``.

The registry gate :func:`lint_registry` is what CI runs: every
registered ordering, several sizes, structural checks plus — for the
orderings the paper proves contention-free on their native topology —
nothing more than the caller asked for.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..machine.topology import TreeTopology, make_topology
from ..orderings.base import Ordering
from ..orderings.registry import ORDERINGS, make_ordering
from ..orderings.schedule import Schedule
from .capacity import check_capacity, crosscheck_dynamic
from .diagnostics import Report
from .direction import check_deadlock_free, ring_direction_violations
from .races import find_races
from .sweepcheck import (
    check_ordering_restoration,
    check_pair_coverage,
    check_restoration,
)

__all__ = ["lint_schedule", "lint_ordering", "lint_registry", "DEFAULT_SIZES"]

#: Sizes the registry gate audits by default (power-of-two so that every
#: registered ordering, including the fat-tree family, is constructible).
DEFAULT_SIZES: tuple[int, ...] = (8, 16, 32)

#: The paper's restoration bound: order restored after at most two sweeps.
MAX_RESTORATION_PERIOD = 2


def lint_schedule(
    schedule: Schedule,
    topology: TreeTopology | None = None,
    *,
    ring: bool | None = None,
    closure_period: int | None = None,
    layout: Sequence[int] | None = None,
    exempt_pairs: frozenset[frozenset[int]] = frozenset(),
) -> Report:
    """Statically verify one sweep schedule.

    ``ring=None`` auto-detects ring schedules via ``notes["direction"]``;
    ``closure_period`` enables the schedule-level SWEEP003 check (only
    meaningful for sweep-invariant orderings).  ``layout`` and
    ``exempt_pairs`` let :func:`lint_ordering` evaluate a mid-sequence
    sweep from its true starting layout with its declared coverage
    exemptions.
    """
    report = Report(target=schedule.name)
    report.extend(find_races(schedule), "races")
    # RACE004 means slot indices are unsound; tracing the layout through
    # the sweep (coverage, closure) would be meaningless or crash
    sound = "RACE004" not in report.rules_fired()
    if sound:
        report.extend(check_pair_coverage(schedule, layout, exempt_pairs),
                      "pair-coverage")
    else:
        report.checks.append("pair-coverage(skipped: unsound placement)")
    is_ring = ring if ring is not None else schedule.notes.get("direction") in (+1, -1)
    if is_ring:
        report.extend(ring_direction_violations(schedule), "ring-direction")
    if closure_period is not None and sound:
        report.extend(check_restoration(schedule, closure_period), "closure")
    if topology is not None:
        report.extend(check_deadlock_free(schedule, topology), "deadlock")
        report.extend(check_capacity(schedule, topology), "capacity")
        report.extend(crosscheck_dynamic(schedule, topology), "capacity-crosscheck")
    return report


def _last_rotation_pairs(
    schedule: Schedule, layout: Sequence[int]
) -> frozenset[frozenset[int]]:
    """Index pairs of the last rotating step, traced from ``layout``."""
    last: list[tuple[int, int]] = []
    for _, pairs, _ in schedule.trace(layout):
        if pairs:
            last = pairs
    return frozenset(frozenset(p) for p in last)


def lint_ordering(
    ordering: Ordering,
    topology: TreeTopology | None = None,
) -> Report:
    """Statically verify an ordering: every distinct sweep it generates,
    plus the ordering-level restoration invariant.

    Sweeps are linted in sequence with the layout threaded through, so a
    sweep-alternating ordering (Lee-Luk-Boley) has its backward sweep
    evaluated from the forward sweep's true final layout.  A sweep whose
    schedule declares ``notes["skips_duplicate_rotation"]`` is allowed
    to miss exactly the pairs of the preceding sweep's final rotation —
    the omission the paper says "may be omitted".
    """
    report = Report(target=f"{ordering.name}(n={ordering.n})")
    seen_keys: set[int] = set()
    layout: list[int] = list(range(1, ordering.n + 1))
    prev_last_rotation: frozenset[frozenset[int]] = frozenset()
    for s in range(MAX_RESTORATION_PERIOD):
        sched = ordering.sweep(s)
        key = ordering.sweep_key(s)
        if key not in seen_keys:
            seen_keys.add(key)
            exempt = prev_last_rotation if sched.notes.get(
                "skips_duplicate_rotation") else frozenset()
            sub = lint_schedule(sched, topology, layout=layout,
                                exempt_pairs=exempt)
            label = f"sweep{s}" if ordering.sweep_key(1) != ordering.sweep_key(0) else "sweep"
            for check in sub.checks:
                report.checks.append(f"{label}:{check}")
            report.diagnostics.extend(sub.diagnostics)
        prev_last_rotation = _last_rotation_pairs(sched, layout)
        layout = sched.final_layout(layout)
    report.extend(
        check_ordering_restoration(ordering, MAX_RESTORATION_PERIOD), "restoration"
    )
    return report


def lint_registry(
    names: Sequence[str] | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    topology: str | None = None,
    **kwargs_by_name: dict[str, object],
) -> list[Report]:
    """The uniform analysis gate: lint every registered ordering at every
    size, optionally on a named topology (which enables the capacity
    and deadlock checks).

    An ordering that is not constructible at a size (e.g. the fat-tree
    family at a non-power-of-two) contributes a report whose checks
    list records the skip; it neither passes nor fails silently.
    """
    reports: list[Report] = []
    for name in (names if names is not None else sorted(ORDERINGS)):
        for n in sizes:
            try:
                ordering = make_ordering(name, n, **kwargs_by_name.get(name, {}))
            except ValueError as exc:
                skip = Report(target=f"{name}(n={n})")
                skip.checks.append(f"skipped: {exc}")
                reports.append(skip)
                continue
            topo = make_topology(topology, n // 2) if topology else None
            reports.append(lint_ordering(ordering, topo))
    return reports
