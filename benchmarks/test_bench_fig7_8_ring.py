"""FIG7/FIG8 — the new ring ordering, its modified variant, and the
round-robin equivalence relabelling."""

from repro.analysis import fig7_ring_ordering, fig8_modified_ring, step_table
from repro.orderings import check_one_directional
from repro.orderings.ringnew import ring_sweep
from repro.util.formatting import render_step_table


def test_fig7_new_ring(benchmark):
    sched, eq = benchmark(fig7_ring_ordering, 8)
    assert eq.verified
    assert check_one_directional(sched)
    final = sched.final_layout()
    assert final[:2] == [1, 2]
    print("\n" + render_step_table(step_table(sched), title="Fig 7(a): new ring, n=8"))
    print("relabelling to round-robin:", eq.relabelling)


def test_fig8_modified_ring(benchmark):
    sched, eq = benchmark(fig8_modified_ring, 8)
    assert eq.verified
    assert check_one_directional(sched)
    print("\n" + render_step_table(step_table(sched), title="Fig 8(a): modified ring, n=8"))


def test_ring_construction_scales(benchmark):
    sched = benchmark(ring_sweep, 128)
    assert sched.n_rotation_steps == 127
    assert check_one_directional(sched)
