"""Column distribution helpers for the parallel driver.

The paper assumes ``n`` a power of two (tree orderings) with two columns
per leaf; real matrices rarely oblige, so :func:`pad_columns` widens a
matrix with zero columns to the next admissible width.  Zero columns are
fixed points of the Hestenes iteration (every rotation against a zero
column is the identity), so padding does not perturb the nonzero part of
the spectrum; the padded result is stripped by :func:`strip_padding`.
"""

from __future__ import annotations

import numpy as np

from ..core.result import SVDResult

__all__ = ["next_admissible_width", "pad_columns", "strip_padding", "leaf_layout"]


def next_admissible_width(n: int, power_of_two: bool = True,
                          block_size: int = 1) -> int:
    """Smallest admissible column count >= n.

    Admissibility is decided at schedule granularity: with
    ``block_size=b`` the width must be ``b`` times an admissible *block*
    count (power of two >= 4 for the tree orderings, else even), so the
    ordering runs on whole blocks.  ``block_size=1`` is the scalar rule.
    """
    b = block_size
    nb = -(-n // b)  # blocks needed to cover n columns
    if power_of_two:
        wb = 4
        while wb < nb:
            wb *= 2
    else:
        wb = nb if nb % 2 == 0 else nb + 1
    return wb * b


def pad_columns(a: np.ndarray, power_of_two: bool = True,
                block_size: int = 1) -> tuple[np.ndarray, int]:
    """Zero-pad ``a`` to an admissible width; returns (padded, original_n)."""
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[1]
    w = next_admissible_width(n, power_of_two, block_size)
    if w == n:
        return a.copy(), n
    out = np.zeros((a.shape[0], w))
    out[:, :n] = a
    return out, n


def strip_padding(result: SVDResult, original_n: int) -> SVDResult:
    """Remove the zero-padding columns from a padded result.

    The padding columns carry exactly zero singular values, and the
    canonical ordering places them last, so stripping is a truncation.
    """
    k = original_n
    result.u = result.u[:, :k]
    result.sigma = result.sigma[:k]
    # v rows beyond original_n correspond to padded input coordinates
    result.v = result.v[:k, :k]
    result.sigma_by_slot = result.sigma_by_slot  # slot view keeps machine width
    result.rank = min(result.rank, k)
    return result


def leaf_layout(n: int) -> list[tuple[int, int]]:
    """Home (leaf, slot) of every column index under the 2-per-leaf deal."""
    return [(i // 2, i) for i in range(n)]
