"""Registered chaos campaign: fault kinds x orderings x sizes x kernels.

Each campaign case injects exactly one fault — placed on the *first
remote move* of the sweep-0 schedule, so it is guaranteed to fire — and
checks the survival contract end to end:

* the recovered run reproduces the fault-free singular values to 1e-8
  (or fails *explicitly* with ``converged=False``, never silently),
* the simulator terminates (bounded retries, then remap — termination
  is by construction, but the campaign is the regression net),
* every injected fault shows up in the result's fault-event trail with
  its recovery action and a charged recovery cost.

The quick tier (``repro-harness faults --quick``, wired into CI) runs
the scalar reference kernel at n=8; the full tier adds n in {16, 32}
and the BLAS-3 gram block kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..util.bits import leaf_of_slot
from ..util.formatting import render_table
from .events import summarize_events
from .plan import FAULT_KINDS, FaultPlan

__all__ = [
    "CampaignCase",
    "CaseOutcome",
    "campaign_cases",
    "single_fault_plan",
    "run_campaign",
    "render_survival_matrix",
]

ORDERINGS = ("fat_tree", "ring_new", "hybrid")

#: relative sigma tolerance of the survival contract
SIGMA_RTOL = 1e-8


@dataclass(frozen=True)
class CampaignCase:
    """One registered chaos scenario."""

    ordering: str
    kind: str
    n: int
    kernel: str = "reference"
    block_size: int | None = None

    @property
    def label(self) -> str:
        blk = f"/b{self.block_size}" if self.block_size else ""
        return f"{self.ordering}/{self.kind}/n{self.n}/{self.kernel}{blk}"


@dataclass
class CaseOutcome:
    """Survival verdict of one campaign case."""

    case: CampaignCase
    survived: bool
    converged: bool
    rel_err: float
    overhead: float
    event_counts: dict[str, int] = field(default_factory=dict)
    detail: str = ""


def campaign_cases(quick: bool = False) -> list[CampaignCase]:
    """The registered scenario grid.

    Quick: every fault kind x every ordering, scalar reference kernel
    at n=8 (24 cases).  Full additionally sweeps n in {16, 32} and the
    gram block kernel (block_size=1 at n=8 so the hybrid ordering keeps
    its 8 schedule units, 2 above).
    """
    sizes = (8,) if quick else (8, 16, 32)
    kernels = ("reference",) if quick else ("reference", "gram")
    cases = []
    for kernel in kernels:
        for n in sizes:
            block = None
            if kernel == "gram":
                # hybrid needs >= 8 schedule units: n=8 forces b=1
                block = 1 if n == 8 else 2
            for ordering in ORDERINGS:
                for kind in FAULT_KINDS:
                    cases.append(CampaignCase(ordering, kind, n,
                                              kernel, block))
    return cases


def single_fault_plan(case: CampaignCase) -> FaultPlan:
    """Build the one-fault plan of a case from its actual schedule.

    The fault site is the first remote move of the sweep-0 schedule —
    slots mapped down to leaves, the outage level read off the real
    route — so every registered fault is guaranteed to fire rather than
    matching nothing and vacuously "surviving".
    """
    from ..machine.topology import make_topology
    from ..orderings.registry import make_ordering
    from .corruptions import first_remote_move

    n_units = case.n // (case.block_size or 1)
    ordering = make_ordering(case.ordering, n_units)
    step_k, mv = first_remote_move(ordering.sweep(0))
    src, dst = leaf_of_slot(mv.src), leaf_of_slot(mv.dst)
    plan = FaultPlan(seed=7)
    if case.kind == "drop":
        return plan.drop(sweep=0, step=step_k, src=src, dst=dst)
    if case.kind == "duplicate":
        return plan.duplicate(sweep=0, step=step_k, src=src, dst=dst)
    if case.kind == "delay":
        return plan.delay(sweep=0, step=step_k, src=src, dst=dst,
                          duration=150.0)
    if case.kind == "corrupt":
        return plan.corrupt(sweep=0, step=step_k, src=src, dst=dst,
                            mode="scale")
    if case.kind == "corrupt_silent":
        # detectable damage (finiteness sentinel / norm invariant); a
        # finite sign flip needs the checksummed 'corrupt' kind
        return plan.corrupt(sweep=0, step=step_k, src=src, dst=dst,
                            mode="nan", silent=True)
    if case.kind == "stall":
        return plan.stall(leaf=src, sweep=0, step=step_k, duration=150.0)
    if case.kind == "crash":
        return plan.crash(leaf=dst, sweep=0, step=step_k)
    if case.kind == "outage":
        topo = make_topology("perfect", max(2, n_units // 2))
        level = topo.comm_level(src, dst)
        return plan.outage(level=level, sweep=0, step=step_k,
                           until_step=step_k + 1)
    raise ValueError(f"unknown fault kind {case.kind!r}")


def _run_case(case: CampaignCase, baseline, a: np.ndarray) -> CaseOutcome:
    import warnings

    from ..core.api import parallel_svd
    from ..util.errors import ConvergenceWarning

    r0, rep0 = baseline
    plan = single_fault_plan(case)
    kwargs = {}
    if case.block_size is not None:
        kwargs["block_size"] = case.block_size
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            r, rep = parallel_svd(
                a, topology="perfect", ordering=case.ordering,
                kernel=case.kernel, fault_plan=plan, **kwargs)
    except Exception as exc:  # campaign must never crash the harness
        return CaseOutcome(case, survived=False, converged=False,
                           rel_err=float("inf"), overhead=float("inf"),
                           detail=f"raised {type(exc).__name__}: {exc}")
    rel_err = float(np.max(np.abs(r.sigma - r0.sigma))) / max(
        float(r0.sigma[0]), 1e-300)
    counts = summarize_events(r.fault_events)
    injected = counts.get("injected", 0)
    overhead = rep.total_time / rep0.total_time if rep0.total_time else 1.0
    problems = []
    if not r.converged:
        problems.append("not converged")
    if rel_err > SIGMA_RTOL:
        problems.append(f"sigma off by {rel_err:.2e}")
    if injected == 0:
        problems.append("fault never fired")
    if rep.recovery_time <= 0:
        problems.append("no recovery cost charged")
    return CaseOutcome(
        case,
        survived=not problems,
        converged=r.converged,
        rel_err=rel_err,
        overhead=overhead,
        event_counts=dict(counts),
        detail="; ".join(problems),
    )


def run_campaign(quick: bool = False, seed: int = 1234,
                 progress=None) -> list[CaseOutcome]:
    """Run the registered campaign; returns one outcome per case.

    Fault-free twin runs are computed once per (ordering, n, kernel)
    and shared by that column of the grid; ``progress`` (if given) is
    called with each finished :class:`CaseOutcome`.
    """
    from ..core.api import parallel_svd

    rng = np.random.default_rng(seed)
    matrices: dict[int, np.ndarray] = {}
    baselines: dict[tuple, tuple] = {}
    outcomes = []
    for case in campaign_cases(quick):
        if case.n not in matrices:
            matrices[case.n] = rng.standard_normal((case.n + 8, case.n))
        a = matrices[case.n]
        key = (case.ordering, case.n, case.kernel, case.block_size)
        if key not in baselines:
            kwargs = {}
            if case.block_size is not None:
                kwargs["block_size"] = case.block_size
            baselines[key] = parallel_svd(
                a, topology="perfect", ordering=case.ordering,
                kernel=case.kernel, **kwargs)
        outcome = _run_case(case, baselines[key], a)
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return outcomes


def render_survival_matrix(outcomes: list[CaseOutcome]) -> str:
    """Fault-kind x ordering survival matrix plus a failure detail table.

    Each cell aggregates every (n, kernel) combination of that pair as
    ``survived/total``; failures get one detail row each below.
    """
    cells: dict[tuple[str, str], list[CaseOutcome]] = {}
    for o in outcomes:
        cells.setdefault((o.case.kind, o.case.ordering), []).append(o)
    kinds = sorted({k for k, _ in cells})
    orderings = [o for o in ORDERINGS if any(o == b for _, b in cells)]
    rows = []
    for kind in kinds:
        row = [kind]
        for ordering in orderings:
            group = cells.get((kind, ordering), [])
            ok = sum(1 for g in group if g.survived)
            mark = "OK" if ok == len(group) else "FAIL"
            row.append(f"{ok}/{len(group)} {mark}")
        rows.append(row)
    out = render_table(["fault", *orderings], rows,
                       title="survival matrix (recovered/injected)")
    survived = sum(1 for o in outcomes if o.survived)
    mean_overhead = float(np.mean([
        o.overhead for o in outcomes if np.isfinite(o.overhead)]))
    out += (f"\n{survived}/{len(outcomes)} cases survived; "
            f"mean recovery overhead {mean_overhead:.2f}x fault-free time")
    failures = [o for o in outcomes if not o.survived]
    if failures:
        out += "\n" + render_table(
            ["case", "detail"],
            [[f.case.label, f.detail] for f in failures],
            title="failures")
    return out
