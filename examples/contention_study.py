"""Contention study: why the hybrid ordering exists (Section 5).

Measures, per tree level, the worst channel oversubscription of each
ordering on each topology, and sweeps the hybrid block size to find the
contention-free window on the CM-5 model — the paper's "we may properly
choose the block size so that the number of messages passing through the
lowest skinny level do not cause contention".

Run:  python examples/contention_study.py
"""

from repro.analysis import per_level_contention
from repro.machine import make_topology
from repro.orderings import make_ordering

N = 64
LEAVES = N // 2

print(f"worst channel load/capacity per level (n={N}, {LEAVES} leaves)\n")
for topo_name in ("perfect", "cm5", "binary"):
    topo = make_topology(topo_name, LEAVES)
    print(f"== {topo_name} ==")
    caps = [topo.capacity(k) for k in range(1, topo.n_levels + 1)]
    print(f"   channel capacities by level: {caps}")
    for name, kwargs in (
        ("round_robin", {}),
        ("ring_new", {}),
        ("fat_tree", {}),
        ("hybrid", {"n_groups": 8}),
    ):
        prof = per_level_contention(make_ordering(name, N, **kwargs).sweep(0), topo)
        cells = "  ".join(f"L{k}:{v:4.2f}" for k, v in prof.items())
        worst = max(prof.values())
        flag = "contention-free" if worst <= 1.0 else f"OVERSUBSCRIBED x{worst:.0f}"
        print(f"   {name:12s} {cells}   -> {flag}")
    print()

print("hybrid block-size sweep on the CM-5 model:")
topo = make_topology("cm5", LEAVES)
for g in (2, 4, 8, 16):
    K = N // (2 * g)
    prof = per_level_contention(make_ordering("hybrid", N, n_groups=g).sweep(0), topo)
    worst = max(prof.values())
    verdict = "OK" if worst <= 1.0 else "contends"
    print(f"   groups={g:3d}  block={K:3d} columns  worst={worst:4.2f}  {verdict}")
print("\nBlocks of up to four columns fit the skinny channels -> no")
print("contention anywhere in the tree, exactly as Section 5 argues.")
