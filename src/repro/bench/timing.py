"""Wall-clock timing primitives for the benchmark harness.

Small and deliberately boring: monotonic clocks only
(``time.perf_counter``), explicit warmup iterations to absorb one-time
costs (allocator pools, schedule caches, BLAS thread spin-up), and the
median over repeats as the headline number — the median is robust to the
one-sided noise (interrupts, frequency ramps) that contaminates means.

:func:`pin_blas_threads` removes the other big timing confounder: an
unpinned BLAS pool whose thread count floats with the machine makes the
step executor's speedup unattributable (is it our workers or OpenBLAS's?).
The harness pins BLAS to one thread so every reported speedup is the step
executor's alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..util.validation import require

__all__ = ["Timing", "median", "pin_blas_threads", "time_callable"]


#: setter/getter symbol pairs of the BLAS builds numpy links against;
#: scipy-openblas (the PyPI numpy wheels) mangles its symbols, vanilla
#: OpenBLAS does not
_BLAS_SYMBOLS = (
    ("scipy_openblas_set_num_threads64_", "scipy_openblas_get_num_threads64_"),
    ("scipy_openblas_set_num_threads", "scipy_openblas_get_num_threads"),
    ("openblas_set_num_threads64_", "openblas_get_num_threads64_"),
    ("openblas_set_num_threads", "openblas_get_num_threads"),
)


def _loaded_blas_paths() -> list[str]:
    """Shared objects of the running process that look like a BLAS."""
    import os
    import re

    paths: list[str] = []
    try:
        with open("/proc/self/maps", encoding="utf-8") as fh:
            for line in fh:
                parts = line.split()
                path = parts[-1] if parts else ""
                if (path.startswith("/")
                        and re.search(r"openblas|blis|\bmkl",
                                      os.path.basename(path), re.I)
                        and path not in paths):
                    paths.append(path)
    except OSError:
        pass
    return paths


def pin_blas_threads(n: int = 1) -> int | None:
    """Pin the BLAS thread pool to ``n`` threads; returns the previous
    count, or ``None`` when no controllable BLAS pool was found.

    Tries ``threadpoolctl`` first (portable), then talks to the loaded
    OpenBLAS directly over ctypes (the PyPI numpy wheels bundle
    scipy-openblas without installing threadpoolctl).  A missing backend
    is not an error — the caller records the outcome in the report so a
    reader can tell a pinned run from an unpinned one.
    """
    require(n >= 1, "BLAS thread count must be >= 1")
    import numpy  # noqa: F401  (ensures the BLAS library is loaded)

    try:
        import threadpoolctl
    except ImportError:
        threadpoolctl = None
    if threadpoolctl is not None:
        prev = None
        for info in threadpoolctl.threadpool_info():
            if info.get("user_api") == "blas":
                prev = info.get("num_threads")
        if prev is not None:
            threadpoolctl.threadpool_limits(limits=n, user_api="blas")
            return int(prev)
    import ctypes

    for path in _loaded_blas_paths():
        try:
            lib = ctypes.CDLL(path)
        except OSError:
            continue
        for set_name, get_name in _BLAS_SYMBOLS:
            setter = getattr(lib, set_name, None)
            getter = getattr(lib, get_name, None)
            if setter is None:
                continue
            prev = None
            if getter is not None:
                getter.restype = ctypes.c_int
                prev = int(getter())
            setter(ctypes.c_int(n))
            return prev
    return None


def median(values: list[float] | tuple[float, ...]) -> float:
    """Median without pulling in ``statistics`` (ties averaged)."""
    require(len(values) > 0, "median of an empty sample")
    s = sorted(values)
    mid = len(s) // 2
    if len(s) % 2:
        return s[mid]
    return 0.5 * (s[mid - 1] + s[mid])


@dataclass(frozen=True)
class Timing:
    """Raw repeat timings of one scenario (seconds, monotonic clock)."""

    times_s: tuple[float, ...]
    warmup: int

    @property
    def repeats(self) -> int:
        return len(self.times_s)

    @property
    def median_s(self) -> float:
        return median(self.times_s)

    @property
    def best_s(self) -> float:
        return min(self.times_s)

    @property
    def mean_s(self) -> float:
        return sum(self.times_s) / len(self.times_s)


def time_callable(
    fn: Callable[[], object], repeats: int = 5, warmup: int = 1
) -> Timing:
    """Time ``fn()`` with ``warmup`` discarded runs then ``repeats`` measured
    ones."""
    require(repeats >= 1, "need at least one measured repeat")
    require(warmup >= 0, "warmup count must be non-negative")
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return Timing(times_s=tuple(times), warmup=warmup)
