"""Plane-rotation kernels for the one-sided (Hestenes) Jacobi method.

Equation (1) of the paper: a plane rotation applied to two columns
``a_i, a_j`` chooses the angle so the transformed columns are orthogonal.
With ``alpha = a_i . a_i``, ``beta = a_j . a_j`` and ``gamma = a_i . a_j``
the standard stable parametrisation is

    zeta = (beta - alpha) / (2 gamma)
    t    = sign(zeta) / (|zeta| + sqrt(1 + zeta^2))
    c    = 1 / sqrt(1 + t^2),   s = t c

Equation (3) of the paper is the *swap-free* form: when the schedule
requires the two columns to exchange positions after the rotation, the
exchanged result is produced directly by applying the rotation with its
columns swapped, avoiding an explicit copy.  The vectorised kernel below
uses the same idea to keep the larger-norm column in the designated slot
("with a little control we may store the column with larger norm in the
position associated with the index of a smaller number" — Section 4),
which is what makes the singular values emerge sorted.

All kernels are vectorised over the disjoint pairs of one parallel step,
per the hpc guidance: one step is one fused set of BLAS-level column
operations rather than a Python loop over pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RotationStats", "rotation_params", "apply_step_rotations"]


@dataclass
class RotationStats:
    """Counters accumulated over rotations.

    ``swapped`` counts rotations emitted in the swap-free exchanged form
    of eq (3) — each one is an explicit column exchange avoided;
    ``exchanged`` counts already-orthogonal pairs whose columns were
    exchanged to respect the norm ordering.  The paper's termination rule
    needs ``exchanged`` ("... and no columns are interchanged").
    """

    applied: int = 0
    skipped: int = 0
    swapped: int = 0
    exchanged: int = 0

    def merge(self, other: "RotationStats") -> None:
        self.applied += other.applied
        self.skipped += other.skipped
        self.swapped += other.swapped
        self.exchanged += other.exchanged


def rotation_params(
    alpha: np.ndarray, beta: np.ndarray, gamma: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised (c, s) for each pair; pairs with ``gamma == 0`` get the
    identity rotation."""
    c = np.ones_like(alpha)
    s = np.zeros_like(alpha)
    nz = gamma != 0.0
    if np.any(nz):
        zeta = (beta[nz] - alpha[nz]) / (2.0 * gamma[nz])
        t = np.sign(zeta) / (np.abs(zeta) + np.sqrt(1.0 + zeta * zeta))
        # sign(0) is 0; zeta == 0 means alpha == beta with gamma != 0,
        # where the optimal angle is 45 degrees (t = 1)
        t = np.where(zeta == 0.0, 1.0, t)
        cn = 1.0 / np.sqrt(1.0 + t * t)
        c[nz] = cn
        s[nz] = t * cn
    return c, s


def apply_step_rotations(
    X: np.ndarray,
    V: np.ndarray | None,
    left: np.ndarray,
    right: np.ndarray,
    tol: float,
    sort: str | None = "desc",
) -> tuple[RotationStats, float]:
    """Orthogonalise the disjoint column pairs ``(left[k], right[k])``.

    ``X`` is modified in place (and ``V`` alongside, when accumulating
    right singular vectors).  A pair is rotated only when it fails the
    relative threshold test ``|gamma| > tol * sqrt(alpha beta)`` — the
    threshold strategy of [Wilkinson] the paper invokes to guarantee
    convergence.  With ``sort="desc"`` the larger-norm column ends in the
    ``left`` slot via the swap-free form of eq (3) (``"asc"`` for the
    smaller; ``None`` to never swap).

    Returns the rotation counters and the largest relative off-diagonal
    ``|gamma| / sqrt(alpha beta)`` observed *before* rotating (the sweep
    convergence measure).
    """
    stats = RotationStats()
    if left.size == 0:
        return stats, 0.0
    x = X[:, left]
    y = X[:, right]
    alpha = np.einsum("ij,ij->j", x, x)
    beta = np.einsum("ij,ij->j", y, y)
    gamma = np.einsum("ij,ij->j", x, y)
    denom = np.sqrt(alpha * beta)
    live = denom > 0.0
    rel = np.zeros_like(gamma)
    rel[live] = np.abs(gamma[live]) / denom[live]
    max_rel = float(rel.max(initial=0.0))

    rotate = rel > tol
    stats.skipped += int(np.count_nonzero(~rotate))
    if np.any(rotate):
        c, s = rotation_params(alpha[rotate], beta[rotate], gamma[rotate])
        li = left[rotate]
        ri = right[rotate]
        xr = X[:, li]
        yr = X[:, ri]
        new_x = c * xr - s * yr
        new_y = s * xr + c * yr
        # post-rotation squared norms, from the rotation invariants
        a_r, b_r, g_r = alpha[rotate], beta[rotate], gamma[rotate]
        na = c * c * a_r - 2 * c * s * g_r + s * s * b_r
        nb = s * s * a_r + 2 * c * s * g_r + c * c * b_r
        if sort == "desc":
            swap = nb > na
        elif sort == "asc":
            swap = na > nb
        else:
            swap = np.zeros(na.shape, dtype=bool)
        stats.swapped += int(np.count_nonzero(swap))
        X[:, li] = np.where(swap, new_y, new_x)
        X[:, ri] = np.where(swap, new_x, new_y)
        if V is not None:
            vx = V[:, li]
            vy = V[:, ri]
            new_vx = c * vx - s * vy
            new_vy = s * vx + c * vy
            V[:, li] = np.where(swap, new_vy, new_vx)
            V[:, ri] = np.where(swap, new_vx, new_vy)
        stats.applied += int(np.count_nonzero(rotate))

    # even when no rotation fires, the sorting convention must hold for
    # already-orthogonal pairs so the singular values finish ordered; a
    # small relative slack keeps noise-level norm differences from
    # triggering exchanges forever (ties would otherwise delay the
    # "no columns interchanged" termination rule)
    if sort in ("desc", "asc"):
        idle = ~rotate
        if np.any(idle):
            li = left[idle]
            ri = right[idle]
            na = alpha[idle]
            nb = beta[idle]
            slack = 32.0 * np.finfo(np.float64).eps
            if sort == "desc":
                swap = nb > na * (1.0 + slack)
            else:
                swap = na > nb * (1.0 + slack)
            if np.any(swap):
                li, ri = li[swap], ri[swap]
                stats.exchanged += int(li.size)
                tmp = X[:, li].copy()
                X[:, li] = X[:, ri]
                X[:, ri] = tmp
                if V is not None:
                    tmp = V[:, li].copy()
                    V[:, li] = V[:, ri]
                    V[:, ri] = tmp
    return stats, max_rel
