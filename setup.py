"""Legacy setup shim: this offline environment has setuptools but no
``wheel``, so PEP-660 editable installs fail; ``python setup.py develop``
(or ``pip install -e . --no-build-isolation``) uses this file instead."""
from setuptools import setup

setup()
