"""Schema-versioned benchmark reports and the regression comparator.

A report is a plain JSON document (``BENCH_<tag>.json``)::

    {
      "schema": "repro.bench/1",
      "tag": "local",
      "created_unix": 1730000000.0,
      "repeats": 5, "warmup": 1, "quick": false,
      "python": "3.11.7", "numpy": "1.26.4", "platform": "x86_64",
      "scenarios": [
        {
          "name": "svd/batched/fat_tree/n64",
          "kind": "svd-kernel",
          "params": {...},
          "reference": "svd/reference/fat_tree/n64",
          "wall_time_s": 0.031,
          "times_s": [...],
          "meta": {"sweeps": 10, "rotations": 2964, "converged": true},
          "speedup_vs_reference": 2.9
        }, ...
      ]
    }

``compare_reports`` matches scenarios of two reports by name and flags
every one whose median wall time regressed by more than the allowed
fraction — the CI contract behind ``repro-harness bench --compare``.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any

__all__ = [
    "SCHEMA",
    "build_report",
    "compare_reports",
    "load_report",
    "render_report",
    "validate_report",
    "write_report",
]

SCHEMA = "repro.bench/1"


def build_report(
    tag: str,
    records: list[dict[str, Any]],
    repeats: int,
    warmup: int,
    quick: bool = False,
    blas_threads: int | None = None,
) -> dict[str, Any]:
    """Assemble the report document, deriving speedups from baselines.

    ``blas_threads`` records the pinned BLAS pool size (``None`` = no
    controllable pool found, i.e. the run was *not* pinned) so a reader
    can attribute executor speedups to the step executor and not to a
    floating BLAS thread count.
    """
    import os

    import numpy

    by_name = {r["name"]: r for r in records}
    for r in records:
        ref = r.get("reference")
        if ref and ref in by_name and r["wall_time_s"] > 0:
            r["speedup_vs_reference"] = by_name[ref]["wall_time_s"] / r["wall_time_s"]
    return {
        "schema": SCHEMA,
        "tag": tag,
        "created_unix": time.time(),
        "repeats": repeats,
        "warmup": warmup,
        "quick": quick,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.machine(),
        "cpu_count": os.cpu_count(),
        "blas_threads": blas_threads,
        "scenarios": records,
    }


def validate_report(doc: Any) -> list[str]:
    """Structural validation; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["report is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("tag"), str) or not doc.get("tag"):
        errors.append("tag must be a non-empty string")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        errors.append("scenarios must be a non-empty list")
        return errors
    seen: set[str] = set()
    for i, rec in enumerate(scenarios):
        where = f"scenarios[{i}]"
        if not isinstance(rec, dict):
            errors.append(f"{where} is not an object")
            continue
        name = rec.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}.name must be a non-empty string")
        elif name in seen:
            errors.append(f"{where}.name {name!r} is duplicated")
        else:
            seen.add(name)
        wall = rec.get("wall_time_s")
        if not isinstance(wall, (int, float)) or wall <= 0:
            errors.append(f"{where}.wall_time_s must be a positive number")
        times = rec.get("times_s")
        if (
            not isinstance(times, list)
            or not times
            or not all(isinstance(t, (int, float)) and t > 0 for t in times)
        ):
            errors.append(f"{where}.times_s must be a non-empty list of positives")
    return errors


def compare_reports(
    old: dict[str, Any], new: dict[str, Any], max_slowdown: float = 0.20
) -> tuple[list[dict[str, Any]], list[str]]:
    """Flag scenarios slower than ``old`` by more than ``max_slowdown``.

    Returns ``(regressions, compared_names)``; scenarios present in only
    one report are skipped (quick and full runs share no sizes, so a
    mismatched compare degrades to a no-op rather than a false alarm).
    """
    old_by = {r["name"]: r for r in old.get("scenarios", [])}
    regressions: list[dict[str, Any]] = []
    compared: list[str] = []
    for rec in new.get("scenarios", []):
        prev = old_by.get(rec["name"])
        if prev is None:
            continue
        compared.append(rec["name"])
        old_t = float(prev["wall_time_s"])
        new_t = float(rec["wall_time_s"])
        if new_t > old_t * (1.0 + max_slowdown):
            regressions.append(
                {
                    "name": rec["name"],
                    "old_wall_time_s": old_t,
                    "new_wall_time_s": new_t,
                    "ratio": new_t / old_t if old_t > 0 else float("inf"),
                }
            )
    return regressions, compared


def render_report(doc: dict[str, Any]) -> str:
    """Human-readable table of one report."""
    lines = [
        f"benchmark report tag={doc['tag']} "
        f"(repeats={doc['repeats']}, warmup={doc['warmup']}"
        f"{', quick' if doc.get('quick') else ''})"
    ]
    width = max(len(r["name"]) for r in doc["scenarios"])
    for rec in doc["scenarios"]:
        extra = ""
        if "speedup_vs_reference" in rec:
            extra = f"  speedup {rec['speedup_vs_reference']:.2f}x"
        sweeps = rec["meta"].get("sweeps")
        if sweeps is not None:
            extra += f"  sweeps {sweeps}"
        lines.append(
            f"  {rec['name']:<{width}}  {rec['wall_time_s'] * 1e3:9.3f} ms{extra}"
        )
    return "\n".join(lines)


def write_report(doc: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_report(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
