"""Public facade: ``svd``, ``parallel_svd`` and the result types."""

from .api import parallel_svd, svd
from .result import SVDResult, SweepRecord

__all__ = ["SVDResult", "SweepRecord", "parallel_svd", "svd"]
