"""Wall-clock timing primitives for the benchmark harness.

Small and deliberately boring: monotonic clocks only
(``time.perf_counter``), explicit warmup iterations to absorb one-time
costs (allocator pools, schedule caches, BLAS thread spin-up), and the
median over repeats as the headline number — the median is robust to the
one-sided noise (interrupts, frequency ramps) that contaminates means.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..util.validation import require

__all__ = ["Timing", "median", "time_callable"]


def median(values: list[float] | tuple[float, ...]) -> float:
    """Median without pulling in ``statistics`` (ties averaged)."""
    require(len(values) > 0, "median of an empty sample")
    s = sorted(values)
    mid = len(s) // 2
    if len(s) % 2:
        return s[mid]
    return 0.5 * (s[mid - 1] + s[mid])


@dataclass(frozen=True)
class Timing:
    """Raw repeat timings of one scenario (seconds, monotonic clock)."""

    times_s: tuple[float, ...]
    warmup: int

    @property
    def repeats(self) -> int:
        return len(self.times_s)

    @property
    def median_s(self) -> float:
        return median(self.times_s)

    @property
    def best_s(self) -> float:
        return min(self.times_s)

    @property
    def mean_s(self) -> float:
        return sum(self.times_s) / len(self.times_s)


def time_callable(
    fn: Callable[[], object], repeats: int = 5, warmup: int = 1
) -> Timing:
    """Time ``fn()`` with ``warmup`` discarded runs then ``repeats`` measured
    ones."""
    require(repeats >= 1, "need at least one measured repeat")
    require(warmup >= 0, "warmup count must be non-negative")
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return Timing(times_s=tuple(times), warmup=warmup)
