"""Documentation and packaging sanity checks.

Keeps the README quickstart honest (executes the documented snippet),
checks every public module has a docstring, and verifies the package
surface the docs advertise actually exists.
"""

import importlib
import pkgutil

import numpy as np
import pytest

import repro


PUBLIC_MODULES = [
    "repro",
    "repro.analysis",
    "repro.apps",
    "repro.blockjacobi",
    "repro.cli",
    "repro.core",
    "repro.eig",
    "repro.machine",
    "repro.orderings",
    "repro.parallel",
    "repro.svd",
    "repro.util",
]


class TestDocumentedSurface:
    def test_readme_quickstart_executes(self):
        a = np.random.default_rng(0).standard_normal((64, 32))
        result = repro.svd(a, ordering="fat_tree")
        assert result.converged and result.emerged_sorted == "desc"
        result2, report = repro.parallel_svd(a, topology="cm5", ordering="hybrid")
        assert report.contention_free

    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_module_importable_with_docstring(self, name):
        mod = importlib.import_module(name)
        assert mod.__doc__, f"{name} lacks a module docstring"

    def test_all_submodules_have_docstrings(self):
        missing = []
        for pkg_name in PUBLIC_MODULES[1:]:
            pkg = importlib.import_module(pkg_name)
            if not hasattr(pkg, "__path__"):
                continue
            for info in pkgutil.iter_modules(pkg.__path__):
                sub = importlib.import_module(f"{pkg_name}.{info.name}")
                if not sub.__doc__:
                    missing.append(sub.__name__)
        assert not missing, f"modules without docstrings: {missing}"

    def test_dunder_all_resolves(self):
        for name in PUBLIC_MODULES:
            mod = importlib.import_module(name)
            for sym in getattr(mod, "__all__", []):
                assert hasattr(mod, sym), f"{name}.__all__ lists missing {sym}"

    def test_public_callables_documented(self):
        undocumented = []
        for name in PUBLIC_MODULES:
            mod = importlib.import_module(name)
            for sym in getattr(mod, "__all__", []):
                obj = getattr(mod, sym)
                if callable(obj) and not getattr(obj, "__doc__", None):
                    undocumented.append(f"{name}.{sym}")
        assert not undocumented, f"undocumented public callables: {undocumented}"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)
