"""Static race/determinism analysis of executor chunkings (``EXEC*``).

The threaded step executor promises bit-identity to the serial path
(:mod:`repro.parallel.executor`).  That promise rests on three facts the
executor itself never checks — it *assumes* them:

1. the chunks of a stage write disjoint data (no write-write hazard);
2. stages whose arithmetic couples the whole batch (the batched inner
   Gram solve) are never split;
3. the chunk bounds are an in-order contiguous partition, so the
   chunk-order merge reproduces the serial reduction.

This module derives, for every compiled step x kernel x worker count,
exactly what the executor *would* dispatch — the same
:meth:`~repro.parallel.executor.StepExecutor.chunk_bounds` arithmetic,
the same stage structure from
:data:`~repro.blockjacobi.kernel.KERNEL_STAGES` — and proves those three
facts from the plan alone, before any thread runs.  A fourth, advisory
check flags chunkings whose largest chunk carries at least
:data:`SKEW_THRESHOLD` times the ideal per-chunk share (``EXEC004``,
warning: legal, merely slow).

Write-sets are expressed per stage in the space the stage writes:
pair-solve and gram-apply scatter into *slot* columns (a pair's two
block-column index sets), while gram-form writes per-*batch-item* slices
of a preallocated Gram stack.  The disjointness proof is the same
either way: pairwise-empty intersections across chunks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..blockjacobi.kernel import BLOCK_KERNELS, KERNEL_STAGES
from ..orderings.plan import (CompiledSchedule, CompiledStep, FastPathPlan,
                              compile_schedule)
from ..orderings.schedule import Schedule
from ..parallel.executor import StepExecutor
from ..util.validation import require
from .diagnostics import Diagnostic

__all__ = [
    "SKEW_THRESHOLD",
    "SharedStagePlan",
    "StagePlan",
    "check_executor_plan",
    "check_fastpath_projection",
    "check_shared_memory_plan",
    "check_shared_plan",
    "check_stage_plan",
    "derive_shared_plan",
    "derive_step_chunking",
]

#: load-balance warning threshold: largest chunk >= this multiple of the
#: ideal per-chunk share fires ``EXEC004``
SKEW_THRESHOLD = 2.0

#: space each kernel stage writes into: ``"slots"`` = block-column index
#: sets of the factor matrices, ``"batch"`` = per-item slices of a
#: preallocated batched workspace
_STAGE_SPACE = {
    "pair-solve": "slots",
    "gram-form": "batch",
    "gram-solve": "batch",
    "gram-apply": "slots",
}


@dataclass(frozen=True)
class StagePlan:
    """The executor's statically-determined plan for one kernel stage of
    one schedule step: its chunk bounds and per-chunk write-sets.

    ``write_sets[i]`` is the set of slots (or batch items, per
    ``space``) chunk ``i`` writes; the corruption operators in
    :mod:`repro.verify.corrupt` perturb these fields directly to prove
    each ``EXEC`` rule fires.
    """

    #: stage name from :data:`~repro.blockjacobi.kernel.KERNEL_STAGES`
    stage: str
    #: ``"slots"`` or ``"batch"`` — what the write-sets index
    space: str
    #: False for stages whose arithmetic couples the whole batch
    splittable: bool
    #: number of independent work items (the step's pair count)
    n_items: int
    #: ``(lo, hi)`` chunk bounds the executor would dispatch
    bounds: tuple[tuple[int, int], ...]
    #: per-chunk write-set, aligned with ``bounds``
    write_sets: tuple[frozenset[int], ...]

    @property
    def n_chunks(self) -> int:
        return len(self.bounds)


def pair_write_sets(step: CompiledStep) -> list[frozenset[int]]:
    """Per-pair slot write-sets of a compiled step.

    Pair ``i`` rotates slots ``(a[i], b[i])`` — the only columns its
    work item may write.  The schedule linter already proves these
    disjoint across pairs (RACE001); the executor analysis builds chunk
    write-sets as unions of them.
    """
    return [frozenset((int(a), int(b)))
            for a, b in zip(step.a, step.b)]


def derive_step_chunking(step: CompiledStep, kernel: str,
                         workers: int) -> list[StagePlan]:
    """What the executor would dispatch for one step: every kernel stage
    with its chunk bounds and per-chunk write-sets.

    Uses the very same
    :meth:`~repro.parallel.executor.StepExecutor.chunk_bounds` arithmetic
    as the runtime, so the static claim and the dispatch cannot drift
    apart silently (the runtime sanitizer re-checks equality anyway).
    """
    require(kernel in BLOCK_KERNELS,
            f"unknown kernel {kernel!r}; available: {', '.join(BLOCK_KERNELS)}")
    require(workers >= 1, f"workers must be >= 1, got {workers!r}")
    nb = step.n_pairs
    if nb == 0:
        return []
    per_pair = pair_write_sets(step)
    plans: list[StagePlan] = []
    for stage, splittable in KERNEL_STAGES[kernel]:
        space = _STAGE_SPACE[stage]
        if splittable:
            bounds = tuple(StepExecutor.chunk_bounds(nb, workers))
        else:
            bounds = ((0, nb),)
        if space == "slots":
            write_sets = tuple(
                frozenset().union(*per_pair[lo:hi]) if hi > lo else frozenset()
                for lo, hi in bounds)
        else:
            write_sets = tuple(frozenset(range(lo, hi)) for lo, hi in bounds)
        plans.append(StagePlan(
            stage=stage, space=space, splittable=splittable,
            n_items=nb, bounds=bounds, write_sets=write_sets,
        ))
    return plans


@dataclass(frozen=True)
class SharedStagePlan:
    """Shared-memory projection of one :class:`StagePlan`: what each
    *process* chunk would write in the executor's arena.

    The processes backend dispatches bounds against named shared-memory
    arrays (:mod:`repro.parallel.executor`), so its soundness claim is
    about address ranges, not slot sets: every chunk's writes must land
    in arena intervals no other chunk of the stage touches, and a stage
    whose arithmetic couples the whole batch must never be split at all
    (a process cannot see its siblings' partial writes mid-stage the way
    same-address-space threads sometimes may).  ``ranges[i]`` is chunk
    ``i``'s write footprint as half-open ``(array_key, lo, hi)``
    intervals — column intervals of the adopted factor arrays (disjoint
    column sets are disjoint strided byte sets) and item-slice intervals
    of the per-step scratch stacks.  Rule ``EXEC005`` proves both facts
    from this object alone; :func:`~repro.verify.corrupt`'s
    ``overlap_shared_ranges`` perturbs it to prove the rule fires.
    """

    #: stage name from :data:`~repro.blockjacobi.kernel.KERNEL_STAGES`
    stage: str
    #: False for stages whose arithmetic couples the whole batch
    splittable: bool
    #: number of independent work items (the step's pair count)
    n_items: int
    #: ``(lo, hi)`` chunk bounds the executor would dispatch
    bounds: tuple[tuple[int, int], ...]
    #: per-chunk shared-memory write intervals, aligned with ``bounds``
    ranges: tuple[tuple[tuple[str, int, int], ...], ...]

    @property
    def n_chunks(self) -> int:
        return len(self.bounds)


def _merge_intervals(intervals: list[tuple[str, int, int]]
                     ) -> tuple[tuple[str, int, int], ...]:
    """Coalesce per-key half-open intervals (sorted, adjacent fused)."""
    out: list[tuple[str, int, int]] = []
    for key, lo, hi in sorted(intervals):
        if out and out[-1][0] == key and out[-1][2] >= lo:
            prev = out.pop()
            out.append((key, prev[1], max(prev[2], hi)))
        else:
            out.append((key, lo, hi))
    return tuple(out)


def derive_shared_plan(step: CompiledStep, kernel: str, workers: int,
                       block_size: int = 1,
                       compute_v: bool = True) -> list[SharedStagePlan]:
    """Project the executor's chunking of one step into shared memory.

    Slot-space stages (pair-solve, gram-apply) scatter into the block
    columns of the adopted ``X``/``V`` arrays: slot ``s`` owns columns
    ``[s*b, (s+1)*b)``.  Batch-space stages write per-item slices of the
    per-step scratch stacks (``Ys``/``G``), which the processes backend
    also places in the arena.  Bounds come from the same
    :meth:`~repro.parallel.executor.StepExecutor.chunk_bounds`
    arithmetic as the dispatch.
    """
    b = block_size
    plans: list[SharedStagePlan] = []
    for sp in derive_step_chunking(step, kernel, workers):
        ranges: list[tuple[tuple[str, int, int], ...]] = []
        for (lo, hi), wset in zip(sp.bounds, sp.write_sets):
            if sp.space == "slots":
                cols = [("X", s * b, (s + 1) * b) for s in wset]
                if compute_v:
                    cols += [("V", s * b, (s + 1) * b) for s in wset]
                ranges.append(_merge_intervals(cols))
            else:
                key = "G" if sp.stage == "gram-solve" else "Ys"
                ranges.append(_merge_intervals([(key, lo, hi)]))
        plans.append(SharedStagePlan(
            stage=sp.stage, splittable=sp.splittable, n_items=sp.n_items,
            bounds=sp.bounds, ranges=tuple(ranges),
        ))
    return plans


def check_shared_plan(plan: SharedStagePlan,
                      step_no: int | None = None) -> list[Diagnostic]:
    """Prove one shared-memory stage plan sound for process dispatch
    (rule ``EXEC005``)."""
    out: list[Diagnostic] = []
    tag = f"{plan.stage}"

    # an unsplittable stage split across processes: each worker would
    # solve a partial batch against stale shared state
    if not plan.splittable and plan.n_chunks > 1:
        out.append(Diagnostic(
            rule="EXEC005", step=step_no,
            message=f"stage {tag} couples the whole batch but would be "
                    f"dispatched to {plan.n_chunks} processes",
            details=(("stage", plan.stage), ("n_chunks", plan.n_chunks)),
        ))

    # pairwise-disjoint shared-memory intervals across chunks
    for i in range(plan.n_chunks):
        for j in range(i + 1, plan.n_chunks):
            hits = [
                (key_a, max(lo_a, lo_b), min(hi_a, hi_b))
                for key_a, lo_a, hi_a in plan.ranges[i]
                for key_b, lo_b, hi_b in plan.ranges[j]
                if key_a == key_b and max(lo_a, lo_b) < min(hi_a, hi_b)
            ]
            if hits:
                out.append(Diagnostic(
                    rule="EXEC005", step=step_no,
                    message=f"stage {tag}: process chunks {i} and {j} map "
                            f"to overlapping shared-memory ranges "
                            f"{sorted(hits)}",
                    details=(("stage", plan.stage), ("chunks", (i, j)),
                             ("overlap", tuple(sorted(hits)))),
                ))
    return out


def check_shared_memory_plan(schedule: Schedule | CompiledSchedule, *,
                             kernel: str = "gram",
                             workers: int = 1,
                             block_size: int = 1) -> list[Diagnostic]:
    """Prove every step of a schedule sound for shared-memory process
    dispatch under one kernel x worker-count configuration."""
    plan = schedule if isinstance(schedule, CompiledSchedule) \
        else compile_schedule(schedule)
    out: list[Diagnostic] = []
    for step_no, step in enumerate(plan.steps, start=1):
        for shared in derive_shared_plan(step, kernel, workers, block_size):
            out.extend(check_shared_plan(shared, step_no))
    return out


def check_stage_plan(plan: StagePlan,
                     step_no: int | None = None) -> list[Diagnostic]:
    """Prove one stage plan race-free and deterministic (rules
    ``EXEC001``-``EXEC004``)."""
    out: list[Diagnostic] = []
    tag = f"{plan.stage}"

    # EXEC003: bounds must partition [0, n_items) contiguously, in order
    lo_expect = 0
    ordered = True
    for lo, hi in plan.bounds:
        if lo != lo_expect or hi <= lo:
            ordered = False
            break
        lo_expect = hi
    if not ordered or lo_expect != plan.n_items:
        out.append(Diagnostic(
            rule="EXEC003", step=step_no,
            message=f"stage {tag}: chunk bounds {list(plan.bounds)} are not "
                    f"an in-order contiguous partition of "
                    f"{plan.n_items} work item(s)",
            details=(("stage", plan.stage), ("bounds", plan.bounds)),
        ))

    # EXEC002: unsplittable stages must run as one chunk
    if not plan.splittable and plan.n_chunks > 1:
        out.append(Diagnostic(
            rule="EXEC002", step=step_no,
            message=f"stage {tag} couples the whole batch but is split "
                    f"into {plan.n_chunks} chunks "
                    "(its arithmetic is not chunk-invariant)",
            details=(("stage", plan.stage), ("n_chunks", plan.n_chunks)),
        ))

    # EXEC001: pairwise-disjoint chunk write-sets
    for i in range(plan.n_chunks):
        for j in range(i + 1, plan.n_chunks):
            shared = plan.write_sets[i] & plan.write_sets[j]
            if shared:
                out.append(Diagnostic(
                    rule="EXEC001", step=step_no,
                    message=f"stage {tag}: chunks {i} and {j} both write "
                            f"{plan.space} {sorted(shared)} "
                            "(parallel write-write hazard)",
                    details=(("stage", plan.stage), ("chunks", (i, j)),
                             ("shared", tuple(sorted(shared)))),
                ))

    # EXEC004 (warning): load skew
    if plan.n_chunks > 1 and plan.n_items > 0:
        ideal = plan.n_items / plan.n_chunks
        largest = max(hi - lo for lo, hi in plan.bounds)
        if largest >= SKEW_THRESHOLD * ideal:
            out.append(Diagnostic(
                rule="EXEC004", step=step_no,
                message=f"stage {tag}: largest chunk holds {largest} of "
                        f"{plan.n_items} item(s) across {plan.n_chunks} "
                        f"chunks ({largest / ideal:.1f}x the ideal share)",
                details=(("stage", plan.stage), ("largest", largest),
                         ("ideal", ideal)),
            ))
    return out


def check_fastpath_projection(schedule: Schedule | CompiledSchedule,
                              fastpath: FastPathPlan | None = None
                              ) -> list[Diagnostic]:
    """Prove the simulator fast path's write-set projection sound
    (rule ``EXEC006``).

    The fast path addresses *contents*, not slots: each step's stacked
    kernel call gathers and scatters the rows named by
    ``FastPathPlan.content_pairs``, and the sweep permutation is
    applied once at the end from ``final_layout``.  Three facts make
    that bit-safe, all provable from the plan alone:

    1. a step's content rows are pairwise distinct — a repeated row
       would be a write-write hazard inside one stacked scatter;
    2. the projection agrees with the event path — ``content_pairs[i]``
       must equal the trajectory replay ``layout[i-1][pairs[i]]`` the
       per-step fancy assignments would produce;
    3. the sweep permutation really is one — ``final_layout`` (and its
       memoised plain-int twin) must be a bijection of the slots, or
       the end-of-sweep materialise loses or duplicates a column.

    ``fastpath`` defaults to the plan's own derived bundle; corruption
    tests pass a tampered one to prove the rule fires.
    """
    plan = schedule if isinstance(schedule, CompiledSchedule) \
        else compile_schedule(schedule)
    fp = plan.fastpath() if fastpath is None else fastpath
    out: list[Diagnostic] = []
    layout = np.arange(plan.n, dtype=np.intp)
    for step_no, (cs, pc) in enumerate(zip(plan.steps, fp.content_pairs),
                                       start=1):
        rows = pc.reshape(-1)
        uniq, counts = np.unique(rows, return_counts=True)
        dup = uniq[counts > 1]
        if len(dup):
            out.append(Diagnostic(
                rule="EXEC006", step=step_no,
                message=f"fast-path step writes content row(s) "
                        f"{[int(x) for x in dup]} more than once "
                        "(stacked-scatter write-write hazard)",
                details=(("rows", tuple(int(x) for x in dup)),),
            ))
        expected = layout[cs.pairs] if cs.n_pairs else cs.pairs
        if pc.shape != expected.shape or not np.array_equal(pc, expected):
            out.append(Diagnostic(
                rule="EXEC006", step=step_no,
                message="fast-path content pairs disagree with the event "
                        "path's trajectory replay of the slot pairs",
                details=(("got", tuple(map(tuple, pc.tolist()))),
                         ("expected", tuple(map(tuple, expected.tolist())))),
            ))
        layout = plan.trajectory[step_no - 1]
    final = np.asarray(fp.final_layout)
    if len(final) != plan.n or \
            not np.array_equal(np.sort(final), np.arange(plan.n)):
        out.append(Diagnostic(
            rule="EXEC006", step=None,
            message=f"fast-path final layout is not a permutation of "
                    f"{plan.n} slot(s) — the end-of-sweep materialise "
                    "would lose or duplicate columns",
            details=(("final_layout", tuple(int(x) for x in final)),),
        ))
    elif tuple(int(x) for x in final) != tuple(fp.final_list):
        out.append(Diagnostic(
            rule="EXEC006", step=None,
            message="fast-path memoised final_list disagrees with "
                    "final_layout (stale permutation memo)",
            details=(("final_list", tuple(fp.final_list)),),
        ))
    return out


def check_executor_plan(schedule: Schedule | CompiledSchedule, *,
                        kernel: str = "gram",
                        workers: int = 1) -> list[Diagnostic]:
    """Prove every step of a schedule race-free and deterministic under
    one kernel x worker-count configuration."""
    plan = schedule if isinstance(schedule, CompiledSchedule) \
        else compile_schedule(schedule)
    out: list[Diagnostic] = []
    for step_no, step in enumerate(plan.steps, start=1):
        for stage_plan in derive_step_chunking(step, kernel, workers):
            out.extend(check_stage_plan(stage_plan, step_no))
    return out
