"""Fault injection and recovery for the simulated tree machine.

The chaos-testing subsystem of the reproduction: deterministic,
seed-reproducible fault injection (message drop/duplicate/delay/
corruption, processor crash-stop and stall, link-level outages) plus
the recovery machinery that keeps a faulted run correct — ack/seq
retransmission with capped exponential backoff, sweep-boundary
checkpoints with rollback-and-retry, graceful degradation onto sibling
leaves, and numerical guardrails (non-finite sentinels, kernel fallback
chain, convergence watchdog).

Entry points::

    from repro import FaultPlan, svd
    plan = FaultPlan(seed=7).drop(sweep=0, step=2)
    result = svd(a, fault_plan=plan)
    assert result.converged and result.fault_events

The campaign runner (orderings x fault kinds x sizes survival matrix)
lives in :mod:`repro.faults.campaign` and is imported on demand by the
CLI — not here, to keep the machine layer's import footprint small.
"""

from .checkpoint import MachineCheckpoint, restore_checkpoint, take_checkpoint
from .corruptions import (
    PAYLOAD_MODES,
    corrupt_payload,
    first_remote_move,
    remote_moves,
    unchecked_schedule,
    unchecked_step,
)
from .errors import FaultError, LeafFailure, UnrecoverableFault
from .events import FAULT_ACTIONS, FaultEvent, summarize_events
from .injector import FaultInjector
from .plan import FAULT_KINDS, Fault, FaultPlan
from .recovery import DegradedReport, validate_degraded
from .transport import AckTransport, PhaseOutcome
from .watchdog import ConvergenceWatchdog

__all__ = [
    "AckTransport",
    "ConvergenceWatchdog",
    "DegradedReport",
    "FAULT_ACTIONS",
    "FAULT_KINDS",
    "Fault",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LeafFailure",
    "MachineCheckpoint",
    "PAYLOAD_MODES",
    "PhaseOutcome",
    "UnrecoverableFault",
    "corrupt_payload",
    "first_remote_move",
    "remote_moves",
    "restore_checkpoint",
    "summarize_events",
    "take_checkpoint",
    "unchecked_schedule",
    "unchecked_step",
    "validate_degraded",
]
