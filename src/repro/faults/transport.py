"""Ack/seq reliable transport for TreeMachine links.

When a fault plan is installed, every inter-leaf move of a schedule
step goes through :class:`AckTransport` instead of being assumed
delivered.  The transport models the standard reliability recipe:

* every directed link carries a **sequence number**; the receiver keeps
  a per-link set of delivered sequences and discards duplicates;
* every delivery is **acknowledged**; a sender that sees no ack within
  ``cost.retry_timeout`` retransmits, waiting a capped exponential
  backoff (``cost.backoff_time``) between attempts, at most
  ``plan.max_retries`` times;
* a checksum catches in-flight payload damage (``corrupt``) and turns
  it into a retransmission; ``corrupt_silent`` models damage below the
  checksum's reach — it is delivered and must be caught downstream by
  the kernels' non-finite sentinels.

Escalation is explicit and bounded — this is what "no deadlock" means:

* retries exhausted against a **dead** peer → :class:`LeafFailure`
  (driver rolls back and remaps the leaf onto its sibling);
* retries exhausted during a **link outage** → the sender waits the
  remaining window out (``cost.outage_wait``), the fault is cleared,
  delivery proceeds;
* retries exhausted with the peer alive and the link up →
  :class:`UnrecoverableFault` (driver fails the run explicitly).

Every reaction is priced through :class:`~repro.machine.costmodel.CostModel`
and logged as :class:`~repro.faults.events.FaultEvent` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.costmodel import CostModel
from .errors import LeafFailure, UnrecoverableFault
from .events import FaultEvent
from .injector import FaultInjector

__all__ = ["AckTransport", "PhaseOutcome"]


@dataclass
class PhaseOutcome:
    """What one message phase cost on top of the fault-free model."""

    extra_time: float = 0.0
    retries: int = 0
    events: list[FaultEvent] = field(default_factory=list)
    #: ``(src_leaf, dst_leaf, mode)`` of silently corrupted payloads the
    #: simulator must damage after performing the move
    silent: list[tuple[int, int, str]] = field(default_factory=list)


class AckTransport:
    """Reliable delivery over the simulated tree links."""

    def __init__(self, cost: CostModel, injector: FaultInjector):
        self.cost = cost
        self.injector = injector
        self._next_seq: dict[tuple[int, int], int] = {}
        self._delivered: dict[tuple[int, int], set[int]] = {}

    def deliver_phase(
        self,
        sweep: int,
        step: int,
        messages: list[tuple[int, int, int]],
        words: int,
    ) -> PhaseOutcome:
        """Deliver one phase of ``(src_leaf, dst_leaf, level)`` messages.

        Recovery of distinct messages overlaps (the phase is
        synchronous), so the phase is charged the *worst* message's
        extra time, plus one ack sub-phase for the whole step.
        """
        out = PhaseOutcome()
        worst = 0.0
        for src, dst, level in messages:
            extra = self._deliver_one(out, sweep, step, src, dst, level, words)
            worst = max(worst, extra)
        out.extra_time = worst
        if messages:
            out.extra_time += self.cost.ack_time(len(messages))
        return out

    # -- one message, with bounded retries -------------------------------
    def _deliver_one(
        self,
        out: PhaseOutcome,
        sweep: int,
        step: int,
        src: int,
        dst: int,
        level: int,
        words: int,
    ) -> float:
        inj = self.injector
        cost = self.cost
        extra = 0.0

        def log(event: FaultEvent) -> None:
            inj.record(event)
            out.events.append(event)

        if src in inj.dead or dst in inj.dead:
            # The peer never acks: burn the full retry budget, then
            # report the crash so the driver can roll back and remap.
            leaf = dst if dst in inj.dead else src
            for attempt in range(inj.max_retries):
                extra += cost.backoff_time(attempt)
                out.retries += 1
                log(FaultEvent("crash", "retry", sweep, step, attempt=attempt,
                               src=src, dst=dst, leaf=leaf,
                               time_charged=cost.backoff_time(attempt),
                               detail="no ack from dead peer"))
            ev = FaultEvent("crash", "injected", sweep, step,
                            src=src, dst=dst, leaf=leaf,
                            time_charged=extra,
                            detail=f"leaf {leaf} unresponsive after "
                                   f"{inj.max_retries} retries")
            log(ev)
            out.extra_time = max(out.extra_time, extra)
            raise LeafFailure(ev.describe(), leaf=leaf)

        key = (src, dst)
        seq = self._next_seq.get(key, 0)
        attempt = 0
        while True:
            outage = inj.outage_fault(sweep, step, level)
            if outage is not None:
                if attempt == 0:
                    log(FaultEvent("outage", "injected", sweep, step,
                                   src=src, dst=dst, level=outage.level,
                                   detail=f"level-{outage.level} links down"))
                if attempt < inj.max_retries:
                    wait = cost.backoff_time(attempt)
                    extra += wait
                    out.retries += 1
                    log(FaultEvent("outage", "retry", sweep, step,
                                   attempt=attempt, src=src, dst=dst,
                                   level=outage.level, time_charged=wait))
                    attempt += 1
                    continue
                end = (outage.until_step if outage.until_step is not None
                       else outage.step)
                remaining = max(1, end - step + 1)
                wait = cost.outage_wait(remaining)
                extra += wait
                log(FaultEvent("outage", "outage-wait", sweep, step,
                               src=src, dst=dst, level=outage.level,
                               time_charged=wait,
                               detail=f"waited out {remaining}-step window"))
                inj.clear(outage)
                continue

            fault = inj.message_fault(sweep, step, src, dst)
            if fault is None:
                break  # clean delivery

            if fault.kind == "drop":
                log(FaultEvent("drop", "injected", sweep, step,
                               attempt=attempt, src=src, dst=dst,
                               detail=f"seq {seq} lost in flight"))
                if attempt >= inj.max_retries:
                    ev = FaultEvent("drop", "unrecoverable", sweep, step,
                                    attempt=attempt, src=src, dst=dst,
                                    detail=f"still dropped after "
                                           f"{inj.max_retries} retries")
                    log(ev)
                    raise UnrecoverableFault(ev.describe())
                wait = cost.backoff_time(attempt) + cost.retransmit_time(
                    words, level)
                extra += wait
                out.retries += 1
                log(FaultEvent("drop", "retry", sweep, step, attempt=attempt,
                               src=src, dst=dst, time_charged=wait))
                attempt += 1
                continue

            if fault.kind == "corrupt":
                log(FaultEvent("corrupt", "injected", sweep, step,
                               attempt=attempt, src=src, dst=dst,
                               detail="checksum mismatch, nack sent"))
                if attempt >= inj.max_retries:
                    ev = FaultEvent("corrupt", "unrecoverable", sweep, step,
                                    attempt=attempt, src=src, dst=dst,
                                    detail=f"still corrupted after "
                                           f"{inj.max_retries} retries")
                    log(ev)
                    raise UnrecoverableFault(ev.describe())
                wait = cost.retransmit_time(words, level)
                extra += wait
                out.retries += 1
                log(FaultEvent("corrupt", "retry", sweep, step,
                               attempt=attempt, src=src, dst=dst,
                               time_charged=wait))
                attempt += 1
                continue

            if fault.kind == "duplicate":
                # First copy is delivered below; the second arrives with
                # the same sequence number and hits the dedup set.
                wait = cost.duplicate_time(words)
                extra += wait
                log(FaultEvent("duplicate", "injected", sweep, step,
                               src=src, dst=dst,
                               detail=f"seq {seq} delivered twice"))
                log(FaultEvent("duplicate", "dedup", sweep, step,
                               src=src, dst=dst, time_charged=wait,
                               detail=f"second copy of seq {seq} discarded"))
                break

            if fault.kind == "delay":
                lateness = (fault.duration if fault.duration > 0.0
                            else 1.5 * cost.retry_timeout)
                log(FaultEvent("delay", "injected", sweep, step,
                               src=src, dst=dst,
                               detail=f"seq {seq} late by {lateness:.0f}"))
                if lateness <= cost.retry_timeout:
                    extra += lateness
                    log(FaultEvent("delay", "delivered-late", sweep, step,
                                   src=src, dst=dst, time_charged=lateness))
                else:
                    # Timeout fired before the original arrived: the
                    # retransmitted copy wins, the late original is
                    # discarded by sequence number.
                    wait = (cost.backoff_time(0)
                            + cost.retransmit_time(words, level))
                    extra += wait
                    out.retries += 1
                    log(FaultEvent("delay", "retry", sweep, step,
                                   src=src, dst=dst, time_charged=wait,
                                   detail="timeout before late arrival"))
                    log(FaultEvent("delay", "dedup", sweep, step,
                                   src=src, dst=dst,
                                   detail=f"late original seq {seq} "
                                          "discarded"))
                break

            # corrupt_silent: below the checksum's reach — delivered as
            # is; the kernels' non-finite sentinels must catch it later.
            out.silent.append((src, dst, fault.mode))
            log(FaultEvent("corrupt_silent", "injected", sweep, step,
                           src=src, dst=dst,
                           detail=f"payload damaged ({fault.mode}), "
                                  "checksum passed"))
            log(FaultEvent("corrupt_silent", "corrupted", sweep, step,
                           src=src, dst=dst))
            break

        self._next_seq[key] = seq + 1
        self._delivered.setdefault(key, set()).add(seq)
        return extra
