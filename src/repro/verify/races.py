"""Static data-race detection on a :class:`~repro.orderings.schedule.Schedule`.

The checks re-derive every invariant from the raw ``pairs``/``moves``
data instead of trusting the constructor validation of
:class:`~repro.orderings.schedule.Step` — schedules under audit may come
from unchecked sources (a hand-written ordering, a corruption operator
from :mod:`repro.verify.corrupt`, a deserialized trace), and the whole
point of a verifier is to not assume its input is well-formed.

Rules
-----
``RACE001``
    A slot named by two rotation pairs of one step: two processors
    would update the same column concurrently.
``RACE002``
    Two moves of one step share a source or a destination slot: a
    column is fetched twice or a slot written twice in one phase.
``RACE003``
    The move set is not a partial permutation (``src`` set != ``dst``
    set).  A send without a matching receive drops a column on the
    floor; a receive without a send duplicates one.
``RACE004``
    Tracking slot contents through the sweep, the column-to-slot
    placement stops being a bijection (some column lost or doubled) or
    a slot index leaves ``[0, n)``.
``RACE005`` *(warning)*
    A rotation pair spans two leaves.  Legal — the cost model charges
    the remote fetch — but both processors touch the same column pair
    in one step, which the paper's tree orderings avoid by design.
"""

from __future__ import annotations

from collections import Counter

from ..orderings.schedule import Schedule, Step
from .diagnostics import Diagnostic

__all__ = ["check_step_races", "check_placement_bijection", "find_races"]


def _fmt(slots: list[int]) -> str:
    return ", ".join(str(s) for s in sorted(slots))


def check_step_races(step: Step, step_no: int) -> list[Diagnostic]:
    """Race-check one step in isolation (rules RACE001/2/3/5)."""
    out: list[Diagnostic] = []

    pair_slots = Counter(s for p in step.pairs for s in p)
    shared = [s for s, c in pair_slots.items() if c > 1]
    if shared:
        out.append(Diagnostic(
            rule="RACE001", step=step_no,
            message=f"slot(s) {_fmt(shared)} appear in two rotation pairs",
            details=(("slots", tuple(sorted(shared))),),
        ))

    srcs = Counter(m.src for m in step.moves)
    dsts = Counter(m.dst for m in step.moves)
    dup_src = [s for s, c in srcs.items() if c > 1]
    dup_dst = [s for s, c in dsts.items() if c > 1]
    if dup_src or dup_dst:
        out.append(Diagnostic(
            rule="RACE002", step=step_no,
            message=f"duplicate move source(s) [{_fmt(dup_src)}] / "
                    f"destination(s) [{_fmt(dup_dst)}]",
            details=(("sources", tuple(sorted(dup_src))),
                     ("destinations", tuple(sorted(dup_dst)))),
        ))
    elif set(srcs) != set(dsts):
        unreceived = sorted(set(srcs) - set(dsts))
        unsent = sorted(set(dsts) - set(srcs))
        out.append(Diagnostic(
            rule="RACE003", step=step_no,
            message=f"moves are not a partial permutation: slot(s) "
                    f"[{_fmt(unreceived)}] vacated but never refilled, "
                    f"slot(s) [{_fmt(unsent)}] overwritten without being vacated",
            details=(("vacated", tuple(unreceived)),
                     ("overwritten", tuple(unsent))),
        ))

    remote = step.remote_pairs
    if remote:
        out.append(Diagnostic(
            rule="RACE005", step=step_no,
            message=f"{len(remote)} rotation pair(s) span two leaves, "
                    f"e.g. {remote[0]}",
            details=(("pairs", tuple(remote)),),
        ))
    return out


def check_placement_bijection(schedule: Schedule) -> list[Diagnostic]:
    """Track slot contents through the sweep and verify the placement
    stays a bijection (rule RACE004).

    The simulation applies each step's moves with snapshot semantics
    (all sends read the pre-step contents), mirroring
    :func:`repro.orderings.schedule.apply_moves` but tolerating
    ill-formed move sets so corruption is reported, not raised.
    """
    n = schedule.n
    out: list[Diagnostic] = []
    layout: list[int | None] = list(range(n))
    for step_no, step in enumerate(schedule.steps, start=1):
        oob = sorted({s for p in step.pairs for s in p if not 0 <= s < n}
                     | {s for m in step.moves for s in (m.src, m.dst)
                        if not 0 <= s < n})
        if oob:
            out.append(Diagnostic(
                rule="RACE004", step=step_no,
                message=f"slot(s) [{_fmt(oob)}] outside [0, {n})",
                details=(("slots", tuple(oob)),),
            ))
            return out  # layout tracking is meaningless past this point
        snapshot = {m.src: layout[m.src] for m in step.moves}
        vacated = set(snapshot) - {m.dst for m in step.moves}
        for s in vacated:
            layout[s] = None
        for m in step.moves:
            layout[m.dst] = snapshot[m.src]
        occupied = [c for c in layout if c is not None]
        if len(set(occupied)) != n:
            lost = sorted(set(range(n)) - set(occupied))
            doubled = sorted(c for c, k in Counter(occupied).items() if k > 1)
            out.append(Diagnostic(
                rule="RACE004", step=step_no,
                message=f"placement is not a bijection after step {step_no}: "
                        f"column(s) {lost} lost, {doubled} duplicated",
                details=(("lost", tuple(lost)), ("duplicated", tuple(doubled))),
            ))
            return out
    return out


def find_races(schedule: Schedule) -> list[Diagnostic]:
    """All race diagnostics for one sweep (RACE001-RACE005)."""
    out: list[Diagnostic] = []
    for step_no, step in enumerate(schedule.steps, start=1):
        out.extend(check_step_races(step, step_no))
    out.extend(check_placement_bijection(schedule))
    return out
