"""Shared error and warning types for numerical guardrails.

These live at the bottom of the layering (``repro.util``) because both
the rotation kernels (:mod:`repro.svd.rotations`,
:mod:`repro.blockjacobi.kernel`) and the fault-recovery subsystem
(:mod:`repro.faults`) need them without importing each other.
"""

from __future__ import annotations

__all__ = ["NumericalBreakdown", "ConvergenceWarning"]


class NumericalBreakdown(ArithmeticError):
    """A kernel observed non-finite quantities (NaN/Inf) mid-iteration.

    Raised by the rotation/batched/gram kernels the moment a Gram
    quantity stops being finite, so corrupted data can never be silently
    rotated into the result.  Under a fault-recovery driver this is the
    signal to roll back to the last sweep checkpoint; without one it
    surfaces to the caller instead of returning garbage.
    """

    def __init__(self, message: str, where: tuple[int, ...] | None = None):
        super().__init__(message)
        #: coordinate of the first offending entry, when known
        self.where = where


class ConvergenceWarning(UserWarning):
    """The sweep loop exhausted ``max_sweeps`` without converging.

    The result is still returned (with ``converged=False``) so callers
    can inspect the partial decomposition, but silent acceptance of a
    non-converged factorization is a bug farm — hence the warning.
    """
