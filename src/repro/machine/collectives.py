"""Tree collectives: cost and data semantics on the modelled machine.

Fat-trees are natural collective machines (Leiserson [9]): a broadcast,
reduction or all-reduce flows once up and once down the tree.  The
parallel driver charges one all-reduce per sweep for its convergence
flag; this module provides both the analytic costs of the standard
collectives on a :class:`~repro.machine.topology.TreeTopology` and their
data semantics over per-leaf values (used by the tests to validate the
cost formulas against an explicit message-level simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ..util.validation import require
from .costmodel import CostModel
from .topology import TreeTopology

__all__ = ["CollectiveCost", "collective_cost", "tree_reduce", "tree_broadcast",
           "tree_allreduce", "tree_scan"]


@dataclass(frozen=True)
class CollectiveCost:
    """Cost of one collective: phases, per-level channel crossings, time."""

    kind: str
    phases: int
    channel_crossings: int
    time: float


def collective_cost(
    kind: str,
    topology: TreeTopology,
    words: int,
    cost_model: CostModel | None = None,
) -> CollectiveCost:
    """Analytic cost of a collective over all leaves.

    ``reduce``/``broadcast`` traverse the tree once (L levels);
    ``allreduce`` is a reduce followed by a broadcast; ``allgather``
    doubles the payload per level on the way down; ``scan`` is an
    up-sweep plus a down-sweep (Blelloch).  Channels carry one message
    per child-parent link per phase, so collectives never contend.
    """
    cm = cost_model or CostModel()
    L = max(1, topology.n_levels)
    per_traversal = topology.n_leaves - 1  # edges of the tree
    if kind in ("reduce", "broadcast"):
        phases = L
        crossings = per_traversal
        time = cm.alpha + cm.hop_time * L + cm.beta * words * L
    elif kind in ("allreduce", "scan"):
        phases = 2 * L
        crossings = 2 * per_traversal
        time = 2 * (cm.alpha + cm.hop_time * L + cm.beta * words * L)
    elif kind == "allgather":
        phases = 2 * L
        crossings = 2 * per_traversal
        # payload doubles per level on the way down: words * (2^L - 1)/L per
        # level on average; charge the worst (final) level's payload
        time = (
            2 * cm.alpha
            + 2 * cm.hop_time * L
            + cm.beta * words * (topology.n_leaves - 1)
        )
    else:
        raise ValueError(f"unknown collective {kind!r}")
    return CollectiveCost(kind=kind, phases=phases, channel_crossings=crossings, time=time)


def tree_reduce(values: Sequence[float], op: Callable[[float, float], float]) -> float:
    """Reduce per-leaf values exactly as the tree would (pairwise up-sweep).

    The combination ORDER matters for non-associative float ops; this is
    the order a synchronous binary-tree reduction produces.
    """
    vals = list(values)
    require(len(vals) > 0 and (len(vals) & (len(vals) - 1)) == 0,
            "need a power-of-two number of leaves")
    while len(vals) > 1:
        vals = [op(vals[i], vals[i + 1]) for i in range(0, len(vals), 2)]
    return vals[0]


def tree_broadcast(value: float, n_leaves: int) -> list[float]:
    """Broadcast a root value to every leaf."""
    require(n_leaves >= 1, "need at least one leaf")
    return [value] * n_leaves


def tree_allreduce(values: Sequence[float], op: Callable[[float, float], float]) -> list[float]:
    """Reduce then broadcast: every leaf receives the same combined value."""
    total = tree_reduce(values, op)
    return tree_broadcast(total, len(values))


def tree_scan(values: Sequence[float], op: Callable[[float, float], float]) -> list[float]:
    """Inclusive prefix combine (Blelloch up/down sweep order)."""
    vals = list(values)
    require(len(vals) > 0 and (len(vals) & (len(vals) - 1)) == 0,
            "need a power-of-two number of leaves")
    out = []
    acc = None
    for v in vals:
        acc = v if acc is None else op(acc, v)
        out.append(acc)
    return out
