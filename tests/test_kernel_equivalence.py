"""Golden-numerics equivalence of the batched and reference kernels.

The batched kernel is a pure performance rewrite: for every registered
ordering and a spread of matrix classes (generic Gaussian, exactly
rank-deficient, ill-conditioned) it must reproduce the reference
kernel's decomposition — same singular values to tight relative
tolerance, same rank, same convergence — and remain a valid SVD of the
input.  Sweep counts may differ by at most one: the batched kernel
applies the documented ``SORT_SLACK`` tie band uniformly, which can
shift a noise-level exchange across a sweep boundary on pathological
inputs (see ``apply_step_rotations_batched``'s docstring).
"""

import numpy as np
import pytest

from repro.orderings import ordering_names
from repro.svd import JacobiOptions, jacobi_svd

SIZES = (8, 16, 32)

#: relative agreement demanded between the two kernels' singular values
RTOL_SIGMA = 1e-12


def _matrix(case: str, n: int) -> np.ndarray:
    rng = np.random.default_rng(100 + n)
    m = n + 6
    if case == "gaussian":
        return rng.standard_normal((m, n))
    if case == "rank_deficient":
        half = max(2, n // 2)
        return rng.standard_normal((m, half)) @ rng.standard_normal((half, n))
    if case == "ill_conditioned":
        u, _ = np.linalg.qr(rng.standard_normal((m, n)))
        v, _ = np.linalg.qr(rng.standard_normal((n, n)))
        return (u * np.logspace(0, -10, n)) @ v.T
    raise AssertionError(case)


def _both(a: np.ndarray, ordering: str):
    ref = jacobi_svd(a, ordering=ordering, options=JacobiOptions(kernel="reference"))
    bat = jacobi_svd(a, ordering=ordering, options=JacobiOptions(kernel="batched"))
    return ref, bat


class TestGoldenEquivalence:
    @pytest.mark.parametrize("ordering", ordering_names())
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize(
        "case", ["gaussian", "rank_deficient", "ill_conditioned"]
    )
    def test_batched_reproduces_reference(self, ordering, n, case):
        a = _matrix(case, n)
        ref, bat = _both(a, ordering)
        assert ref.converged and bat.converged
        assert ref.rank == bat.rank
        # exact rank deficiency leaves a cluster of numerically-zero
        # columns whose rotation/exchange decisions are pure noise, so
        # the two kernels' trajectories may part a couple of sweeps
        # earlier there; everywhere else they track to at most one sweep
        slack = 3 if case == "rank_deficient" else 1
        assert abs(ref.sweeps - bat.sweeps) <= slack
        scale = max(float(ref.sigma[0]), 1.0)
        assert np.max(np.abs(ref.sigma - bat.sigma)) <= RTOL_SIGMA * scale
        # the batched result is a genuine SVD of a, not just sigma-close
        recon = (bat.u * bat.sigma) @ bat.v.T
        assert np.max(np.abs(recon - a)) <= 1e-10 * scale

    @pytest.mark.parametrize("ordering", ["fat_tree", "ring_new", "round_robin"])
    def test_matches_lapack(self, ordering):
        a = _matrix("gaussian", 16)
        _, bat = _both(a, ordering)
        lap = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(bat.sigma - lap)) <= 1e-11 * lap[0]

    def test_rank_agreement_on_exact_deficiency(self):
        a = _matrix("rank_deficient", 32)
        ref, bat = _both(a, "fat_tree")
        assert ref.rank == bat.rank == 16

    @pytest.mark.parametrize("sort", ["desc", "asc", None])
    def test_sort_modes_agree(self, sort):
        a = _matrix("gaussian", 16)
        ref = jacobi_svd(a, ordering="ring_new",
                         options=JacobiOptions(kernel="reference", sort=sort))
        bat = jacobi_svd(a, ordering="ring_new",
                         options=JacobiOptions(kernel="batched", sort=sort))
        assert ref.converged and bat.converged
        assert np.max(np.abs(ref.sigma - bat.sigma)) <= RTOL_SIGMA * ref.sigma[0]

    def test_tall_matrix(self):
        rng = np.random.default_rng(9)
        a = rng.standard_normal((120, 16))
        ref, bat = _both(a, "fat_tree")
        assert np.max(np.abs(ref.sigma - bat.sigma)) <= RTOL_SIGMA * ref.sigma[0]

    def test_unknown_kernel_rejected(self):
        a = np.eye(8)
        with pytest.raises(ValueError, match="unknown kernel"):
            jacobi_svd(a, options=JacobiOptions(kernel="fused"))
