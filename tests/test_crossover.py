"""Tests of the capacity crossover study (TAB-CROSS)."""

import pytest

from repro.analysis import crossover_level, crossover_table, render_crossover_table


class TestCrossover:
    @pytest.fixture(scope="class")
    def rows(self):
        return crossover_table(n=64, m=96)

    def test_sweeps_every_level(self, rows):
        assert [r.skinny_above for r in rows] == [1, 2, 3, 4, 5]

    def test_fat_tree_improves_monotonically_with_capacity(self, rows):
        # the paper's closing prediction: more channel capacity makes the
        # fat-tree ordering more attractive
        times = [r.comm_time["fat_tree"] for r in rows]
        assert times == sorted(times, reverse=True)

    def test_fat_tree_contention_vanishes_at_perfect(self, rows):
        assert rows[0].fat_tree_contention > 1.0
        assert rows[-1].fat_tree_contention == 1.0

    def test_near_parity_on_perfect_fat_tree(self, rows):
        last = rows[-1]
        gap = abs(last.comm_time["fat_tree"] - last.comm_time["hybrid"])
        assert gap <= 0.02 * last.comm_time["hybrid"]

    def test_hybrid_insensitive_to_upper_capacity(self, rows):
        # hybrid never loads the skinny levels beyond capacity, so wider
        # upper channels barely change its time
        times = [r.comm_time["hybrid"] for r in rows]
        assert max(times) <= 1.3 * min(times)

    def test_crossover_level_semantics(self, rows):
        lvl = crossover_level(rows)
        if lvl is not None:
            assert rows[lvl - 1].fat_tree_wins

    def test_render(self, rows):
        text = render_crossover_table(rows)
        assert "TAB-CROSS" in text and "winner" in text
