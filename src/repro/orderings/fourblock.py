"""The four-block ordering (Section 3.2 of the paper, Figs 4 and 6).

Two building blocks live here:

* the *basic modules* for four indices (Fig 4): three steps generating
  all six pairs of four indices.  Variant (a) keeps the left index of
  every pair smaller than the right one and restores the original index
  order after each sweep (the property the paper exploits for sorted
  singular values); variant (b) leaves indices 3 and 4 exchanged, so the
  order only returns after two sweeps — the reason the paper prefers (a).

* the *merge stage* (Section 3.2.2 / 3.3): given two groups whose
  indices have already met internally, organise them as four interleaved
  blocks, interchange blocks 2 and 3, run two parallel two-block
  orderings (super-step 2), interchange blocks 3 and 4, run two more
  (super-step 3), and send every block home.  Block 3 is rotated twice
  (its order self-restores); blocks 2 and 4 are rotated once and their
  halves are un-crossed by the homing moves, so the merged group ends in
  its original order — the induction step of the paper's Section 3.3
  proof.

All interchange and homing traffic is fused into the preceding rotation
step's move phase (a column travels at most once between consecutive
steps), which is what an implementation on a real fat-tree would do.
"""

from __future__ import annotations

from ..util.validation import require, require_power_of_two
from .schedule import Move, Schedule, Step
from .twoblock import StepFragment, merge_parallel, two_block_fragments

__all__ = [
    "basic_module_fragments",
    "basic_module_schedule",
    "merge_stage_fragments",
    "four_block_schedule",
]


def _top(leaf: int) -> int:
    return 2 * leaf


def _bottom(leaf: int) -> int:
    return 2 * leaf + 1


def basic_module_fragments(leaf_a: int, leaf_b: int, variant: str = "a") -> list[StepFragment]:
    """Three-step module combining the four indices on two leaves (Fig 4).

    Variant "a" restores the original order after the module completes;
    variant "b" leaves the second leaf's columns exchanged (order of the
    third and fourth index reversed), restoring only after two sweeps.
    """
    require(variant in ("a", "b"), f"variant must be 'a' or 'b', got {variant!r}")
    ta, ba = _top(leaf_a), _bottom(leaf_a)
    tb, bb = _top(leaf_b), _bottom(leaf_b)
    pairs_a = ((ta, ba), (tb, bb))
    # step 1 pairs (1,2)(3,4); interleave: 2 <-> 3
    step1 = StepFragment(pairs=pairs_a, moves=(Move(ba, tb), Move(tb, ba)))
    # step 2 pairs (1,3)(2,4); exchange bottoms: 3 <-> 4
    step2 = StepFragment(pairs=pairs_a, moves=(Move(ba, bb), Move(bb, ba)))
    if variant == "a":
        # step 3 pairs (1,4)(2,3); homing 3-cycle restores (1,2)(3,4):
        # slot contents are (1,4),(2,3) -> 4 goes to bottom_b, 2 comes
        # back to bottom_a, 3 rises to top_b (local).
        step3 = StepFragment(
            pairs=pairs_a,
            moves=(Move(ba, bb), Move(tb, ba), Move(bb, tb)),
        )
    else:
        # variant (b): cheaper exit (single neighbour exchange) that
        # leaves leaf_b holding (4,3) - indices 3 and 4 reversed.
        step3 = StepFragment(
            pairs=pairs_a,
            moves=(Move(ba, tb), Move(tb, ba)),
        )
    return [step1, step2, step3]


def basic_module_schedule(variant: str = "a") -> Schedule:
    """Standalone Fig 4 module on four columns (leaves 0 and 1)."""
    frags = basic_module_fragments(0, 1, variant)
    steps = [Step(pairs=f.pairs, moves=f.moves) for f in frags]
    return Schedule(n=4, steps=steps, name=f"four_index_module_{variant}")


def merge_stage_fragments(
    left: list[int], right: list[int], homing: bool = True
) -> tuple[tuple[Move, ...], list[StepFragment]]:
    """Merge two natural-order groups of ``K`` leaves each (Section 3.3).

    Precondition: every index inside each group has already met every
    other index of that group (previous stages) and both groups are in
    natural order.  Returns ``(pre_moves, fragments)``: ``pre_moves`` is
    the block-2/3 interchange to fuse into the *preceding* step, and the
    fragments cover super-steps 2 and 3 (``2K`` steps) with all later
    interchanges and the homing traffic already fused in.
    """
    K = len(left)
    require(len(right) == K, "groups must be the same size")
    require_power_of_two(K, "group size (leaves)")
    half = K // 2

    # (i) interchange block2 (left bottoms) <-> block3 (right tops)
    pre_moves = tuple(
        m
        for l, r in zip(left, right)
        for m in (Move(_bottom(l), _top(r)), Move(_top(r), _bottom(l)))
    )

    # super-step 2: left pairs block1 x block3 (rotate bottoms = block3),
    # right pairs block2 x block4 (rotate tops = block2)
    ss2 = merge_parallel(
        two_block_fragments(left, rotate="bottom"),
        two_block_fragments(right, rotate="top"),
    )
    # (ii) interchange block3 (left bottoms) <-> block4 (right bottoms)
    inter34 = tuple(
        m
        for l, r in zip(left, right)
        for m in (Move(_bottom(l), _bottom(r)), Move(_bottom(r), _bottom(l)))
    )
    ss2[-1] = ss2[-1].with_extra_moves(inter34)

    # super-step 3: left pairs block1 x block4 (rotate bottoms = block4),
    # right pairs block2 x block3 (rotate bottoms = block3, its second
    # rotation - restoring its internal order)
    ss3 = merge_parallel(
        two_block_fragments(left, rotate="bottom"),
        two_block_fragments(right, rotate="bottom"),
    )
    # (iii) homing: block2 sits on the right tops with its halves crossed,
    # block4 on the left bottoms with its halves crossed, block3 on the
    # right bottoms in natural order.  Send each home, un-crossing 2 & 4.
    # The Lee-Luk-Boley baseline skips this phase (``homing=False``) and
    # pays for it with a permuted end-of-sweep layout.
    if homing:
        moves: list[Move] = []
        for i in range(half):
            moves.append(Move(_top(right[i]), _bottom(left[half + i])))
            moves.append(Move(_top(right[half + i]), _bottom(left[i])))
            moves.append(Move(_bottom(left[i]), _bottom(right[half + i])))
            moves.append(Move(_bottom(left[half + i]), _bottom(right[i])))
            moves.append(Move(_bottom(right[i]), _top(right[i])))
            moves.append(Move(_bottom(right[half + i]), _top(right[half + i])))
        ss3[-1] = ss3[-1].with_extra_moves(tuple(moves))
    return pre_moves, ss2 + ss3


def four_block_schedule(n: int = 8) -> Schedule:
    """Standalone four-block ordering for ``n`` indices (Fig 6 is n = 8).

    Stage 1 runs the Fig 4(a) module inside each pair of leaves; the
    merge stage then combines the two groups — giving the full ``n - 1``
    step ordering of Fig 6 for ``n = 8``.
    """
    require_power_of_two(n, "n", minimum=8)
    require(n == 8, "the standalone four-block ordering is the n=8 figure; "
                    "larger sizes are produced by the fat-tree merge procedure")
    stage1 = merge_parallel(
        basic_module_fragments(0, 1, "a"), basic_module_fragments(2, 3, "a")
    )
    pre, stage2 = merge_stage_fragments([0, 1], [2, 3])
    frags = stage1 + [StepFragment(pairs=(), moves=pre)] + stage2
    steps = [Step(pairs=f.pairs, moves=f.moves) for f in frags]
    return Schedule(n=n, steps=steps, name="four_block(n=8)")
