"""The paper's fat-tree ordering (Section 3.3, Figs 5-6).

The merge procedure: the ``n`` indices start in ``n/4`` groups of four
(two leaves each); stage 1 lets each group's indices meet via the
Fig 4(a) basic module; every subsequent stage merges neighbouring groups
with the four-block merge stage until one group spans the machine.
A sweep takes exactly ``n - 1`` steps and — unlike the Lee-Luk-Boley
ordering — returns every column to its home slot after *every* sweep,
so no backward sweeps are needed and the gap between successive
rotations of any fixed pair is constant.

Communication locality is geometric: stage ``s`` is the only part of the
sweep that touches level ``s + 1`` of the tree, and it moves a constant
number of columns per leaf across it, matching the doubling channel
capacity of a perfect fat-tree (constant per-level bandwidth demand).
"""

from __future__ import annotations

from ..util.validation import require_power_of_two
from .base import Ordering
from .fourblock import basic_module_fragments, merge_stage_fragments
from .schedule import Schedule, Step
from .twoblock import StepFragment, merge_parallel

__all__ = ["FatTreeOrdering", "fat_tree_sweep", "merge_stage_plan"]


def merge_stage_plan(n: int) -> list[list[list[int]]]:
    """The Fig 5 scheme: for each stage, the groups (as leaf lists) it merges.

    Stage 1 entries are single groups of two leaves (the basic modules);
    each later stage lists ``[left_leaves, right_leaves]`` merge pairs.
    """
    require_power_of_two(n, "n", minimum=4)
    n_leaves = n // 2
    plan: list[list[list[int]]] = []
    plan.append([[2 * g, 2 * g + 1] for g in range(n_leaves // 2)])
    size = 2
    while size < n_leaves:
        stage = []
        for start in range(0, n_leaves, 2 * size):
            left = list(range(start, start + size))
            right = list(range(start + size, start + 2 * size))
            stage.append([left, right])
        plan.append(stage)
        size *= 2
    return plan


def fat_tree_sweep(n: int, variant: str = "a") -> Schedule:
    """One sweep (``n - 1`` steps) of the fat-tree ordering."""
    require_power_of_two(n, "n", minimum=4)
    plan = merge_stage_plan(n)
    # stage 1: Fig 4 basic modules in every group of two leaves
    frags: list[StepFragment] = merge_parallel(
        *[basic_module_fragments(a, b, variant) for a, b in plan[0]]
    )
    for stage in plan[1:]:
        pre_all: list = []
        stage_frag_lists = []
        for left, right in stage:
            pre, fl = merge_stage_fragments(left, right)
            pre_all.extend(pre)
            stage_frag_lists.append(fl)
        # the block-2/3 interchange is its own communication phase: the
        # previous stage's final step already carries the homing traffic,
        # and stacking two phases onto one would oversubscribe the leaf
        # injection channels (every leaf would send two columns at once)
        frags.append(StepFragment(pairs=(), moves=tuple(pre_all)))
        frags = frags + merge_parallel(*stage_frag_lists)
    steps = [Step(pairs=f.pairs, moves=f.moves) for f in frags]
    return Schedule(n=n, steps=steps, name=f"fat_tree(n={n})")


class FatTreeOrdering(Ordering):
    """The paper's fat-tree ordering: local-first communication on a
    perfect fat-tree, order restored after every sweep."""

    name = "fat_tree"

    def __init__(self, n: int):
        require_power_of_two(n, "n", minimum=4)
        super().__init__(n)

    def build_sweep(self, sweep_index: int) -> Schedule:
        return fat_tree_sweep(self.n)
