"""Tests of the command-line interface."""

import json
import pathlib

import pytest

from repro.cli import build_parser, main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_svd_defaults(self):
        args = build_parser().parse_args(["svd"])
        assert args.m == 96 and args.n == 64
        assert args.ordering == "hybrid" and args.topology == "cm5"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fat_tree" in out and "cm5" in out and "FIG9" in out

    def test_svd_serial(self, capsys):
        rc = main(["svd", "--m", "24", "--n", "16", "--serial",
                   "--ordering", "fat_tree"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged=True" in out
        assert "sigma error" in out

    def test_svd_parallel(self, capsys):
        rc = main(["svd", "--m", "24", "--n", "16",
                   "--ordering", "ring_new", "--topology", "binary"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "contention-free=True" in out

    def test_figures_subset(self, capsys):
        assert main(["figures", "FIG2"]) == 0
        out = capsys.readouterr().out
        assert "two-block basic module" in out

    def test_figures_unknown_id(self, capsys):
        assert main(["figures", "FIG99"]) == 2

    def test_tables_unknown_id(self, capsys):
        assert main(["tables", "TAB-NOPE"]) == 2

    def test_tables_subset(self, capsys):
        assert main(["tables", "TAB-SWEEP"]) == 0
        out = capsys.readouterr().out
        assert "rotation-gap" in out

    def test_svd_serial_batched_kernel(self, capsys):
        rc = main(["svd", "--m", "24", "--n", "16", "--serial",
                   "--ordering", "fat_tree", "--kernel", "batched"])
        assert rc == 0
        assert "converged=True" in capsys.readouterr().out

    def test_svd_serial_block_gram_kernel(self, capsys):
        rc = main(["svd", "--m", "24", "--n", "16", "--serial",
                   "--ordering", "ring_new", "--kernel", "gram",
                   "--block-size", "4"])
        assert rc == 0
        assert "converged=True" in capsys.readouterr().out

    def test_svd_parallel_block_mode(self, capsys):
        rc = main(["svd", "--m", "24", "--n", "16",
                   "--ordering", "hybrid", "--block-size", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged=True" in out
        assert "contention-free=True" in out

    def test_svd_gram_without_block_size_is_usage_error(self, capsys):
        rc = main(["svd", "--kernel", "gram"])
        assert rc == 2
        assert "--block-size" in capsys.readouterr().out

    def test_svd_nonpositive_block_size_is_usage_error(self, capsys):
        rc = main(["svd", "--block-size", "0"])
        assert rc == 2
        assert "positive" in capsys.readouterr().out

    def test_svd_executor_without_block_size_is_usage_error(self, capsys):
        rc = main(["svd", "--executor", "threads"])
        assert rc == 2
        assert "--block-size" in capsys.readouterr().out

    def test_svd_workers_without_block_size_is_usage_error(self, capsys):
        rc = main(["svd", "--workers", "2"])
        assert rc == 2
        assert "--block-size" in capsys.readouterr().out

    def test_svd_nonpositive_workers_is_usage_error(self, capsys):
        rc = main(["svd", "--block-size", "4", "--workers", "0"])
        assert rc == 2
        assert ">= 1" in capsys.readouterr().out

    def test_svd_threads_executor_runs(self, capsys):
        rc = main(["svd", "--m", "40", "--n", "32", "--serial",
                   "--block-size", "4", "--executor", "threads",
                   "--workers", "2"])
        assert rc == 0
        assert "converged=True" in capsys.readouterr().out


def _bench(tmp_path, *extra):
    """Run the cheapest scenario subset into tmp_path; returns exit code."""
    return main(["bench", "--quick", "--repeats", "1", "--warmup", "0",
                 "--out", str(tmp_path), "--scenario", "lint/registry",
                 *extra])


class TestBenchCommand:
    def test_writes_schema_valid_report(self, tmp_path, capsys):
        from repro.bench import validate_report

        assert _bench(tmp_path, "--tag", "t1") == 0
        out = capsys.readouterr().out
        path = tmp_path / "BENCH_t1.json"
        assert path.exists()
        assert "BENCH_t1.json" in out
        doc = json.loads(path.read_text())
        assert validate_report(doc) == []
        assert doc["tag"] == "t1"
        assert [s["name"] for s in doc["scenarios"]] == ["lint/registry"]

    def test_json_flag_prints_valid_report(self, tmp_path, capsys):
        from repro.bench import validate_report

        assert _bench(tmp_path, "--json") == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_report(doc) == []
        assert doc["scenarios"][0]["wall_time_s"] > 0

    def test_speedup_derived_for_kernel_pairs(self, tmp_path, capsys):
        rc = main(["bench", "--quick", "--repeats", "1", "--warmup", "0",
                   "--out", str(tmp_path), "--json",
                   "--scenario", "svd/reference/fat_tree/n16",
                   "--scenario", "svd/batched/fat_tree/n16"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        batched = {s["name"]: s for s in doc["scenarios"]}[
            "svd/batched/fat_tree/n16"]
        assert batched["speedup_vs_reference"] > 0

    def test_compare_clean_exits_zero(self, tmp_path, capsys):
        rc = _bench(tmp_path, "--compare",
                    str(FIXTURES / "bench_baseline_slow.json"))
        assert rc == 0
        assert "no regression" in capsys.readouterr().out

    def test_compare_regression_exits_one(self, tmp_path, capsys):
        rc = _bench(tmp_path, "--compare",
                    str(FIXTURES / "bench_baseline_fast.json"))
        assert rc == 1
        assert "PERF REGRESSION" in capsys.readouterr().out

    def test_filter_selects_matching_scenarios(self, tmp_path, capsys):
        rc = main(["bench", "--quick", "--repeats", "1", "--warmup", "0",
                   "--out", str(tmp_path), "--json", "--filter", "^lint/"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in doc["scenarios"]] == ["lint/registry"]

    def test_filter_composes_with_scenario(self, tmp_path, capsys):
        # --filter narrows the list --scenario then picks from
        rc = main(["bench", "--quick", "--repeats", "1", "--warmup", "0",
                   "--out", str(tmp_path), "--filter", "registry",
                   "--scenario", "lint/registry", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in doc["scenarios"]] == ["lint/registry"]

    def test_filter_without_match_is_usage_error(self, tmp_path, capsys):
        rc = main(["bench", "--out", str(tmp_path),
                   "--filter", "no-such-scenario-anywhere"])
        assert rc == 2
        assert "matches no scenario" in capsys.readouterr().out

    def test_invalid_filter_regex_is_usage_error(self, tmp_path, capsys):
        rc = main(["bench", "--out", str(tmp_path), "--filter", "(["])
        assert rc == 2
        assert "invalid --filter regex" in capsys.readouterr().out

    def test_unknown_scenario_is_usage_error(self, tmp_path, capsys):
        rc = main(["bench", "--out", str(tmp_path),
                   "--scenario", "svd/warp/n4096"])
        assert rc == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_bad_tag_is_usage_error(self, tmp_path, capsys):
        assert _bench(tmp_path, "--tag", "../evil") == 2
        assert "invalid tag" in capsys.readouterr().out

    def test_bad_repeats_is_usage_error(self, tmp_path, capsys):
        rc = main(["bench", "--out", str(tmp_path), "--repeats", "0"])
        assert rc == 2

    def test_missing_compare_file_is_usage_error(self, tmp_path, capsys):
        rc = _bench(tmp_path, "--compare", str(tmp_path / "nope.json"))
        assert rc == 2
        assert "cannot read" in capsys.readouterr().out

    def test_invalid_compare_schema_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "repro.bench/999",
                                   "scenarios": []}))
        rc = _bench(tmp_path, "--compare", str(bad))
        assert rc == 2
        assert "invalid report" in capsys.readouterr().out

    def test_fixture_baselines_are_schema_valid(self):
        from repro.bench import validate_report

        for name in ("bench_baseline_slow.json", "bench_baseline_fast.json"):
            doc = json.loads((FIXTURES / name).read_text())
            assert validate_report(doc) == [], name
