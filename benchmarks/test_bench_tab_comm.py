"""TAB-COMM — per-sweep message counts by tree level for every ordering."""

from repro.analysis import render_comm_table, tab_comm


def test_tab_comm_n32(benchmark):
    rows = benchmark(tab_comm, 32, **{"hybrid": {"n_groups": 4}})
    print("\n" + render_comm_table(rows))
    by = {r.ordering: r for r in rows}
    # locality: the fat-tree ordering moves fewer columns than round-robin
    assert by["fat_tree"].total_messages < by["round_robin"].total_messages
    # ring and round-robin communicate globally every step; the fat-tree
    # ordering's mean level stays below 2
    assert by["fat_tree"].mean_level < 2.0


def test_tab_comm_n128(benchmark):
    rows = benchmark(tab_comm, 128, **{"hybrid": {"n_groups": 16}})
    print("\n" + render_comm_table(rows))
    by = {r.ordering: r for r in rows}
    # Section 3: the Fig 1 orderings "have the disadvantage that global
    # communication is required at each step", while the fat-tree and
    # hybrid orderings confine top-level traffic to the final merge stage
    assert by["fat_tree"].top_level_messages < by["round_robin"].top_level_messages
    assert by["hybrid"].top_level_messages < by["round_robin"].top_level_messages
    assert by["fat_tree"].total_messages < by["round_robin"].total_messages
