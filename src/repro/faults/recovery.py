"""Degraded-mode validation: is the remapped machine still sound?

After a crash the dead leaf's columns are rehosted on its sibling.  The
*schedule* is unchanged — slots are logical — but its guarantees were
proven for the healthy leaf map, so before retrying the sweep the
driver re-validates:

* the schedule itself still passes the structural rules of
  :func:`repro.verify.lint_schedule` (it must — remapping cannot change
  it — but running the gate keeps the invariant machine-checked);
* the *remapped* routing is re-measured: messages to or from the dead
  leaf now terminate at the sibling, which changes channel loads.  The
  degraded contention is reported (and may legitimately exceed 1.0 —
  degradation trades the contention-freeness guarantee for liveness).

``repro.verify`` is imported lazily so the machine layer can import
``repro.faults`` without dragging the verifier in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..machine.routing import remap_leaves, route_phase
from ..util.bits import leaf_of_slot

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.simulator import TreeMachine
    from ..orderings.schedule import Schedule

__all__ = ["DegradedReport", "host_map_problems", "validate_degraded"]


def host_map_problems(host_of_leaf, dead_leaves) -> list[str]:
    """Structural soundness of a degraded host map; empty when sound.

    ``host_of_leaf[lf]`` is the physical leaf executing logical leaf
    ``lf``; ``dead_leaves`` the crashed set.  A sound map keeps every
    host inside the machine, never hosts work on a dead leaf, and never
    moves a *live* leaf off itself (graceful degradation only rehosts
    leaves whose host died).  The verifier's fault-tolerance totality
    pass (``FT001``) runs this over every possible single-leaf death.
    """
    hosts = np.asarray(host_of_leaf)
    n = len(hosts)
    dead = {int(d) for d in dead_leaves}
    problems: list[str] = []
    for leaf in range(n):
        host = int(hosts[leaf])
        if not 0 <= host < n:
            problems.append(
                f"leaf {leaf} hosted outside the machine (host {host})")
            continue
        if host in dead:
            problems.append(
                f"leaf {leaf}'s columns are hosted on dead leaf {host}")
        if leaf not in dead and host != leaf:
            problems.append(
                f"live leaf {leaf} was rehosted on leaf {host} "
                "(only dead leaves' work may move)")
    return problems


@dataclass
class DegradedReport:
    """Outcome of re-validating a schedule on a degraded machine."""

    ok: bool
    max_contention: float
    dead_leaves: tuple[int, ...]
    notes: list[str] = field(default_factory=list)

    def describe(self) -> str:
        state = "sound" if self.ok else "UNSOUND"
        return (f"degraded schedule {state}: dead leaves "
                f"{sorted(self.dead_leaves)}, remapped contention "
                f"{self.max_contention:.2f}"
                + ("; " + "; ".join(self.notes) if self.notes else ""))


def validate_degraded(machine: "TreeMachine",
                      schedule: "Schedule") -> DegradedReport:
    """Re-validate ``schedule`` for the machine's current host map."""
    from ..verify import lint_schedule  # lazy: keep machine -> verify cut

    report = lint_schedule(schedule, machine.topology)
    notes = [f"{d.rule}: {d.message}" for d in report.errors]
    map_problems = host_map_problems(machine.host_of_leaf,
                                     machine.dead_leaves)
    notes.extend(f"host map: {p}" for p in map_problems)
    # RACE002/CAP* style findings were proven on the healthy map; what
    # degradation actually changes is the physical routing below.
    worst = 0.0
    for step in schedule.steps:
        if not step.moves:
            continue
        pairs = remap_leaves(
            ((leaf_of_slot(mv.src), leaf_of_slot(mv.dst))
             for mv in step.moves),
            machine.host_of_leaf,
        )
        phase = route_phase(machine.topology, pairs)
        worst = max(worst, phase.contention)
    dead = tuple(sorted(machine.dead_leaves))
    if worst > 1.0:
        notes.append(
            f"remapped routing oversubscribes a channel ({worst:.2f}x); "
            "accepted in degraded mode (liveness over contention-freeness)")
    return DegradedReport(ok=report.ok and not map_problems,
                          max_contention=worst,
                          dead_leaves=dead, notes=notes)
