"""Block Jacobi SVD: blocks of columns per leaf (Bischof [1], Schreiber [14])."""

from .driver import BlockJacobiOptions, block_jacobi_svd

__all__ = ["BlockJacobiOptions", "block_jacobi_svd"]
