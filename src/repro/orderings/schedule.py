"""Schedule representation for parallel Jacobi orderings.

A *sweep* of a parallel Jacobi ordering is a sequence of :class:`Step`\\ s.
Each step names the disjoint slot pairs that are orthogonalised in
parallel, followed by the column *moves* (a partial permutation of slot
contents) that set up the next step.  Slots are fixed physical storage
locations: leaf processor ``i`` owns slots ``2i`` and ``2i + 1``.

Making communication explicit in the schedule (rather than implicit in an
index permutation) is what lets the tree-machine simulator charge every
ordering its true channel loads: a move between slots on different leaves
is a message whose tree level is ``comm_level(leaf(src), leaf(dst))``.

The paper's orderings pair only co-resident slots (that is the whole
point of the fat-tree ordering), but the representation permits arbitrary
slot pairs so that baselines with remote rotations can be expressed and
penalised by the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Sequence

from ..util.bits import comm_level, leaf_of_slot
from ..util.validation import require

__all__ = [
    "Move",
    "Step",
    "Schedule",
    "apply_moves",
    "compose_moves",
    "permutation_of_sweep",
]


@dataclass(frozen=True)
class Move:
    """Relocation of one column: the content of ``src`` slot goes to ``dst``.

    All moves of a step are applied simultaneously (they form a partial
    permutation), so a set of moves may freely exchange slot contents.
    """

    src: int
    dst: int

    @property
    def level(self) -> int:
        """Tree level the column crosses; 0 for an intra-leaf move."""
        return comm_level(leaf_of_slot(self.src), leaf_of_slot(self.dst))

    @property
    def is_local(self) -> bool:
        return self.level == 0


@dataclass(frozen=True)
class Step:
    """One parallel time step: disjoint rotations, then column moves.

    ``pairs``
        Slot pairs rotated in parallel.  The order within a pair is the
        storage convention: the first slot is the *left* position of the
        paper's figures (the slot that keeps the larger-norm column when
        sorting is enabled).
    ``moves``
        Partial permutation of slot contents applied after the rotations.
    """

    pairs: tuple[tuple[int, int], ...]
    moves: tuple[Move, ...] = ()

    def __post_init__(self) -> None:
        touched: set[int] = set()
        for a, b in self.pairs:
            require(a != b, f"degenerate pair ({a}, {b})")
            require(a not in touched and b not in touched,
                    f"slot appears in two pairs of one step: {self.pairs}")
            touched.add(a)
            touched.add(b)
        srcs = [m.src for m in self.moves]
        dsts = [m.dst for m in self.moves]
        require(len(set(srcs)) == len(srcs), "duplicate move sources in step")
        require(len(set(dsts)) == len(dsts), "duplicate move destinations in step")
        require(set(srcs) == set(dsts),
                "moves must form a partial permutation (src set == dst set); "
                f"got srcs={sorted(srcs)} dsts={sorted(dsts)}")

    @property
    def message_moves(self) -> tuple[Move, ...]:
        """Moves that cross leaves (i.e. cost communication)."""
        return tuple(m for m in self.moves if not m.is_local)

    @property
    def remote_pairs(self) -> tuple[tuple[int, int], ...]:
        """Rotation pairs whose slots live on different leaves."""
        return tuple(
            (a, b) for a, b in self.pairs
            if leaf_of_slot(a) != leaf_of_slot(b)
        )

    def max_level(self) -> int:
        """Highest tree level used by this step's moves (0 if none)."""
        return max((m.level for m in self.moves), default=0)


@dataclass
class Schedule:
    """A full sweep: ``n`` column slots driven through ``steps``.

    The schedule is *positional*: it knows nothing about which logical
    column currently sits in which slot.  Tracking logical indices through
    a sweep (to check the all-pairs property, or to report the paper's
    figure tables) is done with :meth:`trace` starting from a layout.
    """

    n: int
    steps: list[Step]
    name: str = "schedule"
    notes: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for step in self.steps:
            for a, b in step.pairs:
                require(0 <= a < self.n and 0 <= b < self.n,
                        f"pair slot out of range in {self.name}")
            for m in step.moves:
                require(0 <= m.src < self.n and 0 <= m.dst < self.n,
                        f"move slot out of range in {self.name}")

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def n_rotation_steps(self) -> int:
        """Steps that perform rotations (the paper's step count); move-only
        steps are stand-alone communication phases between super-steps."""
        return sum(1 for s in self.steps if s.pairs)

    def trace(self, layout: Sequence[int] | None = None) -> Iterator[tuple[int, list[tuple[int, int]], list[int]]]:
        """Yield ``(step_number, index_pairs, layout_after)`` per step.

        ``layout[slot]`` is the logical index stored in ``slot``; the
        default layout is the identity ``1..n`` (the paper numbers columns
        from 1).  ``index_pairs`` preserves the slot-order convention of
        each pair.
        """
        state = list(range(1, self.n + 1)) if layout is None else list(layout)
        require(len(state) == self.n, "layout length mismatch")
        for k, step in enumerate(self.steps, start=1):
            pairs = [(state[a], state[b]) for a, b in step.pairs]
            state = apply_moves(state, step.moves)
            yield k, pairs, list(state)

    def final_layout(self, layout: Sequence[int] | None = None) -> list[int]:
        """Layout after the whole sweep."""
        state = list(range(1, self.n + 1)) if layout is None else list(layout)
        for _, _, state in self.trace(state):
            pass
        return state

    def index_pairs(self, layout: Sequence[int] | None = None) -> list[list[tuple[int, int]]]:
        """All index pairs, one list per step, tracked from ``layout``."""
        return [pairs for _, pairs, _ in self.trace(layout)]

    def all_moves(self) -> Iterator[tuple[int, Move]]:
        """Yield ``(step_number, move)`` for every move of the sweep."""
        for k, step in enumerate(self.steps, start=1):
            for m in step.moves:
                yield k, m

    def total_messages(self) -> int:
        """Number of inter-leaf column transfers in one sweep."""
        return sum(1 for _, m in self.all_moves() if not m.is_local)

    def level_histogram(self) -> dict[int, int]:
        """Message count per tree level (level >= 1 only)."""
        hist: dict[int, int] = {}
        for _, m in self.all_moves():
            if m.level > 0:
                hist[m.level] = hist.get(m.level, 0) + 1
        return dict(sorted(hist.items()))


def apply_moves(layout: Sequence[int], moves: Iterable[Move]) -> list[int]:
    """Apply a partial permutation of slot contents and return the new layout."""
    state = list(layout)
    snapshot = {m.src: layout[m.src] for m in moves}
    for m in moves:
        state[m.dst] = snapshot[m.src]
    return state


def compose_moves(first: Iterable[Move], second: Iterable[Move]) -> tuple[Move, ...]:
    """Compose two sequential move phases into one net partial permutation.

    A column moved by ``first`` and then again by ``second`` travels
    directly from its original slot to its final slot; identity moves are
    dropped.  Used to fuse a stage's end-of-stage restore traffic with the
    next stage's block interchange so that every column is transferred at
    most once between consecutive rotation steps (what a real
    implementation would do).
    """
    first = tuple(first)
    second = tuple(second)
    f_map = {m.src: m.dst for m in first}
    s_map = {m.src: m.dst for m in second}
    sources = set(f_map) | set(s_map)
    net: dict[int, int] = {}
    # sources handled by `first` (their intermediate position feeds `second`)
    for src in f_map:
        mid = f_map[src]
        net[src] = s_map.get(mid, mid)
    # sources that only `second` touches, and whose slot content was not
    # produced by `first` (otherwise already covered above)
    produced = set(f_map.values())
    for src in s_map:
        if src not in produced and src not in net:
            net[src] = s_map[src]
    moves = tuple(Move(s, d) for s, d in sorted(net.items()) if s != d)
    # sanity: still a partial permutation
    srcs = [m.src for m in moves]
    dsts = [m.dst for m in moves]
    require(set(srcs) == set(dsts) and len(set(dsts)) == len(dsts),
            "composition did not produce a partial permutation")
    _ = sources  # documented above; kept for clarity
    return moves


def permutation_of_sweep(schedule: Schedule) -> list[int]:
    """The sweep's slot permutation ``sigma``: ``sigma[s]`` is the slot whose
    initial content ends up in slot ``s`` after one sweep.

    Restoration after ``k`` sweeps is equivalent to ``sigma`` having order
    dividing ``k`` — the property the paper proves for its orderings
    (order 1 for the fat-tree ordering, order 2 for the ring orderings).

    Reads the compiled plan (:mod:`repro.orderings.plan`), whose
    trajectory is precomputed once per schedule structure; the lazy
    import avoids a cycle (the plan module lowers this module's types).
    The plain-int conversion is memoised on the plan's fast-path bundle,
    so hot consumers (the batched kernel's slot-to-row indirection, the
    sweep-coverage verifier) pay it once per structure, not per call.
    """
    from .plan import compile_schedule

    return list(compile_schedule(schedule).fastpath().final_list)
