"""``FaultInjector`` — live, stateful instantiation of a ``FaultPlan``.

A :class:`~repro.faults.plan.FaultPlan` is an immutable scenario; the
injector is its per-run state: which faults still have fires left,
which leaves are dead, the seeded RNG used for payload corruption, and
the master log of every :class:`~repro.faults.events.FaultEvent`.  One
injector is created per ``compute`` call and installed into the
:class:`~repro.machine.simulator.TreeMachine` via ``install_faults``;
the ack/seq transport consults it per message, the simulator per step.

Determinism: all randomness flows from ``plan.seed`` through one
``numpy`` Generator, and fault firing order is the plan's declaration
order — two runs of the same plan on the same matrix produce the same
trace, byte for byte.
"""

from __future__ import annotations

import numpy as np

from ..util.validation import require
from .events import FaultEvent
from .plan import Fault, FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Per-run fault state: armed fires, dead leaves, RNG, event log."""

    def __init__(self, plan: FaultPlan, n_leaves: int):
        require(n_leaves >= 2, f"need at least 2 leaves, got {n_leaves!r}")
        for f in plan.faults:
            for name in ("src", "dst", "leaf"):
                v = getattr(f, name)
                require(v is None or v < n_leaves,
                        f"fault {name}={v!r} out of range for "
                        f"{n_leaves} leaves")
        self.plan = plan
        self.n_leaves = n_leaves
        self.rng = np.random.default_rng(plan.seed)
        #: leaves confirmed crash-stopped (persists across rollbacks)
        self.dead: set[int] = set()
        #: master event log, in firing order
        self.log: list[FaultEvent] = []
        # mutable [fault, fires_remaining] cells, in declaration order
        self._armed: list[list] = [[f, f.fires] for f in plan.faults]

    # -- plan budgets ----------------------------------------------------
    @property
    def max_retries(self) -> int:
        return self.plan.max_retries

    @property
    def max_sweep_attempts(self) -> int:
        return self.plan.max_sweep_attempts

    # -- event log -------------------------------------------------------
    def record(self, event: FaultEvent) -> FaultEvent:
        """Append one event to the master log and return it."""
        self.log.append(event)
        return event

    # -- step lifecycle --------------------------------------------------
    def advance(self, sweep: int, step: int) -> list[int]:
        """Fire crash faults scheduled at (sweep, step); return new deaths.

        Called by the simulator at the top of every step.  A leaf
        already in :attr:`dead` (e.g. on a rolled-back sweep that
        revisits the crash point) is not reported again.
        """
        newly_dead: list[int] = []
        for cell in self._armed:
            fault, left = cell
            if left <= 0 or fault.kind != "crash":
                continue
            if fault.sweep == sweep and fault.step == step:
                cell[1] -= 1
                if fault.leaf not in self.dead:
                    self.dead.add(fault.leaf)
                    newly_dead.append(fault.leaf)
        return newly_dead

    def stalls(self, sweep: int, step: int) -> list[tuple[int, float]]:
        """Consume stall faults hitting (sweep, step): ``(leaf, duration)``."""
        hits: list[tuple[int, float]] = []
        for cell in self._armed:
            fault, left = cell
            if left <= 0 or fault.kind != "stall":
                continue
            if ((fault.sweep is None or fault.sweep == sweep)
                    and (fault.step is None or fault.step == step)):
                cell[1] -= 1
                hits.append((fault.leaf, fault.duration))
        return hits

    # -- per-message verdicts (consulted by the transport) ---------------
    def outage_fault(self, sweep: int, step: int, level: int) -> Fault | None:
        """An active outage covering a level-``level`` message, if any.

        Outages are window-shaped, not per-message: fires are *not*
        consumed here.  The transport clears the fault explicitly once a
        sender has waited the window out (time has moved past it).
        """
        for fault, left in self._armed:
            if left > 0 and fault.outage_covers(sweep, step, level):
                return fault
        return None

    def message_fault(self, sweep: int, step: int,
                      src: int, dst: int) -> Fault | None:
        """Consume and return the first armed fault hitting this message.

        Called once per transmission *attempt*, so ``fires=k`` on a drop
        makes exactly the first ``k`` attempts fail — the retransmission
        after them goes through, which is what makes single-fault
        recovery deterministic.
        """
        for cell in self._armed:
            fault, left = cell
            if left > 0 and fault.matches_message(sweep, step, src, dst):
                cell[1] -= 1
                return fault
        return None

    def clear(self, fault: Fault) -> None:
        """Spend all remaining fires of ``fault`` (e.g. a waited-out outage)."""
        for cell in self._armed:
            if cell[0] is fault:
                cell[1] = 0

    def pending(self) -> int:
        """Total unspent fires across all armed faults (test/debug aid)."""
        return sum(max(0, left) for _, left in self._armed)
