"""Shared corruption primitives for negative tests and chaos injection.

Two consumers need to break things on purpose, and they must not drift
apart:

* :mod:`repro.verify.corrupt` builds *broken schedules* so the static
  verifier's negative tests can assert each rule fires (message dropped
  from a schedule, duplicated rotation, reversed ring step, ...);
* :mod:`repro.faults` breaks *live messages and payloads* so the
  recovery subsystem can be chaos-tested (the same message drop, but at
  run time, with a transport that must retransmit it).

This module holds the primitives both share: the unchecked
``Step``/``Schedule`` builders that bypass constructor validation, the
link-selection helpers that pick a concrete message out of a schedule,
and the payload-corruption operators applied to in-flight column data.
"""

from __future__ import annotations

import numpy as np

from ..orderings.schedule import Move, Schedule, Step

__all__ = [
    "PAYLOAD_MODES",
    "corrupt_payload",
    "first_remote_move",
    "remote_moves",
    "unchecked_schedule",
    "unchecked_step",
]


# ---------------------------------------------------------------------------
# unchecked schedule builders (negative tests need unrepresentable objects)

def unchecked_step(
    pairs: tuple[tuple[int, int], ...], moves: tuple[Move, ...] = ()
) -> Step:
    """Build a :class:`Step` without running its validation.

    Some corruptions are unrepresentable through the validating
    constructors (``Step`` rejects non-permutation moves at build time),
    which is exactly the scenario the verifier exists for: input that
    did *not* come through our constructors.
    """
    step = object.__new__(Step)
    object.__setattr__(step, "pairs", tuple(pairs))
    object.__setattr__(step, "moves", tuple(moves))
    return step


def unchecked_schedule(
    n: int, steps: list[Step], name: str,
    notes: dict[str, object] | None = None,
) -> Schedule:
    """Build a :class:`Schedule` without running its validation."""
    sched = object.__new__(Schedule)
    sched.n = n
    sched.steps = list(steps)
    sched.name = name
    sched.notes = dict(notes) if notes else {}
    return sched


# ---------------------------------------------------------------------------
# link selection: name a concrete message of a schedule to break

def remote_moves(schedule: Schedule) -> list[tuple[int, Move]]:
    """All inter-leaf moves of a sweep as ``(step_number, move)`` pairs.

    ``step_number`` is 1-based, matching the simulator's
    :class:`~repro.machine.stats.StepRecord` numbering, so a fault
    plan built from this list lines up with the trace it produces.
    """
    return [(k, m) for k, m in schedule.all_moves() if not m.is_local]


def first_remote_move(schedule: Schedule) -> tuple[int, Move]:
    """The first inter-leaf move of a sweep (step_number, move).

    The canonical target for single-fault scenarios: every shipped
    ordering communicates, so this always exists for n >= 4.
    """
    found = remote_moves(schedule)
    if not found:
        raise ValueError(f"{schedule.name} has no inter-leaf move to target")
    return found[0]


# ---------------------------------------------------------------------------
# payload corruption operators (chaos injection on in-flight columns)

#: registered payload corruption modes.  ``nan``/``inf`` are the
#: *silent*-corruption models — they evade the transport checksum but are
#: caught by the kernels' non-finite sentinels; the finite modes model
#: checksum-detectable damage (the transport retransmits, so they never
#: reach the matrix).
PAYLOAD_MODES = ("nan", "inf", "zero", "scale", "negate")


def corrupt_payload(
    data: np.ndarray, mode: str, rng: np.random.Generator | None = None
) -> None:
    """Corrupt a payload buffer in place.

    ``data`` is the column (or column block) as stored — any shape, and
    possibly a strided view into the distributed matrix (which is why
    the entry is addressed through ``unravel_index`` rather than a
    flattening reshape, which would silently copy a non-contiguous
    view).  The damaged entry is chosen by ``rng`` when given, else
    entry 0, so a seeded fault plan reproduces the same corruption bit
    for bit.
    """
    if mode not in PAYLOAD_MODES:
        raise ValueError(
            f"unknown payload corruption mode {mode!r}; "
            f"available: {', '.join(PAYLOAD_MODES)}"
        )
    if data.size == 0:
        return
    k = int(rng.integers(data.size)) if rng is not None else 0
    idx = np.unravel_index(k, data.shape)
    if mode == "nan":
        data[idx] = np.nan
    elif mode == "inf":
        data[idx] = np.inf
    elif mode == "zero":
        data[idx] = 0.0
    elif mode == "scale":
        data[idx] = data[idx] * 1e3 if data[idx] != 0.0 else 1e3
    elif mode == "negate":
        data[idx] = -data[idx]
