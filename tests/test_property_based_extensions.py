"""Property-based tests for the extension subsystems (eig, block, apps)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps import pinv, truncated_svd
from repro.blockjacobi import BlockJacobiOptions, block_jacobi_svd
from repro.eig import jacobi_eigh
from repro.orderings import check_all_pairs_once, make_ordering


class TestVerifierAgreementOnParameterisedOrderings:
    """Static gate vs dynamic predicates on the hybrid ordering across
    its (n, n_groups) parameter space (uses the conftest fixtures)."""

    @settings(deadline=None, max_examples=10,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_hybrid_static_and_dynamic_agree(self, ordering_verifier, data):
        n = data.draw(st.sampled_from([16, 32, 64]))
        n_groups = data.draw(st.sampled_from([2, 4]).filter(lambda g: 2 * g <= n))
        o = make_ordering("hybrid", n, n_groups=n_groups)
        report = ordering_verifier(o)
        assert report.ok == check_all_pairs_once(o.sweep(0)).is_valid
        assert report.ok, report.render()


class TestEigProperties:
    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 1_000), n=st.sampled_from([4, 8, 16]))
    def test_spectrum_matches_eigh(self, seed, n):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n))
        a = (a + a.T) / 2.0
        r = jacobi_eigh(a)
        ref = np.linalg.eigvalsh(a)[::-1]
        assert r.converged
        scale = max(1.0, float(np.abs(ref).max()))
        assert np.max(np.abs(r.w - ref)) < 1e-10 * scale

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 1_000))
    def test_trace_and_frobenius_invariants(self, seed):
        # similarity transforms preserve trace and Frobenius norm
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((8, 8))
        a = (a + a.T) / 2.0
        r = jacobi_eigh(a)
        assert np.sum(r.w) == pytest.approx(np.trace(a), rel=1e-10, abs=1e-10)
        assert np.sum(r.w**2) == pytest.approx(np.sum(a * a), rel=1e-10)

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 1_000), shift=st.floats(-5.0, 5.0))
    def test_shift_equivariance(self, seed, shift):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((8, 8))
        a = (a + a.T) / 2.0
        w1 = jacobi_eigh(a).w
        w2 = jacobi_eigh(a + shift * np.eye(8)).w
        assert np.allclose(np.sort(w2), np.sort(w1) + shift, atol=1e-9)


class TestBlockJacobiProperties:
    @settings(deadline=None, max_examples=8)
    @given(
        seed=st.integers(0, 1_000),
        b=st.sampled_from([1, 2, 4]),
    )
    def test_block_size_invariance_of_spectrum(self, seed, b):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((24, 16))
        r = block_jacobi_svd(a, options=BlockJacobiOptions(block_size=b))
        ref = np.linalg.svd(a, compute_uv=False)
        assert r.converged
        assert np.max(np.abs(r.sigma - ref)) < 1e-10 * ref[0]


class TestAppsProperties:
    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 1_000), k=st.integers(1, 6))
    def test_truncation_error_monotone_in_k(self, seed, k):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((12, 6))
        e_k = truncated_svd(a, k).error
        e_full = truncated_svd(a, 6).error
        assert e_full <= e_k + 1e-12

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 1_000))
    def test_pinv_double_dagger(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((10, 6))
        assert np.allclose(pinv(pinv(a)), a, atol=1e-8)
