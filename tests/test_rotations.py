"""Unit tests for the plane-rotation kernels."""

import numpy as np
import pytest

from repro.svd.rotations import apply_step_rotations, rotation_params


class TestRotationParams:
    def test_identity_when_gamma_zero(self):
        c, s = rotation_params(np.array([2.0]), np.array([3.0]), np.array([0.0]))
        assert c[0] == 1.0 and s[0] == 0.0

    def test_orthogonalises(self):
        rng = np.random.default_rng(3)
        for _ in range(100):
            x = rng.standard_normal(6)
            y = rng.standard_normal(6)
            a, b, g = x @ x, y @ y, x @ y
            c, s = rotation_params(np.array([a]), np.array([b]), np.array([g]))
            xn = c[0] * x - s[0] * y
            yn = s[0] * x + c[0] * y
            assert abs(xn @ yn) < 1e-10 * max(1.0, abs(g))

    def test_forty_five_degrees_when_equal_norms(self):
        x = np.array([1.0, 1.0])
        y = np.array([1.0, -1.0 + 2.0])  # y = (1, 1)? keep equal norms
        y = np.array([1.0, 1.0])
        a, b, g = 2.0, 2.0, 2.0
        c, s = rotation_params(np.array([a]), np.array([b]), np.array([g]))
        assert c[0] == pytest.approx(s[0])

    def test_norm_preservation(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(5)
        y = rng.standard_normal(5)
        a, b, g = x @ x, y @ y, x @ y
        c, s = rotation_params(np.array([a]), np.array([b]), np.array([g]))
        xn = c[0] * x - s[0] * y
        yn = s[0] * x + c[0] * y
        assert xn @ xn + yn @ yn == pytest.approx(a + b)

    def test_vectorised_matches_scalar(self):
        rng = np.random.default_rng(5)
        a = rng.uniform(0.5, 2.0, 10)
        b = rng.uniform(0.5, 2.0, 10)
        g = rng.uniform(-0.5, 0.5, 10)
        c, s = rotation_params(a, b, g)
        for i in range(10):
            ci, si = rotation_params(a[i:i+1], b[i:i+1], g[i:i+1])
            assert ci[0] == pytest.approx(c[i])
            assert si[0] == pytest.approx(s[i])


class TestApplyStepRotations:
    def test_orthogonalises_pairs(self, rng):
        X = rng.standard_normal((10, 6))
        left = np.array([0, 2, 4])
        right = np.array([1, 3, 5])
        apply_step_rotations(X, None, left, right, 0.0, None)
        for l, r in zip(left, right):
            assert abs(X[:, l] @ X[:, r]) < 1e-10

    def test_empty_pairs_noop(self, rng):
        X = rng.standard_normal((4, 2))
        before = X.copy()
        st, mx = apply_step_rotations(X, None, np.array([], dtype=np.intp),
                                      np.array([], dtype=np.intp), 0.0, None)
        assert np.array_equal(X, before)
        assert mx == 0.0 and st.applied == 0

    def test_threshold_skips(self, rng):
        # two already-orthogonal columns: no rotation, counted as skipped
        X = np.eye(4)[:, :2] * 2.0
        st, mx = apply_step_rotations(X, None, np.array([0]), np.array([1]), 1e-12, None)
        assert st.applied == 0 and st.skipped == 1
        assert mx <= 1e-12

    def test_sort_desc_places_larger_left(self, rng):
        X = rng.standard_normal((12, 8))
        left = np.arange(0, 8, 2)
        right = np.arange(1, 8, 2)
        apply_step_rotations(X, None, left, right, 0.0, "desc")
        norms = np.linalg.norm(X, axis=0)
        assert np.all(norms[left] >= norms[right] - 1e-12)

    def test_sort_asc_places_smaller_left(self, rng):
        X = rng.standard_normal((12, 8))
        left = np.arange(0, 8, 2)
        right = np.arange(1, 8, 2)
        apply_step_rotations(X, None, left, right, 0.0, "asc")
        norms = np.linalg.norm(X, axis=0)
        assert np.all(norms[left] <= norms[right] + 1e-12)

    def test_v_tracks_rotations(self, rng):
        A = rng.standard_normal((10, 6))
        X = A.copy()
        V = np.eye(6)
        left = np.array([0, 2, 4])
        right = np.array([1, 3, 5])
        apply_step_rotations(X, V, left, right, 0.0, "desc")
        # X must equal A @ V at all times
        assert np.allclose(X, A @ V)

    def test_idle_exchange_counted(self):
        # orthogonal columns in the 'wrong' norm order get exchanged
        X = np.zeros((4, 2))
        X[0, 0] = 1.0   # small norm left
        X[1, 1] = 5.0   # large norm right
        st, _ = apply_step_rotations(X, None, np.array([0]), np.array([1]), 1e-12, "desc")
        assert st.exchanged == 1
        assert np.linalg.norm(X[:, 0]) > np.linalg.norm(X[:, 1])

    def test_no_exchange_when_sorted(self):
        X = np.zeros((4, 2))
        X[0, 0] = 5.0
        X[1, 1] = 1.0
        st, _ = apply_step_rotations(X, None, np.array([0]), np.array([1]), 1e-12, "desc")
        assert st.exchanged == 0

    def test_gram_off_mass_decreases(self, rng):
        from repro.svd.convergence import off_norm

        X = rng.standard_normal((16, 8))
        before = off_norm(X)
        apply_step_rotations(X, None, np.arange(0, 8, 2), np.arange(1, 8, 2), 0.0, "desc")
        assert off_norm(X) <= before + 1e-12

    def test_frobenius_norm_invariant(self, rng):
        X = rng.standard_normal((16, 8))
        f = np.linalg.norm(X)
        apply_step_rotations(X, None, np.arange(0, 8, 2), np.arange(1, 8, 2), 0.0, "desc")
        assert np.linalg.norm(X) == pytest.approx(f)
