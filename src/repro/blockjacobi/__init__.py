"""Block Jacobi SVD: blocks of columns per leaf (Bischof [1], Schreiber [14])."""

from .driver import BlockJacobiOptions, block_jacobi_svd, block_jacobi_svd_batch
from .kernel import (BLOCK_KERNELS, solve_block_pair, solve_block_step,
                     solve_block_step_batch)

__all__ = ["BLOCK_KERNELS", "BlockJacobiOptions", "block_jacobi_svd",
           "block_jacobi_svd_batch", "solve_block_pair", "solve_block_step",
           "solve_block_step_batch"]
