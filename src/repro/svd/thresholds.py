"""Threshold strategies for the Jacobi iteration (Wilkinson [16]).

The paper: "Exceptional cases in which cycling occurs are easily avoided
by the use of a threshold strategy".  The classical strategy
(Rutishauser/Wilkinson) runs the early sweeps with a *coarse* rotation
threshold — rotating only pairs whose off-diagonal mass is worth the
work — and tightens it sweep by sweep down to the convergence tolerance.
Two effects: cycling on pathological inputs is impossible (every applied
rotation removes at least the current threshold's worth of off-mass),
and early sweeps skip rotations that later sweeps would redo anyway.

``ThresholdStrategy`` maps the sweep number to the rotation threshold;
the driver keeps terminating on the *final* tolerance regardless.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ThresholdStrategy", "FixedThreshold", "StagedThreshold"]


class ThresholdStrategy:
    """Maps a 0-based sweep index to that sweep's rotation threshold."""

    #: the convergence tolerance the iteration must ultimately reach
    final_tol: float = 1e-12

    def threshold(self, sweep: int) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedThreshold(ThresholdStrategy):
    """Every sweep rotates down to the convergence tolerance (the default
    behaviour of :class:`~repro.svd.hestenes.JacobiOptions`)."""

    final_tol: float = 1e-12

    def threshold(self, sweep: int) -> float:
        return self.final_tol


@dataclass(frozen=True)
class StagedThreshold(ThresholdStrategy):
    """Geometrically tightening thresholds (the classical staged strategy).

    Sweep ``k`` uses ``max(initial * decay^k, final_tol)``; after
    ``ceil(log(initial/final_tol) / log(1/decay))`` sweeps the strategy
    reaches the final tolerance and stays there.
    """

    initial: float = 1e-2
    decay: float = 1e-2
    final_tol: float = 1e-12

    def __post_init__(self) -> None:
        if not (0.0 < self.decay < 1.0):
            raise ValueError("decay must be in (0, 1)")
        if self.initial < self.final_tol:
            raise ValueError("initial threshold below the final tolerance")

    def threshold(self, sweep: int) -> float:
        return max(self.initial * self.decay**sweep, self.final_tol)
