"""One-sided (Hestenes) Jacobi SVD numerics."""

from .convergence import off_norm, quadratic_rate_ok, relative_off
from .hestenes import JacobiOptions, hestenes_sweeps, jacobi_svd
from .reference import accuracy_report, reference_singular_values
from .rotations import RotationStats, apply_step_rotations, rotation_params
from .thresholds import FixedThreshold, StagedThreshold, ThresholdStrategy

__all__ = [
    "FixedThreshold",
    "JacobiOptions",
    "StagedThreshold",
    "ThresholdStrategy",
    "RotationStats",
    "accuracy_report",
    "apply_step_rotations",
    "hestenes_sweeps",
    "jacobi_svd",
    "off_norm",
    "quadratic_rate_ok",
    "reference_singular_values",
    "relative_off",
    "rotation_params",
]
