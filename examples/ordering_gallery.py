"""Gallery: regenerate the step tables of the paper's Figures 1-9.

Run:  python examples/ordering_gallery.py
"""

from repro.analysis import (
    fig1_ring_style,
    fig1_round_robin,
    fig2_basic_two_block,
    fig3_two_block_size4,
    fig4_basic_modules,
    fig5_merge_scheme,
    fig6_four_block_eight,
    fig7_ring_ordering,
    fig8_modified_ring,
    fig9_hybrid_sixteen,
    step_table,
)
from repro.util.formatting import render_step_table


def show(schedule, title):
    print(render_step_table(step_table(schedule), title=title))
    final = schedule.final_layout()
    print(f"      layout after sweep: {final}\n")


show(fig1_round_robin(8), "Fig 1(b) - round-robin ordering, n=8")
show(fig1_ring_style(8), "Fig 1(a) - odd-even (ring-style baseline), n=8")
show(fig2_basic_two_block(), "Fig 2 - two-block basic module")
show(fig3_two_block_size4(), "Fig 3 - two-block ordering of size 4")

mod_a, mod_b = fig4_basic_modules()
show(mod_a, "Fig 4(a) - four-index module, order preserving")
show(mod_b, "Fig 4(b) - four-index module, 3 and 4 reversed")

print("Fig 5 - merge procedure scheme, n=16")
for s, stage in enumerate(fig5_merge_scheme(16), start=1):
    print(f"   stage {s}: {stage}")
print()

show(fig6_four_block_eight(), "Fig 6 - four-block ordering for eight indices")

ring, eq7 = fig7_ring_ordering(8)
show(ring, "Fig 7(a) - new ring ordering, n=8")
print(f"      equivalent to round-robin under relabelling {eq7.relabelling}\n")

ring_mod, eq8 = fig8_modified_ring(8)
show(ring_mod, "Fig 8(a) - modified ring ordering, n=8")

hybrid = fig9_hybrid_sixteen()
show(hybrid, "Fig 9 - hybrid ordering, 16 indices, 4 groups")
print("      global communications after steps:", hybrid.notes["superstep_boundaries"])
