"""Result types for the SVD drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SVDResult", "SweepRecord"]


@dataclass
class SweepRecord:
    """Per-sweep convergence diagnostics."""

    sweep: int
    off_norm: float
    max_rel_gamma: float
    rotations: int
    skipped: int


@dataclass
class SVDResult:
    """Outcome of a one-sided Jacobi SVD.

    ``u`` has orthonormal columns spanning the range of ``a`` (zero
    columns past the numerical rank ``rank``), ``sigma`` is nonincreasing
    and ``v`` orthogonal, with ``a ~ u @ diag(sigma) @ v.T``.
    ``sigma_by_slot`` preserves the physical slot order at termination —
    the quantity the paper's sorted-output claims are about — while
    ``sigma`` is canonically sorted for consumers.
    """

    u: np.ndarray
    sigma: np.ndarray
    v: np.ndarray
    rank: int
    converged: bool
    sweeps: int
    rotations: int
    sigma_by_slot: np.ndarray
    emerged_sorted: str | None
    history: list[SweepRecord] = field(default_factory=list)

    def reconstruct(self) -> np.ndarray:
        """``u @ diag(sigma) @ v.T`` (``u``, ``sigma``, ``v`` share the
        canonical nonincreasing order)."""
        return (self.u * self.sigma) @ self.v.T

    def reconstruction_error(self, a: np.ndarray) -> float:
        """Relative Frobenius reconstruction error against ``a``."""
        denom = np.linalg.norm(a) or 1.0
        return float(np.linalg.norm(a - self.reconstruct()) / denom)
