"""Quickstart: compute an SVD with the paper's fat-tree ordering.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import svd

rng = np.random.default_rng(0)
a = rng.standard_normal((64, 32))

result = svd(a, ordering="fat_tree")

print("converged:        ", result.converged)
print("sweeps:           ", result.sweeps)
print("rotations applied:", result.rotations)
print("rank:             ", result.rank)
print("sigma (head):     ", np.round(result.sigma[:6], 4))
print("emerged sorted:   ", result.emerged_sorted)

ref = np.linalg.svd(a, compute_uv=False)
print("max |sigma - lapack| :", float(np.max(np.abs(result.sigma - ref))))
print("reconstruction error :", result.reconstruction_error(a))

# U and V are orthonormal and reconstruct A
u, s, v = result.u, result.sigma, result.v
print("||UtU - I||          :", float(np.linalg.norm(u.T @ u - np.eye(32))))
print("||A - U S Vt||       :", float(np.linalg.norm(a - (u * s) @ v.T)))
