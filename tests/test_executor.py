"""Step-executor backends: determinism contract and unit behaviour.

The headline property: the ``threads`` backend is **bit-identical** to
``serial`` for any worker count, on every block kernel and ordering —
chunking only ever splits writes that were already disjoint, so no
floating-point operation is reassociated (see
:mod:`repro.parallel.executor`).
"""

import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.parallel.executor import (
    EXECUTORS,
    SerialExecutor,
    StepExecutor,
    ThreadStepExecutor,
    default_executor_name,
    default_workers,
    resolve_executor,
)


class TestChunkBounds:
    @pytest.mark.parametrize("n_items", [1, 2, 3, 7, 8, 100])
    @pytest.mark.parametrize("n_chunks", [1, 2, 3, 4, 16])
    def test_bounds_cover_the_range_contiguously(self, n_items, n_chunks):
        bounds = StepExecutor.chunk_bounds(n_items, n_chunks)
        assert bounds[0][0] == 0 and bounds[-1][1] == n_items
        for (lo1, hi1), (lo2, _) in zip(bounds, bounds[1:]):
            assert hi1 == lo2
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)  # larger chunks first

    def test_never_more_chunks_than_items(self):
        assert len(StepExecutor.chunk_bounds(3, 8)) == 3

    def test_zero_items_yield_zero_chunks(self):
        # no silent empty chunks: an empty partition is an empty list
        assert StepExecutor.chunk_bounds(0, 1) == []
        assert StepExecutor.chunk_bounds(0, 8) == []

    def test_pure_function_of_arguments(self):
        assert StepExecutor.chunk_bounds(10, 3) == \
            StepExecutor.chunk_bounds(10, 3)

    @pytest.mark.parametrize("n_items", [-1, -100])
    def test_negative_items_rejected(self, n_items):
        with pytest.raises(ValueError, match="n_items must be >= 0"):
            StepExecutor.chunk_bounds(n_items, 2)

    @pytest.mark.parametrize("n_chunks", [0, -1, -8])
    def test_nonpositive_chunks_rejected(self, n_chunks):
        with pytest.raises(ValueError, match="n_chunks must be >= 1"):
            StepExecutor.chunk_bounds(4, n_chunks)

    @pytest.mark.parametrize("bad", [2.5, "3", None, 4.0])
    def test_non_integer_arguments_rejected(self, bad):
        with pytest.raises(TypeError):
            StepExecutor.chunk_bounds(bad, 2)
        with pytest.raises(TypeError):
            StepExecutor.chunk_bounds(8, bad)

    def test_numpy_integers_accepted(self):
        # operator.index() admits integer-likes, not just builtin int
        assert StepExecutor.chunk_bounds(np.intp(6), np.intp(2)) == \
            StepExecutor.chunk_bounds(6, 2)


class TestBackends:
    @pytest.mark.parametrize("make", [
        SerialExecutor,
        lambda: ThreadStepExecutor(1),
        lambda: ThreadStepExecutor(3),
    ])
    def test_results_arrive_in_chunk_order(self, make):
        with make() as ex:
            out = ex.run_chunks(10, lambda lo, hi: (lo, hi))
        assert out == StepExecutor.chunk_bounds(10, ex.workers)

    def test_zero_items_is_a_noop(self):
        with ThreadStepExecutor(2) as ex:
            assert ex.run_chunks(0, lambda lo, hi: 1 / 0) == []

    def test_threads_share_memory(self):
        buf = np.zeros(17)
        with ThreadStepExecutor(4) as ex:
            ex.run_chunks(17, lambda lo, hi: buf.__setitem__(
                slice(lo, hi), np.arange(lo, hi)))
        np.testing.assert_array_equal(buf, np.arange(17.0))

    def test_lowest_chunk_exception_wins(self):
        def boom(lo, hi):
            raise ValueError(f"chunk@{lo}")

        with ThreadStepExecutor(4) as ex:
            with pytest.raises(ValueError, match="chunk@0"):
                ex.run_chunks(8, boom)

    def test_pool_is_reused_and_close_is_idempotent(self):
        ex = ThreadStepExecutor(2)
        ex.run_chunks(4, lambda lo, hi: None)
        pool = ex._pool
        ex.run_chunks(4, lambda lo, hi: None)
        assert ex._pool is pool
        ex.close()
        ex.close()
        assert ex._pool is None


class TestResolution:
    def test_names_resolve_to_backends(self):
        assert resolve_executor("serial").name == "serial"
        ex = resolve_executor("threads", workers=3)
        assert ex.name == "threads" and ex.workers == 3
        ex.close()

    def test_instance_passes_through(self):
        ex = SerialExecutor()
        assert resolve_executor(ex) is ex
        with pytest.raises(ValueError):
            resolve_executor(ex, workers=2)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("gpu")

    def test_env_default_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert default_executor_name() == "serial"
        monkeypatch.setenv("REPRO_EXECUTOR", "threads")
        assert default_executor_name() == "threads"
        ex = resolve_executor()
        assert ex.name == "threads"
        ex.close()
        monkeypatch.setenv("REPRO_EXECUTOR", "warp")
        with pytest.raises(ValueError):
            default_executor_name()

    def test_env_default_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert default_workers() == 5
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError):
            default_workers()
        monkeypatch.delenv("REPRO_WORKERS")
        assert default_workers() >= 1

    def test_registry_is_stable(self):
        assert EXECUTORS == ("serial", "threads", "processes")


def _run(a, ordering, kernel, executor, workers=None):
    from repro import svd

    return svd(a, ordering=ordering, block_size=4, kernel=kernel,
               executor=executor, workers=workers)


class TestBitIdentity:
    """threads == serial, bit for bit, across the whole matrix of knobs."""

    @pytest.mark.parametrize("ordering", ["fat_tree", "ring_new", "hybrid"])
    @pytest.mark.parametrize("kernel", ["reference", "batched", "gram"])
    def test_threads_match_serial_across_worker_counts(
            self, ordering, kernel):
        rng = np.random.default_rng(42)
        a = rng.standard_normal((48, 32))
        ref = _run(a, ordering, kernel, "serial")
        for workers in (1, 2, 4):
            r = _run(a, ordering, kernel, "threads", workers)
            assert np.array_equal(ref.sigma, r.sigma), (ordering, kernel,
                                                        workers)
            assert np.array_equal(ref.u, r.u)
            assert np.array_equal(ref.v, r.v)
            assert ref.sweeps == r.sweeps
            assert ref.rotations == r.rotations

    def test_machine_path_matches_serial(self):
        from repro import parallel_svd

        rng = np.random.default_rng(7)
        a = rng.standard_normal((40, 32))
        r0, _ = parallel_svd(a, topology="cm5", ordering="hybrid",
                             block_size=4, executor="serial")
        r1, _ = parallel_svd(a, topology="cm5", ordering="hybrid",
                             block_size=4, executor="threads", workers=4)
        assert np.array_equal(r0.sigma, r1.sigma)
        assert np.array_equal(r0.u, r1.u)
        assert np.array_equal(r0.v, r1.v)

    def test_executor_instance_can_be_shared_across_runs(self):
        from repro.blockjacobi import BlockJacobiOptions, block_jacobi_svd
        from repro.parallel.executor import resolve_executor

        rng = np.random.default_rng(11)
        a = rng.standard_normal((24, 16))
        ref = block_jacobi_svd(a, options=BlockJacobiOptions(block_size=2))
        with resolve_executor("threads", workers=2):
            # the frozen options carry the backend name; the driver
            # builds (and closes) its own executor per run
            opts = BlockJacobiOptions(block_size=2, executor="threads",
                                      workers=2)
            for _ in range(2):
                r = block_jacobi_svd(a, options=opts)
                assert np.array_equal(ref.sigma, r.sigma)


class TestFaultRecoveryIdentity:
    """Fault injection composes with the executor: a recovered run is
    the same run, whichever backend executed it."""

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        kind=st.sampled_from(
            ["drop", "duplicate", "delay", "corrupt", "corrupt_silent",
             "stall", "crash"]),
        ordering=st.sampled_from(["fat_tree", "ring_new", "hybrid"]),
    )
    def test_single_fault_recovers_identically(self, kind, ordering):
        from repro import parallel_svd
        from repro.faults.campaign import CampaignCase, single_fault_plan
        from repro.util.errors import ConvergenceWarning

        n, b = 16, 2
        plan = single_fault_plan(
            CampaignCase(ordering, kind, n, "gram", b))
        rng = np.random.default_rng(99)
        a = rng.standard_normal((24, n))
        results = []
        for executor, workers in (("serial", None), ("threads", 4)):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ConvergenceWarning)
                r, rep = parallel_svd(
                    a, topology="perfect", ordering=ordering,
                    block_size=b, executor=executor, workers=workers,
                    fault_plan=plan)
            results.append((r, rep))
        (r0, rep0), (r1, rep1) = results
        assert r0.converged == r1.converged
        assert np.array_equal(r0.sigma, r1.sigma)
        assert np.array_equal(r0.u, r1.u)
        assert np.array_equal(r0.v, r1.v)
        assert r0.sweeps == r1.sweeps
        assert rep0.rollbacks == rep1.rollbacks
        assert len(r0.fault_events) == len(r1.fault_events)
