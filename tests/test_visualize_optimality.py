"""Tests for the figure-form visualizer, optimality audit and TAB-MSG."""

import pytest

from repro.analysis import (
    audit_all,
    audit_ordering,
    lower_bound_steps,
    message_size_table,
    render_message_size_table,
    search_optimal_ordering,
)
from repro.orderings import (
    RingOrdering,
    make_ordering,
    render_grid_steps,
    render_movements,
    ring_sweep,
    trajectory_table,
)


class TestVisualizer:
    def test_grid_shows_initial_layout(self):
        text = render_grid_steps(ring_sweep(8), max_steps=1)
        lines = text.splitlines()
        assert lines[0] == "step 1:"
        assert lines[1].split() == ["1", "3", "5", "7"]
        assert lines[2].split() == ["2", "4", "6", "8"]

    def test_grid_step_count(self):
        text = render_grid_steps(ring_sweep(8))
        assert text.count("step ") == 7

    def test_movements_mention_levels(self):
        text = render_movements(ring_sweep(8), max_steps=2)
        assert "level" in text
        assert "->" in text

    def test_trajectory_stationary_index_one(self):
        traj = trajectory_table(ring_sweep(16))
        assert len(set(traj[1])) == 1  # index 1 never moves

    def test_trajectory_one_directional(self):
        # every index's leaf sequence moves in a single ring direction
        m = 8
        traj = trajectory_table(ring_sweep(16))
        for idx, leaves in traj.items():
            deltas = {(b - a) % m for a, b in zip(leaves, leaves[1:]) if a != b}
            assert len(deltas) <= 1, (idx, leaves)

    def test_trajectory_covers_all_steps(self):
        traj = trajectory_table(ring_sweep(8))
        assert all(len(v) == 7 for v in traj.values())

    def test_round_robin_grid_restores(self):
        sched = make_ordering("round_robin", 8).sweep(0)
        assert sched.final_layout() == list(range(1, 9))
        text = render_grid_steps(sched)
        assert "step 7:" in text


class TestOptimality:
    def test_lower_bound(self):
        assert lower_bound_steps(8) == 7
        assert lower_bound_steps(32) == 31

    def test_lower_bound_rejects_odd(self):
        with pytest.raises(ValueError):
            lower_bound_steps(7)

    @pytest.mark.parametrize("name", ["fat_tree", "ring_new", "round_robin", "hybrid"])
    def test_paper_orderings_optimal(self, name):
        kw = {"n_groups": 2} if name == "hybrid" else {}
        audit = audit_ordering(make_ordering(name, 16, **kw))
        assert audit.is_optimal
        assert audit.idle_pair_slots == 0

    def test_odd_even_suboptimal_by_one(self):
        audit = audit_ordering(make_ordering("odd_even", 16))
        assert audit.steps == 16
        assert not audit.is_optimal
        assert audit.idle_pair_slots == 8  # the idle end pairs

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_search_attains_bound(self, n):
        steps = search_optimal_ordering(n)
        assert steps is not None
        assert len(steps) == n - 1
        seen = {frozenset(p) for st in steps for p in st}
        assert len(seen) == n * (n - 1) // 2

    def test_audit_all_covers_registry(self):
        audits = audit_all(16, hybrid={"n_groups": 2})
        assert len(audits) == 7


class TestMessageSize:
    @pytest.fixture(scope="class")
    def rows(self):
        return message_size_table(32, sizes=[8, 128, 1024])

    def test_locality_advantage_grows_with_message_size(self, rows):
        # the [13] observation: keep communication local, especially for
        # large messages
        ratios = [r.advantage for r in rows]
        assert ratios == sorted(ratios)
        assert ratios[-1] > ratios[0]

    def test_all_times_positive(self, rows):
        for r in rows:
            assert all(t > 0 for t in r.comm_time.values())

    def test_render(self, rows):
        text = render_message_size_table(rows)
        assert "TAB-MSG" in text and "RR/fat ratio" in text
