"""The experiment harness: one generator per figure/table of the paper.

Every FIG/TAB identifier of DESIGN.md has a function here returning
structured data plus a ``render_*`` helper producing the human-readable
table the paper's figure corresponds to.  The pytest benchmarks wrap
these functions; EXPERIMENTS.md records their output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.costmodel import CostModel
from ..orderings.fattree import merge_stage_plan
from ..orderings.fourblock import basic_module_schedule, four_block_schedule
from ..orderings.oddeven import odd_even_sweep
from ..orderings.registry import make_ordering
from ..orderings.ringnew import ring_sweep
from ..orderings.roundrobin import round_robin_sweep
from ..orderings.schedule import Schedule
from ..orderings.twoblock import two_block_schedule
from ..parallel.driver import ParallelJacobiSVD
from ..svd.hestenes import JacobiOptions
from ..util.formatting import render_table
from .commcost import comm_cost_table
from .contention import contention_table
from .convergence_study import convergence_table
from .equivalence import ring_round_robin_equivalence

__all__ = [
    "step_table",
    "fig1_round_robin",
    "fig1_ring_style",
    "fig2_basic_two_block",
    "fig3_two_block_size4",
    "fig4_basic_modules",
    "fig5_merge_scheme",
    "fig6_four_block_eight",
    "fig7_ring_ordering",
    "fig8_modified_ring",
    "fig9_hybrid_sixteen",
    "tab_comm",
    "tab_contention",
    "tab_convergence",
    "tab_time",
    "TimingRow",
    "render_comm_table",
    "render_contention_table",
    "render_convergence_table",
    "render_timing_table",
]


def step_table(schedule: Schedule) -> list[tuple[int, list[tuple[int, int]], str]]:
    """(step, index pairs, level annotation) rows in the style of Figs 2-9.

    Move-only steps become level annotations on the preceding row, which
    is exactly how the paper typesets the inter-super-step communications
    ("level k" / "global" lines between rows).
    """
    rows: list[tuple[int, list[tuple[int, int]], str]] = []
    k = 0
    layout_pairs = schedule.index_pairs()
    for step, pairs in zip(schedule.steps, layout_pairs):
        level = step.max_level()
        ann = f"level {level}" if level else ""
        if step.pairs:
            k += 1
            rows.append((k, pairs, ann))
        elif rows:
            old = rows[-1]
            merged = f"{old[2]} + {ann}" if old[2] else ann
            rows[-1] = (old[0], old[1], merged)
    return rows


# --------------------------------------------------------------- FIG 1 --


def fig1_round_robin(n: int = 8) -> Schedule:
    """Fig 1(b): the Brent-Luk round-robin ordering."""
    return round_robin_sweep(n)


def fig1_ring_style(n: int = 8) -> Schedule:
    """Fig 1(a) stand-in: the classical odd-even nearest-neighbour ordering."""
    return odd_even_sweep(n)


# ------------------------------------------------------------ FIGS 2-3 --


def fig2_basic_two_block() -> Schedule:
    """Fig 2: the two-block basic module (block size two)."""
    return two_block_schedule(2)


def fig3_two_block_size4() -> Schedule:
    """Fig 3: the two-block ordering of size four."""
    return two_block_schedule(4)


# -------------------------------------------------------------- FIG 4 ---


def fig4_basic_modules() -> tuple[Schedule, Schedule]:
    """Fig 4: the two four-index basic modules (order-preserving (a),
    order-reversing (b))."""
    return basic_module_schedule("a"), basic_module_schedule("b")


# -------------------------------------------------------------- FIG 5 ---


def fig5_merge_scheme(n: int = 16) -> list[list[list[int]]]:
    """Fig 5: the merge-procedure scheme (which groups merge at each stage)."""
    return merge_stage_plan(n)


# -------------------------------------------------------------- FIG 6 ---


def fig6_four_block_eight() -> Schedule:
    """Fig 6: the four-block ordering for eight indices (7 steps)."""
    return four_block_schedule(8)


# ------------------------------------------------------------ FIGS 7-8 --


def fig7_ring_ordering(n: int = 8):
    """Fig 7: the new ring ordering and its round-robin equivalence."""
    return ring_sweep(n, modified=False), ring_round_robin_equivalence(n, False)


def fig8_modified_ring(n: int = 8):
    """Fig 8: the modified ring ordering and its equivalence."""
    return ring_sweep(n, modified=True), ring_round_robin_equivalence(n, True)


# -------------------------------------------------------------- FIG 9 ---


def fig9_hybrid_sixteen(n: int = 16, n_groups: int = 4) -> Schedule:
    """Fig 9: the hybrid ordering for sixteen indices in four groups."""
    return make_ordering("hybrid", n, n_groups=n_groups).sweep(0)


# ------------------------------------------------------------ TAB-COMM --

tab_comm = comm_cost_table
tab_contention = contention_table
tab_convergence = convergence_table


def render_comm_table(rows) -> str:
    """Text table for TAB-COMM rows."""
    levels = sorted({r for row in rows for r in row.by_level})
    headers = ["ordering", "steps", "msgs", *[f"lvl{r}" for r in levels], "mean lvl"]
    data = [
        [
            r.ordering,
            r.rotation_steps,
            r.total_messages,
            *[r.by_level.get(level, 0) for level in levels],
            f"{r.mean_level:.2f}",
        ]
        for r in rows
    ]
    return render_table(headers, data, title=f"TAB-COMM (n={rows[0].n})")


def render_contention_table(rows) -> str:
    """Text table for TAB-CONT rows."""
    headers = ["topology", "ordering", "max load/cap", "contention-free", "per level"]
    data = [
        [
            r.topology,
            r.ordering,
            f"{r.max_contention:.2f}",
            "yes" if r.contention_free else "NO",
            " ".join(f"{k}:{v:.2f}" for k, v in r.by_level.items()),
        ]
        for r in rows
    ]
    return render_table(headers, data, title=f"TAB-CONT (n={rows[0].n})")


def render_convergence_table(rows) -> str:
    """Text table for TAB-CONV rows."""
    headers = ["ordering", "mean sweeps", "converged", "sorted", "max sigma err"]
    data = [
        [
            r.ordering,
            f"{r.sweeps:.1f}",
            f"{r.converged_runs}/{r.runs}",
            f"{r.sorted_runs}/{r.runs}",
            f"{r.max_sigma_err:.1e}",
        ]
        for r in rows
    ]
    return render_table(headers, data, title=f"TAB-CONV (n={rows[0].n})")


# ------------------------------------------------------------ TAB-TIME --


@dataclass(frozen=True)
class TimingRow:
    ordering: str
    topology: str
    n: int
    sweeps: int
    total_time: float
    compute_time: float
    comm_time: float
    max_contention: float


def tab_time(
    n: int = 64,
    m: int | None = None,
    topologies: list[str] | None = None,
    names: list[str] | None = None,
    cost_model: CostModel | None = None,
    seed: int = 0,
    **kwargs_by_name: dict,
) -> list[TimingRow]:
    """TAB-TIME: simulated sweep time per ordering x topology.

    The paper's conclusion: the hybrid ordering should be the most
    efficient on the CM-5 (no contention, fewer global communications
    than the ring orderings), while the fat-tree ordering becomes more
    attractive as channel capacity grows (the perfect fat-tree column).
    """
    topologies = topologies or ["perfect", "cm5", "binary"]
    names = names or ["round_robin", "ring_new", "fat_tree", "hybrid"]
    m = m or n + n // 2
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    rows = []
    for tname in topologies:
        for name in names:
            kw = kwargs_by_name.get(name, {})
            driver = ParallelJacobiSVD(
                topology=tname,
                ordering=name,
                cost_model=cost_model,
                options=JacobiOptions(),
                **kw,
            )
            result, report = driver.compute(a)
            rows.append(
                TimingRow(
                    ordering=name,
                    topology=tname,
                    n=n,
                    sweeps=result.sweeps,
                    total_time=report.total_time,
                    compute_time=report.compute_time,
                    comm_time=report.comm_time,
                    max_contention=report.max_contention,
                )
            )
    return rows


def render_timing_table(rows) -> str:
    """Text table for TAB-TIME rows."""
    headers = ["topology", "ordering", "sweeps", "total", "compute", "comm", "max cont"]
    data = [
        [
            r.topology,
            r.ordering,
            r.sweeps,
            f"{r.total_time:.0f}",
            f"{r.compute_time:.0f}",
            f"{r.comm_time:.0f}",
            f"{r.max_contention:.2f}",
        ]
        for r in rows
    ]
    return render_table(headers, data, title=f"TAB-TIME (n={rows[0].n})")
