"""FIG5 — the merge-procedure scheme and full fat-tree sweeps."""

from repro.analysis import fig5_merge_scheme
from repro.orderings import check_all_pairs_once
from repro.orderings.fattree import fat_tree_sweep


def test_fig5_scheme(benchmark):
    plan = benchmark(fig5_merge_scheme, 16)
    assert len(plan) == 3
    print("\nFig 5: merge procedure for n=16")
    for s, stage in enumerate(plan, start=1):
        print(f"  stage {s}: {stage}")


def test_fat_tree_sweep_n64(benchmark):
    sched = benchmark(fat_tree_sweep, 64)
    assert sched.n_rotation_steps == 63
    assert sched.final_layout() == list(range(1, 65))


def test_fat_tree_sweep_n256_construction(benchmark):
    sched = benchmark(fat_tree_sweep, 256)
    assert check_all_pairs_once(sched).is_valid
