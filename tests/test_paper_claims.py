"""Integration suite: every claim the paper makes, asserted end to end.

Each test cites the section of the paper whose statement it verifies.
This is the contract EXPERIMENTS.md reports against.
"""

import numpy as np
import pytest

from repro import JacobiOptions, jacobi_svd, parallel_svd
from repro.analysis import (
    comm_cost_table,
    contention_table,
    convergence_table,
    per_level_contention,
    ring_round_robin_equivalence,
)
from repro.machine import make_topology
from repro.orderings import (
    FatTreeOrdering,
    HybridOrdering,
    LLBOrdering,
    RingOrdering,
    check_all_pairs_once,
    check_one_directional,
    make_ordering,
    meeting_gap_profile,
    sweep_message_counts,
)
from repro.svd.convergence import quadratic_rate_ok

from tests.helpers import make_graded


class TestSection1Claims:
    """Hestenes method, sweeps, convergence, sorted singular values."""

    def test_sweep_is_n_choose_2_rotations(self):
        # "each sweep consisting of n(n-1)/2 rotations"
        for name in ("fat_tree", "ring_new", "round_robin"):
            sched = make_ordering(name, 16).sweep(0)
            assert sum(len(s.pairs) for s in sched.steps) == 16 * 15 // 2

    def test_quadratic_convergence(self, rng):
        # "the convergence rate is ultimately quadratic"
        a = make_graded(48, 32, rng, lo=1e-2)
        r = jacobi_svd(a, ordering="fat_tree")
        assert quadratic_rate_ok([h.off_norm for h in r.history])

    def test_singular_values_emerge_sorted(self, rng):
        # "the singular values emerge sorted in decreasing order of size"
        a = rng.standard_normal((24, 16))
        r = jacobi_svd(a, ordering="fat_tree")
        assert r.emerged_sorted == "desc"

    def test_termination_rule_requires_no_interchanges(self, rng):
        # "terminates if one complete sweep occurs in which all columns
        # are orthogonal and no columns are interchanged"
        a = rng.standard_normal((24, 16))
        r = jacobi_svd(a, ordering="ring_new")
        assert r.converged
        # and convergence is genuine: columns of the Gram matrix clean
        assert np.max(np.abs(r.sigma - np.linalg.svd(a, compute_uv=False))) < 1e-11

    def test_rank_deficient_svd(self, rng):
        # "r <= n is the rank of A" with normalised nonzero columns
        a = rng.standard_normal((20, 8))
        a[:, 6] = a[:, 0] + a[:, 1]
        a[:, 7] = 0.0
        r = jacobi_svd(a)
        assert r.rank == 6
        assert np.all(r.sigma[6:] < 1e-10)


class TestSection3FatTree:
    """The fat-tree ordering's advertised advantages over LLB [8]."""

    @pytest.mark.parametrize("n", [8, 16, 32, 64])
    def test_single_procedure_per_sweep_and_order_kept(self, n):
        # "Only one procedure is required for every sweep, and the
        # original order of the indices is maintained after the
        # completion of each sweep"
        o = FatTreeOrdering(n)
        assert o.sweep(0) is o.sweep(1)
        assert o.restoration_period() == 1

    def test_llb_needs_two_procedures(self):
        o = LLBOrdering(16)
        assert o.sweep(0) is not o.sweep(1)
        assert o.restoration_period() == 2

    def test_constant_rotation_gap_vs_llb(self):
        # LLB disadvantage 1: variable number of rotations between any
        # fixed pair; the fat-tree ordering's gap is exactly one sweep
        fat = meeting_gap_profile(FatTreeOrdering(16), n_sweeps=4)
        llb = meeting_gap_profile(LLBOrdering(16), n_sweeps=4)
        assert fat["spread"] == 0
        assert fat["mean"] == 15
        assert llb["spread"] > 0

    def test_comm_cost_about_same_as_llb(self):
        # "The communication cost is about the same as for the ordering
        # of [8]" — within a factor ~1.5 in total messages
        rows = {r.ordering: r for r in comm_cost_table(32, names=["fat_tree", "llb"])}
        ratio = rows["fat_tree"].total_messages / rows["llb"].total_messages
        assert 0.75 < ratio < 1.5

    def test_global_communication_minimised(self):
        # level-r traffic halves as r grows: locality matches capacity
        hist = FatTreeOrdering(64).sweep(0).level_histogram()
        for r in range(1, max(hist)):
            assert hist[r + 1] <= hist[r]

    def test_divide_into_size_two_problems(self):
        # "we always divide a large problem into a number of problems of
        # size two in order to minimise the total communication cost":
        # nearest-neighbour messages are by far the largest class and the
        # mean communication level stays below 2 at any machine size
        hist = FatTreeOrdering(64).sweep(0).level_histogram()
        assert hist[1] >= 1.9 * hist[2]
        total = sum(hist.values())
        mean = sum(k * v for k, v in hist.items()) / total
        assert mean < 2.0


class TestSection4Ring:
    """The new ring ordering's Section 4 statements."""

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_one_direction_throughout(self, n):
        # "the messages travel between processors in only one direction
        # throughout the computation"
        assert check_one_directional(RingOrdering(n).sweep(0))

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_positions_of_first_pair_unchanged(self, n):
        # "After a sweep the positions of indices 1 and 2 are unchanged"
        final = RingOrdering(n).sweep(0).final_layout()
        assert final[:2] == [1, 2]

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_restored_after_two_sweeps(self, n):
        # "all the indices will return to their original positions after
        # another sweep with the same procedure"
        assert RingOrdering(n).restoration_period() == 2

    @pytest.mark.parametrize("n", [8, 16, 32])
    @pytest.mark.parametrize("modified", [False, True])
    def test_equivalent_to_round_robin(self, n, modified):
        # Definition 1 + "our ring ordering is equivalent to the
        # round-robin ordering in Fig 1(b)"
        assert ring_round_robin_equivalence(n, modified).verified

    def test_equivalent_orderings_converge_alike(self, rng):
        # "If two orderings are proved to be equivalent, they will have
        # the same convergence properties."
        sweeps = {}
        for name in ("round_robin", "ring_new"):
            counts = []
            r2 = np.random.default_rng(99)
            for _ in range(4):
                a = r2.standard_normal((24, 16))
                counts.append(jacobi_svd(a, ordering=name).sweeps)
            sweeps[name] = np.mean(counts)
        assert abs(sweeps["round_robin"] - sweeps["ring_new"]) <= 1.5

    def test_ring_sorted_nonincreasing_after_even_sweeps(self, rng):
        # run an even number of sweeps explicitly and inspect slot order
        a = rng.standard_normal((24, 16))
        r = jacobi_svd(a, ordering="ring_new", options=JacobiOptions(max_sweeps=8, tol=1e-13))
        if r.sweeps % 2 == 0:
            assert np.all(np.diff(r.sigma_by_slot) <= 1e-9)

    def test_modified_ring_direction_flips_with_parity(self, rng):
        # Fig 8: "nonincreasing order after an even number of sweeps, but
        # nondecreasing order after an odd number of sweeps"
        a = rng.standard_normal((24, 16))
        for max_sweeps in (5, 6, 7, 8):
            r = jacobi_svd(
                a, ordering="ring_modified",
                options=JacobiOptions(max_sweeps=max_sweeps, tol=1e-13),
            )
            if not r.converged:
                continue
            if r.sweeps % 2 == 0:
                assert r.emerged_sorted == "desc"
            else:
                assert r.emerged_sorted == "asc"

    def test_evenly_distributed_messages(self):
        # one message per processor per step
        counts = sweep_message_counts(RingOrdering(32).sweep(0))
        assert set(list(counts.values())[:-1]) == {16}


class TestSection5Hybrid:
    """The hybrid ordering and its contention-freedom on the CM-5."""

    def test_hybrid_contention_free_on_cm5(self):
        # "it is guaranteed that no contention will occur anywhere in
        # the tree" (block size chosen against channel capacity)
        for n in (32, 64):
            o = HybridOrdering(n)  # default: blocks of 4 columns
            prof = per_level_contention(o.sweep(0), make_topology("cm5", n // 2))
            assert all(v <= 1.0 for v in prof.values()), (n, prof)

    def test_fat_tree_contends_on_cm5(self):
        # "contention will occur if our fat-tree ordering is implemented
        # on such an architecture"
        prof = per_level_contention(
            FatTreeOrdering(64).sweep(0), make_topology("cm5", 32)
        )
        assert max(prof.values()) > 1.0

    def test_contention_grows_with_machine_size_for_fat_tree(self):
        worst = []
        for n in (16, 64, 256):
            prof = per_level_contention(
                FatTreeOrdering(n).sweep(0), make_topology("cm5", n // 2)
            )
            worst.append(max(prof.values()))
        assert worst[0] <= worst[1] <= worst[2]
        assert worst[2] > worst[0]

    def test_hybrid_restored_after_two_sweeps(self):
        # "the order of the indices will be restored after two
        # consecutive sweeps of the ring ordering"
        assert HybridOrdering(32, 4).restoration_period() == 2

    def test_hybrid_optimal_step_count(self):
        assert HybridOrdering(64, 8).sweep(0).n_rotation_steps == 63

    def test_hybrid_fewer_global_comms_than_ring(self):
        # conclusion: the hybrid "reduces the number of global
        # communications required by the ring orderings" — compare count
        # of phases that reach the top level
        n = 64
        top = 5
        def top_phases(name, **kw):
            sched = make_ordering(name, n, **kw).sweep(0)
            return sum(
                1 for step in sched.steps
                if any(m.level == top for m in step.moves)
            )
        assert top_phases("hybrid", n_groups=8) < top_phases("ring_new")


class TestConclusionTimings:
    """Section 6: who should win where, on the simulated machine."""

    def test_hybrid_beats_fat_tree_on_cm5(self, rng):
        a = rng.standard_normal((48, 32))
        _, rep_h = parallel_svd(a, topology="cm5", ordering="hybrid", n_groups=8)
        _, rep_f = parallel_svd(a, topology="cm5", ordering="fat_tree")
        assert rep_h.comm_time <= rep_f.comm_time

    def test_fat_tree_improves_with_capacity(self, rng):
        # "If communication-handling capability is increased, then our
        # fat-tree ordering will become more attractive"
        a = rng.standard_normal((48, 32))
        _, rep_cm5 = parallel_svd(a, topology="cm5", ordering="fat_tree")
        _, rep_perfect = parallel_svd(a, topology="perfect", ordering="fat_tree")
        assert rep_perfect.comm_time <= rep_cm5.comm_time

    def test_everything_converges_everywhere(self, rng):
        rows = convergence_table(n=16, runs=2)
        for r in rows:
            assert r.converged_runs == r.runs
