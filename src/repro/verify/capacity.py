"""Static link-capacity (contention) analysis of a schedule on a topology.

For every communication phase the analyzer routes each inter-leaf move
with :func:`repro.machine.routing.route_phase` — the same router the
machine simulator charges — and flags any channel whose load exceeds
its capacity (rule CAP003).  This is the static counterpart of
Section 5's measurement: the fat-tree ordering oversubscribes the
skinny channels of a CM-5-like tree, the hybrid ordering never
oversubscribes any channel, and the ring orderings are contention-free
even on an ordinary binary tree.

Because the dynamic analysis in :mod:`repro.analysis.contention`
computes the same quantity independently (its own path walk and load
aggregation), :func:`crosscheck_dynamic` compares the two per-level
profiles and raises CAP001 on any disagreement — a self-check that
keeps the static gate honest against drift in either implementation.
"""

from __future__ import annotations

from collections import defaultdict

from ..machine.routing import route_phase
from ..machine.topology import TreeTopology
from ..orderings.schedule import Schedule
from ..util.bits import leaf_of_slot
from .diagnostics import Diagnostic

__all__ = ["check_capacity", "static_level_contention", "crosscheck_dynamic"]


def _phase_messages(step_moves, n_leaves: int):
    """``(src_leaf, dst_leaf)`` endpoints of a phase, plus out-of-range leaves."""
    messages: list[tuple[int, int]] = []
    oob: set[int] = set()
    for m in step_moves:
        src, dst = leaf_of_slot(m.src), leaf_of_slot(m.dst)
        for leaf in (src, dst):
            if not 0 <= leaf < n_leaves:
                oob.add(leaf)
        if not oob:
            messages.append((src, dst))
    return messages, sorted(oob)


def check_capacity(schedule: Schedule, topology: TreeTopology) -> list[Diagnostic]:
    """CAP002/CAP003 diagnostics for every phase of a sweep."""
    out: list[Diagnostic] = []
    for step_no, step in enumerate(schedule.steps, start=1):
        if not step.moves:
            continue
        messages, oob = _phase_messages(step.moves, topology.n_leaves)
        if oob:
            out.append(Diagnostic(
                rule="CAP002", step=step_no,
                message=f"leaf endpoint(s) {oob} outside the "
                        f"{topology.n_leaves}-leaf topology {topology.name}",
                details=(("leaves", tuple(oob)),),
            ))
            continue
        phase = route_phase(topology, messages)
        for ch, load in sorted(
            phase.channel_loads.items(),
            key=lambda kv: (kv[0].level, kv[0].index, kv[0].up),
        ):
            cap = topology.capacity(ch.level)
            if load > cap:
                out.append(Diagnostic(
                    rule="CAP003", step=step_no,
                    message=f"channel level {ch.level} subtree {ch.index} "
                            f"({'up' if ch.up else 'down'}) carries {load} "
                            f"messages, capacity {cap} "
                            f"(contention {load / cap:.2f})",
                    details=(("level", ch.level), ("index", ch.index),
                             ("up", ch.up), ("load", load), ("capacity", cap)),
                ))
    return out


def static_level_contention(
    schedule: Schedule, topology: TreeTopology
) -> dict[int, float]:
    """Worst per-level ``load/capacity`` over all phases, routed statically."""
    worst: dict[int, float] = defaultdict(float)
    for step in schedule.steps:
        if not step.moves:
            continue
        messages, oob = _phase_messages(step.moves, topology.n_leaves)
        if oob:
            continue
        phase = route_phase(topology, messages)
        for ch, load in phase.channel_loads.items():
            f = load / topology.capacity(ch.level)
            worst[ch.level] = max(worst[ch.level], f)
    return dict(sorted(worst.items()))


def crosscheck_dynamic(
    schedule: Schedule, topology: TreeTopology
) -> list[Diagnostic]:
    """CAP001: static per-level contention must equal the dynamic analysis.

    Imports :mod:`repro.analysis.contention` lazily so that the verify
    package stays importable without pulling the full experiment
    harness in.
    """
    from ..analysis.contention import per_level_contention

    static = static_level_contention(schedule, topology)
    dynamic = per_level_contention(schedule, topology)
    out: list[Diagnostic] = []
    for level in sorted(set(static) | set(dynamic)):
        s, d = static.get(level, 0.0), dynamic.get(level, 0.0)
        if s != d:
            out.append(Diagnostic(
                rule="CAP001",
                message=f"level {level}: static contention {s:.4f} != "
                        f"dynamic contention {d:.4f}",
                details=(("level", level), ("static", s), ("dynamic", d)),
            ))
    return out
