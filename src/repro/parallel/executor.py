"""Step executors: how one schedule step's independent work is run.

The paper's orderings make every step *embarrassingly parallel*: the
block pairs met in one step occupy disjoint column sets, so their local
subproblems are independent.  The simulator charges that parallelism to
the cost model; this module adds the real thing — a
:class:`StepExecutor` abstraction whose backends run a step's
independent work items across OS threads sharing the column buffer.

Backends
--------
``serial``
    Everything in the calling thread; the reference behaviour.
``threads``
    A reused :class:`~concurrent.futures.ThreadPoolExecutor`.  Numpy's
    GEMMs drop the GIL, so the BLAS-3 phases of the gram kernel (and the
    per-pair reference/batched solves) genuinely overlap on multicore
    hosts.

Determinism contract
--------------------
Results are **bit-identical to serial for any worker count**.  Three
rules make that hold by construction:

1. *Disjoint writes.*  A work item writes only its own columns (the
   schedule's step pairs are disjoint); chunks of a batched phase write
   only their own slice of a preallocated output.  No write is ever
   shared, so memory order cannot matter.
2. *Identical per-item arithmetic.*  Chunking only splits the batch
   dimension of batched GEMMs (each 2D GEMM in the batch is unchanged)
   or the loop over independent pairs; no floating-point operation is
   reassociated.  Coupled reductions — notably the inner Gram Jacobi,
   whose convergence floor couples matrices across the batch — are
   *never* chunked (see :func:`repro.blockjacobi.kernel.solve_block_step`).
3. *Deterministic reduction.*  Convergence statistics are merged in
   chunk order, and the first exception (by chunk index, not by wall
   clock) is the one re-raised, mirroring the serial loop's semantics.

Worker and backend defaults resolve from the environment
(``REPRO_EXECUTOR``, ``REPRO_WORKERS``) so a whole test run can be
switched onto the threaded backend without code changes.
"""

from __future__ import annotations

import operator
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, TypeVar

from ..util.validation import require

__all__ = [
    "EXECUTORS",
    "SerialExecutor",
    "StepExecutor",
    "ThreadStepExecutor",
    "default_executor_name",
    "default_workers",
    "resolve_executor",
]

#: registered executor backends, in robustness order
EXECUTORS = ("serial", "threads")

T = TypeVar("T")


def default_executor_name() -> str:
    """Backend used when none is requested: ``$REPRO_EXECUTOR`` or serial."""
    name = os.environ.get("REPRO_EXECUTOR", "serial").strip() or "serial"
    require(name in EXECUTORS,
            f"REPRO_EXECUTOR={name!r} is not one of {', '.join(EXECUTORS)}")
    return name


def default_workers() -> int:
    """Worker count when none is requested: ``$REPRO_WORKERS`` or the
    CPU count (at least 1)."""
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        workers = int(env)
        require(workers >= 1, f"REPRO_WORKERS must be >= 1, got {env!r}")
        return workers
    return max(1, os.cpu_count() or 1)


class StepExecutor:
    """Runs the independent work of one schedule step.

    ``run_chunks(n_items, fn)`` partitions ``range(n_items)`` into at
    most :attr:`workers` contiguous chunks and calls ``fn(lo, hi)`` for
    each, returning the per-chunk results **in chunk order**.  The
    partition depends only on ``(n_items, workers)``, never on timing.
    Exceptions are collected and the lowest-chunk one re-raised after
    all chunks settle, so a failure is deterministic too.
    """

    name: str = "abstract"
    workers: int = 1
    #: optional :class:`~repro.verify.sanitize.RuntimeSanitizer`; when
    #: armed, every dispatch reports its actual chunk bounds so the
    #: sanitizer can cross-check them against the static chunking
    sanitizer = None

    def run_chunks(self, n_items: int,
                   fn: Callable[[int, int], T]) -> list[T]:
        raise NotImplementedError

    def _note_dispatch(self, n_items: int,
                       bounds: list[tuple[int, int]]) -> None:
        """Report the bounds about to be dispatched to the sanitizer."""
        san = self.sanitizer
        if san is not None:
            san.note_dispatch(n_items, bounds)

    def close(self) -> None:
        """Release pooled resources (idempotent)."""

    def __enter__(self) -> "StepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def chunk_bounds(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
        """Contiguous ``(lo, hi)`` bounds covering ``range(n_items)``.

        At most ``n_chunks`` chunks, never an empty one; sizes differ by
        at most one, larger chunks first — a pure function of its
        arguments.  Degenerate inputs fail loudly: ``n_items`` must be a
        non-negative integer and ``n_chunks`` a positive one (a request
        for zero or negative chunks is a caller bug, not a smaller
        partition).  ``n_chunks > n_items`` clamps to one item per chunk,
        and zero items yield zero chunks — never silent empty chunks.
        """
        n_items = operator.index(n_items)
        n_chunks = operator.index(n_chunks)
        require(n_items >= 0,
                f"n_items must be >= 0, got {n_items!r}")
        require(n_chunks >= 1,
                f"n_chunks must be >= 1, got {n_chunks!r}")
        if n_items == 0:
            return []
        n_chunks = min(n_chunks, n_items)
        q, r = divmod(n_items, n_chunks)
        bounds = []
        lo = 0
        for i in range(n_chunks):
            hi = lo + q + (1 if i < r else 0)
            bounds.append((lo, hi))
            lo = hi
        return bounds


class SerialExecutor(StepExecutor):
    """Everything in the calling thread, one chunk — the reference path."""

    name = "serial"
    workers = 1

    def run_chunks(self, n_items: int,
                   fn: Callable[[int, int], T]) -> list[T]:
        if n_items <= 0:
            return []
        self._note_dispatch(n_items, [(0, n_items)])
        return [fn(0, n_items)]


class ThreadStepExecutor(StepExecutor):
    """Chunks dispatched to a reused thread pool sharing the buffers.

    The pool is created lazily on first use and reused across steps and
    sweeps of a run (thread spin-up would otherwise dominate the small
    steps).  Call :meth:`close` (or use as a context manager) when the
    run finishes.
    """

    name = "threads"

    def __init__(self, workers: int | None = None):
        workers = default_workers() if workers is None else int(workers)
        require(workers >= 1, f"workers must be >= 1, got {workers!r}")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None

    def run_chunks(self, n_items: int,
                   fn: Callable[[int, int], T]) -> list[T]:
        if n_items <= 0:
            return []
        bounds = self.chunk_bounds(n_items, self.workers)
        self._note_dispatch(n_items, bounds)
        if len(bounds) == 1:
            return [fn(0, n_items)]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-step")
        futures = [self._pool.submit(fn, lo, hi) for lo, hi in bounds]
        results: list[T] = []
        error: BaseException | None = None
        for fut in futures:  # chunk order, not completion order
            try:
                results.append(fut.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def resolve_executor(
    executor: "str | StepExecutor | None" = None,
    workers: int | None = None,
) -> StepExecutor:
    """Build (or pass through) the executor for a run.

    ``executor`` may be a backend name from :data:`EXECUTORS`, an
    existing :class:`StepExecutor` (returned as-is; ``workers`` must
    then be ``None``), or ``None`` for the environment default.  The
    caller owns the result and should :meth:`~StepExecutor.close` it.
    """
    if isinstance(executor, StepExecutor):
        require(workers is None,
                "pass workers when naming a backend, not with an instance")
        return executor
    name = default_executor_name() if executor is None else executor
    require(name in EXECUTORS,
            f"unknown executor {name!r}; available: {', '.join(EXECUTORS)}")
    if workers is not None:
        require(workers >= 1, f"workers must be >= 1, got {workers!r}")
    if name == "serial":
        return SerialExecutor()
    return ThreadStepExecutor(workers)
