"""Simulated tree-architecture machine: topologies, routing, cost model."""

from .collectives import (
    CollectiveCost,
    collective_cost,
    tree_allreduce,
    tree_broadcast,
    tree_reduce,
    tree_scan,
)
from .costmodel import CostModel
from .routing import MessagePhase, route_moves, route_phase
from .simulator import TreeMachine
from .stats import StepRecord, SweepStats
from .trace import UtilizationSummary, render_gantt, render_timeline, utilization
from .topology import (
    TOPOLOGIES,
    BinaryTree,
    CM5Tree,
    Channel,
    PerfectFatTree,
    SkinnyFatTree,
    TreeTopology,
    make_topology,
)

__all__ = [
    "BinaryTree",
    "CollectiveCost",
    "UtilizationSummary",
    "collective_cost",
    "render_gantt",
    "render_timeline",
    "tree_allreduce",
    "tree_broadcast",
    "tree_reduce",
    "tree_scan",
    "utilization",
    "CM5Tree",
    "Channel",
    "CostModel",
    "MessagePhase",
    "PerfectFatTree",
    "SkinnyFatTree",
    "StepRecord",
    "SweepStats",
    "TOPOLOGIES",
    "TreeMachine",
    "TreeTopology",
    "make_topology",
    "route_moves",
    "route_phase",
]
