"""Plain-text table rendering for experiment output.

The benchmark harness regenerates the paper's figures as step tables in
the same spirit as Figs 1-9 (``step | index pairs | level``); this module
owns the rendering so that tests can assert on structured data while the
human-facing output stays consistent.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["render_table", "render_pairs", "render_step_table"]


def render_pairs(pairs: Iterable[tuple[int, int]]) -> str:
    """Render index pairs like ``(1 2)(3 4)(5 6)`` as in the paper's figures."""
    return "".join(f"({a} {b})" for a, b in pairs)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width text table.

    Column widths are derived from content; all values are ``str()``-ed.
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_step_table(
    step_rows: Sequence[tuple[int, Sequence[tuple[int, int]], object]],
    title: str | None = None,
) -> str:
    """Render a ``step | index pairs | level`` table (the Fig 2/3/6/9 shape).

    ``step_rows`` holds ``(step_number, pairs, level_annotation)`` tuples;
    the level annotation sits *between* steps in the paper, so it is
    printed on its own separator line after the step's pairs.
    """
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'step':>4}  index pairs")
    for step, pairs, level in step_rows:
        lines.append(f"{step:>4}  {render_pairs(pairs)}")
        if level not in (None, ""):
            lines.append(f"      -- {level} --")
    return "\n".join(lines)
