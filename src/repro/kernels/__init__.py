"""Pluggable compute backends for the batched GEMM phases.

Every flop-dominant phase of the block kernels is a *batched* small-GEMM
over a ``(B, k, *)`` stack: the Gram form ``G_i = Y_i Y_i^T``, the inner
Jacobi's rotation updates ``J^T G J`` / ``W J``, and the apply/scatter
``(Y_i W_i)^T = W_i^T Y_i``.  A :class:`ComputeBackend` bundles exactly
those three primitives, so a kernel is retargeted by swapping one
object — the dispatch seam the hierarchically blocked multi-GPU Jacobi
SVD literature exploits (see PAPERS.md).

Backends
--------
``numpy``
    ``np.matmul`` on the stack — the reference arithmetic everything
    else is compared against.
``einsum``
    The same contractions phrased as ``np.einsum(..., optimize=True)``.
    **Bit-identical to numpy**: the optimized einsum paths for these
    contractions lower to the same BLAS batched-matmul calls.  The one
    exception is the Gram form at batch size 1, where einsum takes a
    different internal dispatch whose accumulation order differs; that
    case is routed through ``np.matmul`` so the bit-identity guarantee
    holds unconditionally (single-pair steps do hit ``B == 1``).
``numba`` *(optional)*
    Loop-jitted batched matmul, registered only when ``numba`` imports
    and a probe compilation succeeds.  Scalar accumulation order is not
    the BLAS order, so this backend is tolerance-equal, not bit-equal.
``cupy`` *(optional)*
    Device matmul with host round-trips, registered only when ``cupy``
    imports and a device probe succeeds.  Tolerance-equal only.

Backends whose probe fails stay *registered but unavailable*, with the
captured failure reason — :func:`compute_backend_status` reports it and
:func:`resolve_compute_backend` either falls back to numpy with a
:class:`ComputeBackendWarning` or (``fallback=False``) raises it.

Selection: ``BlockJacobiOptions(compute_backend=...)`` /
``JacobiOptions(compute_backend=...)``, the CLI ``--compute-backend``,
or ``$REPRO_COMPUTE_BACKEND``.

Backend objects are plain dataclasses of module-level functions, so
they pickle by reference — the process executor ships them to workers
inside task payloads for free.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..util.validation import require

__all__ = [
    "COMPUTE_BACKENDS",
    "ComputeBackend",
    "ComputeBackendWarning",
    "available_compute_backends",
    "compute_backend_status",
    "default_compute_backend_name",
    "numpy_backend",
    "resolve_compute_backend",
]

#: registered backend names, in registration order; the optional ones
#: may be unavailable on a given host (see compute_backend_status)
COMPUTE_BACKENDS = ("numpy", "einsum", "numba", "cupy")


class ComputeBackendWarning(UserWarning):
    """A requested compute backend is unavailable; numpy is used instead."""


@dataclass(frozen=True)
class ComputeBackend:
    """The three batched primitives the block kernels dispatch through.

    ``matmul(a, b, out=None)``
        ``(B, i, j) @ (B, j, k)`` stack product.
    ``gram(y, out=None)``
        ``(B, k, m) -> (B, k, k)``: ``y @ y^T`` per stack entry.
    ``apply_wt(w, y, out=None)``
        ``(B, k, k), (B, k, m) -> (B, k, m)``: ``w^T @ y`` per entry.
        The ``out`` form writes into a caller-owned buffer with the same
        bits as the allocating form (same GEMM, different destination) —
        the simulator fast path reuses step buffers through it.

    ``bit_identical`` states whether the backend is guaranteed
    bit-identical to the numpy reference (enforced by the
    kernel-equivalence suite for the backends that claim it).
    """

    name: str
    matmul: Callable[..., np.ndarray]
    gram: Callable[..., np.ndarray]
    apply_wt: Callable[..., np.ndarray]
    bit_identical: bool = True


# ---------------------------------------------------------------- numpy

def _np_matmul(a, b, out=None):
    return np.matmul(a, b, out=out)


def _np_gram(y, out=None):
    return np.matmul(y, y.transpose(0, 2, 1), out=out)


def _np_apply_wt(w, y, out=None):
    return np.matmul(w.transpose(0, 2, 1), y, out=out)


# --------------------------------------------------------------- einsum

def _es_matmul(a, b, out=None):
    return np.einsum("bij,bjk->bik", a, b, out=out, optimize=True)


def _es_gram(y, out=None):
    if y.shape[0] == 1:
        # einsum's single-entry contraction takes an internal path whose
        # accumulation order differs from matmul; keep bit-identity
        return np.matmul(y, y.transpose(0, 2, 1), out=out)
    return np.einsum("bik,bjk->bij", y, y, out=out, optimize=True)


def _es_apply_wt(w, y, out=None):
    return np.einsum("bki,bkj->bij", w, y, out=out, optimize=True)


# --------------------------------------------------------------- numba

_NB_BMM = None


def _nb_compiled():
    global _NB_BMM
    if _NB_BMM is None:
        import numba

        @numba.njit(cache=False, parallel=False, fastmath=False)
        def bmm(a, b, out):  # pragma: no cover - needs numba installed
            nbatch, ni, nk = a.shape
            nj = b.shape[2]
            for t in range(nbatch):
                for i in range(ni):
                    for j in range(nj):
                        acc = 0.0
                        for l in range(nk):
                            acc += a[t, i, l] * b[t, l, j]
                        out[t, i, j] = acc

        _NB_BMM = bmm
    return _NB_BMM


def _nb_matmul(a, b, out=None):  # pragma: no cover - needs numba installed
    if out is None:
        out = np.empty((a.shape[0], a.shape[1], b.shape[2]))
    _nb_compiled()(np.ascontiguousarray(a), np.ascontiguousarray(b), out)
    return out


def _nb_gram(y, out=None):  # pragma: no cover - needs numba installed
    return _nb_matmul(y, y.transpose(0, 2, 1), out=out)


def _nb_apply_wt(w, y, out=None):  # pragma: no cover - needs numba installed
    return _nb_matmul(w.transpose(0, 2, 1), y, out=out)


# ---------------------------------------------------------------- cupy

def _cp_matmul(a, b, out=None):  # pragma: no cover - needs cupy + device
    import cupy

    r = cupy.asnumpy(cupy.matmul(cupy.asarray(a), cupy.asarray(b)))
    if out is not None:
        out[...] = r
        return out
    return r


def _cp_gram(y, out=None):  # pragma: no cover - needs cupy + device
    return _cp_matmul(y, y.transpose(0, 2, 1), out=out)


def _cp_apply_wt(w, y, out=None):  # pragma: no cover - needs cupy + device
    return _cp_matmul(w.transpose(0, 2, 1), y, out=out)


# -------------------------------------------------------------- probes

def _probe_numpy() -> ComputeBackend:
    return ComputeBackend("numpy", _np_matmul, _np_gram, _np_apply_wt)


def _probe_einsum() -> ComputeBackend:
    return ComputeBackend("einsum", _es_matmul, _es_gram, _es_apply_wt)


_PROBE_A = np.arange(12.0).reshape(2, 2, 3)
_PROBE_B = np.arange(12.0, 24.0).reshape(2, 3, 2)


def _probe_numba() -> ComputeBackend:
    import numba  # noqa: F401  (the import is the gate)

    # capability probe: compile and check a tiny product before claiming
    # the backend works (a broken toolchain degrades to unavailable)
    got = _nb_matmul(_PROBE_A, _PROBE_B)
    if not np.allclose(got, np.matmul(_PROBE_A, _PROBE_B)):  # pragma: no cover
        raise RuntimeError("numba probe product mismatch")
    return ComputeBackend("numba", _nb_matmul, _nb_gram, _nb_apply_wt,
                          bit_identical=False)


def _probe_cupy() -> ComputeBackend:
    import cupy

    if cupy.cuda.runtime.getDeviceCount() < 1:  # pragma: no cover
        raise RuntimeError("no CUDA device visible")
    got = _cp_matmul(_PROBE_A, _PROBE_B)  # pragma: no cover
    if not np.allclose(got, np.matmul(_PROBE_A, _PROBE_B)):  # pragma: no cover
        raise RuntimeError("cupy probe product mismatch")
    return ComputeBackend("cupy", _cp_matmul, _cp_gram, _cp_apply_wt,  # pragma: no cover
                          bit_identical=False)


#: probe table — tests may monkeypatch an entry to simulate a missing
#: or broken optional backend
_PROBES: dict[str, Callable[[], ComputeBackend]] = {
    "numpy": _probe_numpy,
    "einsum": _probe_einsum,
    "numba": _probe_numba,
    "cupy": _probe_cupy,
}

#: probe results, cached per process: name -> (backend-or-None, reason)
_CACHE: dict[str, tuple[ComputeBackend | None, str | None]] = {}


def _probe(name: str) -> tuple[ComputeBackend | None, str | None]:
    hit = _CACHE.get(name)
    if hit is None:
        try:
            hit = (_PROBES[name](), None)
        except Exception as exc:  # noqa: BLE001 - reason is the product
            hit = (None, f"{type(exc).__name__}: {exc}")
        _CACHE[name] = hit
    return hit


def clear_backend_cache() -> None:
    """Forget probe results (tests re-probing after monkeypatching)."""
    _CACHE.clear()


def numpy_backend() -> ComputeBackend:
    """The reference backend (always available)."""
    backend, _ = _probe("numpy")
    assert backend is not None
    return backend


def compute_backend_status() -> dict[str, str | None]:
    """Per-backend availability: ``None`` when usable, else the captured
    probe-failure reason (import error, missing device, ...)."""
    return {name: _probe(name)[1] for name in COMPUTE_BACKENDS}


def available_compute_backends() -> tuple[str, ...]:
    """Names of the backends that probed successfully on this host."""
    return tuple(n for n in COMPUTE_BACKENDS if _probe(n)[1] is None)


def _catalogue() -> str:
    status = compute_backend_status()
    ok = [n for n in COMPUTE_BACKENDS if status[n] is None]
    msg = f"available: {', '.join(ok)}"
    broken = [(n, status[n]) for n in COMPUTE_BACKENDS
              if status[n] is not None]
    if broken:
        msg += "; unavailable: " + "; ".join(
            f"{n} ({reason})" for n, reason in broken)
    return msg


def default_compute_backend_name() -> str:
    """Backend used when none is requested: ``$REPRO_COMPUTE_BACKEND``
    or numpy."""
    name = os.environ.get("REPRO_COMPUTE_BACKEND", "numpy").strip() or "numpy"
    require(name in COMPUTE_BACKENDS,
            f"REPRO_COMPUTE_BACKEND={name!r} is not one of "
            f"{', '.join(COMPUTE_BACKENDS)}")
    return name


def resolve_compute_backend(
    name: "str | ComputeBackend | None" = None,
    *,
    fallback: bool = True,
) -> ComputeBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` resolves from ``$REPRO_COMPUTE_BACKEND`` (default numpy).
    An unknown name raises with the full catalogue, including why each
    unavailable backend failed its probe.  A registered-but-unavailable
    backend falls back to numpy with a :class:`ComputeBackendWarning`,
    or raises when ``fallback=False``.
    """
    if isinstance(name, ComputeBackend):
        return name
    name = default_compute_backend_name() if name is None else name
    require(name in COMPUTE_BACKENDS,
            f"unknown compute backend {name!r}; {_catalogue()}")
    backend, reason = _probe(name)
    if backend is not None:
        return backend
    if not fallback:
        raise ValueError(
            f"compute backend {name!r} is unavailable on this host: {reason}")
    warnings.warn(
        f"compute backend {name!r} is unavailable ({reason}); "
        "falling back to numpy", ComputeBackendWarning, stacklevel=2)
    return numpy_backend()
