"""Least-squares and pseudoinverse built on the tree-ordered Jacobi SVD.

The canonical downstream use of an SVD engine: the minimum-norm solution
of ``min ||a x - b||`` is ``x = V S^+ U^T b``, robust to rank
deficiency.  Everything here runs through :func:`repro.core.api.svd`
(any ordering, padding handled), so these apps exercise the public API
on the workloads the paper's introduction motivates (signal processing
and real-time applications, where "sufficiently small singular values
are regarded as zero").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.api import svd
from ..core.result import SVDResult
from ..svd.hestenes import JacobiOptions
from ..util.validation import require

__all__ = ["LstsqResult", "lstsq", "pinv"]


@dataclass
class LstsqResult:
    """Solution of a (possibly rank-deficient) least-squares problem."""

    x: np.ndarray
    residual_norm: float
    rank: int
    sigma: np.ndarray
    svd: SVDResult


def lstsq(
    a: np.ndarray,
    b: np.ndarray,
    rcond: float | None = None,
    ordering: str = "fat_tree",
    options: JacobiOptions | None = None,
) -> LstsqResult:
    """Minimum-norm least-squares solution via the one-sided Jacobi SVD.

    ``rcond`` truncates singular values below ``rcond * sigma_max``
    (default: machine-epsilon scaled by the problem size, the LAPACK
    convention).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    require(a.ndim == 2, "a must be a matrix")
    require(b.shape[0] == a.shape[0], "a and b row counts differ")
    m, n = a.shape
    r = svd(a, ordering=ordering, options=options)
    if rcond is None:
        rcond = max(m, n) * np.finfo(np.float64).eps
    cutoff = rcond * (r.sigma[0] if r.sigma.size and r.sigma[0] > 0 else 1.0)
    keep = r.sigma > cutoff
    k = int(np.count_nonzero(keep))
    ut_b = r.u[:, :k].T @ b
    coeff = (ut_b.T / r.sigma[:k]).T
    x = r.v[:, :k] @ coeff
    residual = b - a @ x
    return LstsqResult(
        x=x,
        residual_norm=float(np.linalg.norm(residual)),
        rank=k,
        sigma=r.sigma.copy(),
        svd=r,
    )


def pinv(
    a: np.ndarray,
    rcond: float | None = None,
    ordering: str = "fat_tree",
) -> np.ndarray:
    """Moore-Penrose pseudoinverse via the tree-ordered Jacobi SVD."""
    a = np.asarray(a, dtype=np.float64)
    transposed = a.shape[0] < a.shape[1]
    work = a.T if transposed else a
    r = svd(work, ordering=ordering)
    if rcond is None:
        rcond = max(a.shape) * np.finfo(np.float64).eps
    cutoff = rcond * (r.sigma[0] if r.sigma.size and r.sigma[0] > 0 else 1.0)
    keep = r.sigma > cutoff
    k = int(np.count_nonzero(keep))
    pinv_work = r.v[:, :k] @ ((r.u[:, :k] / r.sigma[:k]).T)
    return pinv_work.T if transposed else pinv_work
