"""Message routing and contention accounting on tree topologies.

For one communication phase (the moves of a schedule step) the router
charges every message its tree path and aggregates per-channel loads.
The *contention factor* of a channel is ``load / capacity``; the phase's
contention factor is the maximum over channels — exactly the quantity
the paper's Section 5 argues the hybrid ordering keeps at <= 1 on skinny
fat-trees while the fat-tree ordering oversubscribes the skinny levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

import numpy as np

from ..util.validation import require
from .topology import Channel, TreeTopology

__all__ = ["MessagePhase", "remap_leaves", "route_moves", "route_phase"]


@dataclass
class MessagePhase:
    """Routing outcome of one communication phase."""

    n_messages: int
    channel_loads: dict[Channel, int]
    max_level: int
    level_message_counts: dict[int, int]
    contention: float
    hot_channel: Channel | None

    @property
    def is_contention_free(self) -> bool:
        """No channel oversubscribed (at most ``capacity`` messages each)."""
        return self.contention <= 1.0


def remap_leaves(
    messages: Iterable[tuple[int, int]], host_of_leaf
) -> list[tuple[int, int]]:
    """Apply a degraded-mode host map to ``(src_leaf, dst_leaf)`` pairs.

    After a crash, the dead leaf's work is rehosted on its sibling;
    messages addressed to a remapped leaf terminate at its host.  Pairs
    that collapse onto one physical leaf become local (and are then
    skipped by :func:`route_phase`).
    """
    return [(int(host_of_leaf[s]), int(host_of_leaf[d])) for s, d in messages]


def route_phase(
    topology: TreeTopology, messages: Iterable[tuple[int, int]]
) -> MessagePhase:
    """Route ``(src_leaf, dst_leaf)`` messages and account channel loads.

    All messages of a phase are assumed simultaneous (the synchronous
    step model of systolic Jacobi implementations).
    """
    loads: dict[Channel, int] = {}
    level_counts: dict[int, int] = {}
    n = 0
    max_level = 0
    for src, dst in messages:
        if src == dst:
            continue
        n += 1
        r = topology.comm_level(src, dst)
        max_level = max(max_level, r)
        level_counts[r] = level_counts.get(r, 0) + 1
        for ch in topology.path(src, dst):
            loads[ch] = loads.get(ch, 0) + 1
    contention = 0.0
    hot = None
    for ch, load in loads.items():
        f = load / topology.capacity(ch.level)
        if f > contention:
            contention = f
            hot = ch
    return MessagePhase(
        n_messages=n,
        channel_loads=loads,
        max_level=max_level,
        level_message_counts=dict(sorted(level_counts.items())),
        contention=contention,
        hot_channel=hot,
    )


def route_moves(
    topology: TreeTopology, sources: np.ndarray, destinations: np.ndarray
) -> MessagePhase:
    """Vectorised :func:`route_phase` over move-endpoint index arrays.

    Routes the same messages without a per-message Python loop: message
    levels come from one XOR + exponent extraction, and per-level channel
    loads from ``np.unique`` counts of the shifted endpoint indices (a
    level-``k`` channel's subtree index is just ``leaf >> (k - 1)``, so
    aggregation never materialises the paths).  This is the hot-path
    router behind :meth:`~repro.orderings.plan.CompiledSchedule.route_phase`.

    Equivalence contract with :func:`route_phase`: ``n_messages``,
    ``channel_loads``, ``max_level``, ``level_message_counts`` and
    ``contention`` are identical (the per-channel division is the same
    integer pair, hence the same float).  Only the ``hot_channel``
    tie-break may differ: among equally contended channels this routine
    deterministically reports the smallest ``(level, index, up)``, while
    the loop reports the first one a message inserted.
    """
    src = np.asarray(sources, dtype=np.int64).ravel()
    dst = np.asarray(destinations, dtype=np.int64).ravel()
    require(src.size == dst.size, "sources/destinations length mismatch")
    if src.size:
        worst = int(max(src.max(), dst.max()))
        best = int(min(src.min(), dst.min()))
        require(0 <= best and worst < topology.n_leaves,
                f"leaf {worst if worst >= topology.n_leaves else best} "
                f"out of range for {topology.n_leaves}-leaf tree")
    remote = src != dst
    src, dst = src[remote], dst[remote]
    n = int(src.size)
    loads: dict[Channel, int] = {}
    max_level = 0
    level_counts: dict[int, int] = {}
    contention = 0.0
    hot = None
    if n:
        # comm_level = bit_length(src ^ dst); the frexp exponent of the
        # (exactly representable) XOR value is precisely that
        levels = np.frexp((src ^ dst).astype(np.float64))[1].astype(np.int64)
        max_level = int(levels.max())
        lv, lc = np.unique(levels, return_counts=True)
        level_counts = {int(a): int(b) for a, b in zip(lv, lc)}
        # every message climbs through levels 1..r: after sorting by
        # level, the level->=k messages are a suffix, and each channel
        # visit is encoded as one integer key (level | subtree index |
        # direction bit, in tie-break order) so a single np.unique
        # yields all per-channel loads at once
        order = np.argsort(levels)
        src_s, dst_s = src[order], dst[order]
        starts = np.searchsorted(levels[order],
                                 np.arange(1, max_level + 1))
        pieces = []
        for k in range(1, max_level + 1):
            base = np.int64(k) << np.int64(48)
            s, d = src_s[starts[k - 1]:], dst_s[starts[k - 1]:]
            pieces.append(base | ((s >> (k - 1)) << 1) | 1)  # up leg
            pieces.append(base | ((d >> (k - 1)) << 1))      # down leg
        keys, counts = np.unique(np.concatenate(pieces),
                                 return_counts=True)
        ch_level = keys >> 48
        loads = {
            Channel(k, i, bool(u)): c
            for k, i, u, c in zip(
                ch_level.tolist(),
                ((keys >> 1) & ((np.int64(1) << 47) - 1)).tolist(),
                (keys & 1).tolist(),
                counts.tolist(),
            )
        }
        caps = np.array([topology.capacity(k)
                         for k in range(1, max_level + 1)], dtype=np.int64)
        ratios = counts / caps[ch_level - 1]
        contention = float(ratios.max())
        # keys sort as (level, index, up), so the first maximal ratio is
        # the documented smallest-(level, index, up) tie-break
        j = int(np.argmax(ratios == contention))
        k = keys[j]
        hot = Channel(int(k >> 48), int((k >> 1) & ((np.int64(1) << 47) - 1)),
                      bool(k & 1))
    return MessagePhase(
        n_messages=n,
        channel_loads=loads,
        max_level=max_level,
        level_message_counts=level_counts,
        contention=contention,
        hot_channel=hot,
    )
