"""One-sided (Hestenes) Jacobi SVD numerics."""

from .convergence import off_norm, quadratic_rate_ok, relative_off
from .hestenes import KERNELS, JacobiOptions, hestenes_sweeps, jacobi_svd
from .reference import accuracy_report, reference_singular_values
from .rotations import (
    RotationStats,
    apply_step_rotations,
    apply_step_rotations_batched,
    column_norms_sq,
    rotation_params,
)
from .thresholds import FixedThreshold, StagedThreshold, ThresholdStrategy

__all__ = [
    "FixedThreshold",
    "JacobiOptions",
    "KERNELS",
    "StagedThreshold",
    "ThresholdStrategy",
    "RotationStats",
    "accuracy_report",
    "apply_step_rotations",
    "apply_step_rotations_batched",
    "column_norms_sq",
    "hestenes_sweeps",
    "jacobi_svd",
    "off_norm",
    "quadratic_rate_ok",
    "reference_singular_values",
    "relative_off",
    "rotation_params",
]
