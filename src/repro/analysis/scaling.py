"""Machine-size scaling study (TAB-SCALE).

Section 2 of the paper frames the design problem: "A problem which is
compute-bound on a serial computer may be communication-bound on a
parallel computer", so the orderings compete on how their communication
cost grows with the machine.  This experiment holds the per-leaf work
constant (two columns per leaf, fixed row count) and grows the machine,
reporting per-sweep simulated time, its compute/communication split and
the contention trend per ordering x topology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.costmodel import CostModel
from ..machine.simulator import TreeMachine
from ..machine.topology import make_topology
from ..orderings.registry import make_ordering
from ..util.formatting import render_table

__all__ = ["ScalingRow", "scaling_table", "render_scaling_table"]


@dataclass(frozen=True)
class ScalingRow:
    ordering: str
    topology: str
    n: int
    n_leaves: int
    sweep_time: float
    compute_time: float
    comm_time: float
    comm_fraction: float
    max_contention: float


def scaling_table(
    sizes: list[int] | None = None,
    m: int = 128,
    topology: str = "cm5",
    names: list[str] | None = None,
    cost_model: CostModel | None = None,
    seed: int = 0,
    **kwargs_by_name: dict,
) -> list[ScalingRow]:
    """TAB-SCALE: one-sweep simulated time as the machine grows.

    Each size ``n`` uses ``n/2`` leaves (weak scaling in the column
    dimension at fixed row count ``m``).
    """
    sizes = sizes or [16, 32, 64, 128]
    names = names or ["round_robin", "ring_new", "fat_tree", "hybrid"]
    cm = cost_model or CostModel()
    rng = np.random.default_rng(seed)
    rows: list[ScalingRow] = []
    for n in sizes:
        a = rng.standard_normal((m, n))
        topo = make_topology(topology, n // 2)
        for name in names:
            kw = dict(kwargs_by_name.get(name, {}))
            if name == "hybrid" and "n_groups" not in kw:
                kw["n_groups"] = max(2, n // 8)  # blocks of <= 4 columns
            ordering = make_ordering(name, n, **kw)
            machine = TreeMachine(topo, cm)
            machine.load(a)
            stats, _, _ = machine.run_sweep(ordering.sweep(0))
            total = stats.total_time
            rows.append(
                ScalingRow(
                    ordering=name,
                    topology=topology,
                    n=n,
                    n_leaves=n // 2,
                    sweep_time=total,
                    compute_time=stats.compute_time,
                    comm_time=stats.comm_time,
                    comm_fraction=(stats.comm_time / total) if total else 0.0,
                    max_contention=stats.max_contention,
                )
            )
    return rows


def render_scaling_table(rows: list[ScalingRow]) -> str:
    """Text table for TAB-SCALE rows."""
    headers = ["n", "leaves", "ordering", "sweep time", "comm %", "max cont"]
    data = [
        [
            r.n,
            r.n_leaves,
            r.ordering,
            f"{r.sweep_time:.0f}",
            f"{100 * r.comm_fraction:.0f}%",
            f"{r.max_contention:.2f}",
        ]
        for r in rows
    ]
    return render_table(headers, data,
                        title=f"TAB-SCALE ({rows[0].topology})" if rows else "TAB-SCALE")
