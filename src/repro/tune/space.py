"""Candidate space of the configuration autotuner.

A :class:`Candidate` is one complete, runnable configuration of the
public SVD entry points — the same six knobs ``svd`` / ``svd_batch``
expose (ordering, kernel, block size, step executor, workers, compute
backend).  :func:`candidate_space` enumerates the admissible candidates
for a target shape, pruned by what this host can actually run: the
probe catalogues of :mod:`repro.parallel.executor` and
:mod:`repro.kernels` (surfaced as :func:`backend_catalogue`, the same
data ``repro-harness backends`` prints), so the tuner skips a missing
``processes`` backend or an unprobeable ``numba`` instead of failing on
it mid-search.

The space is deliberately small and structured rather than a grid: the
block-Jacobi literature (Faverge et al., Novaković — see PAPERS.md)
shows performance is decided by block size × ordering × backend, so we
take the divisor block sizes that keep at least 8 schedule slots, the
two strongest ordering families (the paper's fat-tree ordering and the
new ring ordering), and one backend/executor variant per distinct axis
instead of the full cross product.  The default configuration is always
candidate 0 so every tune run prices the thing it is trying to beat.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernels import compute_backend_status
from ..parallel.executor import executor_availability
from ..util.bits import is_power_of_two
from ..util.validation import require

__all__ = [
    "Candidate",
    "DEFAULT_CANDIDATE",
    "backend_catalogue",
    "candidate_space",
]


@dataclass(frozen=True)
class Candidate:
    """One complete tuner configuration (the knobs of :func:`repro.svd`).

    ``block_size is None`` means scalar mode, where the executor /
    worker / compute-backend knobs must stay unset (`svd` rejects them
    without a block size — the scalar kernels have no independent pair
    subproblems and no GEMM phase).
    """

    kernel: str = "reference"
    block_size: int | None = None
    ordering: str = "fat_tree"
    executor: str | None = None
    workers: int | None = None
    compute_backend: str | None = None

    def __post_init__(self) -> None:
        if self.block_size is None:
            require(self.executor is None and self.workers is None
                    and self.compute_backend is None,
                    "scalar candidates cannot carry executor/workers/"
                    f"compute_backend: {self!r}")

    def label(self) -> str:
        """Compact display name, e.g. ``gram-b16/ring_new/threads2``."""
        parts = [self.kernel if self.block_size is None
                 else f"{self.kernel}-b{self.block_size}", self.ordering]
        if self.executor is not None:
            w = "" if self.workers is None else str(self.workers)
            parts.append(f"{self.executor}{w}")
        if self.compute_backend is not None:
            parts.append(self.compute_backend)
        return "/".join(parts)

    def call_kwargs(self) -> dict:
        """Keyword arguments for :func:`repro.svd` / :func:`repro.svd_batch`
        (only the knobs this candidate actually sets)."""
        kw: dict = {"ordering": self.ordering, "kernel": self.kernel}
        for name in ("block_size", "executor", "workers", "compute_backend"):
            value = getattr(self, name)
            if value is not None:
                kw[name] = value
        return kw

    def options_dict(self) -> dict:
        """JSON form persisted in tuned profiles (all six knobs, explicit
        ``None`` for the unset ones so a profile is self-describing)."""
        return {
            "ordering": self.ordering,
            "kernel": self.kernel,
            "block_size": self.block_size,
            "executor": self.executor,
            "workers": self.workers,
            "compute_backend": self.compute_backend,
        }


#: what ``svd()`` does when asked for nothing: scalar reference kernel
#: under the paper's fat-tree ordering
DEFAULT_CANDIDATE = Candidate()


def backend_catalogue() -> dict:
    """Probe status of every optional backend on this host.

    ``{"executors": {name: None | reason}, "compute_backends": ...}`` —
    ``None`` means usable, a string is the captured probe failure.  This
    is the JSON ``repro-harness backends`` emits and the availability
    filter :func:`candidate_space` consumes.
    """
    return {
        "executors": executor_availability(),
        "compute_backends": compute_backend_status(),
    }


def _block_sizes(n: int, pow2_blocks: bool) -> list[int]:
    """Divisor block sizes keeping >= 8 schedule slots, largest first.

    ``pow2_blocks`` additionally requires a power-of-two block count
    (tree-ordering admissibility without padding).
    """
    sizes = []
    for b in (32, 16, 8, 4, 2):
        if n % b or n // b < 8:
            continue
        if pow2_blocks and not is_power_of_two(n // b):
            continue
        sizes.append(b)
    return sizes


def candidate_space(m: int, n: int, batch: int | None = None, *,
                    quick: bool = False,
                    catalogue: dict | None = None) -> tuple[Candidate, ...]:
    """Admissible candidates for one target shape, default first.

    The structure (not a grid):

    * the default configuration (always, so the search prices it);
    * scalar ``batched`` under fat-tree and ring orderings (the scalar
      ``reference`` kernel beyond the default only at small ``n`` — it
      is strictly dominated and would waste most of round one);
    * the BLAS-3 ``gram`` kernel at every admissible divisor block size
      (>= 8 slots), fat-tree ordering when the block count is a power of
      two, ring ordering otherwise, plus one block-``batched`` variant;
    * one threads / processes variant of the best-blocked gram candidate
      per *available* executor (``workers=2``, the determinism-safe
      floor) — unavailable executors are skipped, not errors;
    * one variant per available non-numpy compute backend.

    ``quick=True`` keeps only one candidate per axis (default, scalar
    batched, serial gram, threaded gram) — the CI smoke space.
    """
    require(m >= n >= 2, f"need m >= n >= 2, got m={m}, n={n}")
    cat = backend_catalogue() if catalogue is None else catalogue
    exec_ok = [name for name, reason in cat["executors"].items()
               if reason is None and name != "serial"]
    backend_ok = [name for name, reason in cat["compute_backends"].items()
                  if reason is None and name != "numpy"]

    out: list[Candidate] = [DEFAULT_CANDIDATE]

    def add(c: Candidate) -> None:
        if c not in out:
            out.append(c)

    blocks = _block_sizes(n, pow2_blocks=False)
    best_b = blocks[0] if blocks else None

    def block_ordering(b: int) -> str:
        return "fat_tree" if is_power_of_two(n // b) else "ring_new"

    if quick:
        add(Candidate(kernel="batched", ordering="ring_new"))
        if best_b is not None:
            add(Candidate(kernel="gram", block_size=best_b,
                          ordering=block_ordering(best_b)))
            if "threads" in exec_ok:
                add(Candidate(kernel="gram", block_size=best_b,
                              ordering=block_ordering(best_b),
                              executor="threads", workers=2))
        return tuple(out)

    for ordering in ("fat_tree", "ring_new"):
        add(Candidate(kernel="batched", ordering=ordering))
    if n <= 64:
        add(Candidate(kernel="reference", ordering="ring_new"))
    for b in blocks:
        add(Candidate(kernel="gram", block_size=b,
                      ordering=block_ordering(b)))
    if best_b is not None:
        add(Candidate(kernel="batched", block_size=best_b,
                      ordering=block_ordering(best_b)))
        for executor in exec_ok:
            add(Candidate(kernel="gram", block_size=best_b,
                          ordering=block_ordering(best_b),
                          executor=executor, workers=2))
        for backend in backend_ok:
            add(Candidate(kernel="gram", block_size=best_b,
                          ordering=block_ordering(best_b),
                          compute_backend=backend))
    _ = batch  # the space is shape-driven; batch only changes the timer
    return tuple(out)
