"""Communication-cost accounting per ordering (TAB-COMM).

Section 3's argument: on a fat-tree, locality matters — the ring and
round-robin orderings of Fig 1 need *global* communication at every
step, while the fat-tree ordering keeps almost all traffic at the lowest
levels, with level-r message counts falling geometrically in r (matching
the doubling channel capacity).  This module counts, for one sweep of
each ordering, the messages by the tree level they climb.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..orderings.base import Ordering
from ..orderings.registry import make_ordering
from ..util.bits import ilog2

__all__ = ["CommCostRow", "comm_cost_row", "comm_cost_table"]


@dataclass(frozen=True)
class CommCostRow:
    """Per-sweep communication profile of one ordering."""

    ordering: str
    n: int
    rotation_steps: int
    total_messages: int
    by_level: dict[int, int]
    top_level_messages: int
    mean_level: float

    def weighted_hops(self) -> int:
        """Total channel-hops (each level-r message crosses 2r channels)."""
        return sum(2 * r * c for r, c in self.by_level.items())


def comm_cost_row(ordering: Ordering) -> CommCostRow:
    """Measure one sweep of an ordering."""
    sched = ordering.sweep(0)
    hist = sched.level_histogram()
    total = sum(hist.values())
    top = ilog2(ordering.n // 2) if ordering.n >= 4 else 1
    mean = (
        sum(r * c for r, c in hist.items()) / total if total else 0.0
    )
    return CommCostRow(
        ordering=ordering.name,
        n=ordering.n,
        rotation_steps=sched.n_rotation_steps,
        total_messages=total,
        by_level=hist,
        top_level_messages=hist.get(top, 0),
        mean_level=mean,
    )


def comm_cost_table(
    n: int, names: list[str] | None = None, **kwargs_by_name: dict
) -> list[CommCostRow]:
    """TAB-COMM: message-by-level profile for every ordering at size n."""
    names = names or ["round_robin", "odd_even", "ring_new", "fat_tree", "llb", "hybrid"]
    rows = []
    for name in names:
        kw = kwargs_by_name.get(name, {})
        rows.append(comm_cost_row(make_ordering(name, n, **kw)))
    return rows
