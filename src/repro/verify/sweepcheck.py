"""Sweep-closure checks: all-pairs coverage and index-order restoration.

The defining property of a Jacobi sweep — every unordered column pair
rotated exactly once — already has a single source of truth in
:func:`repro.orderings.properties.check_all_pairs_once`; this module
is a thin adapter that turns its :class:`ValidityReport` into
rule-tagged diagnostics (SWEEP001 duplicates, SWEEP002 missing pairs)
so every ordering flows through the same gate.

Order restoration (SWEEP003) is checked algebraically: the sweep's
slot permutation is decomposed into cycles and its order (the lcm of
the cycle lengths) compared against the allowed period — 1 for the
fat-tree ordering ("the original order of the indices is maintained
after the completion of each sweep"), 2 for the ring orderings (two
consecutive sweeps restore the order).  Orderings whose consecutive
sweeps differ (the Lee-Luk-Boley forward/backward alternation) are
handled at the :class:`~repro.orderings.base.Ordering` level by
composing one full period of sweep permutations.
"""

from __future__ import annotations

from math import lcm
from collections.abc import Iterable, Sequence

from ..orderings.base import Ordering
from ..orderings.properties import check_all_pairs_once
from ..orderings.schedule import Schedule, permutation_of_sweep
from .diagnostics import Diagnostic

__all__ = [
    "permutation_order",
    "check_pair_coverage",
    "check_restoration",
    "check_ordering_restoration",
]

_MAX_LISTED = 8  # cap enumerations inside one message


def permutation_order(perm: Sequence[int]) -> int:
    """Order of a permutation: lcm of its cycle lengths."""
    seen = [False] * len(perm)
    order = 1
    for start in range(len(perm)):
        if seen[start]:
            continue
        length, j = 0, start
        while not seen[j]:
            seen[j] = True
            j = perm[j]
            length += 1
        order = lcm(order, length)
    return order


def _listed(pairs: Sequence[Iterable[int]]) -> str:
    shown = [tuple(sorted(p)) for p in pairs[:_MAX_LISTED]]
    suffix = ", ..." if len(pairs) > _MAX_LISTED else ""
    return f"{shown}{suffix}"


def check_pair_coverage(
    schedule: Schedule,
    layout: Sequence[int] | None = None,
    exempt: frozenset[frozenset[int]] = frozenset(),
) -> list[Diagnostic]:
    """SWEEP001/SWEEP002 diagnostics from the all-pairs-once predicate.

    ``exempt`` names index pairs the sweep is allowed to skip.  The only
    producer today is the Lee-Luk-Boley backward sweep, whose schedule
    declares (``notes["skips_duplicate_rotation"]``) that it omits the
    rotation duplicating the preceding sweep's final one; the linter
    computes the concrete exempt pairs from that preceding sweep.
    """
    report = check_all_pairs_once(schedule, layout)
    out: list[Diagnostic] = []
    if report.duplicates:
        out.append(Diagnostic(
            rule="SWEEP001",
            message=f"{len(report.duplicates)} index pair(s) rotated more "
                    f"than once: {_listed(report.duplicates)}",
            details=(("n_duplicates", len(report.duplicates)),),
        ))
    missing = [p for p in report.missing if p not in exempt]
    if missing:
        out.append(Diagnostic(
            rule="SWEEP002",
            message=f"{len(missing)} of {report.n_pairs_expected} "
                    f"index pair(s) never rotated: {_listed(missing)}",
            details=(("n_missing", len(missing)),
                     ("n_expected", report.n_pairs_expected)),
        ))
    return out


def check_restoration(schedule: Schedule, max_period: int) -> list[Diagnostic]:
    """SWEEP003 for a sweep-invariant schedule: the sweep permutation's
    order must divide into ``max_period`` repetitions."""
    order = permutation_order(permutation_of_sweep(schedule))
    if order > max_period:
        return [Diagnostic(
            rule="SWEEP003",
            message=f"sweep permutation has order {order}; index order is "
                    f"not restored within {max_period} sweep(s)",
            details=(("order", order), ("max_period", max_period)),
        )]
    return []


def check_ordering_restoration(
    ordering: Ordering, max_period: int
) -> list[Diagnostic]:
    """SWEEP003 at the ordering level (handles sweep-alternating orderings)."""
    period = ordering.restoration_period(max_period=max_period)
    if period == 0:
        return [Diagnostic(
            rule="SWEEP003",
            message=f"no restoration period <= {max_period}: index order is "
                    f"not restored within {max_period} sweep(s)",
            details=(("max_period", max_period),),
        )]
    return []
