"""Convergence experiments (TAB-CONV, TAB-SWEEP).

The paper's convergence-related claims:

* with a systematic ordering the iteration converges, ultimately
  quadratically (Section 1, citing [16]);
* equivalent orderings (Definition 1) share convergence behaviour — the
  new ring ordering converges like round-robin;
* the singular values emerge sorted when the larger-norm column is kept
  at the smaller-index position;
* the Lee-Luk-Boley forward/backward alternation makes the gap between
  successive rotations of a fixed pair variable, which can cost sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..svd.hestenes import JacobiOptions, jacobi_svd

__all__ = ["ConvergenceRow", "convergence_table", "workload_matrix"]


@dataclass(frozen=True)
class ConvergenceRow:
    ordering: str
    n: int
    sweeps: float
    converged_runs: int
    runs: int
    max_sigma_err: float
    sorted_runs: int
    off_decay: list[float]


def workload_matrix(
    m: int, n: int, rng: np.random.Generator, kind: str = "gaussian"
) -> np.ndarray:
    """Workload generator for the convergence experiments."""
    if kind == "gaussian":
        return rng.standard_normal((m, n))
    if kind == "graded":
        # well-separated spectrum: geometric singular values
        u, _ = np.linalg.qr(rng.standard_normal((m, n)))
        v, _ = np.linalg.qr(rng.standard_normal((n, n)))
        s = np.geomspace(1.0, 1e-4, n)
        return u * s @ v.T
    if kind == "clustered":
        u, _ = np.linalg.qr(rng.standard_normal((m, n)))
        v, _ = np.linalg.qr(rng.standard_normal((n, n)))
        s = np.concatenate([np.full(n // 2, 1.0), np.full(n - n // 2, 0.5)])
        return u * s @ v.T
    raise ValueError(f"unknown matrix kind {kind!r}")


def convergence_table(
    n: int = 32,
    m: int | None = None,
    runs: int = 5,
    names: list[str] | None = None,
    kind: str = "gaussian",
    seed: int = 0,
    options: JacobiOptions | None = None,
    **kwargs_by_name: dict,
) -> list[ConvergenceRow]:
    """TAB-CONV: sweeps-to-convergence and accuracy per ordering."""
    names = names or [
        "round_robin", "odd_even", "ring_new", "ring_modified",
        "fat_tree", "llb", "hybrid",
    ]
    m = m or (n + n // 2)
    rng = np.random.default_rng(seed)
    mats = [workload_matrix(m, n, rng, kind) for _ in range(runs)]
    refs = [np.linalg.svd(a, compute_uv=False) for a in mats]
    rows = []
    for name in names:
        kw = kwargs_by_name.get(name, {})
        sweeps = 0
        conv = 0
        srt = 0
        err = 0.0
        decay: list[float] = []
        for a, ref in zip(mats, refs):
            r = jacobi_svd(a, ordering=name, options=options, **kw)
            sweeps += r.sweeps
            conv += int(r.converged)
            srt += int(r.emerged_sorted is not None)
            scale = ref[0] if ref[0] > 0 else 1.0
            err = max(err, float(np.max(np.abs(r.sigma - ref)) / scale))
            if len(r.history) > len(decay):
                decay = [h.off_norm for h in r.history]
        rows.append(
            ConvergenceRow(
                ordering=name,
                n=n,
                sweeps=sweeps / runs,
                converged_runs=conv,
                runs=runs,
                max_sigma_err=err,
                sorted_runs=srt,
                off_decay=decay,
            )
        )
    return rows
