"""Shared helpers for tests (importable as ``tests.helpers``)."""

from __future__ import annotations

import numpy as np


def make_graded(m: int, n: int, rng: np.random.Generator, lo: float = 1e-4) -> np.ndarray:
    """Matrix with geometrically graded, well separated singular values."""
    u, _ = np.linalg.qr(rng.standard_normal((m, n)))
    v, _ = np.linalg.qr(rng.standard_normal((n, n)))
    s = np.geomspace(1.0, lo, n)
    return (u * s) @ v.T
