"""Unit tests for the schedule representation."""

import pytest

from repro.orderings.schedule import (
    Move,
    Schedule,
    Step,
    apply_moves,
    compose_moves,
    permutation_of_sweep,
)


class TestMove:
    def test_level_local(self):
        assert Move(0, 1).level == 0
        assert Move(0, 1).is_local

    def test_level_neighbour(self):
        assert Move(1, 2).level == 1  # leaf 0 -> leaf 1
        assert not Move(1, 2).is_local

    def test_level_far(self):
        assert Move(0, 7).level == 2  # leaf 0 -> leaf 3
        assert Move(0, 15).level == 3


class TestStepValidation:
    def test_accepts_disjoint_pairs(self):
        Step(pairs=((0, 1), (2, 3)))

    def test_rejects_degenerate_pair(self):
        with pytest.raises(ValueError):
            Step(pairs=((1, 1),))

    def test_rejects_overlapping_pairs(self):
        with pytest.raises(ValueError):
            Step(pairs=((0, 1), (1, 2)))

    def test_rejects_non_permutation_moves(self):
        with pytest.raises(ValueError):
            Step(pairs=(), moves=(Move(0, 1),))  # 1 never vacated

    def test_accepts_swap(self):
        Step(pairs=(), moves=(Move(0, 1), Move(1, 0)))

    def test_rejects_duplicate_sources(self):
        with pytest.raises(ValueError):
            Step(pairs=(), moves=(Move(0, 1), Move(0, 2)))

    def test_remote_pairs_detection(self):
        s = Step(pairs=((0, 1), (1 + 1, 4)))
        assert s.remote_pairs == ((2, 4),)

    def test_message_moves_excludes_local(self):
        s = Step(pairs=(), moves=(Move(0, 1), Move(1, 0), Move(2, 4), Move(4, 2)))
        assert all(m.level > 0 for m in s.message_moves)
        assert len(s.message_moves) == 2


class TestApplyMoves:
    def test_identity_without_moves(self):
        assert apply_moves([5, 6, 7], []) == [5, 6, 7]

    def test_swap(self):
        assert apply_moves([5, 6], [Move(0, 1), Move(1, 0)]) == [6, 5]

    def test_three_cycle(self):
        out = apply_moves([1, 2, 3], [Move(0, 1), Move(1, 2), Move(2, 0)])
        assert out == [3, 1, 2]


class TestComposeMoves:
    def test_chained_travel_is_direct(self):
        first = (Move(0, 1), Move(1, 0))
        second = (Move(1, 2), Move(2, 1))
        net = compose_moves(first, second)
        applied = apply_moves([10, 20, 30], net)
        # sequential application for comparison
        ref = apply_moves(apply_moves([10, 20, 30], first), second)
        assert applied == ref

    def test_cancellation_drops_identity(self):
        first = (Move(0, 1), Move(1, 0))
        net = compose_moves(first, first)
        assert net == ()

    def test_disjoint_union(self):
        first = (Move(0, 1), Move(1, 0))
        second = (Move(4, 5), Move(5, 4))
        net = compose_moves(first, second)
        assert len(net) == 4

    def test_matches_sequential_on_random_perms(self):
        import random

        rnd = random.Random(7)
        for _ in range(50):
            n = 8
            slots = list(range(n))
            p1 = rnd.sample(slots, n)
            p2 = rnd.sample(slots, n)
            m1 = tuple(Move(s, d) for s, d in zip(slots, p1) if s != d)
            m2 = tuple(Move(s, d) for s, d in zip(slots, p2) if s != d)
            data = [rnd.random() for _ in range(n)]
            net = compose_moves(m1, m2)
            assert apply_moves(data, net) == apply_moves(apply_moves(data, m1), m2)


class TestSchedule:
    def _simple(self) -> Schedule:
        steps = [
            Step(pairs=((0, 1), (2, 3)), moves=(Move(1, 2), Move(2, 1))),
            Step(pairs=((0, 1), (2, 3))),
        ]
        return Schedule(n=4, steps=steps, name="t")

    def test_trace_tracks_layout(self):
        s = self._simple()
        traced = list(s.trace())
        assert traced[0][1] == [(1, 2), (3, 4)]
        assert traced[1][1] == [(1, 3), (2, 4)]

    def test_final_layout(self):
        assert self._simple().final_layout() == [1, 3, 2, 4]

    def test_rotation_steps_counts_only_pair_steps(self):
        steps = [
            Step(pairs=((0, 1),)),
            Step(pairs=(), moves=(Move(0, 1), Move(1, 0))),
            Step(pairs=((0, 1),)),
        ]
        s = Schedule(n=2, steps=steps)
        assert s.n_steps == 3
        assert s.n_rotation_steps == 2

    def test_level_histogram(self):
        s = self._simple()
        assert s.level_histogram() == {1: 2}

    def test_total_messages(self):
        assert self._simple().total_messages() == 2

    def test_permutation_of_sweep(self):
        perm = permutation_of_sweep(self._simple())
        assert perm == [0, 2, 1, 3]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Schedule(n=2, steps=[Step(pairs=((0, 5),))])

    def test_custom_layout_trace(self):
        s = self._simple()
        pairs = s.index_pairs(layout=[10, 20, 30, 40])
        assert pairs[0] == [(10, 20), (30, 40)]
