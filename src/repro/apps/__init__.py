"""Downstream applications exercising the public SVD API."""

from .lowrank import LowRankApproximation, PCAResult, pca, truncated_svd
from .lstsq import LstsqResult, lstsq, pinv

__all__ = [
    "LowRankApproximation",
    "LstsqResult",
    "PCAResult",
    "lstsq",
    "pca",
    "pinv",
    "truncated_svd",
]
