"""Name-based ordering registry used by the public API and the harness."""

from __future__ import annotations

from collections.abc import Callable

from .base import Ordering
from .fattree import FatTreeOrdering
from .hybrid import HybridOrdering
from .llb import LLBOrdering
from .oddeven import OddEvenOrdering
from .ringnew import RingOrdering
from .roundrobin import RoundRobinOrdering

__all__ = ["ORDERINGS", "make_ordering", "ordering_names"]


def _ring(n: int, **kw: object) -> Ordering:
    return RingOrdering(n, modified=False)


def _ring_modified(n: int, **kw: object) -> Ordering:
    return RingOrdering(n, modified=True)


ORDERINGS: dict[str, Callable[..., Ordering]] = {
    "round_robin": lambda n, **kw: RoundRobinOrdering(n),
    "odd_even": lambda n, **kw: OddEvenOrdering(n),
    "ring_new": _ring,
    "ring_modified": _ring_modified,
    "fat_tree": lambda n, **kw: FatTreeOrdering(n),
    "llb": lambda n, **kw: LLBOrdering(n, **kw),
    "hybrid": lambda n, **kw: HybridOrdering(n, **kw),
}


def ordering_names() -> list[str]:
    """All registered ordering names."""
    return sorted(ORDERINGS)


def make_ordering(name: str, n: int, **kwargs: object) -> Ordering:
    """Instantiate an ordering by name for ``n`` columns.

    ``kwargs`` are forwarded to the ordering constructor (e.g.
    ``n_groups`` for ``hybrid``, ``skip_duplicate`` for ``llb``).
    """
    try:
        factory = ORDERINGS[name]
    except KeyError:
        raise ValueError(
            f"unknown ordering {name!r}; available: {', '.join(ordering_names())}"
        ) from None
    return factory(n, **kwargs)
