"""TAB-SWEEP — the Lee-Luk-Boley comparison of Section 3.

Quantifies the two disadvantages the paper lists: the variable rotation
gap under forward/backward alternation, and the extra half-sweep paid
when the sweep count must be even.
"""

import numpy as np

from repro.orderings import FatTreeOrdering, LLBOrdering, meeting_gap_profile
from repro.svd import jacobi_svd


def test_rotation_gap_spread(benchmark):
    def profiles():
        return (
            meeting_gap_profile(FatTreeOrdering(32), n_sweeps=4),
            meeting_gap_profile(LLBOrdering(32), n_sweeps=4),
        )

    fat, llb = benchmark(profiles)
    print(f"\nrotation-gap profile  fat_tree: {fat}")
    print(f"rotation-gap profile  llb     : {llb}")
    assert fat["spread"] == 0.0
    assert llb["spread"] > 0.0


def test_sweep_counts_fat_vs_llb(benchmark):
    def run():
        rng = np.random.default_rng(5)
        fat_sweeps, llb_sweeps, llb_even = [], [], []
        for _ in range(4):
            a = rng.standard_normal((48, 32))
            fat_sweeps.append(jacobi_svd(a, ordering="fat_tree").sweeps)
            s = jacobi_svd(a, ordering="llb").sweeps
            llb_sweeps.append(s)
            # disadvantage 2: if termination must land on an even sweep
            # (so the vectors are home), odd convergence costs one more
            llb_even.append(s if s % 2 == 0 else s + 1)
        return np.mean(fat_sweeps), np.mean(llb_sweeps), np.mean(llb_even)

    fat_mean, llb_mean, llb_even_mean = benchmark(run)
    print(f"\nmean sweeps: fat_tree={fat_mean} llb={llb_mean} "
          f"llb(home layout)={llb_even_mean}")
    # the fat-tree ordering never pays the parity penalty
    assert llb_even_mean >= llb_mean
    assert fat_mean <= llb_even_mean
