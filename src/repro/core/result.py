"""Result types for the SVD drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.events import FaultEvent

__all__ = ["SVDResult", "SweepRecord"]


@dataclass
class SweepRecord:
    """Per-sweep convergence diagnostics."""

    sweep: int
    off_norm: float
    max_rel_gamma: float
    rotations: int
    skipped: int


@dataclass
class SVDResult:
    """Outcome of a one-sided Jacobi SVD.

    ``u`` has orthonormal columns spanning the range of ``a`` (zero
    columns past the numerical rank ``rank``), ``sigma`` is nonincreasing
    and ``v`` orthogonal, with ``a ~ u @ diag(sigma) @ v.T``.
    ``sigma_by_slot`` preserves the physical slot order at termination —
    the quantity the paper's sorted-output claims are about — while
    ``sigma`` is canonically sorted for consumers.

    ``converged`` must be checked by callers that care about accuracy:
    a ``False`` value means the sweep budget ran out (or fault recovery
    was exhausted) and the factors are a partial decomposition.  The
    drivers additionally emit a
    :class:`~repro.util.errors.ConvergenceWarning` in that case, so the
    condition is never silent.  Under a fault plan, ``fault_events``
    carries the full injection/recovery audit trail and ``watchdog`` any
    convergence-stall diagnosis.
    """

    u: np.ndarray
    sigma: np.ndarray
    v: np.ndarray
    rank: int
    converged: bool
    sweeps: int
    rotations: int
    sigma_by_slot: np.ndarray
    emerged_sorted: str | None
    history: list[SweepRecord] = field(default_factory=list)
    fault_events: list["FaultEvent"] = field(default_factory=list)
    watchdog: str | None = None

    @property
    def sweeps_used(self) -> int:
        """Sweeps actually executed (alias of ``sweeps``, named for the
        convergence summary: compare against the driver's ``max_sweeps``)."""
        return self.sweeps

    def fault_summary(self) -> dict[str, int]:
        """Fault/recovery event counts per action (empty when fault-free)."""
        from ..faults.events import summarize_events

        return summarize_events(self.fault_events)

    def summary(self) -> str:
        """One-line convergence/fault summary for logs and CLIs."""
        state = "converged" if self.converged else "NOT converged"
        line = (f"{state} in {self.sweeps_used} sweeps, "
                f"rank {self.rank}, {self.rotations} rotations")
        if self.fault_events:
            counts = self.fault_summary()
            shown = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            line += f"; fault events: {shown}"
        if self.watchdog:
            line += f"; watchdog: {self.watchdog}"
        return line

    def reconstruct(self) -> np.ndarray:
        """``u @ diag(sigma) @ v.T`` (``u``, ``sigma``, ``v`` share the
        canonical nonincreasing order)."""
        return (self.u * self.sigma) @ self.v.T

    def reconstruction_error(self, a: np.ndarray) -> float:
        """Relative Frobenius reconstruction error against ``a``."""
        denom = np.linalg.norm(a) or 1.0
        return float(np.linalg.norm(a - self.reconstruct()) / denom)
