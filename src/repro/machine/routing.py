"""Message routing and contention accounting on tree topologies.

For one communication phase (the moves of a schedule step) the router
charges every message its tree path and aggregates per-channel loads.
The *contention factor* of a channel is ``load / capacity``; the phase's
contention factor is the maximum over channels — exactly the quantity
the paper's Section 5 argues the hybrid ordering keeps at <= 1 on skinny
fat-trees while the fat-tree ordering oversubscribes the skinny levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from .topology import Channel, TreeTopology

__all__ = ["MessagePhase", "remap_leaves", "route_phase"]


@dataclass
class MessagePhase:
    """Routing outcome of one communication phase."""

    n_messages: int
    channel_loads: dict[Channel, int]
    max_level: int
    level_message_counts: dict[int, int]
    contention: float
    hot_channel: Channel | None

    @property
    def is_contention_free(self) -> bool:
        """No channel oversubscribed (at most ``capacity`` messages each)."""
        return self.contention <= 1.0


def remap_leaves(
    messages: Iterable[tuple[int, int]], host_of_leaf
) -> list[tuple[int, int]]:
    """Apply a degraded-mode host map to ``(src_leaf, dst_leaf)`` pairs.

    After a crash, the dead leaf's work is rehosted on its sibling;
    messages addressed to a remapped leaf terminate at its host.  Pairs
    that collapse onto one physical leaf become local (and are then
    skipped by :func:`route_phase`).
    """
    return [(int(host_of_leaf[s]), int(host_of_leaf[d])) for s, d in messages]


def route_phase(
    topology: TreeTopology, messages: Iterable[tuple[int, int]]
) -> MessagePhase:
    """Route ``(src_leaf, dst_leaf)`` messages and account channel loads.

    All messages of a phase are assumed simultaneous (the synchronous
    step model of systolic Jacobi implementations).
    """
    loads: dict[Channel, int] = {}
    level_counts: dict[int, int] = {}
    n = 0
    max_level = 0
    for src, dst in messages:
        if src == dst:
            continue
        n += 1
        r = topology.comm_level(src, dst)
        max_level = max(max_level, r)
        level_counts[r] = level_counts.get(r, 0) + 1
        for ch in topology.path(src, dst):
            loads[ch] = loads.get(ch, 0) + 1
    contention = 0.0
    hot = None
    for ch, load in loads.items():
        f = load / topology.capacity(ch.level)
        if f > contention:
            contention = f
            hot = ch
    return MessagePhase(
        n_messages=n,
        channel_loads=loads,
        max_level=max_level,
        level_message_counts=dict(sorted(level_counts.items())),
        contention=contention,
        hot_channel=hot,
    )
