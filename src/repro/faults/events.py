"""Fault events: the audit trail of every injection and recovery action.

Every time a fault fires and every time the machine reacts (retry,
dedup, rollback, remap, fallback, ...) one immutable
:class:`FaultEvent` is appended to the injector's log and attached to
the step's :class:`~repro.machine.stats.StepRecord`.  The acceptance
bar for the chaos campaign is that *every* injected fault shows up here
with its recovery action and the simulated time it cost — a recovery
that is not charged in the cost model did not happen.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

__all__ = ["FAULT_ACTIONS", "FaultEvent", "summarize_events"]

#: every recovery/reaction an event may record
FAULT_ACTIONS = (
    "injected",        # the fault itself fired
    "retry",           # sender timed out and retransmitted
    "dedup",           # receiver discarded a duplicate by sequence number
    "delivered-late",  # delayed original arrived and was accepted/deduped
    "outage-wait",     # sender backed off until the link window reopened
    "rollback",        # sweep restored from checkpoint
    "remap",           # dead leaf's columns rehosted on its sibling
    "fallback",        # block kernel fell down the gram->batched->reference chain
    "watchdog",        # convergence watchdog flagged a stall/escalation
    "corrupted",       # silent payload corruption was applied
    "unrecoverable",   # recovery budget exhausted; run failed explicitly
)


@dataclass(frozen=True)
class FaultEvent:
    """One fault occurrence or recovery action, fully located and priced."""

    kind: str                  # fault kind, or "recovery" for pure reactions
    action: str                # one of FAULT_ACTIONS
    sweep: int
    step: int                  # 1-based step number; 0 = sweep boundary
    attempt: int = 0
    src: int | None = None
    dst: int | None = None
    leaf: int | None = None
    level: int | None = None
    time_charged: float = 0.0
    detail: str = ""

    def describe(self) -> str:
        where = f"sweep {self.sweep} step {self.step}"
        if self.src is not None and self.dst is not None:
            where += f" link {self.src}->{self.dst}"
        elif self.leaf is not None:
            where += f" leaf {self.leaf}"
        tail = f" ({self.detail})" if self.detail else ""
        return f"{self.kind}/{self.action} @ {where}: +{self.time_charged:.1f}{tail}"


def summarize_events(events: Iterable[FaultEvent]) -> dict[str, int]:
    """Count events per recovery action (for result summaries and CLI)."""
    return dict(Counter(ev.action for ev in events))
