"""A Lee-Luk-Boley style fat-tree ordering baseline (reference [8]).

The paper compares its fat-tree ordering against the one of Lee, Luk and
Boley (RPI report 91-33), whose defining behavioural traits it names in
Section 3:

1. after one (forward) sweep the indices are permuted, so the singular
   vectors end up in the "wrong" processors; the cure is to alternate
   forward and backward sweeps (the backward sweep is the forward sweep
   performed in reverse order), restoring the layout after each pair;
2. the first rotation of each backward sweep duplicates the last
   rotation of the preceding forward sweep (it may be omitted);
3. the number of steps between two rotations of the same pair is
   variable rather than constant, which can slow convergence, and on
   average an extra half-sweep is wasted when the sweep count must be
   even.

Report [8] itself is not available to us, so this module implements a
*behavioural stand-in*: a fat-tree merge ordering that uses the cheaper
module exits (Fig 4(b)) and skips the end-of-stage homing traffic — its
communication volume is slightly lower than the paper's ordering, which
is why the paper calls the costs "about the same" — and therefore ends
every forward sweep with a non-trivial index permutation.  The backward
sweep is derived algebraically: it replays the forward rotations in
reverse order while rewinding the forward moves, so a forward/backward
pair restores the original layout exactly.  All three criticised traits
are reproduced and asserted in the test-suite.
"""

from __future__ import annotations

from ..util.validation import require_power_of_two
from .base import Ordering
from .fourblock import basic_module_fragments, merge_stage_fragments
from .schedule import Move, Schedule, Step, compose_moves
from .twoblock import StepFragment, merge_parallel

__all__ = ["LLBOrdering", "llb_forward_sweep", "llb_backward_sweep"]


def llb_forward_sweep(n: int) -> Schedule:
    """Forward sweep: fat-tree merge procedure without homing traffic."""
    require_power_of_two(n, "n", minimum=4)
    n_leaves = n // 2
    frags: list[StepFragment] = merge_parallel(
        *[basic_module_fragments(2 * gi, 2 * gi + 1, variant="b")
          for gi in range(n_leaves // 2)]
    )
    size = 2
    while size < n_leaves:
        pre_all: list[Move] = []
        stage_lists = []
        for start in range(0, n_leaves, 2 * size):
            left = list(range(start, start + size))
            right = list(range(start + size, start + 2 * size))
            pre, fl = merge_stage_fragments(left, right, homing=False)
            pre_all.extend(pre)
            stage_lists.append(fl)
        frags.append(StepFragment(pairs=(), moves=tuple(pre_all)))
        frags = frags + merge_parallel(*stage_lists)
        size *= 2
    steps = [Step(pairs=f.pairs, moves=f.moves) for f in frags]
    return Schedule(n=n, steps=steps, name=f"llb_forward(n={n})")


def _invert(moves: tuple[Move, ...]) -> tuple[Move, ...]:
    return tuple(Move(m.dst, m.src) for m in moves)


def llb_backward_sweep(n: int, skip_duplicate: bool = True) -> Schedule:
    """Backward sweep: the forward sweep performed in reverse order.

    Starting from the forward sweep's permuted layout, each backward step
    first rewinds the forward move phase that followed the corresponding
    forward step, then re-rotates that step's slot pairs; the pair of
    sweeps therefore restores the original layout.  With
    ``skip_duplicate`` (the paper's recommendation) the backward sweep
    omits its first rotation — the one that would repeat the forward
    sweep's final rotation — by fusing the first two rewind phases.
    """
    fwd = llb_forward_sweep(n)
    T = fwd.n_steps
    # the backward sweep must rewind each forward move phase *before*
    # re-rotating the corresponding step's pairs; since a Step applies
    # moves after its rotations, the rewind of forward step k's moves is
    # carried by the preceding backward step, and the very first rewind
    # becomes a move-only step (extra communication the paper's own
    # ordering avoids)
    if skip_duplicate:
        lead = compose_moves(_invert(fwd.steps[T - 1].moves),
                             _invert(fwd.steps[T - 2].moves))
        first_k = T - 2
    else:
        lead = _invert(fwd.steps[T - 1].moves)
        first_k = T - 1
    steps: list[Step] = [Step(pairs=(), moves=lead)]
    for k in range(first_k, -1, -1):
        moves = _invert(fwd.steps[k - 1].moves) if k > 0 else ()
        steps.append(Step(pairs=fwd.steps[k].pairs, moves=moves))
    sched = Schedule(n=n, steps=steps, name=f"llb_backward(n={n})")
    # contract consumed by repro.verify: this sweep deliberately omits the
    # rotation that would duplicate the preceding sweep's final rotation
    # (trait 2 above), so those pairs are exempt from all-pairs coverage
    sched.notes["skips_duplicate_rotation"] = skip_duplicate
    return sched


class LLBOrdering(Ordering):
    """Alternating forward/backward fat-tree ordering (the [8] baseline)."""

    name = "llb"

    def __init__(self, n: int, skip_duplicate: bool = True):
        require_power_of_two(n, "n", minimum=4)
        super().__init__(n)
        self.skip_duplicate = skip_duplicate

    def sweep_key(self, sweep_index: int) -> int:
        return sweep_index % 2

    def build_sweep(self, sweep_index: int) -> Schedule:
        if sweep_index % 2 == 0:
            return llb_forward_sweep(self.n)
        return llb_backward_sweep(self.n, self.skip_duplicate)
