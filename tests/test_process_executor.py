"""Process-pool step executor: shared-memory protocol and bit-parity.

The headline property extends the threads contract one isolation level
up: the ``processes`` backend is **bit-identical** to ``serial`` for any
worker count, on every block kernel and ordering — chunks are dispatched
by bounds against shared-memory views, each worker runs the same
numpy/BLAS build on its own disjoint slice, and results merge in chunk
order (see :mod:`repro.parallel.executor`).

Worker-side task functions used here are module level on purpose: the
pool pickles them by reference, exactly like the kernel tasks.
"""

import os
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.parallel import executor as executor_module
from repro.parallel.executor import (
    ProcessStepExecutor,
    StepExecutor,
    WorkerCrashError,
    executor_availability,
    resolve_executor,
    shutdown_process_pools,
    unknown_executor_message,
)


def _span(lo, hi):
    """run_chunks probe: report the bounds a worker received."""
    return (lo, hi, os.getpid())


def _crash(lo, hi):
    """run_chunks probe: kill the worker process outright."""
    os._exit(13)


def _scale_task(arrays, lo, hi, factor):
    """run_shared probe: scale an owned slice in shared memory."""
    arrays["x"][lo:hi] *= factor
    return float(arrays["x"][lo:hi].sum())


class TestArena:
    def test_adopt_copies_into_a_shared_view(self):
        with ProcessStepExecutor(2) as ex:
            a = np.arange(12.0)
            view = ex.adopt("x", a)
            np.testing.assert_array_equal(view, a)
            assert ex._locate(view) is not None
            assert ex._locate(a) is None

    def test_scratch_is_reused_and_grows(self):
        with ProcessStepExecutor(2) as ex:
            s1 = ex.scratch("w", (4, 4))
            s1[...] = 7.0
            s2 = ex.scratch("w", (4, 4))
            assert s1 is s2
            s3 = ex.scratch("w", (16, 16))  # forces a larger segment
            assert s3.shape == (16, 16)

    def test_reclaim_survives_close(self):
        ex = ProcessStepExecutor(2)
        view = ex.adopt("x", np.arange(6.0))
        out = ex.reclaim(view)
        ex.close()
        np.testing.assert_array_equal(out, np.arange(6.0))
        assert ex._locate(out) is None  # private memory now

    def test_locate_handles_offset_slices(self):
        with ProcessStepExecutor(2) as ex:
            view = ex.adopt("x", np.arange(24.0).reshape(4, 6))
            key, offset = ex._locate(view[2:])
            assert key == "x"
            assert offset == 2 * 6 * 8

    def test_close_is_idempotent_and_frees_the_arena(self):
        ex = ProcessStepExecutor(2)
        ex.adopt("x", np.zeros(4))
        ex.close()
        ex.close()
        assert ex._arena == {}


class TestDispatch:
    def test_results_arrive_in_chunk_order(self):
        with ProcessStepExecutor(3) as ex:
            out = ex.run_chunks(10, _span)
        assert [(lo, hi) for lo, hi, _ in out] == \
            StepExecutor.chunk_bounds(10, 3)

    def test_chunks_actually_run_in_other_processes(self):
        with ProcessStepExecutor(2) as ex:
            out = ex.run_chunks(8, _span)
        assert all(pid != os.getpid() for _, _, pid in out)

    def test_single_chunk_runs_in_the_parent(self):
        # one chunk is the whole stage: no IPC, works on private arrays
        with ProcessStepExecutor(1) as ex:
            out = ex.run_chunks(8, _span)
        assert out == [(0, 8, os.getpid())]

    def test_run_shared_writes_land_in_adopted_memory(self):
        with ProcessStepExecutor(2) as ex:
            x = ex.adopt("x", np.arange(10.0))
            sums = ex.run_shared(10, _scale_task, {"x": x}, factor=3.0)
            np.testing.assert_array_equal(x, 3.0 * np.arange(10.0))
            assert len(sums) == 2

    def test_run_shared_borrows_non_arena_arrays(self):
        # the documented slow path: a never-adopted array round-trips
        # through a temporary segment and comes back mutated
        with ProcessStepExecutor(2) as ex:
            x = np.arange(10.0)
            ex.run_shared(10, _scale_task, {"x": x}, factor=2.0)
            np.testing.assert_array_equal(x, 2.0 * np.arange(10.0))
            assert all(not k.startswith("__borrow_") for k in ex._arena)

    def test_dead_worker_raises_crash_error_and_pool_recovers(self):
        with ProcessStepExecutor(2) as ex:
            with pytest.raises(WorkerCrashError, match="worker process died"):
                ex.run_chunks(8, _crash)
            # the broken pool was discarded; the next dispatch works
            out = ex.run_chunks(8, _span)
            assert [(lo, hi) for lo, hi, _ in out] == \
                StepExecutor.chunk_bounds(8, 2)

    def test_shutdown_process_pools_is_safe_anytime(self):
        with ProcessStepExecutor(2) as ex:
            ex.run_chunks(4, _span)
            shutdown_process_pools()
            out = ex.run_chunks(4, _span)  # pools re-created lazily
            assert [(lo, hi) for lo, hi, _ in out] == \
                StepExecutor.chunk_bounds(4, 2)


class TestResolutionErgonomics:
    def test_processes_resolve_on_this_host(self):
        ex = resolve_executor("processes", workers=2)
        assert ex.name == "processes" and ex.workers == 2
        ex.close()

    def test_unknown_name_lists_broken_optional_backends(self, monkeypatch):
        def boom():
            raise ImportError("no POSIX shared memory on this host")

        monkeypatch.setitem(executor_module._PROBES, "processes", boom)
        msg = unknown_executor_message("gpu")
        assert "unknown executor 'gpu'" in msg
        assert "available: serial, threads" in msg
        assert "processes (ImportError: no POSIX shared memory" in msg
        with pytest.raises(ValueError, match="no POSIX shared memory"):
            resolve_executor("gpu")

    def test_registered_but_unavailable_reports_the_probe_failure(
            self, monkeypatch):
        def boom():
            raise OSError("sem_open blocked by seccomp")

        monkeypatch.setitem(executor_module._PROBES, "processes", boom)
        with pytest.raises(ValueError,
                           match="unavailable on this host.*sem_open"):
            resolve_executor("processes")

    def test_availability_reports_every_backend(self):
        status = executor_availability()
        assert set(status) == {"serial", "threads", "processes"}
        assert status["serial"] is None
        assert status["threads"] is None

    def test_options_validation_uses_the_catalogue(self):
        from repro.blockjacobi import BlockJacobiOptions

        with pytest.raises(ValueError, match="unknown executor"):
            BlockJacobiOptions(block_size=2, executor="quantum")


def _run(a, ordering, kernel, executor, workers=None):
    from repro import svd

    # block_size 2 keeps 8 block columns (the hybrid ordering's minimum)
    # while the matrices stay small enough for a process-pool test matrix
    return svd(a, ordering=ordering, block_size=2, kernel=kernel,
               executor=executor, workers=workers)


class TestBitIdentity:
    """processes == serial, bit for bit, across the whole matrix of knobs."""

    @pytest.mark.parametrize("ordering", ["fat_tree", "ring_new", "hybrid"])
    @pytest.mark.parametrize("kernel", ["reference", "batched", "gram"])
    def test_processes_match_serial_across_worker_counts(
            self, ordering, kernel):
        rng = np.random.default_rng(42)
        a = rng.standard_normal((24, 16))
        ref = _run(a, ordering, kernel, "serial")
        for workers in (1, 2, 4):
            r = _run(a, ordering, kernel, "processes", workers)
            assert np.array_equal(ref.sigma, r.sigma), (ordering, kernel,
                                                        workers)
            assert np.array_equal(ref.u, r.u)
            assert np.array_equal(ref.v, r.v)
            assert ref.sweeps == r.sweeps
            assert ref.rotations == r.rotations

    def test_machine_path_matches_serial(self):
        from repro import parallel_svd

        rng = np.random.default_rng(7)
        a = rng.standard_normal((24, 16))
        r0, _ = parallel_svd(a, topology="cm5", ordering="hybrid",
                             block_size=2, executor="serial")
        r1, _ = parallel_svd(a, topology="cm5", ordering="hybrid",
                             block_size=2, executor="processes", workers=3)
        assert np.array_equal(r0.sigma, r1.sigma)
        assert np.array_equal(r0.u, r1.u)
        assert np.array_equal(r0.v, r1.v)

    def test_svd_batch_chunks_over_processes(self):
        from repro import svd_batch

        rng = np.random.default_rng(5)
        stack = rng.standard_normal((5, 12, 8))
        ref = svd_batch(stack, ordering="ring_new", kernel="gram",
                        block_size=2)
        r = svd_batch(stack, ordering="ring_new", kernel="gram",
                      block_size=2, executor="processes", workers=3)
        assert r.n_items == ref.n_items
        for item_ref, item in zip(ref, r):
            assert np.array_equal(item_ref.sigma, item.sigma)
            assert np.array_equal(item_ref.u, item.u)
            assert np.array_equal(item_ref.v, item.v)
        assert ref.sweeps_histogram == r.sweeps_histogram

    def test_sanitized_processes_run_is_clean(self):
        from repro.blockjacobi import BlockJacobiOptions, block_jacobi_svd

        rng = np.random.default_rng(3)
        a = rng.standard_normal((24, 16))
        opts = BlockJacobiOptions(block_size=4, kernel="gram",
                                  executor="processes", workers=2,
                                  sanitize=True)
        ref = block_jacobi_svd(
            a, options=BlockJacobiOptions(block_size=4, kernel="gram"))
        r = block_jacobi_svd(a, options=opts)
        assert np.array_equal(ref.sigma, r.sigma)

    def test_fault_recovery_matches_serial(self):
        from repro import parallel_svd
        from repro.faults.campaign import CampaignCase, single_fault_plan
        from repro.util.errors import ConvergenceWarning

        n, b = 16, 2
        plan = single_fault_plan(
            CampaignCase("ring_new", "crash", n, "gram", b))
        rng = np.random.default_rng(99)
        a = rng.standard_normal((24, n))
        results = []
        for executor, workers in (("serial", None), ("processes", 2)):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ConvergenceWarning)
                r, rep = parallel_svd(
                    a, topology="perfect", ordering="ring_new",
                    block_size=b, executor=executor, workers=workers,
                    fault_plan=plan)
            results.append((r, rep))
        (r0, rep0), (r1, rep1) = results
        assert np.array_equal(r0.sigma, r1.sigma)
        assert np.array_equal(r0.u, r1.u)
        assert np.array_equal(r0.v, r1.v)
        assert rep0.rollbacks == rep1.rollbacks


class TestDeterminism:
    """Same seed, same bits — however many times and processes run it."""

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**32 - 1),
           ordering=st.sampled_from(["fat_tree", "ring_new"]))
    def test_processes_run_is_reproducible(self, seed, ordering):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((16, 16))
        r1 = _run(a, ordering, "gram", "processes", 2)
        r2 = _run(a, ordering, "gram", "processes", 2)
        assert np.array_equal(r1.sigma, r2.sigma)
        assert np.array_equal(r1.u, r2.u)
        assert np.array_equal(r1.v, r2.v)
        assert r1.sweeps == r2.sweeps
