"""Abstract base for parallel Jacobi orderings.

An :class:`Ordering` is a factory of per-sweep :class:`~repro.orderings.schedule.Schedule`
objects.  Most orderings use the same schedule every sweep; the
Lee-Luk-Boley baseline alternates a forward and a backward schedule,
which is exactly the behaviour the paper criticises.
"""

from __future__ import annotations

import abc
from functools import lru_cache

from .schedule import Schedule, permutation_of_sweep

__all__ = ["Ordering"]


class Ordering(abc.ABC):
    """A parallel Jacobi ordering over ``n`` logical columns.

    Subclasses implement :meth:`build_sweep`; the base class provides
    caching, the sweep permutation, and the restoration period (the number
    of consecutive sweeps after which every column is back in its home
    slot — 1 for the fat-tree ordering, 2 for the ring orderings).
    """

    #: short machine-readable name used by the registry and reports
    name: str = "ordering"

    def __init__(self, n: int):
        self.n = n
        self._sweep_cache: dict[int, Schedule] = {}

    @abc.abstractmethod
    def build_sweep(self, sweep_index: int) -> Schedule:
        """Construct the schedule for the given (0-based) sweep."""

    def sweep(self, sweep_index: int = 0) -> Schedule:
        """Cached schedule for a sweep; most orderings are sweep-invariant."""
        key = self.sweep_key(sweep_index)
        if key not in self._sweep_cache:
            self._sweep_cache[key] = self.build_sweep(key)
        return self._sweep_cache[key]

    def sweep_key(self, sweep_index: int) -> int:
        """Collapse equivalent sweep indices (default: all sweeps identical)."""
        return 0

    @property
    def n_steps(self) -> int:
        """Steps per sweep."""
        return self.sweep(0).n_steps

    def sweep_permutation(self, sweep_index: int = 0) -> list[int]:
        """Slot permutation applied by one sweep (see ``permutation_of_sweep``)."""
        return permutation_of_sweep(self.sweep(sweep_index))

    @lru_cache(maxsize=None)
    def restoration_period(self, max_period: int = 16) -> int:
        """Smallest k such that k consecutive sweeps restore the layout.

        Returns ``0`` if no period <= ``max_period`` exists (pathological;
        none of the implemented orderings hit this).
        """
        layout = list(range(self.n))
        for k in range(1, max_period + 1):
            layout = self.sweep(k - 1).final_layout(layout)
            if layout == list(range(self.n)):
                return k
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"
