"""Convergence measures for the one-sided Jacobi iteration.

The natural progress measure is the off-diagonal mass of the implicit
Gram matrix: ``off(X)^2 = sum_{i<j} (x_i . x_j)^2``.  With a systematic
ordering the iteration converges ultimately *quadratically* — off(X)
after a sweep is O(off(X)^2 / gap) — which the experiment harness
verifies on matrices with well-separated spectra (Section 1's claim,
citing Wilkinson).
"""

from __future__ import annotations

import numpy as np

__all__ = ["off_norm", "relative_off", "quadratic_rate_ok"]


def off_norm(X: np.ndarray) -> float:
    """Frobenius norm of the strict off-diagonal of the Gram matrix of X."""
    g = X.T @ X
    g = g - np.diag(np.diag(g))
    return float(np.linalg.norm(g))


def relative_off(X: np.ndarray) -> float:
    """off(X) scaled by the Gram diagonal, dimensionless in [0, ~1]."""
    g = X.T @ X
    d = np.sqrt(np.outer(np.diag(g), np.diag(g)))
    d[d == 0.0] = 1.0
    r = g / d
    r = r - np.diag(np.diag(r))
    return float(np.linalg.norm(r))


def quadratic_rate_ok(off_history: list[float], floor: float = 1e-13) -> bool:
    """Heuristic check of ultimately *superlinear* (quadratic-type)
    convergence.

    The exact quadratic constant depends on the spectral gaps, so instead
    of testing ``off' <= C off^2`` for a fixed C we look for superlinear
    acceleration in the normalised tail: some late sweep must satisfy
    ``e_{k+1} <= e_k^1.5`` with ``e_k = off_k / off_1 < 0.1`` (a linear
    rate keeps the exponent at 1).  Histories that converge within two
    measurable sweeps pass trivially.
    """
    vals = [v for v in off_history if v > floor]
    if len(vals) < 3:
        return True  # converged too fast to measure; fine
    head = vals[0] if vals[0] > 0 else 1.0
    rel = [v / head for v in vals]
    for a, b in zip(rel, rel[1:]):
        if a < 0.1 and b <= a**1.5:
            return True
    # also accept a terminal cliff: the last measurable value is tiny and
    # the history ended because the remaining off-mass fell below floor
    return rel[-1] < 1e-6 and len(vals) < len(off_history)
