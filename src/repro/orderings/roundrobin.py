"""The Brent-Luk round-robin ordering (Fig 1(b) of the paper).

The classical *circle method*: picture the ``n`` indices in two rows of a
``2 x (n/2)`` array; the index in the top-left corner is pinned and all
other indices rotate one position around the ring formed by the remaining
slots.  Each column of the array is an index pair, so each of the
``n - 1`` steps performs ``n/2`` disjoint rotations, and after ``n - 1``
steps every index is back in its home slot (the moving ring has exactly
``n - 1`` positions).

In slot terms (leaf ``i`` owns slots ``2i`` = top, ``2i + 1`` = bottom)
one step moves::

    bottom_0 -> top_1 -> top_2 -> ... -> top_{m-1}
             -> bottom_{m-1} -> ... -> bottom_1 -> bottom_0

which on a linear array is one send to each neighbour per processor —
the two-way nearest-neighbour traffic the paper contrasts with its
one-directional ring ordering.
"""

from __future__ import annotations

from ..util.validation import require_even
from .base import Ordering
from .schedule import Move, Schedule, Step

__all__ = ["RoundRobinOrdering", "round_robin_sweep"]


def _circle_moves(m: int) -> tuple[Move, ...]:
    """Moves of one circle-method step for ``m`` leaves (slot indices)."""
    moves: list[Move] = []
    # bottom_0 -> top_1
    moves.append(Move(src=1, dst=2))
    # top_i -> top_{i+1} for i = 1 .. m-2
    for i in range(1, m - 1):
        moves.append(Move(src=2 * i, dst=2 * (i + 1)))
    # top_{m-1} -> bottom_{m-1}
    moves.append(Move(src=2 * (m - 1), dst=2 * (m - 1) + 1))
    # bottom_{i} -> bottom_{i-1} for i = m-1 .. 1  (the src list above
    # already used top slots only, so no clashes)
    for i in range(m - 1, 0, -1):
        moves.append(Move(src=2 * i + 1, dst=2 * i - 1))
    return tuple(moves)


def round_robin_sweep(n: int) -> Schedule:
    """One sweep (``n - 1`` steps) of the round-robin ordering."""
    require_even(n)
    m = n // 2
    pairs = tuple((2 * i, 2 * i + 1) for i in range(m))
    moves = _circle_moves(m) if m > 1 else ()
    steps = [Step(pairs=pairs, moves=moves) for _ in range(n - 1)]
    return Schedule(n=n, steps=steps, name=f"round_robin(n={n})")


class RoundRobinOrdering(Ordering):
    """Brent-Luk round-robin ordering; layout restored after every sweep."""

    name = "round_robin"

    def __init__(self, n: int):
        require_even(n)
        super().__init__(n)

    def build_sweep(self, sweep_index: int) -> Schedule:
        return round_robin_sweep(self.n)
