"""Fault-tolerance totality analysis (``FT*``).

The fault subsystem promises that *any* single-leaf crash degrades
gracefully: the dead leaf's columns rehost on its sibling and the sweep
retries (:mod:`repro.faults`).  That promise is exercised by fault
campaigns at a handful of injection points — this pass instead proves it
*totally*, by enumerating every possible single-leaf death for a
topology and asserting each one yields a sound degraded configuration:

``FT001``
    kill each leaf in turn on a fresh machine, run
    :meth:`~repro.machine.simulator.TreeMachine.degrade_leaf`, then
    check the resulting host map
    (:func:`~repro.faults.recovery.host_map_problems`) and re-route
    every move phase of the schedule under the degraded map.  Any
    exception or unsound map is a finding.  Oversubscribed channels are
    *accepted* — degraded mode trades contention-freeness for liveness —
    but the routing must exist.

``FT002``
    the kernel fallback chains
    (:data:`~repro.blockjacobi.kernel.FALLBACK_CHAINS`) must be
    well-formed: every registered kernel has a chain, the chain starts
    at the kernel, walks registered kernels without repetition, ends at
    the ``reference`` solver, and is *suffix-consistent* (the chain of a
    downgraded kernel is the tail of the chain that downgraded to it) —
    otherwise a breakdown could downgrade forever or dead-end short of
    the always-works solver.

The schedule's structural soundness is checked once without a topology
— capacity findings are a property of the (schedule, machine) pairing
the ``CAP*`` rules already own, not of fault tolerance.
"""

from __future__ import annotations

from collections.abc import Collection, Mapping, Sequence

import numpy as np

from ..blockjacobi.kernel import BLOCK_KERNELS, FALLBACK_CHAINS
from ..machine.routing import remap_leaves, route_phase
from ..machine.simulator import TreeMachine
from ..machine.topology import TreeTopology
from ..orderings.schedule import Schedule
from ..util.bits import leaf_of_slot
from .diagnostics import Diagnostic
from .races import find_races

__all__ = [
    "check_degraded_totality",
    "check_fallback_chains",
    "check_host_map",
]


def check_host_map(host_of_leaf: np.ndarray,
                   dead_leaves: Collection[int]) -> list[Diagnostic]:
    """Wrap :func:`~repro.faults.recovery.host_map_problems` findings as
    ``FT001`` diagnostics."""
    from ..faults.recovery import host_map_problems

    return [
        Diagnostic(rule="FT001", message=f"degraded host map unsound: {p}")
        for p in host_map_problems(host_of_leaf, dead_leaves)
    ]


def check_degraded_totality(schedule: Schedule,
                            topology: TreeTopology) -> list[Diagnostic]:
    """Prove every single-leaf death of ``topology`` degrades gracefully
    for ``schedule`` (rule ``FT001``)."""
    # slot/move soundness only: sweep-level coverage (SWEEP*) and
    # capacity (CAP*) are other passes' business and some orderings
    # legitimately defer coverage across sweeps (LLB's skipped
    # duplicate rotation)
    races = [d for d in find_races(schedule) if d.is_error]
    if races:
        rules = tuple(sorted({d.rule for d in races}))
        return [Diagnostic(
            rule="FT001",
            message="schedule fails slot/move soundness even before any "
                    f"fault; degraded validation is meaningless "
                    f"({', '.join(rules)})",
            details=(("rules", rules),),
        )]
    out: list[Diagnostic] = []
    for dead in range(topology.n_leaves):
        machine = TreeMachine(topology)
        try:
            machine.degrade_leaf(dead)
        except Exception as exc:  # noqa: BLE001 - any failure is the finding
            out.append(Diagnostic(
                rule="FT001",
                message=f"degrading leaf {dead} failed outright: {exc}",
                details=(("dead_leaf", dead),),
            ))
            continue
        out.extend(
            Diagnostic(rule="FT001",
                       message=f"after killing leaf {dead}: {d.message}",
                       details=(("dead_leaf", dead),) + d.details)
            for d in check_host_map(machine.host_of_leaf,
                                    machine.dead_leaves))
        for step_no, step in enumerate(schedule.steps, start=1):
            if not step.moves:
                continue
            try:
                pairs = remap_leaves(
                    ((leaf_of_slot(mv.src), leaf_of_slot(mv.dst))
                     for mv in step.moves),
                    machine.host_of_leaf)
                route_phase(topology, pairs)
            except Exception as exc:  # noqa: BLE001 - see above
                out.append(Diagnostic(
                    rule="FT001", step=step_no,
                    message=f"after killing leaf {dead}, the move phase "
                            f"cannot be routed on the degraded map: {exc}",
                    details=(("dead_leaf", dead),),
                ))
    return out


def check_fallback_chains(
    chains: Mapping[str, Sequence[str]] | None = None,
) -> list[Diagnostic]:
    """Prove the kernel fallback chains well-formed (rule ``FT002``).

    ``chains`` defaults to the live
    :data:`~repro.blockjacobi.kernel.FALLBACK_CHAINS`; the negative
    tests pass corrupted tables.
    """
    if chains is None:
        chains = FALLBACK_CHAINS
    out: list[Diagnostic] = []

    def finding(kernel: str, why: str) -> Diagnostic:
        return Diagnostic(
            rule="FT002",
            message=f"fallback chain of kernel {kernel!r} malformed: {why} "
                    f"(chain: {list(chains.get(kernel, ()))})",
            details=(("kernel", kernel),
                     ("chain", tuple(chains.get(kernel, ())))),
        )

    for kernel in BLOCK_KERNELS:
        chain = tuple(chains.get(kernel, ()))
        if not chain:
            out.append(finding(kernel, "no chain registered"))
            continue
        if chain[0] != kernel:
            out.append(finding(kernel, "chain does not start at the kernel"))
        if chain[-1] != "reference":
            out.append(finding(
                kernel, "chain does not end at the reference solver"))
        if len(set(chain)) != len(chain):
            out.append(finding(
                kernel, "chain repeats a kernel (downgrade loop)"))
        unknown = [k for k in chain if k not in BLOCK_KERNELS]
        if unknown:
            out.append(finding(
                kernel, f"chain names unregistered kernel(s) {unknown}"))
            continue
        # suffix consistency: downgrading to chain[i] must leave exactly
        # the remaining tail as its own escape route
        for i in range(1, len(chain)):
            if tuple(chains.get(chain[i], ())) != chain[i:]:
                out.append(finding(
                    kernel,
                    f"downgrading to {chain[i]!r} changes the escape "
                    f"route (expected tail {list(chain[i:])}, "
                    f"got {list(chains.get(chain[i], ()))})"))
                break
    return out
