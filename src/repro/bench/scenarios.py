"""Named benchmark scenarios.

Four kinds of workload, matching the trajectories the ROADMAP wants
protected:

``svd-kernel``       one full serial :func:`~repro.svd.jacobi_svd` run
                     with a chosen rotation kernel, ordering and size —
                     the batched-vs-reference pairs yield the headline
                     speedups;
``block-kernel``     one full serial
                     :func:`~repro.blockjacobi.block_jacobi_svd` run
                     with a chosen block-pair kernel and block size —
                     the gram-vs-reference pair is the BLAS-3 headline;
``parallel-sweeps``  sweep throughput of the simulated tree machine
                     (:class:`~repro.parallel.ParallelJacobiSVD`),
                     i.e. real wall time of the simulator, not modelled
                     machine time (scalar and block granularity);
``svd-parallel-exec`` one block Jacobi run under a chosen step-execution
                     backend (:mod:`repro.parallel.executor`) — the
                     threads-vs-serial and processes-vs-serial pairs are
                     the multicore headlines (bit-identical results,
                     wall time scaled by the GIL-releasing GEMM phases
                     or by fully independent worker processes on
                     shared-memory column views);
``routing``          message-routing throughput over every communication
                     phase of one compiled sweep: the ``loop`` scenario
                     runs the per-message reference router
                     (:func:`~repro.machine.routing.route_phase`), the
                     ``vec`` twin the vectorised
                     :func:`~repro.machine.routing.route_moves` hot path
                     behind the simulator — the vec-vs-loop pair is the
                     routing headline;
``svd-batch``        throughput of the many-matrix API over a stack of
                     small problems (the ROADMAP's per-user workload):
                     ``batch`` scenarios run one :func:`repro.svd_batch`
                     call, ``loop`` scenarios the per-matrix
                     :func:`repro.svd` loop they amortise — the
                     batch-vs-loop pair is the problem-axis headline;
``lint``             latency of the static schedule verifier over the
                     ordering registry;
``analyze``          latency of the execution-layer analysis gate
                     (:func:`~repro.verify.analyze_registry`: compiled
                     plans, executor chunkings, fault-tolerance
                     totality) — the cost CI pays per ``analyze
                     --quick``;
``sanitize-overhead`` one gram-kernel block run with the runtime
                     sanitizer armed, against its sanitizer-off twin —
                     the per-run price of the write-set records and
                     numeric canaries;
``faults-recovery``  one faulted parallel run (crash + silent
                     corruption, checkpoint/rollback/remap recovery)
                     against its fault-free twin — the simulator-side
                     price of the fault-tolerance machinery;
``fastpath``         one fault-free gram-kernel sweep on the tree
                     machine, vectorised fast path vs its event-driven
                     twin (``force_event``) on the same prebuilt
                     schedule — the large-n simulator headline (the
                     event side is timed inside the scenario and the
                     speedup lands in meta);
``tune``             latency of one quick single-round
                     :func:`repro.tune.tune` search — the cost CI pays
                     for the autotuner smoke gate.

Scenario inputs are deterministic (fixed seed), and orderings/drivers
are constructed *outside* the timed region — ordering construction is a
large fraction of a small run's wall time and would otherwise drown the
kernel signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..util.validation import require
from .timing import time_callable

__all__ = ["Scenario", "default_scenarios", "run_scenario", "scenario_names"]

#: seed for every generated benchmark matrix — results must be comparable
#: across runs and machines
_SEED = 2024


@dataclass(frozen=True)
class Scenario:
    """One named, self-contained timing target."""

    name: str
    kind: str  # one of the workload kinds in the module docstring
    params: dict[str, Any] = field(default_factory=dict)
    #: name of the baseline scenario this one is reported as a speedup
    #: against (the batched kernel points at its reference twin)
    reference: str | None = None


def _svd_scenario(kernel: str, ordering: str, n: int) -> Scenario:
    ref = None if kernel == "reference" else f"svd/reference/{ordering}/n{n}"
    return Scenario(
        name=f"svd/{kernel}/{ordering}/n{n}",
        kind="svd-kernel",
        params={"kernel": kernel, "ordering": ordering, "n": n, "m": n + 16},
        reference=ref,
    )


def _block_scenario(kernel: str, ordering: str, n: int, b: int) -> Scenario:
    ref = None if kernel == "reference" else f"block/reference/{ordering}/n{n}b{b}"
    return Scenario(
        name=f"block/{kernel}/{ordering}/n{n}b{b}",
        kind="block-kernel",
        params={"kernel": kernel, "ordering": ordering, "n": n,
                "m": n + 16, "block_size": b},
        reference=ref,
    )


def _exec_scenario(executor: str, n: int, b: int, workers: int) -> Scenario:
    ref = None if executor == "serial" else f"exec/serial/ring_new/n{n}b{b}"
    return Scenario(
        name=f"exec/{executor}/ring_new/n{n}b{b}",
        kind="svd-parallel-exec",
        params={"executor": executor, "ordering": "ring_new", "n": n,
                "m": n + 16, "block_size": b,
                "workers": workers if executor != "serial" else 1},
        reference=ref,
    )


def _route_scenario(mode: str, ordering: str, n: int) -> Scenario:
    ref = None if mode == "loop" else f"route/loop/{ordering}/n{n}"
    return Scenario(
        name=f"route/{mode}/{ordering}/n{n}",
        kind="routing",
        params={"mode": mode, "ordering": ordering,
                "topology": "perfect", "n": n},
        reference=ref,
    )


def _sanitize_scenario(sanitize: bool, executor: str, n: int,
                       b: int) -> Scenario:
    switch = "on" if sanitize else "off"
    ref = f"sanitize/off/{executor}/n{n}b{b}" if sanitize else None
    return Scenario(
        name=f"sanitize/{switch}/{executor}/n{n}b{b}",
        kind="sanitize-overhead",
        params={"sanitize": sanitize, "executor": executor,
                "ordering": "ring_new", "n": n, "m": n + 16,
                "block_size": b,
                "workers": 2 if executor == "threads" else 1},
        reference=ref,
    )


def _batch_scenario(mode: str, batch: int, n: int, b: int,
                    paired: bool = True) -> Scenario:
    ref = None
    if mode == "batch" and paired:
        ref = f"batch/loop/ring_new/n{n}x{batch}"
    return Scenario(
        name=f"batch/{mode}/ring_new/n{n}x{batch}",
        kind="svd-batch",
        params={"mode": mode, "ordering": "ring_new", "n": n, "m": n + 8,
                "block_size": b, "batch": batch},
        reference=ref,
    )


def default_scenarios(quick: bool = False) -> list[Scenario]:
    """The shipped scenario list.

    Full mode: scalar kernels x {fat_tree, ring_new} x n in {32, 64},
    the block kernels (gram vs reference vs batched at n=128, b=8), the
    step-executor pair (serial vs threads on the same block run), the
    sanitizer-overhead pairs (off vs on, serial and threads), the
    batch-throughput pairs (svd_batch vs the looped-svd baseline at
    batch sizes 10^2-10^4), the routing pair (vectorised vs per-message
    router over one n=256 compiled sweep), the simulator fast-path pair
    (vectorised vs event-driven n=512 gram sweep, speedup in meta), the
    autotuner smoke search, the parallel simulator at scalar and block
    granularity, the fault-recovery overhead run, and the lint and
    analyze gates (32 scenarios).  ``quick`` mode shrinks every size
    for CI smoke runs (21 scenarios) while keeping the same name
    structure.
    """
    sizes = (16,) if quick else (32, 64)
    out = []
    for n in sizes:
        for ordering in ("fat_tree", "ring_new"):
            for kernel in ("reference", "batched"):
                out.append(_svd_scenario(kernel, ordering, n))
    # the block-gram-vs-reference pair: the BLAS-3 fast path against the
    # per-pair reference numerics on the same block schedule
    bn, bb = (32, 4) if quick else (128, 8)
    block_kernels = ("reference", "gram") if quick \
        else ("reference", "batched", "gram")
    for kernel in block_kernels:
        out.append(_block_scenario(kernel, "ring_new", bn, bb))
    # the simulator fast path against its event-driven twin: one
    # fault-free gram sweep at the largest size the suite runs (the
    # tentpole's speedup claim is recorded here, in meta).  Runs before
    # the allocation-heavy batch/executor scenarios: the event path's
    # per-event object churn is measurably cheaper in a process whose
    # allocator arenas they have already warmed, which deflates the
    # recorded ratio by ~20% if this pair runs after them.
    sn = 64 if quick else 512
    out.append(
        Scenario(
            name=f"sim/fastpath-vs-event/n{sn}",
            kind="fastpath",
            params={"n": sn, "m": sn + 16, "block_size": 1,
                    "kernel": "gram", "ordering": "ring_new"},
        )
    )
    # the executor pairs: the same gram-kernel block run under the
    # serial, threaded and process step backends (results are
    # bit-identical; only the wall time may differ, by however many
    # cores the host offers — on a single-core host the parallel twins
    # record parity plus dispatch overhead, and the gate only enforces
    # no-regression)
    en, eb = (32, 4) if quick else (128, 8)
    for executor in ("serial", "threads", "processes"):
        out.append(_exec_scenario(executor, en, eb,
                                  workers=2 if quick else 4))
    # the sanitizer-overhead pair(s): the same gram block run with the
    # runtime sanitizer off and on — the "on" scenario reports its
    # overhead against the off twin
    for executor in (("serial",) if quick else ("serial", "threads")):
        for sanitize in (False, True):
            out.append(_sanitize_scenario(sanitize, executor, en, eb))
    # the batch-throughput pairs: one svd_batch call against the looped
    # svd() baseline it amortises, at n=16 b=4 (the per-user workload
    # shape); full mode spans batch sizes 10^2-10^4 (the 10^4 point is
    # batch-only — its loop twin would dominate the whole bench run)
    if quick:
        out.append(_batch_scenario("loop", 50, 16, 4))
        out.append(_batch_scenario("batch", 50, 16, 4))
    else:
        for bsize in (100, 1000):
            out.append(_batch_scenario("loop", bsize, 16, 4))
            out.append(_batch_scenario("batch", bsize, 16, 4))
        out.append(_batch_scenario("batch", 10000, 16, 4, paired=False))
    # the routing pair: the per-message reference router against the
    # vectorised hot path, over every communication phase of one
    # compiled sweep (n leaves exchange n columns per step)
    rn = 64 if quick else 256
    for mode in ("loop", "vec"):
        out.append(_route_scenario(mode, "ring_new", rn))
    # the autotuner smoke search (quick space, single round)
    tm, tn = (40, 32) if quick else (72, 64)
    out.append(
        Scenario(
            name=f"tune/quick/n{tn}",
            kind="tune",
            params={"m": tm, "n": tn, "batch": None},
        )
    )
    pn = 8 if quick else 32
    out.append(
        Scenario(
            name=f"parallel/hybrid/cm5/n{pn}",
            kind="parallel-sweeps",
            params={"topology": "cm5", "ordering": "hybrid", "n": pn, "m": pn + 8},
        )
    )
    if not quick:
        out.append(
            Scenario(
                name="parallel/hybrid/cm5/n64b4",
                kind="parallel-sweeps",
                params={"topology": "cm5", "ordering": "hybrid", "n": 64,
                        "m": 72, "block_size": 4},
            )
        )
    fn = 8 if quick else 16
    out.append(
        Scenario(
            name=f"faults/recovery-overhead/n{fn}",
            kind="faults-recovery",
            params={"topology": "perfect", "ordering": "fat_tree",
                    "n": fn, "m": fn + 8},
        )
    )
    out.append(
        Scenario(
            name="lint/registry",
            kind="lint",
            params={"sizes": [8] if quick else [8, 16]},
        )
    )
    out.append(
        Scenario(
            name="analyze/registry",
            kind="analyze",
            params={"sizes": [8] if quick else [8, 16],
                    "workers": [1, 2]},
        )
    )
    return out


def scenario_names(quick: bool = False) -> list[str]:
    return [s.name for s in default_scenarios(quick)]


def run_scenario(
    scenario: Scenario, repeats: int = 5, warmup: int = 1,
    profile: bool = False,
) -> dict[str, Any]:
    """Execute one scenario; returns its schema record (see report.py).

    ``profile=True`` appends a compute/route/merge phase breakdown
    (:mod:`repro.bench.phases`) to ``meta`` from one extra instrumented
    run; the gated ``wall_time_s`` median stays uninstrumented.
    """
    meta: dict[str, Any] = {}
    p = scenario.params
    if scenario.kind == "svd-kernel":
        from ..orderings import make_ordering
        from ..svd.hestenes import JacobiOptions, jacobi_svd

        rng = np.random.default_rng(_SEED)
        a = rng.standard_normal((p["m"], p["n"]))
        ordering = make_ordering(p["ordering"], p["n"])
        options = JacobiOptions(kernel=p["kernel"])

        def work() -> None:
            r = jacobi_svd(a, ordering=ordering, options=options)
            meta.update(
                sweeps=r.sweeps,
                rotations=r.rotations,
                converged=bool(r.converged),
            )

    elif scenario.kind == "block-kernel":
        from ..blockjacobi import BlockJacobiOptions, block_jacobi_svd
        from ..orderings import make_ordering

        rng = np.random.default_rng(_SEED)
        a = rng.standard_normal((p["m"], p["n"]))
        ordering = make_ordering(p["ordering"], p["n"] // p["block_size"])
        options = BlockJacobiOptions(block_size=p["block_size"],
                                     kernel=p["kernel"])

        def work() -> None:
            r = block_jacobi_svd(a, ordering=ordering, options=options)
            meta.update(
                sweeps=r.sweeps,
                rotations=r.rotations,
                converged=bool(r.converged),
            )

    elif scenario.kind == "svd-parallel-exec":
        from ..blockjacobi import BlockJacobiOptions, block_jacobi_svd
        from ..orderings import make_ordering

        rng = np.random.default_rng(_SEED)
        a = rng.standard_normal((p["m"], p["n"]))
        ordering = make_ordering(p["ordering"], p["n"] // p["block_size"])
        options = BlockJacobiOptions(block_size=p["block_size"],
                                     kernel="gram",
                                     executor=p["executor"],
                                     workers=p["workers"])

        def work() -> None:
            r = block_jacobi_svd(a, ordering=ordering, options=options)
            meta.update(
                sweeps=r.sweeps,
                rotations=r.rotations,
                converged=bool(r.converged),
                executor=p["executor"],
                workers=p["workers"],
            )

    elif scenario.kind == "sanitize-overhead":
        from ..blockjacobi import BlockJacobiOptions, block_jacobi_svd
        from ..orderings import make_ordering

        rng = np.random.default_rng(_SEED)
        a = rng.standard_normal((p["m"], p["n"]))
        ordering = make_ordering(p["ordering"], p["n"] // p["block_size"])
        options = BlockJacobiOptions(block_size=p["block_size"],
                                     kernel="gram",
                                     executor=p["executor"],
                                     workers=p["workers"],
                                     sanitize=p["sanitize"])

        def work() -> None:
            r = block_jacobi_svd(a, ordering=ordering, options=options)
            meta.update(
                sweeps=r.sweeps,
                rotations=r.rotations,
                converged=bool(r.converged),
                sanitize=p["sanitize"],
                executor=p["executor"],
            )

    elif scenario.kind == "svd-batch":
        from ..core.api import svd, svd_batch

        rng = np.random.default_rng(_SEED)
        stack = rng.standard_normal((p["batch"], p["m"], p["n"]))
        # both sides go through the public API with an ordering *name*:
        # per-call ordering construction and plan-cache traffic are part
        # of exactly the amortisation the pair measures
        kw = dict(ordering=p["ordering"], kernel="gram",
                  block_size=p["block_size"])
        if p["mode"] == "loop":
            def work() -> None:
                results = [svd(stack[i], **kw) for i in range(len(stack))]
                meta.update(
                    batch=len(results),
                    converged=all(r.converged for r in results),
                )
        else:
            def work() -> None:
                br = svd_batch(stack, **kw)
                meta.update(
                    batch=br.n_items,
                    converged=bool(br.converged),
                    matrices_per_sec=round(br.matrices_per_sec, 1),
                    sweeps_histogram={str(k): v for k, v
                                      in br.sweeps_histogram.items()},
                )

    elif scenario.kind == "routing":
        from ..machine.routing import route_moves, route_phase
        from ..machine.topology import make_topology
        from ..orderings import make_ordering
        from ..orderings.plan import compile_schedule

        plan = compile_schedule(make_ordering(p["ordering"], p["n"]).sweep(0))
        topology = make_topology(p["topology"], p["n"] // 2)
        move_arrays = [s.move_leaves for s in plan.steps
                       if len(s.move_leaves)]
        require(bool(move_arrays),
                f"{p['ordering']}(n={p['n']}) sweep has no communication "
                f"phase to route")
        if p["mode"] == "loop":
            pair_lists = [[(int(s), int(d)) for s, d in ml]
                          for ml in move_arrays]

            def work() -> None:
                phases = [route_phase(topology, pl) for pl in pair_lists]
                meta.update(
                    phases=len(phases),
                    messages=sum(ph.n_messages for ph in phases),
                )
        else:
            def work() -> None:
                phases = [route_moves(topology, ml[:, 0], ml[:, 1])
                          for ml in move_arrays]
                meta.update(
                    phases=len(phases),
                    messages=sum(ph.n_messages for ph in phases),
                )

    elif scenario.kind == "parallel-sweeps":
        from ..parallel.driver import ParallelJacobiSVD

        rng = np.random.default_rng(_SEED)
        a = rng.standard_normal((p["m"], p["n"]))
        options = None
        if p.get("block_size"):
            from ..blockjacobi import BlockJacobiOptions

            options = BlockJacobiOptions(block_size=p["block_size"])
        driver = ParallelJacobiSVD(topology=p["topology"],
                                   ordering=p["ordering"], options=options)

        def work() -> None:
            r, rep = driver.compute(a)
            meta.update(
                sweeps=r.sweeps,
                rotations=r.rotations,
                converged=bool(r.converged),
                model_time=rep.total_time,
            )

    elif scenario.kind == "faults-recovery":
        import warnings

        from ..faults.campaign import CampaignCase, single_fault_plan
        from ..parallel.driver import ParallelJacobiSVD
        from ..util.errors import ConvergenceWarning

        rng = np.random.default_rng(_SEED)
        a = rng.standard_normal((p["m"], p["n"]))
        driver = ParallelJacobiSVD(topology=p["topology"],
                                   ordering=p["ordering"])
        plan = single_fault_plan(
            CampaignCase(p["ordering"], "crash", p["n"]))
        plan = single_fault_plan(
            CampaignCase(p["ordering"], "corrupt_silent", p["n"])
        ).add(plan.faults[0])
        # the fault-free twin is timed inside the same region so the
        # reported figure is total (faulted + baseline) wall time and the
        # overhead ratio lands in meta
        def work() -> None:
            r0, rep0 = driver.compute(a)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ConvergenceWarning)
                r, rep = driver.compute(a, fault_plan=plan)
            meta.update(
                converged=bool(r.converged),
                rollbacks=rep.rollbacks,
                fault_events=len(r.fault_events),
                model_overhead=(rep.total_time / rep0.total_time
                                if rep0.total_time else 1.0),
            )

    elif scenario.kind == "fastpath":
        from ..machine.simulator import TreeMachine
        from ..machine.topology import PerfectFatTree
        from ..orderings import make_ordering

        b = p["block_size"]
        n_slots = p["n"] // b
        rng = np.random.default_rng(_SEED)
        a = rng.standard_normal((p["m"], p["n"]))
        # schedule construction is outside the timed region on both
        # sides: the pair measures sweep execution, not ordering setup
        sched = make_ordering(p["ordering"], n_slots).sweep(0)

        def run(force_event: bool) -> None:
            machine = TreeMachine(PerfectFatTree(n_slots // 2))
            machine.load(a, kernel=p["kernel"], block_size=b)
            machine.force_event = force_event
            machine.run_sweep(sched, sweep_index=0)
            expected = "event" if force_event else "fast"
            require(machine.last_sweep_path == expected,
                    f"expected {expected} path, got "
                    f"{machine.last_sweep_path!r}")

        # the event twin is priced here at a bounded repeat count (it is
        # the slow side by design); the headline wall_time_s below is
        # the fast path, and the speedup ratio is attached post-timing
        event = time_callable(lambda: run(True),
                              repeats=min(repeats, 3), warmup=min(warmup, 1))
        meta.update(event_median_s=event.median_s,
                    event_repeats=min(repeats, 3))

        def work() -> None:
            run(False)

    elif scenario.kind == "tune":
        from ..tune import tune

        def work() -> None:
            result = tune(p["m"], p["n"], p.get("batch"), quick=True,
                          repeats_schedule=(1,))
            meta.update(
                winner=result.winner.label(),
                candidates=len(result.candidates),
                speedup=round(result.speedup, 2),
            )

    elif scenario.kind == "lint":
        from ..verify import lint_registry

        sizes = tuple(p["sizes"])

        def work() -> None:
            reports = lint_registry(sizes=sizes)
            meta.update(targets=len(reports), clean=all(r.ok for r in reports))

    elif scenario.kind == "analyze":
        from ..verify import analyze_registry

        sizes = tuple(p["sizes"])
        workers = tuple(p["workers"])

        def work() -> None:
            reports = analyze_registry(sizes=sizes, workers=workers)
            meta.update(targets=len(reports), clean=all(r.ok for r in reports))

    else:
        require(False, f"unknown scenario kind {scenario.kind!r}")

    timing = time_callable(work, repeats=repeats, warmup=warmup)
    if scenario.kind == "fastpath":
        meta["speedup"] = meta["event_median_s"] / timing.median_s
    if profile:
        from .phases import phase_breakdown

        meta["phases"] = {k: round(v, 6)
                          for k, v in phase_breakdown(work).items()}
    return {
        "name": scenario.name,
        "kind": scenario.kind,
        "params": dict(p),
        "reference": scenario.reference,
        "wall_time_s": timing.median_s,
        "times_s": list(timing.times_s),
        "meta": meta,
    }
