"""Campaign registry and ``faults``/``svd`` CLI exit-code contracts."""

import json

import pytest

from repro.cli import main
from repro.faults.campaign import (
    ORDERINGS,
    CampaignCase,
    campaign_cases,
    render_survival_matrix,
    run_campaign,
    single_fault_plan,
)
from repro.faults.plan import FAULT_KINDS


class TestCampaignRegistry:
    def test_quick_grid_is_kinds_by_orderings(self):
        cases = campaign_cases(quick=True)
        assert len(cases) == len(FAULT_KINDS) * len(ORDERINGS)
        assert all(c.n == 8 and c.kernel == "reference" for c in cases)

    def test_full_grid_adds_sizes_and_gram(self):
        cases = campaign_cases(quick=False)
        assert len(cases) == len(FAULT_KINDS) * len(ORDERINGS) * 3 * 2
        assert {c.n for c in cases} == {8, 16, 32}
        assert {c.kernel for c in cases} == {"reference", "gram"}
        # hybrid needs >= 8 schedule units: gram at n=8 must use b=1
        for c in cases:
            if c.kernel == "gram":
                assert c.block_size == (1 if c.n == 8 else 2)

    def test_every_registered_plan_has_exactly_one_fault(self):
        for case in campaign_cases(quick=False):
            plan = single_fault_plan(case)
            assert len(plan.faults) == 1
            assert plan.faults[0].kind == case.kind

    def test_quick_campaign_all_survive(self):
        outcomes = run_campaign(quick=True)
        casualties = [o for o in outcomes if not o.survived]
        assert not casualties, render_survival_matrix(outcomes)
        # every case paid a recovery price and logged its injection
        assert all(o.event_counts.get("injected", 0) >= 1 for o in outcomes)
        assert all(o.overhead > 1.0 for o in outcomes)

    def test_survival_matrix_renders(self):
        outcomes = run_campaign(quick=True)
        text = render_survival_matrix(outcomes)
        assert "survival matrix" in text
        for ordering in ORDERINGS:
            assert ordering in text
        assert "survived" in text


class TestFaultsCLI:
    def test_quick_campaign_exits_zero(self, capsys):
        assert main(["faults", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "survival matrix" in out

    def test_json_output_is_valid(self, capsys):
        assert main(["faults", "--quick", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert len(doc["cases"]) == len(FAULT_KINDS) * len(ORDERINGS)
        assert all(c["survived"] for c in doc["cases"])


class TestSvdCLIExitCodes:
    def test_converged_run_exits_zero(self, capsys):
        rc = main(["svd", "--m", "24", "--n", "16",
                   "--ordering", "fat_tree", "--topology", "perfect"])
        assert rc == 0

    def test_non_convergence_exits_one(self, capsys):
        rc = main(["svd", "--m", "24", "--n", "16", "--serial",
                   "--ordering", "fat_tree", "--max-sweeps", "1"])
        assert rc == 1
        assert "NOT CONVERGED" in capsys.readouterr().out

    def test_fault_injection_run(self, capsys):
        rc = main(["svd", "--m", "24", "--n", "16",
                   "--ordering", "fat_tree", "--topology", "perfect",
                   "--fault", "crash"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault log" in out and "remap" in out

    def test_unknown_fault_kind_is_usage_error(self, capsys):
        rc = main(["svd", "--fault", "gremlin"])
        assert rc == 2
        assert "unknown fault kind" in capsys.readouterr().out

    def test_bad_max_sweeps_is_usage_error(self, capsys):
        assert main(["svd", "--max-sweeps", "0"]) == 2
