"""Symmetric eigenproblems under the same parallel orderings (Brent-Luk [2])."""

from .jacobi import (
    EigOptions,
    EigResult,
    gram_eigh,
    gram_eigh_batched,
    jacobi_eigh,
    symmetric_off_norm,
)

__all__ = ["EigOptions", "EigResult", "gram_eigh", "gram_eigh_batched",
           "jacobi_eigh", "symmetric_off_norm"]
