"""Benches for the extension subsystems: eigensolver, block Jacobi,
applications, collectives and the machine-scaling study."""

import numpy as np

from repro import block_jacobi_svd, jacobi_eigh, lstsq, pca
from repro.analysis import render_scaling_table, scaling_table
from repro.blockjacobi import BlockJacobiOptions
from repro.machine import collective_cost, make_topology


def test_eigensolver_fat_tree(benchmark, rng):
    a = rng.standard_normal((32, 32))
    a = (a + a.T) / 2.0

    r = benchmark(jacobi_eigh, a, "fat_tree")
    ref = np.linalg.eigvalsh(a)[::-1]
    assert np.max(np.abs(r.w - ref)) < 1e-11


def test_block_jacobi_block_size_sweep(benchmark, rng):
    a = rng.standard_normal((64, 32))
    ref = np.linalg.svd(a, compute_uv=False)

    def run():
        out = {}
        for b in (1, 2, 4, 8):
            r = block_jacobi_svd(a, options=BlockJacobiOptions(block_size=b))
            out[b] = (r.sweeps, float(np.max(np.abs(r.sigma - ref)) / ref[0]))
        return out

    results = benchmark(run)
    print("\nblock size -> (outer sweeps, sigma err):", results)
    for sweeps, err in results.values():
        assert err < 1e-11
    # larger blocks need no more outer sweeps
    assert results[8][0] <= results[1][0]


def test_apps_pipeline(benchmark, rng):
    x = rng.standard_normal((80, 16))
    b = rng.standard_normal(80)

    def run():
        model = pca(x, k=4)
        fit = lstsq(x, b)
        return model, fit

    model, fit = benchmark(run)
    assert fit.rank == 16
    assert model.components.shape == (4, 16)


def test_collectives_cost_profile(benchmark):
    def run():
        topo = make_topology("cm5", 64)
        return {
            kind: collective_cost(kind, topo, words=128).time
            for kind in ("reduce", "broadcast", "allreduce", "allgather", "scan")
        }

    costs = benchmark(run)
    print("\ncollective costs (128 words, 64 leaves):", costs)
    assert costs["allreduce"] > costs["reduce"]
    assert costs["allgather"] > costs["broadcast"]


def test_scaling_study(benchmark):
    rows = benchmark(scaling_table, [16, 32, 64], 64)
    print("\n" + render_scaling_table(rows))
    hybrid = [r for r in rows if r.ordering == "hybrid"]
    assert all(r.max_contention <= 1.0 for r in hybrid)
