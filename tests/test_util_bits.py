"""Unit tests for repro.util.bits."""

import pytest

from repro.util.bits import comm_level, ilog2, is_power_of_two, leaf_of_slot, msb


class TestIsPowerOfTwo:
    def test_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers(self):
        for x in (0, -1, -4, 3, 5, 6, 7, 9, 12, 1000):
            assert not is_power_of_two(x)


class TestIlog2:
    def test_exact(self):
        for k in range(16):
            assert ilog2(1 << k) == k

    @pytest.mark.parametrize("bad", [0, -2, 3, 6, 100])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            ilog2(bad)


class TestMsb:
    def test_values(self):
        assert msb(1) == 0
        assert msb(2) == 1
        assert msb(3) == 1
        assert msb(4) == 2
        assert msb(255) == 7
        assert msb(256) == 8

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            msb(0)
        with pytest.raises(ValueError):
            msb(-5)


class TestCommLevel:
    def test_same_leaf_is_zero(self):
        assert comm_level(3, 3) == 0

    def test_siblings_are_level_one(self):
        assert comm_level(0, 1) == 1
        assert comm_level(6, 7) == 1

    def test_cousins(self):
        assert comm_level(0, 2) == 2
        assert comm_level(1, 3) == 2
        assert comm_level(0, 4) == 3
        assert comm_level(0, 8) == 4

    def test_symmetry(self):
        for a in range(8):
            for b in range(8):
                assert comm_level(a, b) == comm_level(b, a)

    def test_adjacent_leaves_vary_in_level(self):
        # the ring neighbour hop crosses high levels at power boundaries
        assert comm_level(3, 4) == 3
        assert comm_level(7, 8) == 4


class TestLeafOfSlot:
    def test_two_per_leaf(self):
        assert [leaf_of_slot(s) for s in range(6)] == [0, 0, 1, 1, 2, 2]

    def test_custom_width(self):
        assert leaf_of_slot(7, cols_per_leaf=4) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            leaf_of_slot(-1)
