"""FIG2/FIG3 — the two-block basic module and the size-4 two-block ordering."""

from repro.analysis import fig2_basic_two_block, fig3_two_block_size4, step_table
from repro.orderings.twoblock import two_block_schedule
from repro.util.formatting import render_step_table


def test_fig2_basic_module(benchmark):
    sched = benchmark(fig2_basic_two_block)
    assert sched.n_rotation_steps == 2
    print("\n" + render_step_table(step_table(sched), title="Fig 2: two-block basic module"))


def test_fig3_size4(benchmark):
    sched = benchmark(fig3_two_block_size4)
    rows = step_table(sched)
    assert [r[2] for r in rows[:-1]] == ["level 1", "level 2", "level 1"]
    print("\n" + render_step_table(rows, title="Fig 3: two-block ordering of size 4"))


def test_two_block_large(benchmark):
    sched = benchmark(two_block_schedule, 64)
    assert sched.n_rotation_steps == 64
    # the level histogram matches the fat-tree capacity profile exactly
    hist = sched.level_histogram()
    assert all(hist[r] == 64 * 64 // (1 << (r - 1)) // 2 for r in hist)
