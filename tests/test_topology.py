"""Unit tests for the tree topologies (Section 2)."""

import pytest

from repro.machine.topology import (
    BinaryTree,
    CM5Tree,
    PerfectFatTree,
    SkinnyFatTree,
    make_topology,
)


class TestPerfectFatTree:
    def test_capacity_doubles(self):
        t = PerfectFatTree(16)
        assert [t.capacity(k) for k in range(1, 5)] == [1, 2, 4, 8]

    def test_constant_aggregate_bandwidth(self):
        # "the overall communication bandwidth at each level is constant"
        t = PerfectFatTree(32)
        totals = {t.total_capacity(k) for k in range(1, t.n_levels + 1)}
        assert len(totals) == 1

    def test_levels(self):
        assert PerfectFatTree(16).n_levels == 4
        assert PerfectFatTree(1).n_levels == 0


class TestBinaryTree:
    def test_capacity_constant(self):
        t = BinaryTree(16)
        assert all(t.capacity(k) == 1 for k in range(1, 5))

    def test_aggregate_bandwidth_halves(self):
        t = BinaryTree(16)
        assert t.total_capacity(1) == 16
        assert t.total_capacity(4) == 2


class TestSkinnyFatTree:
    def test_perfect_below_cut(self):
        t = SkinnyFatTree(32, skinny_above=3)
        assert [t.capacity(k) for k in (1, 2, 3)] == [1, 2, 4]

    def test_constant_above_cut(self):
        t = SkinnyFatTree(32, skinny_above=3)
        assert t.capacity(4) == 4
        assert t.capacity(5) == 4

    def test_rejects_bad_cut(self):
        with pytest.raises(ValueError):
            SkinnyFatTree(8, skinny_above=0)


class TestCM5Tree:
    def test_bottom_matches_perfect(self):
        t = CM5Tree(64)
        assert t.capacity(1) == 1
        assert t.capacity(2) == 2

    def test_sqrt2_growth_above(self):
        # 1, 2, 4, 4, 8, 8: x2 per 4-way level
        t = CM5Tree(64)
        assert [t.capacity(k) for k in range(1, 7)] == [1, 2, 4, 4, 8, 8]

    def test_skinny_relative_to_perfect(self):
        cm5 = CM5Tree(64)
        perfect = PerfectFatTree(64)
        for k in range(3, 7):
            assert cm5.capacity(k) <= perfect.capacity(k)
        assert cm5.capacity(6) < perfect.capacity(6)


class TestPaths:
    def test_same_leaf_empty_path(self):
        assert PerfectFatTree(8).path(3, 3) == []

    def test_sibling_path(self):
        chans = PerfectFatTree(8).path(0, 1)
        assert len(chans) == 2
        assert chans[0].up and not chans[1].up
        assert all(c.level == 1 for c in chans)

    def test_cross_root_path(self):
        t = PerfectFatTree(8)
        chans = t.path(0, 7)
        assert len(chans) == 6  # 3 up + 3 down
        assert max(c.level for c in chans) == 3

    def test_path_levels_symmetric(self):
        t = PerfectFatTree(16)
        for a, b in ((0, 5), (3, 12), (7, 8)):
            up = [c.level for c in t.path(a, b) if c.up]
            down = [c.level for c in t.path(a, b) if not c.up]
            assert sorted(up) == sorted(down)

    def test_comm_level_and_path_agree(self):
        t = PerfectFatTree(16)
        for a in range(0, 16, 3):
            for b in range(0, 16, 5):
                if a != b:
                    assert max(c.level for c in t.path(a, b)) == t.comm_level(a, b)

    def test_out_of_range_leaf(self):
        with pytest.raises(ValueError):
            PerfectFatTree(8).path(0, 8)


class TestFactory:
    def test_all_names(self):
        for name in ("perfect", "binary", "skinny", "cm5"):
            t = make_topology(name, 16)
            assert t.n_leaves == 16

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_topology("torus", 16)

    def test_kwargs_forwarded(self):
        t = make_topology("skinny", 16, skinny_above=1)
        assert t.capacity(3) == 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            make_topology("perfect", 12)
