"""Tests of the hybrid ordering (Section 5) and the LLB baseline."""

import pytest

from repro.orderings.hybrid import HybridOrdering, hybrid_sweep
from repro.orderings.llb import LLBOrdering, llb_backward_sweep, llb_forward_sweep
from repro.orderings.properties import (
    check_all_pairs_once,
    check_local_pairs,
    meeting_gap_profile,
)
from repro.orderings.fattree import FatTreeOrdering

CONFIGS = [(16, 2), (16, 4), (32, 4), (32, 8), (64, 8), (64, 16)]


class TestHybridOrdering:
    @pytest.mark.parametrize("n,g", CONFIGS)
    def test_valid_sweep(self, n, g):
        assert check_all_pairs_once(hybrid_sweep(n, g)).is_valid

    @pytest.mark.parametrize("n,g", CONFIGS)
    def test_optimal_step_count(self, n, g):
        assert hybrid_sweep(n, g).n_rotation_steps == n - 1

    @pytest.mark.parametrize("n,g", CONFIGS)
    def test_local_pairs(self, n, g):
        assert check_local_pairs(hybrid_sweep(n, g))

    @pytest.mark.parametrize("n,g", CONFIGS)
    def test_restored_after_two_sweeps(self, n, g):
        assert HybridOrdering(n, g).restoration_period() in (1, 2)

    def test_metadata_notes(self):
        s = hybrid_sweep(32, 4)
        assert s.notes["n_groups"] == 4
        assert s.notes["block_size"] == 4

    def test_block_moves_one_block_per_group_per_superstep(self):
        # every group boundary phase carries whole blocks: message count
        # per phase is a multiple of the block size, at most one block
        # per group (Section 5's balanced-traffic property)
        n, g = 32, 4
        K = n // (2 * g)
        s = hybrid_sweep(n, g)
        boundary_sizes = [
            sum(1 for m in step.moves if not m.is_local)
            for step in s.steps
            if any(m.level > 2 for m in step.moves)
        ]
        for size in boundary_sizes:
            assert size % K == 0
            assert size <= g * K

    def test_default_group_count(self):
        o = HybridOrdering(64)
        assert o.n_groups == 8  # blocks of 4 columns, the CM-5-safe size

    def test_rejects_too_few_leaves_per_group(self):
        with pytest.raises(ValueError):
            hybrid_sweep(16, 8)

    def test_rejects_non_power_of_two_groups(self):
        with pytest.raises(ValueError):
            hybrid_sweep(32, 3)


class TestLLBOrdering:
    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_forward_valid(self, n):
        assert check_all_pairs_once(llb_forward_sweep(n)).is_valid

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_forward_permutes_layout(self, n):
        # the defect the paper criticises: indices end in the wrong slots
        assert llb_forward_sweep(n).final_layout() != list(range(1, n + 1))

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_forward_backward_restores(self, n):
        f = llb_forward_sweep(n)
        b = llb_backward_sweep(n, skip_duplicate=True)
        layout = b.final_layout(f.final_layout())
        assert layout == list(range(1, n + 1))

    @pytest.mark.parametrize("n", [8, 16])
    def test_backward_full_is_valid(self, n):
        f = llb_forward_sweep(n)
        b = llb_backward_sweep(n, skip_duplicate=False)
        assert check_all_pairs_once(b, layout=f.final_layout()).is_valid

    @pytest.mark.parametrize("n", [8, 16])
    def test_duplicate_rotation_at_boundary(self, n):
        # the first rotation of the (unskipped) backward sweep repeats the
        # last rotation of the forward sweep
        f = llb_forward_sweep(n)
        b = llb_backward_sweep(n, skip_duplicate=False)
        last_fwd = {frozenset(p) for p in f.index_pairs()[-1]}
        bwd_pairs = b.index_pairs(f.final_layout())
        first_rot = next(ps for ps in bwd_pairs if ps)
        assert {frozenset(p) for p in first_rot} == last_fwd

    @pytest.mark.parametrize("n", [8, 16])
    def test_skip_duplicate_omits_exactly_those_pairs(self, n):
        f = llb_forward_sweep(n)
        b = llb_backward_sweep(n, skip_duplicate=True)
        report = check_all_pairs_once(b, layout=f.final_layout())
        assert not report.duplicates
        missing = {frozenset(p) for p in report.missing}
        last_fwd = {frozenset(p) for p in f.index_pairs()[-1]}
        assert missing == last_fwd

    def test_ordering_alternates_sweeps(self):
        o = LLBOrdering(16)
        assert o.sweep(0).name.startswith("llb_forward")
        assert o.sweep(1).name.startswith("llb_backward")
        assert o.sweep(2) is o.sweep(0)

    def test_restoration_period_two(self):
        assert LLBOrdering(16).restoration_period() == 2

    def test_variable_rotation_gap_vs_fat_tree(self):
        # the paper: "the number of rotations between any fixed pair is
        # variable rather than constant" — quantified as the spread of
        # gaps between successive rotations of the same pair
        llb = meeting_gap_profile(LLBOrdering(16), n_sweeps=4)
        fat = meeting_gap_profile(FatTreeOrdering(16), n_sweeps=4)
        assert fat["spread"] == 0.0
        assert llb["spread"] > 0.0
