"""Static verification of parallel Jacobi schedules (no execution needed).

The paper states its correctness claims as prose invariants: every
column pair meets exactly once per sweep, index order is restored
after each sweep (or two), ring messages travel in only one direction,
and no channel of the tree carries more load than its capacity.  The
test-suite checks these *dynamically* by running sweeps; this package
proves them *statically*, directly from the
:class:`~repro.orderings.schedule.Schedule` object, the way a race
detector or sanitizer gates a parallel runtime:

* :mod:`repro.verify.races` — per-step write-write races, unmatched
  exchanges, placement-bijection violations (``RACE001``-``RACE005``);
* :mod:`repro.verify.direction` — channel-dependency deadlock analysis
  and ring one-directionality (``DIR001``-``DIR003``);
* :mod:`repro.verify.capacity` — static per-channel link loads routed
  with the machine's own router, plus a cross-check against the
  dynamic contention analysis (``CAP001``-``CAP003``);
* :mod:`repro.verify.sweepcheck` — all-pairs coverage and index-order
  restoration (``SWEEP001``-``SWEEP003``);
* :mod:`repro.verify.linter` — orchestration over schedules, orderings
  and the whole registry (the ``repro-harness lint`` gate);
* :mod:`repro.verify.executor_plan` — static race/determinism analysis
  of executor chunkings, including the process executor's shared-memory
  projection (``EXEC001``-``EXEC005``);
* :mod:`repro.verify.plancheck` — compiled-plan re-elaboration and
  plan-cache integrity (``PLAN001``-``PLAN003``);
* :mod:`repro.verify.faultcheck` — fault-tolerance totality: every
  single-leaf death and the kernel fallback chains
  (``FT001``/``FT002``);
* :mod:`repro.verify.analyze` — orchestration of the execution-layer
  passes (the ``repro-harness analyze`` gate);
* :mod:`repro.verify.sanitize` — the opt-in *runtime* sanitizer:
  write-set records and sweep-boundary numeric canaries
  (``SAN001``-``SAN003``, enabled via ``REPRO_SANITIZE=1``);
* :mod:`repro.verify.corrupt` — corruption operators for negative
  tests, each engineered to trip one rule family.

Quick use::

    from repro import make_ordering
    from repro.verify import analyze_ordering, lint_ordering

    report = lint_ordering(make_ordering("ring_new", 16))
    assert report.ok, report.render()
    report = analyze_ordering(make_ordering("ring_new", 16))
    assert report.ok, report.render()
"""

from .analyze import (
    ANALYZE_WORKERS,
    analyze_ordering,
    analyze_registry,
    analyze_schedule,
)
from .capacity import check_capacity, crosscheck_dynamic, static_level_contention
from .corrupt import (
    break_fallback_chain,
    dead_host_map,
    drift_factor,
    drop_exchange,
    duplicate_pair,
    overlap_chunk_writes,
    overlap_shared_ranges,
    overload_link,
    poison_factor,
    reverse_ring_step,
    shuffle_chunk_bounds,
    skew_chunk_bounds,
    split_unsplittable_stage,
    stale_plan_memo,
    stray_column_touch,
    tamper_final_layout,
    tamper_fastpath_rows,
    tamper_plan_pairs,
    unchecked_schedule,
    unchecked_step,
)
from .diagnostics import RULES, Diagnostic, Report, rule_description
from .direction import (
    channel_dependency_cycle,
    check_deadlock_free,
    ring_direction_violations,
)
from .executor_plan import (
    SKEW_THRESHOLD,
    SharedStagePlan,
    StagePlan,
    check_executor_plan,
    check_fastpath_projection,
    check_shared_memory_plan,
    check_shared_plan,
    check_stage_plan,
    derive_shared_plan,
    derive_step_chunking,
)
from .faultcheck import (
    check_degraded_totality,
    check_fallback_chains,
    check_host_map,
)
from .linter import DEFAULT_SIZES, lint_ordering, lint_registry, lint_schedule
from .plancheck import check_plan_cache, check_plan_integrity
from .races import check_placement_bijection, check_step_races, find_races
from .sanitize import (
    RuntimeSanitizer,
    SanitizerError,
    check_numeric_canaries,
    check_write_record,
    sanitize_enabled,
)
from .sweepcheck import (
    check_ordering_restoration,
    check_pair_coverage,
    check_restoration,
    permutation_order,
)

__all__ = [
    "ANALYZE_WORKERS",
    "DEFAULT_SIZES",
    "Diagnostic",
    "RULES",
    "Report",
    "RuntimeSanitizer",
    "SKEW_THRESHOLD",
    "SanitizerError",
    "SharedStagePlan",
    "StagePlan",
    "analyze_ordering",
    "analyze_registry",
    "analyze_schedule",
    "break_fallback_chain",
    "channel_dependency_cycle",
    "check_capacity",
    "check_deadlock_free",
    "check_degraded_totality",
    "check_executor_plan",
    "check_fastpath_projection",
    "check_fallback_chains",
    "check_shared_memory_plan",
    "check_shared_plan",
    "check_host_map",
    "check_numeric_canaries",
    "check_ordering_restoration",
    "check_pair_coverage",
    "check_placement_bijection",
    "check_plan_cache",
    "check_plan_integrity",
    "check_restoration",
    "check_stage_plan",
    "check_step_races",
    "check_write_record",
    "crosscheck_dynamic",
    "dead_host_map",
    "derive_shared_plan",
    "derive_step_chunking",
    "drift_factor",
    "drop_exchange",
    "duplicate_pair",
    "find_races",
    "lint_ordering",
    "lint_registry",
    "lint_schedule",
    "overlap_chunk_writes",
    "overlap_shared_ranges",
    "overload_link",
    "permutation_order",
    "poison_factor",
    "reverse_ring_step",
    "ring_direction_violations",
    "rule_description",
    "sanitize_enabled",
    "shuffle_chunk_bounds",
    "skew_chunk_bounds",
    "split_unsplittable_stage",
    "stale_plan_memo",
    "static_level_contention",
    "stray_column_touch",
    "tamper_final_layout",
    "tamper_fastpath_rows",
    "tamper_plan_pairs",
    "unchecked_schedule",
    "unchecked_step",
]
